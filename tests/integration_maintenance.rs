//! Cross-crate integration: a maintained materialized model mirroring a
//! guarded database stays equal to the database's canonical model across
//! accepted updates, and the maintenance flip lists agree with the
//! checker's view of induced updates.

use uniform::datalog::{MaintainedModel, Transaction, Update};
use uniform::integrity::Checker;
use uniform::logic::parse_literal;
use uniform::{Database, UniformDatabase};

fn upd(src: &str) -> Update {
    Update::from_literal(&parse_literal(src).unwrap()).unwrap()
}

const ORG: &str = "
    member(X, Y) :- leads(X, Y).
    boss(X) :- leads(X, Y).
    idle(X) :- employee(X), not busy(X).
    constraint led: forall X: department(X) -> (exists Y: employee(Y) & leads(Y, X)).
    constraint member_dom: forall X, Y: member(X, Y) -> department(Y).
    employee(ann).
    department(sales).
    leads(ann, sales).
    busy(ann).
";

#[test]
fn maintained_model_mirrors_guarded_database() {
    let mut db = UniformDatabase::parse(ORG).unwrap();
    let mut mirror =
        MaintainedModel::new(db.database().facts().clone(), db.database().rules().clone());

    let updates: Vec<(&str, &[&str])> = vec![
        ("hire bob", &["employee(bob)"]),
        (
            "open hr",
            &["department(hr)", "employee(carol)", "leads(carol, hr)"],
        ),
        ("bob busy", &["busy(bob)"]),
        ("bob free", &["not busy(bob)"]),
        ("carol second hat", &["leads(carol, sales)"]),
    ];
    for (what, literals) in updates {
        let report = db
            .try_update_all(literals)
            .unwrap_or_else(|e| panic!("{what}: {e}"));
        assert!(report.satisfied);
        for &l in literals {
            mirror.apply(&upd(l));
        }
        // Mirror equals the canonical model after every step.
        let canonical = db.model();
        let mut a: Vec<String> = mirror.model().iter().map(|f| f.to_string()).collect();
        let mut b: Vec<String> = canonical.iter().map(|f| f.to_string()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "mirror diverged after: {what}");
    }

    // Rejected updates are not applied to either side. (Deleting ann's
    // sales leadership would be *accepted* here — carol picked up a
    // second hat above — but hr has no stand-in leader.)
    assert!(db.try_delete("leads(carol, hr)").is_err());
    assert!(mirror.holds(&uniform::logic::Fact::parse_like(
        "member",
        &["carol", "hr"]
    )));
}

#[test]
fn maintenance_flips_match_checker_culprits() {
    // The checker reports a violation "via" an induced update; applying
    // the same update to a maintained model must list the culprit among
    // its flips.
    let db = Database::parse(
        "
        enrolled(X, cs) :- student(X).
        constraint cdb: forall X: enrolled(X, cs) -> attends(X, ddb).
        ",
    )
    .unwrap();
    let checker = Checker::new(&db);
    let update = upd("student(jack)");
    let report = checker.check(&Transaction::single(update.clone()));
    assert!(!report.satisfied);
    let culprit = report.violations[0].culprit.clone().expect("culprit");

    let mut m = MaintainedModel::new(db.facts().clone(), db.rules().clone());
    let flips = m.apply(&update);
    assert!(
        flips.iter().any(|f| f.to_string() == culprit.to_string()),
        "culprit {culprit} not among flips {flips:?}"
    );
}

#[test]
fn maintained_model_handles_rule_heavy_churn() {
    // A longer mixed stream over a program with recursion and negation;
    // the maintained model must match recomputation at the end (the
    // per-step oracle lives in the datalog crate's tests).
    let db = Database::parse(
        "
        tc(X, Y) :- edge(X, Y).
        tc(X, Z) :- tc(X, Y), edge(Y, Z).
        isolated(X) :- node(X), not linked(X).
        linked(X) :- edge(X, Y).
        linked(Y) :- edge(X, Y).
        node(a). node(b). node(c). node(d).
        ",
    )
    .unwrap();
    let mut m = MaintainedModel::new(db.facts().clone(), db.rules().clone());
    let stream = [
        "edge(a, b)",
        "edge(b, c)",
        "edge(c, d)",
        "not edge(b, c)",
        "edge(b, a)",
        "edge(c, a)",
        "not edge(a, b)",
        "edge(d, a)",
    ];
    for s in stream {
        m.apply(&upd(s));
    }
    let fresh = uniform::datalog::Model::compute(m.edb(), db.rules());
    let mut a: Vec<String> = m.model().iter().map(|f| f.to_string()).collect();
    let mut b: Vec<String> = fresh.iter().map(|f| f.to_string()).collect();
    a.sort();
    b.sort();
    assert_eq!(a, b);
    assert!(
        m.stats().strata_recomputed > 0,
        "tc churn exercises the recursive path"
    );
}

#[test]
fn provenance_explains_checker_culprits() {
    // End-to-end: the rejected update's culprit is explainable in the
    // would-be updated state.
    let mut db = Database::parse(
        "
        enrolled(X, cs) :- student(X).
        constraint cdb: forall X: enrolled(X, cs) -> attends(X, ddb).
        ",
    )
    .unwrap();
    db.apply(&upd("student(jack)")).unwrap(); // unguarded, to build the bad state
    let prov = uniform::datalog::Provenance::build(db.facts(), db.rules());
    let tree = prov
        .explain(&uniform::logic::Fact::parse_like(
            "enrolled",
            &["jack", "cs"],
        ))
        .expect("derived");
    let rendered = tree.to_string();
    assert!(rendered.contains("student(jack)"), "{rendered}");
    assert!(rendered.contains("[explicit]"), "{rendered}");
}
