//! Integration tests for integrity maintenance across the whole stack:
//! the two-phase checker against realistic workloads, agreement of all
//! four methods, and the façade's guarded updates.

use uniform::datalog::{Transaction, Update};
use uniform::integrity::{verdicts_agree, CheckOptions, Checker};
use uniform::logic::parse_literal;
use uniform::UniformDatabase;
use uniform_workload as workload;

fn upd(src: &str) -> Update {
    Update::from_literal(&parse_literal(src).unwrap()).unwrap()
}

#[test]
fn university_workload_good_and_bad_transactions() {
    let db = workload::university(100, 0);
    let checker = Checker::new(&db);
    assert!(checker.check(&workload::university_good_tx(1)).satisfied);
    let rep = checker.check(&workload::university_bad_tx(1));
    assert!(!rep.satisfied);
    assert!(rep.violations.iter().any(|v| v.constraint == "cdb"));
}

#[test]
fn methods_agree_on_org_update_stream() {
    let db = workload::org(4, 3, 0);
    for u in workload::org_updates(4, 3, 30, 0xBEEF) {
        let tx = Transaction::single(u);
        verdicts_agree(&db, &tx).unwrap_or_else(|e| panic!("{e}"));
    }
}

#[test]
fn methods_agree_on_tc_updates() {
    let db = workload::tc_chain(12, 0);
    for u in workload::tc_updates(12, 20, 99) {
        let tx = Transaction::single(u);
        verdicts_agree(&db, &tx).unwrap_or_else(|e| panic!("{e}"));
    }
}

#[test]
fn recursive_cycle_detection_via_constraints() {
    let db = workload::tc_chain(50, 0);
    let checker = Checker::new(&db);
    // Forward edge: fine. Back edge: closes a cycle.
    assert!(checker.check_update(&upd("edge(n10, n30)")).satisfied);
    assert!(!checker.check_update(&upd("edge(n30, n10)")).satisfied);
    assert!(!checker.check_update(&upd("edge(n49, n0)")).satisfied);
    // Self loop.
    assert!(!checker.check_update(&upd("edge(n5, n5)")).satisfied);
}

#[test]
fn compiled_checks_are_reusable_across_states() {
    // Phase 1 output depends only on rules and constraints: reuse one
    // compiled check against many database states.
    let mut db = workload::university(10, 0);
    let checker = Checker::new(&db);
    let compiled = checker.compile(&[parse_literal("student(probe)").unwrap()]);
    let rejected = checker.evaluate(&compiled, &Transaction::single(upd("student(probe)")));
    assert!(!rejected.satisfied, "new student lacks a course");
    // Give probe a course and attendance; the same compiled object now
    // accepts the insertion.
    db.apply(&upd("enrolled(probe, math)")).unwrap();
    let checker2 = Checker::new(&db);
    let accepted = checker2.evaluate(&compiled, &Transaction::single(upd("student(probe)")));
    assert!(accepted.satisfied, "{:?}", accepted.violations);
}

#[test]
fn share_evaluations_toggle_preserves_verdicts() {
    let db = workload::deductive_university(40, 0);
    for share in [true, false] {
        let checker = Checker::with_options(
            &db,
            CheckOptions {
                share_evaluations: share,
                ..CheckOptions::default()
            },
        );
        assert!(!checker.check_update(&upd("student(jack)")).satisfied);
        let tx = Transaction::new(vec![upd("student(jack)"), upd("attends(jack, ddb)")]);
        assert!(checker.check(&tx).satisfied);
    }
}

#[test]
fn facade_applies_only_consistent_transactions() {
    let mut db = UniformDatabase::parse(
        "
        stock(widget, 5).
        constraint positive: forall I, N: stock(I, N) -> known_quantity(N).
        known_quantity(0). known_quantity(5). known_quantity(10).
        ",
    )
    .unwrap();
    assert!(db.try_insert("stock(gadget, 10).").is_ok());
    assert!(
        db.try_insert("stock(gizmo, 7).").is_err(),
        "7 is not a known quantity"
    );
    let facts: Vec<String> = db.facts().map(|f| f.to_string()).collect();
    assert!(!facts.iter().any(|f| f.contains("gizmo")));
}

#[test]
fn deep_induced_chain_is_tracked() {
    // A 6-deep derivation chain: the violation surfaces at the end.
    let db = uniform::Database::parse(
        "
        l1(X) :- l0(X).
        l2(X) :- l1(X).
        l3(X) :- l2(X).
        l4(X) :- l3(X).
        l5(X) :- l4(X).
        constraint top: forall X: l5(X) -> blessed(X).
        blessed(ok).
        l0(ok).
        ",
    )
    .unwrap();
    assert!(db.is_consistent());
    let checker = Checker::new(&db);
    let rep = checker.check_update(&upd("l0(bad)"));
    assert!(!rep.satisfied);
    assert_eq!(
        rep.violations[0].culprit.as_ref().unwrap().to_string(),
        "l5(bad)",
        "the culprit is the induced update at the end of the chain"
    );
    assert!(checker.check_update(&upd("l0(ok)")).satisfied);
}

#[test]
fn mixed_polarity_cascades() {
    // Deletion propagating through negation: removing a guard *adds* a
    // derived fact which violates a constraint.
    let db = uniform::Database::parse(
        "
        emp(a). guard(a).
        exposed(X) :- emp(X), not guard(X).
        constraint safe: forall X: exposed(X) -> false.
        ",
    )
    .unwrap();
    assert!(db.is_consistent());
    let checker = Checker::new(&db);
    let rep = checker.check_update(&upd("not guard(a)"));
    assert!(!rep.satisfied);
    assert_eq!(
        rep.violations[0].culprit.as_ref().unwrap().to_string(),
        "exposed(a)"
    );
    // And insertion of a guard for a new exposed employee, in one tx.
    let tx = Transaction::new(vec![upd("emp(b)"), upd("guard(b)")]);
    assert!(checker.check(&tx).satisfied);
    assert!(!checker.check_update(&upd("emp(b)")).satisfied);
}

#[test]
fn scaling_sanity_two_phase_faster_than_full_on_big_relations() {
    // Not a benchmark — just a sanity assertion that the asymmetry E1
    // measures actually exists at moderate scale.
    let db = workload::university(2000, 0);
    let checker = Checker::new(&db);
    db.model(); // warm the shared current-state materialization
    let tx = workload::university_good_tx(7);

    let t0 = std::time::Instant::now();
    for _ in 0..5 {
        assert!(checker.check(&tx).satisfied);
    }
    let two_phase = t0.elapsed();

    let t0 = std::time::Instant::now();
    for _ in 0..5 {
        assert!(uniform::integrity::full_recheck(&db, &tx).satisfied);
    }
    let full = t0.elapsed();
    assert!(
        two_phase < full,
        "two-phase ({two_phase:?}) should beat full re-check ({full:?}) at n=2000"
    );
}
