//! Differential proof of the chunked copy-on-write store: a naive
//! `Vec`-of-pages oracle implements the *same published policy*
//! ([`PAGE_CAP`]-slot leaf pages, tombstoning with in-place revival,
//! the [`COMPACT_FLOOR`]/sealed-page compaction rule) with none of the
//! machinery under test — no `Arc` sharing, no persistent slot router,
//! no per-column indexes. For hundreds of randomized
//! insert/delete/revive/compact/snapshot schedules, [`Relation`] and
//! [`FactSet`] must stay **bit-identical** to the oracle: live counts,
//! membership, full and index-driven scan order, page shapes and
//! tombstone accounting — and every snapshot taken mid-schedule must
//! still replay its frozen oracle verbatim after the live side moved
//! on, which is the copy-on-write contract itself.
//!
//! The aliasing tests then witness the mechanism directly via
//! [`Relation::shared_pages_with`]: cloning shares every page,
//! mutating unshares exactly the touched one.

use proptest::prelude::*;
use std::collections::HashMap;
use uniform::datalog::{FactSet, Relation, COMPACT_FLOOR, PAGE_CAP};
use uniform::logic::{Fact, Sym};

// ---------------------------------------------------------------------------
// The oracle: same policy, naive representation.
// ---------------------------------------------------------------------------

#[derive(Clone, Default)]
struct NaivePage {
    slots: Vec<(Vec<Sym>, bool)>,
}

impl NaivePage {
    fn live(&self) -> usize {
        self.slots.iter().filter(|(_, live)| *live).count()
    }
}

/// A flat re-statement of the chunking policy: pages are plain vectors,
/// the router is a [`HashMap`] that (like the real one) keeps
/// tombstoned tuples routed for revival.
#[derive(Clone, Default)]
struct NaiveRelation {
    pages: Vec<NaivePage>,
    route: HashMap<Vec<Sym>, (usize, usize)>,
}

impl NaiveRelation {
    fn len(&self) -> usize {
        self.pages.iter().map(NaivePage::live).sum()
    }

    fn stale_slots(&self) -> usize {
        self.pages.iter().map(|p| p.slots.len()).sum::<usize>() - self.len()
    }

    fn page_shape(&self) -> Vec<(usize, usize)> {
        self.pages
            .iter()
            .map(|p| (p.slots.len(), p.live()))
            .collect()
    }

    fn contains(&self, args: &[Sym]) -> bool {
        self.route
            .get(args)
            .is_some_and(|&(p, o)| self.pages[p].slots[o].1)
    }

    fn live_tuples(&self) -> Vec<Vec<Sym>> {
        self.pages
            .iter()
            .flat_map(|p| p.slots.iter().filter(|(_, l)| *l).map(|(t, _)| t.clone()))
            .collect()
    }

    fn matching(&self, pattern: &[Option<Sym>]) -> Vec<Vec<Sym>> {
        self.live_tuples()
            .into_iter()
            .filter(|t| {
                pattern
                    .iter()
                    .zip(t)
                    .all(|(p, v)| p.is_none_or(|c| c == *v))
            })
            .collect()
    }

    fn insert(&mut self, args: &[Sym]) -> bool {
        if let Some(&(p, o)) = self.route.get(args) {
            if self.pages[p].slots[o].1 {
                return false;
            }
            // Revival flips the tombstone in place; never compacts.
            self.pages[p].slots[o].1 = true;
            return true;
        }
        let p = match self.pages.last() {
            Some(page) if page.slots.len() < PAGE_CAP => self.pages.len() - 1,
            _ => {
                self.pages.push(NaivePage::default());
                self.pages.len() - 1
            }
        };
        self.pages[p].slots.push((args.to_vec(), true));
        self.route
            .insert(args.to_vec(), (p, self.pages[p].slots.len() - 1));
        self.maybe_compact_page(p);
        true
    }

    fn remove(&mut self, args: &[Sym]) -> bool {
        let Some(&(p, o)) = self.route.get(args) else {
            return false;
        };
        if !self.pages[p].slots[o].1 {
            return false;
        }
        self.pages[p].slots[o].1 = false;
        self.maybe_compact_page(p);
        true
    }

    fn maybe_compact_page(&mut self, p: usize) {
        let slots = self.pages[p].slots.len();
        let stale = slots - self.pages[p].live();
        let floor = if p + 1 == self.pages.len() {
            COMPACT_FLOOR
        } else {
            1
        };
        if slots >= floor && stale * 2 > slots {
            self.compact_page(p);
        }
    }

    fn compact_page(&mut self, p: usize) {
        let old = std::mem::take(&mut self.pages[p].slots);
        for (tuple, live) in old {
            if live {
                let offset = self.pages[p].slots.len();
                self.route.insert(tuple.clone(), (p, offset));
                self.pages[p].slots.push((tuple, true));
            } else {
                self.route.remove(&tuple);
            }
        }
    }

    fn compact(&mut self) {
        if self.stale_slots() == 0 {
            return;
        }
        let live = self.live_tuples();
        *self = NaiveRelation::default();
        for tuple in live {
            self.insert(&tuple);
        }
    }
}

// ---------------------------------------------------------------------------
// Relation ⇔ oracle differential.
// ---------------------------------------------------------------------------

fn tuple(k: usize) -> Vec<Sym> {
    vec![Sym::new(&format!("k{k}")), Sym::new(&format!("t{}", k % 7))]
}

/// Every observable of the chunked relation, compared bit-for-bit.
fn assert_matches(rel: &Relation, oracle: &NaiveRelation, keyspace: usize, ctx: &str) {
    assert_eq!(rel.len(), oracle.len(), "{ctx}: live count");
    assert_eq!(rel.page_shape(), oracle.page_shape(), "{ctx}: page shape");
    assert_eq!(
        rel.stale_slots(),
        oracle.stale_slots(),
        "{ctx}: stale slots"
    );
    let tuples: Vec<Vec<Sym>> = rel.iter().map(<[Sym]>::to_vec).collect();
    assert_eq!(tuples, oracle.live_tuples(), "{ctx}: iteration order");
    for k in (0..keyspace).step_by(7) {
        assert_eq!(
            rel.contains(&tuple(k)),
            oracle.contains(&tuple(k)),
            "{ctx}: contains(k{k})"
        );
    }
    // Index-driven scans agree with oracle filtering, order included:
    // a bound first column (unique key) and a bound second column
    // (shared tag — many hits per page).
    for pattern in [
        vec![Some(Sym::new("k3")), None],
        vec![None, Some(Sym::new("t2"))],
    ] {
        let mut got: Vec<Vec<Sym>> = Vec::new();
        rel.scan(&pattern, &mut |args| {
            got.push(args.to_vec());
            true
        });
        assert_eq!(got, oracle.matching(&pattern), "{ctx}: scan {pattern:?}");
    }
}

#[derive(Clone, Debug)]
enum Op {
    Insert(usize),
    Delete(usize),
    Revive(usize),
    Compact,
    Snapshot,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    // Weighted mix: mutations dominate, with occasional full compacts
    // and snapshot pins.
    let op = (0u8..12, 0usize..1600).prop_map(|(sel, k)| match sel {
        0..=3 => Op::Insert(k),
        4..=7 => Op::Delete(k),
        8..=9 => Op::Revive(k),
        10 => Op::Compact,
        _ => Op::Snapshot,
    });
    prop::collection::vec(op, 1..250)
}

/// Base sizes straddle the interesting boundaries: empty, one small
/// tail page (under the compaction floor's reach), and multi-page with
/// a sealed full page plus a partial tail.
fn arb_base() -> impl Strategy<Value = usize> {
    prop_oneof![Just(0usize), Just(40), Just(PAGE_CAP + 177)]
}

proptest! {
    #[test]
    fn chunked_relation_matches_naive_oracle(base in arb_base(), ops in arb_ops()) {
        let keyspace = base + 300;
        let mut rel = Relation::new(2);
        let mut oracle = NaiveRelation::default();
        for k in 0..base {
            rel.insert(&tuple(k));
            oracle.insert(&tuple(k));
        }
        // Snapshots pin (chunked clone, frozen oracle) pairs; the clone
        // must keep answering from the pinned state while the live
        // relation mutates through shared pages.
        let mut snapshots: Vec<(Relation, NaiveRelation)> = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            match op {
                Op::Insert(k) => {
                    let (a, b) = (rel.insert(&tuple(*k)), oracle.insert(&tuple(*k)));
                    prop_assert_eq!(a, b, "op {}: insert verdict", i);
                }
                Op::Delete(k) => {
                    let (a, b) = (rel.remove(&tuple(*k)), oracle.remove(&tuple(*k)));
                    prop_assert_eq!(a, b, "op {}: delete verdict", i);
                }
                Op::Revive(k) => {
                    rel.remove(&tuple(*k));
                    oracle.remove(&tuple(*k));
                    let (a, b) = (rel.insert(&tuple(*k)), oracle.insert(&tuple(*k)));
                    prop_assert_eq!(a, b, "op {}: revive verdict", i);
                }
                Op::Compact => {
                    rel.compact();
                    oracle.compact();
                }
                Op::Snapshot => {
                    if snapshots.len() < 4 {
                        snapshots.push((rel.clone(), oracle.clone()));
                    }
                }
            }
            prop_assert_eq!(rel.len(), oracle.len(), "op {}: live count", i);
        }
        assert_matches(&rel, &oracle, keyspace, "final");
        for (i, (snap, frozen)) in snapshots.iter().enumerate() {
            assert_matches(snap, frozen, keyspace, &format!("snapshot {i}"));
        }
    }
}

// ---------------------------------------------------------------------------
// FactSet ⇔ oracle differential (predicate routing + COW relations).
// ---------------------------------------------------------------------------

/// Predicates of distinct arities; the oracle keeps them in
/// first-insertion order, exactly like [`FactSet::predicates`].
const PREDS: [(&str, usize); 3] = [("p", 2), ("q", 1), ("r", 3)];

fn fact(pred: usize, k: usize) -> Fact {
    let (name, arity) = PREDS[pred];
    let args: Vec<String> = (0..arity).map(|c| format!("c{}", k % (11 - c))).collect();
    let refs: Vec<&str> = args.iter().map(String::as_str).collect();
    Fact::parse_like(name, &refs)
}

proptest! {
    #[test]
    fn chunked_factset_matches_naive_oracle(
        ops in prop::collection::vec((0usize..3, 0usize..60, 0u8..2), 1..200),
    ) {
        let mut set = FactSet::new();
        let mut oracle: Vec<(Sym, NaiveRelation)> = Vec::new();
        for (pred, k, is_insert) in ops {
            let f = fact(pred, k);
            if is_insert == 1 {
                let slot = oracle.iter().position(|(p, _)| *p == f.pred).unwrap_or_else(|| {
                    oracle.push((f.pred, NaiveRelation::default()));
                    oracle.len() - 1
                });
                prop_assert_eq!(set.insert(&f), oracle[slot].1.insert(&f.args));
            } else {
                let removed = oracle
                    .iter_mut()
                    .find(|(p, _)| *p == f.pred)
                    .is_some_and(|(_, rel)| rel.remove(&f.args));
                prop_assert_eq!(set.remove(&f), removed);
            }
        }
        prop_assert_eq!(set.len(), oracle.iter().map(|(_, r)| r.len()).sum::<usize>());
        let preds: Vec<Sym> = set.predicates().collect();
        let oracle_preds: Vec<Sym> = oracle.iter().map(|(p, _)| *p).collect();
        prop_assert_eq!(preds, oracle_preds, "predicate first-insertion order");
        // Full iteration: predicate-then-tuple insertion order.
        let facts: Vec<Fact> = set.iter().collect();
        let expect: Vec<Fact> = oracle
            .iter()
            .flat_map(|(p, rel)| {
                rel.live_tuples()
                    .into_iter()
                    .map(|args| Fact { pred: *p, args })
            })
            .collect();
        prop_assert_eq!(facts, expect, "fact iteration order");
        for (p, rel) in &oracle {
            let chunked = set.relation(*p).expect("touched predicate is routed");
            prop_assert_eq!(chunked.page_shape(), rel.page_shape());
            prop_assert_eq!(chunked.stale_slots(), rel.stale_slots());
        }
    }
}

// ---------------------------------------------------------------------------
// Page aliasing: the mechanism itself.
// ---------------------------------------------------------------------------

#[test]
fn cloning_shares_all_pages_and_mutation_unshares_only_the_touched_one() {
    let mut rel = Relation::new(2);
    let n = PAGE_CAP * 3 + 10;
    for k in 0..n {
        rel.insert(&tuple(k));
    }
    assert_eq!(rel.page_shape().len(), 4);

    let snap = rel.clone();
    assert_eq!(rel.shared_pages_with(&snap), 4, "clone shares every page");

    // Appending lands in the tail page: 3 of 4 stay physically shared.
    let before = rel.cow_stats();
    rel.insert(&tuple(n));
    assert_eq!(rel.shared_pages_with(&snap), 3);

    // Deleting from the first (sealed) page unshares exactly it.
    rel.remove(&tuple(0));
    assert_eq!(rel.shared_pages_with(&snap), 2);
    let after = rel.cow_stats();
    assert_eq!(
        after.pages_cloned,
        before.pages_cloned + 2,
        "both mutations paid exactly one page COW each"
    );

    // The snapshot still answers from the pinned state...
    assert!(snap.contains(&tuple(0)));
    assert!(!snap.contains(&tuple(n)));
    assert_eq!(snap.len(), n);
    // ...and the live side from the new one.
    assert!(!rel.contains(&tuple(0)));
    assert!(rel.contains(&tuple(n)));
    assert_eq!(rel.len(), n);
}

#[test]
fn factset_clones_share_pages_per_relation() {
    let mut set = FactSet::new();
    for k in 0..(PAGE_CAP + 50) {
        set.insert(&Fact::parse_like("p", &[&format!("a{k}"), "x"]));
        set.insert(&Fact::parse_like("q", &[&format!("b{k}")]));
    }
    let snap = set.clone();
    let shared = |set: &FactSet, pred: &str| {
        let p = Sym::new(pred);
        set.relation(p)
            .unwrap()
            .shared_pages_with(snap.relation(p).unwrap())
    };
    assert_eq!(shared(&set, "p"), 2);
    assert_eq!(shared(&set, "q"), 2);

    // Mutating one predicate's tail page leaves the sealed page and the
    // entire sibling relation untouched.
    set.insert(&Fact::parse_like("p", &["fresh", "x"]));
    assert_eq!(shared(&set, "p"), 1);
    assert_eq!(shared(&set, "q"), 2);
    assert_eq!(snap.len(), 2 * (PAGE_CAP + 50));
    assert_eq!(set.len(), 2 * (PAGE_CAP + 50) + 1);
}
