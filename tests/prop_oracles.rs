//! Property-based oracles over the whole stack.
//!
//! * normalization to restricted-quantification form preserves truth
//!   (checked against the naive quantify-over-the-domain semantics);
//! * the descendant-driven `delta` equals the brute-force model diff;
//! * the two-phase checker agrees with the full re-check (and with the
//!   interleaved and Lloyd–Topor baselines) on random databases and
//!   updates;
//! * satisfiability verdicts are sound: returned models satisfy the
//!   constraints, and `Unsatisfiable` survives exhaustive small-model
//!   search.

use proptest::prelude::*;
use std::collections::HashSet;
use uniform::datalog::{
    satisfies_closed, Database, FactSet, Model, OverlayEngine, RuleSet, Transaction, Update,
};
use uniform::integrity::{induced_updates_by_diff, verdicts_agree, DeltaEngine};
use uniform::logic::semantics::{eval_closed, FiniteInterp};
use uniform::logic::{
    normalize, parse_fact, parse_formula, parse_rule, Atom, Fact, Formula, Literal, Sym,
};
use uniform::satisfiability::{SatChecker, SatOptions, SatOutcome};

// ---------- generators -----------------------------------------------------

/// Random ground facts over a small fixed schema.
fn arb_facts() -> impl Strategy<Value = Vec<Fact>> {
    let consts = ["a", "b", "c"];
    let unary = ["p", "q", "s"];
    let binary = ["l", "r"];
    let one = (0..unary.len(), 0..consts.len())
        .prop_map(move |(p, c)| Fact::parse_like(unary[p], &[consts[c]]));
    let two = (0..binary.len(), 0..consts.len(), 0..consts.len())
        .prop_map(move |(p, c1, c2)| Fact::parse_like(binary[p], &[consts[c1], consts[c2]]));
    prop::collection::vec(prop_oneof![one, two], 0..12)
}

/// Random update literal over the same schema.
fn arb_update() -> impl Strategy<Value = Update> {
    (arb_facts(), any::<bool>(), 0..64usize).prop_map(|(facts, insert, pick)| {
        let fact = if facts.is_empty() {
            Fact::parse_like("p", &["a"])
        } else {
            facts[pick % facts.len()].clone()
        };
        if insert {
            Update::insert(fact)
        } else {
            Update::delete(fact)
        }
    })
}

/// A random subset of a fixed pool of (stratified, range-restricted)
/// rules.
fn arb_rules() -> impl Strategy<Value = Vec<&'static str>> {
    let pool: Vec<&'static str> = vec![
        "m(X,Y) :- l(X,Y).",
        "t(X) :- p(X), q(X).",
        "u(X) :- p(X), not q(X).",
        "tc(X,Y) :- r(X,Y).",
        "tc(X,Z) :- tc(X,Y), r(Y,Z).",
        "w(X) :- m(X,Y), s(Y).",
    ];
    proptest::sample::subsequence(pool, 0..=5)
}

/// A random subset of a pool of constraints (all domain independent).
fn arb_constraints() -> impl Strategy<Value = Vec<&'static str>> {
    let pool: Vec<&'static str> = vec![
        "forall X: t(X) -> s(X)",
        "forall X, Y: m(X,Y) -> p(X)",
        "forall X: u(X) -> s(X)",
        "forall X: p(X) -> q(X) | s(X)",
        "forall X, Y: l(X,Y) -> (exists Z: r(Y,Z))",
        "forall X: tc(X,X) -> false",
        "forall X, Y, Z: l(X,Y) & l(X,Z) -> r(Y,Z)",
    ];
    proptest::sample::subsequence(pool, 0..=4)
}

/// Random general formulas for the normalization oracle.
fn arb_formula() -> impl Strategy<Value = Formula> {
    let atom = prop_oneof![
        (0..3usize, 0..4usize).prop_map(|(p, t)| {
            let preds = ["p", "q", "s"];
            let terms = ["X", "Y", "a", "b"];
            Formula::Atom(Atom::parse_like(preds[p], &[terms[t]]))
        }),
        (0..2usize, 0..4usize, 0..4usize).prop_map(|(p, t1, t2)| {
            let preds = ["l", "r"];
            let terms = ["X", "Y", "a", "b"];
            Formula::Atom(Atom::parse_like(preds[p], &[terms[t1], terms[t2]]))
        }),
    ];
    atom.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            inner.clone().prop_map(Formula::not),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::And(vec![a, b])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::Or(vec![a, b])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::implies(a, b)),
            (inner.clone(), any::<bool>(), any::<bool>()).prop_map(|(f, forall, on_x)| {
                let v = Sym::new(if on_x { "X" } else { "Y" });
                if forall {
                    Formula::forall(vec![v], f)
                } else {
                    Formula::exists(vec![v], f)
                }
            }),
        ]
    })
}

fn close_universally(f: Formula) -> Formula {
    let free = f.free_vars();
    if free.is_empty() {
        // Already closed.
        return f;
    }
    // Close with a range over a catch-all predicate so the result stays
    // domain independent: ∀X [¬dom(X) ∨ …].
    let mut parts: Vec<Formula> = free
        .iter()
        .map(|&v| {
            Formula::not(Formula::Atom(Atom::new(
                "dom",
                vec![uniform::logic::Term::Var(v)],
            )))
        })
        .collect();
    parts.push(f);
    Formula::forall(free, Formula::Or(parts))
}

fn build_db(facts: &[Fact], rules: &[&str], constraints: &[&str]) -> Option<Database> {
    let mut src = String::new();
    for r in rules {
        src.push_str(r);
        src.push('\n');
    }
    for (i, c) in constraints.iter().enumerate() {
        src.push_str(&format!("constraint k{i}: {c}.\n"));
    }
    let mut db = Database::parse(&src).ok()?;
    for f in facts {
        db.insert_fact(f);
    }
    Some(db)
}

// ---------- properties ------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Normalization preserves truth w.r.t. the naive semantics, on every
    /// interpretation whose domain covers the active constants.
    #[test]
    fn normalization_preserves_semantics(f in arb_formula(), facts in arb_facts()) {
        let closed = close_universally(f);
        let Ok(rq) = normalize(&closed) else {
            // Not domain independent — correctly rejected.
            return Ok(());
        };
        // Interpretation: random facts plus dom() covering all constants.
        let mut all = facts.clone();
        for c in ["a", "b", "c"] {
            all.push(Fact::parse_like("dom", &[c]));
        }
        let interp = FiniteInterp::from_facts(all.clone());
        let naive = eval_closed(&closed, &interp);
        let fs = FactSet::from_facts(all);
        let range_driven = satisfies_closed(&fs, &rq);
        prop_assert_eq!(
            naive, range_driven,
            "normalize changed the meaning of {} (rq: {})", closed, rq
        );
    }

    /// The descendant-driven delta equals the brute-force model diff, for
    /// every pattern over the schema.
    #[test]
    fn delta_matches_model_diff(facts in arb_facts(), rules in arb_rules(), update in arb_update()) {
        let Some(db) = build_db(&facts, &rules, &[]) else { return Ok(()) };
        let before = db.model();
        let mut after_edb = db.facts().clone();
        update.apply(&mut after_edb);
        let after = Model::compute(&after_edb, db.rules());

        let mut expected: Vec<String> = induced_updates_by_diff(&before, &after)
            .iter().map(|l| l.to_string()).collect();
        expected.sort();

        let adds: Vec<Fact> = update.added().cloned().into_iter().collect();
        let dels: Vec<Fact> = update.removed().cloned().into_iter().collect();
        let engine = OverlayEngine::updated(db.facts(), db.rules(), adds, dels);
        let updates = [update.clone()];
        let delta = DeltaEngine::new(&before, &engine, db.rules(), &updates);

        let mut got: HashSet<String> = HashSet::new();
        for (pred, arity) in [
            ("p", 1), ("q", 1), ("s", 1), ("l", 2), ("r", 2),
            ("m", 2), ("t", 1), ("u", 1), ("tc", 2), ("w", 1),
        ] {
            let args: Vec<&str> = ["V1", "V2"][..arity].to_vec();
            for positive in [true, false] {
                let pattern = Literal::new(positive, Atom::parse_like(pred, &args));
                for answer in delta.delta(&pattern) {
                    got.insert(answer.to_string());
                }
            }
        }
        let mut got: Vec<String> = got.into_iter().collect();
        got.sort();
        prop_assert_eq!(got, expected, "update {:?} on {:?} with rules {:?}", update, facts, rules);
    }

    /// All four checking methods agree with each other (and hence with
    /// the ground truth) whenever the starting database is consistent.
    #[test]
    fn checker_agrees_with_baselines(
        facts in arb_facts(),
        rules in arb_rules(),
        constraints in arb_constraints(),
        update in arb_update(),
    ) {
        let Some(db) = build_db(&facts, &rules, &constraints) else { return Ok(()) };
        if !db.is_consistent() {
            // The method's precondition (Prop. 1-3: "satisfied in D").
            return Ok(());
        }
        let tx = Transaction::single(update);
        if let Err(e) = verdicts_agree(&db, &tx) {
            prop_assert!(false, "{} (facts {:?}, rules {:?}, constraints {:?})", e, facts, rules, constraints);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Satisfiability soundness: models verify; refutations survive
    /// exhaustive search over 1- and 2-element interpretations.
    #[test]
    fn satisfiability_verdicts_sound(constraints in arb_constraints(), extra in prop_oneof![
        Just("exists X: p(X)"),
        Just("exists X, Y: l(X,Y)"),
        Just("forall X: s(X) -> false"),
        Just("exists X: u(X)"),
    ]) {
        let mut all: Vec<&str> = constraints.clone();
        all.push(extra);
        let mut src = String::new();
        src.push_str("u(X) :- p(X), not q(X).\n");
        for (i, c) in all.iter().enumerate() {
            src.push_str(&format!("constraint k{i}: {c}.\n"));
        }
        let Ok(db) = Database::parse(&src) else { return Ok(()) };
        let checker = SatChecker::from_database(&db)
            .with_options(SatOptions { max_fresh_constants: 3, ..SatOptions::default() });
        let report = checker.check();
        match report.outcome {
            SatOutcome::Satisfiable { explicit, .. } => {
                let edb = FactSet::from_facts(explicit);
                let model = Model::compute(&edb, db.rules());
                for c in db.constraints() {
                    prop_assert!(
                        satisfies_closed(&model, &c.rq),
                        "witness violates {} for {:?}", c.name, all
                    );
                }
            }
            SatOutcome::Unsatisfiable => {
                // Exhaustive check: no model over 1 or 2 constants.
                prop_assert!(
                    !small_model_exists(&db, 2),
                    "refuted set has a small model: {:?}", all
                );
            }
            SatOutcome::Unknown { .. } => {
                // Inconclusive is always sound.
            }
        }
    }
}

/// Brute-force: does any interpretation over `n` constants satisfy the
/// database's constraints (under its rules' canonical semantics, with
/// every subset of base facts tried as the EDB)?
fn small_model_exists(db: &Database, n: usize) -> bool {
    let consts: Vec<&str> = ["e1", "e2"][..n].to_vec();
    // All possible base facts over EDB predicates.
    let mut universe: Vec<Fact> = Vec::new();
    for p in ["p", "q", "s"] {
        for c in &consts {
            universe.push(Fact::parse_like(p, &[c]));
        }
    }
    for p in ["l", "r"] {
        for c1 in &consts {
            for c2 in &consts {
                universe.push(Fact::parse_like(p, &[c1, c2]));
            }
        }
    }
    let m = universe.len();
    assert!(m <= 20, "universe too large for brute force");
    for mask in 0u32..(1 << m) {
        let facts = universe
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, f)| f.clone());
        let edb = FactSet::from_facts(facts);
        let model = Model::compute(&edb, db.rules());
        if db
            .constraints()
            .iter()
            .all(|c| satisfies_closed(&model, &c.rq))
        {
            return true;
        }
    }
    false
}

// ---------- deterministic regression companions -----------------------------

#[test]
fn normalization_oracle_smoke() {
    // One fixed instance of the property, as a fast regression.
    let f = parse_formula("forall X: p(X) -> (exists Y: l(X,Y) & ~r(Y,Y))").unwrap();
    let rq = normalize(&f).unwrap();
    let facts = vec![parse_fact("p(a).").unwrap(), parse_fact("l(a,b).").unwrap()];
    let interp = FiniteInterp::from_facts(facts.clone());
    let fs = FactSet::from_facts(facts);
    assert_eq!(eval_closed(&f, &interp), satisfies_closed(&fs, &rq));
}

#[test]
fn delta_oracle_smoke() {
    let db = build_db(
        &[parse_fact("l(a,b).").unwrap()],
        &["m(X,Y) :- l(X,Y)."],
        &[],
    )
    .unwrap();
    let before = db.model();
    let update = Update::delete(parse_fact("l(a,b).").unwrap());
    let mut after_edb = db.facts().clone();
    update.apply(&mut after_edb);
    let after = Model::compute(&after_edb, db.rules());
    assert_eq!(induced_updates_by_diff(&before, &after).len(), 2);
}

#[test]
fn small_model_search_is_exhaustive() {
    // Sanity for the brute-force oracle itself.
    let db =
        Database::parse("constraint a: exists X: p(X).\nconstraint b: forall X: p(X) -> q(X).\n")
            .unwrap();
    assert!(small_model_exists(&db, 1));
    let db2 =
        Database::parse("constraint a: exists X: p(X).\nconstraint b: forall X: p(X) -> false.\n")
            .unwrap();
    assert!(!small_model_exists(&db2, 2));
}

#[test]
fn rules_parse_pool_is_valid() {
    for r in [
        "m(X,Y) :- l(X,Y).",
        "t(X) :- p(X), q(X).",
        "u(X) :- p(X), not q(X).",
        "tc(X,Y) :- r(X,Y).",
        "tc(X,Z) :- tc(X,Y), r(Y,Z).",
        "w(X) :- m(X,Y), s(Y).",
    ] {
        parse_rule(r).unwrap();
    }
    RuleSet::new(vec![
        parse_rule("tc(X,Y) :- r(X,Y).").unwrap(),
        parse_rule("tc(X,Z) :- tc(X,Y), r(Y,Z).").unwrap(),
    ])
    .unwrap();
}
