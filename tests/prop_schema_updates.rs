//! Property-based oracles for the §3.2 generalizations: conditional
//! updates and rule updates, checked against brute-force re-checking on
//! random databases; plus determinism regressions (identical inputs give
//! identical reports, with deliberate interner pollution in between).

use proptest::prelude::*;
use uniform::datalog::Database;
use uniform::integrity::{check_rule_update, Checker, ConditionalUpdate, RuleUpdate};
use uniform::logic::{parse_rule, Fact, Sym};
use uniform::satisfiability::{problems, SatOutcome};

// ---------- generators (same small schema as prop_oracles) ----------------

fn arb_facts() -> impl Strategy<Value = Vec<Fact>> {
    let consts = ["a", "b", "c"];
    let unary = ["p", "q", "s"];
    let binary = ["l", "r"];
    let one = (0..unary.len(), 0..consts.len())
        .prop_map(move |(p, c)| Fact::parse_like(unary[p], &[consts[c]]));
    let two = (0..binary.len(), 0..consts.len(), 0..consts.len())
        .prop_map(move |(p, c1, c2)| Fact::parse_like(binary[p], &[consts[c1], consts[c2]]));
    prop::collection::vec(prop_oneof![one, two], 0..12)
}

fn arb_rules() -> impl Strategy<Value = Vec<&'static str>> {
    let pool: Vec<&'static str> = vec![
        "m(X,Y) :- l(X,Y).",
        "t(X) :- p(X), q(X).",
        "u(X) :- p(X), not q(X).",
        "tc(X,Y) :- r(X,Y).",
        "w(X) :- m(X,Y), s(Y).",
    ];
    proptest::sample::subsequence(pool, 0..=4)
}

fn arb_constraints() -> impl Strategy<Value = Vec<&'static str>> {
    let pool: Vec<&'static str> = vec![
        "forall X: t(X) -> s(X)",
        "forall X, Y: m(X,Y) -> p(X)",
        "forall X: u(X) -> s(X)",
        "forall X: p(X) -> q(X) | s(X)",
        "forall X: tc(X,X) -> false",
        "forall X: w(X) -> (exists Y: l(X,Y))",
        "exists X: p(X)",
    ];
    proptest::sample::subsequence(pool, 0..=4)
}

/// Candidate rule updates: additions and removals over the same pool
/// (plus rules touching constrained predicates and a recursive one).
fn arb_rule_update() -> impl Strategy<Value = (bool, &'static str)> {
    let candidates: Vec<&'static str> = vec![
        "m(X,Y) :- l(X,Y).",
        "m(X,X) :- p(X).",
        "t(X) :- p(X), q(X).",
        "t(X) :- s(X).",
        "u(X) :- p(X), not q(X).",
        "tc(X,Y) :- r(X,Y).",
        "tc(X,Z) :- tc(X,Y), r(Y,Z).",
        "w(X) :- m(X,Y), s(Y).",
        "w(X) :- p(X).",
    ];
    (any::<bool>(), proptest::sample::select(candidates))
}

/// Conditional updates over the schema (all safe by construction).
fn arb_conditional() -> impl Strategy<Value = &'static str> {
    proptest::sample::select(vec![
        "t(X) where p(X)",
        "s(X) where p(X), not q(X)",
        "not s(X) where s(X)",
        "not q(X) where q(X), s(X)",
        "l(X, X) where p(X)",
        "p(X) where l(X, Y)",
        "not l(X, Y) where l(X, Y), not s(X)",
        "q(a)",
        "not p(a)",
    ])
}

fn build_db(facts: &[Fact], rules: &[&str], constraints: &[&str]) -> Option<Database> {
    let mut src = String::new();
    for r in rules {
        src.push_str(r);
        src.push('\n');
    }
    for (i, c) in constraints.iter().enumerate() {
        src.push_str(&format!("constraint k{i}: {c}.\n"));
    }
    let mut db = Database::parse(&src).ok()?;
    for f in facts {
        db.insert_fact(f);
    }
    Some(db)
}

// ---------- properties ------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The incremental rule-update verdict equals the full re-check on
    /// the candidate state.
    #[test]
    fn rule_update_agrees_with_full_recheck(
        facts in arb_facts(),
        rules in arb_rules(),
        constraints in arb_constraints(),
        (add, rule_src) in arb_rule_update(),
    ) {
        let Some(db) = build_db(&facts, &rules, &constraints) else { return Ok(()) };
        if !db.is_consistent() {
            return Ok(()); // precondition of the method
        }
        let rule = parse_rule(rule_src).unwrap();
        let update = if add { RuleUpdate::Add(rule) } else { RuleUpdate::Remove(rule) };
        let Ok(report) = check_rule_update(&db, &update) else {
            // Unstratifiable addition: the oracle cannot build the
            // candidate either.
            prop_assert!(update.rules_after(db.rules()).is_err());
            return Ok(());
        };
        let oracle = match update.rules_after(db.rules()).unwrap() {
            None => true,
            Some(rs) => {
                let mut candidate = db.clone();
                candidate.set_rules(rs);
                candidate.is_consistent()
            }
        };
        prop_assert_eq!(
            report.satisfied, oracle,
            "{} on facts {:?}, rules {:?}, constraints {:?}",
            update, facts, rules, constraints
        );
    }

    /// The conditional-update verdict equals applying the expansion to a
    /// copy and re-checking everything.
    #[test]
    fn conditional_update_agrees_with_oracle(
        facts in arb_facts(),
        rules in arb_rules(),
        constraints in arb_constraints(),
        cu_src in arb_conditional(),
    ) {
        let Some(db) = build_db(&facts, &rules, &constraints) else { return Ok(()) };
        if !db.is_consistent() {
            return Ok(());
        }
        let cu = ConditionalUpdate::parse(cu_src).unwrap();
        let checker = Checker::new(&db);
        let fast = checker.check_conditional(&cu).satisfied;
        let tx = checker.expand_conditional(&cu);
        let mut copy = db.clone();
        for u in &tx.updates {
            copy.apply(u).unwrap();
        }
        prop_assert_eq!(
            fast, copy.is_consistent(),
            "`{}` expanded to {:?} on facts {:?}, rules {:?}, constraints {:?}",
            cu, tx.updates, facts, rules, constraints
        );
    }

    /// Integrity reports are deterministic: the same check yields the
    /// same violations in the same order, run after run.
    #[test]
    fn integrity_reports_are_deterministic(
        facts in arb_facts(),
        rules in arb_rules(),
        constraints in arb_constraints(),
        cu_src in arb_conditional(),
    ) {
        let Some(db) = build_db(&facts, &rules, &constraints) else { return Ok(()) };
        if !db.is_consistent() {
            return Ok(());
        }
        let cu = ConditionalUpdate::parse(cu_src).unwrap();
        let checker = Checker::new(&db);
        let first = checker.check_conditional(&cu);
        // Pollute the interner between runs: determinism must not depend
        // on interning history.
        for i in 0..32 {
            let _ = Sym::new(&format!("noise_{i}_{}", facts.len()));
        }
        let second = checker.check_conditional(&cu);
        prop_assert_eq!(first.satisfied, second.satisfied);
        let v1: Vec<String> = first.violations.iter().map(|v| format!("{}@{:?}", v.constraint, v.culprit)).collect();
        let v2: Vec<String> = second.violations.iter().map(|v| format!("{}@{:?}", v.constraint, v.culprit)).collect();
        prop_assert_eq!(v1, v2, "violation order changed between identical runs");
    }
}

/// Satisfiability determinism on the fixed suite: two checks of the same
/// problem give identical outcomes and search statistics, with interner
/// pollution in between. (Not a proptest: the suite is the corpus.)
#[test]
fn satisfiability_reports_are_deterministic() {
    for p in problems::suite() {
        if p.name == "steamroller" || p.name.starts_with("latin-square-3") {
            continue; // slow; determinism is covered by the rest
        }
        let first = p.checker().check();
        for i in 0..64 {
            let _ = Sym::new(&format!("pollution_{i}"));
        }
        let second = p.checker().check();
        assert_eq!(
            outcome_key(&first.outcome),
            outcome_key(&second.outcome),
            "{}: outcome changed between identical runs",
            p.name
        );
        assert_eq!(
            first.stats.enforcement_steps, second.stats.enforcement_steps,
            "{}: search took a different path between identical runs",
            p.name
        );
        assert_eq!(
            first.stats.assertions, second.stats.assertions,
            "{}",
            p.name
        );
        assert_eq!(
            first.stats.undo_events, second.stats.undo_events,
            "{}",
            p.name
        );
    }
}

fn outcome_key(outcome: &SatOutcome) -> String {
    match outcome {
        SatOutcome::Satisfiable { model, .. } => {
            let mut facts: Vec<String> = model.iter().map(|f| f.to_string()).collect();
            facts.sort();
            format!("sat:{}", facts.join(","))
        }
        SatOutcome::Unsatisfiable => "unsat".into(),
        SatOutcome::Unknown { .. } => "unknown".into(),
    }
}
