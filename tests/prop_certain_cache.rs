//! The shared certain-answer cache's differential proof: across
//! randomized schedules of guarded commits, raw fact edits,
//! constraint-only schema swaps and `Certain` reads, every answer
//! served through the shared cache — cold, warm, or carried forward
//! across commits that missed its closure — must be **bit-identical**
//! to a fresh `RepairEngine` enumeration of the same committed state.
//!
//! The reference shares nothing with the cache: it re-enumerates the
//! minimal repairs from the live database on every comparison. The
//! cached path goes through `ConcurrentDatabase::session()` (the
//! shared `certain_cache`), with each query executed twice per state so
//! both the install path and the row-hit path are compared. Schedules
//! deliberately interleave:
//!
//! * commits *inside* the constraint closure (`p`/`q`) — these must
//!   invalidate or re-key-and-drop, never serve the dead state;
//! * commits *outside* every closure (`noise`) — these carry entries
//!   forward, and the carried entries are then re-compared;
//! * constraint-only `update_schema` swaps (facts and rules untouched —
//!   the PR 6 session fence would not catch a stale report keyed on
//!   `(rule_rev, constraint_rev)` alone if `fact_rev` were missing);
//! * raw fact edits through `update_schema` (wholesale invalidation),
//!   which also drive the state inconsistent so the repairs are real.

use rand::{rngs::StdRng, Rng, SeedableRng};
use uniform::logic::{normalize, parse_formula, parse_query, Sym};
use uniform::repair::{RepairEngine, RepairOptions};
use uniform::{
    ConcurrentDatabase, Consistency, Database, Params, QueryError, UniformOptions, Update,
};

/// ≥256 randomized schedules; `PROPTEST_CASES` scales the effort like
/// every other property suite in the repo (CI's release pass runs
/// 1024).
fn cases() -> u64 {
    u64::from(proptest::ProptestConfig::with_cases(256).effective_cases())
}

fn repair_options() -> RepairOptions {
    RepairOptions {
        max_changes: 3,
        max_branches: 500_000,
        max_repairs: 4096,
        domain_cap: 512,
        verify: false,
        ..RepairOptions::default()
    }
}

const QUERIES: &[&str] = &["p(X)", "q(X)", "s(X)", "noise(X)"];
const FORMULA: &str = "forall X: p(X) -> q(X)";

/// Fresh reference enumeration on the live database — shares nothing
/// with the cache under test.
fn fresh_certain(db: &Database, src: &str) -> Result<Vec<Vec<(Sym, Sym)>>, ()> {
    RepairEngine::new(
        db.facts().clone(),
        db.rules().clone(),
        db.constraints().to_vec(),
    )
    .with_options(repair_options())
    .consistent_answers(&parse_query(src).expect("query parses"))
    .map_err(|_| ())
}

fn fresh_certainly_satisfies(db: &Database, src: &str) -> Result<bool, ()> {
    let rq = normalize(&parse_formula(src).expect("formula parses")).expect("formula normalizes");
    RepairEngine::new(
        db.facts().clone(),
        db.rules().clone(),
        db.constraints().to_vec(),
    )
    .with_options(repair_options())
    .certainly_satisfies(&rq)
    .map_err(|_| ())
}

/// Compare every query, twice each (install path, then row-hit path),
/// against the fresh enumeration of the same state.
fn check_state(cdb: &ConcurrentDatabase, ctx: &str) {
    // The cache install paths serve the constraint closure from the
    // shared `AnalyzedProgram` (keyed on schema revisions) instead of
    // re-walking the dependency graph per state; the served closure
    // must equal the per-state recompute, including right after the
    // schedule's constraint-only schema swaps.
    let static_closure = cdb.analyze().closure_union().to_vec();
    let fresh_closure: Vec<Sym> = cdb.with_database(|d| {
        let graph = d.rules().graph();
        let mut set: std::collections::BTreeSet<Sym> = std::collections::BTreeSet::new();
        for c in d.constraints() {
            for occ in c.rq.literals() {
                set.extend(graph.reachable(occ.literal.atom.pred));
            }
        }
        set.into_iter().collect()
    });
    assert_eq!(
        static_closure, fresh_closure,
        "analyzed closure must equal the per-state recompute on {ctx}"
    );

    let session = cdb.session();
    for src in QUERIES {
        let q = cdb.prepare(src).expect("query prepares");
        let fresh = cdb.with_database(|d| fresh_certain(d, src));
        for pass in ["install", "row-hit"] {
            // A fresh session per pass: the second one cannot fall back
            // on a session-local memo — it must hit the shared cache.
            let s = cdb.session();
            match (s.execute(&q, &Params::new(), Consistency::Certain), &fresh) {
                (Ok(rows), Ok(want)) => assert_eq!(
                    &rows.bindings(),
                    want,
                    "Certain mismatch for `{src}` ({pass}) on {ctx}"
                ),
                (Err(QueryError::Budget(_)), Err(())) => {}
                (got, want) => {
                    panic!("Certain divergence for `{src}` ({pass}) on {ctx}: {got:?} vs {want:?}")
                }
            }
        }
        // And through one long-lived session (the session-local memo).
        match (
            session.execute(&q, &Params::new(), Consistency::Certain),
            &fresh,
        ) {
            (Ok(rows), Ok(want)) => assert_eq!(
                &rows.bindings(),
                want,
                "Certain mismatch for `{src}` (session memo) on {ctx}"
            ),
            (Err(QueryError::Budget(_)), Err(())) => {}
            (got, want) => {
                panic!("Certain divergence for `{src}` (memo) on {ctx}: {got:?} vs {want:?}")
            }
        }
    }
    let f = cdb.prepare_formula(FORMULA).expect("formula prepares");
    let fresh = cdb.with_database(|d| fresh_certainly_satisfies(d, FORMULA));
    match (
        session.execute(&f, &Params::new(), Consistency::Certain),
        fresh,
    ) {
        (Ok(rows), Ok(want)) => {
            assert_eq!(rows.is_true(), want, "Certain formula mismatch on {ctx}")
        }
        (Err(QueryError::Budget(_)), Err(())) => {}
        (got, want) => panic!("Certain formula divergence on {ctx}: {got:?} vs {want:?}"),
    }
}

fn ins(p: &str, k: &str) -> Update {
    Update::insert(uniform::Fact::parse_like(p, &[k]))
}

fn del(p: &str, k: &str) -> Update {
    Update::delete(uniform::Fact::parse_like(p, &[k]))
}

/// One randomized schedule: build a violation-bearing state, then
/// interleave commits, schema swaps and cached reads, comparing after
/// every step. Returns this schedule's closing cache stats.
fn run_schedule(seed: u64) -> uniform::CertainCacheStats {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xcc_cafe);
    let cdb = ConcurrentDatabase::from_database(
        Database::parse(
            "s(X) :- p(X).\n\
             constraint c: forall X: p(X) -> q(X).\n\
             q(k0). q(k1). p(k1).",
        )
        .expect("base parses"),
        UniformOptions {
            repair: repair_options(),
            ..UniformOptions::default()
        },
    );
    // Seed 0–2 raw violations so repairs are non-trivial from the start.
    cdb.update_schema(|d| {
        for i in 0..rng.gen_range(0..3usize) {
            d.insert_fact(&uniform::Fact::parse_like("p", &[&format!("v{i}")]));
        }
    });
    check_state(&cdb, &format!("seed {seed} initial"));
    let keys = ["k0", "k1", "k2", "k3", "v0", "v1"];
    let extra = uniform::Constraint::new(
        "noq2",
        normalize(&parse_formula("forall X: q2(X) -> false").expect("parses")).expect("normalizes"),
    );
    for step in 0..rng.gen_range(4..9usize) {
        let k = keys[rng.gen_range(0..keys.len())];
        let ctx = format!("seed {seed} step {step}");
        match rng.gen_range(0..8u8) {
            // Guarded commits inside the constraint closure: insertions
            // of q are always admissible; deletions of p likewise.
            0 => drop(cdb.commit_updates_with_retry(&[ins("q", k)], 4)),
            1 => drop(cdb.commit_updates_with_retry(&[del("p", k)], 4)),
            2 => drop(cdb.commit_updates_with_retry(&[ins("p", k), ins("q", k)], 4)),
            // Deleting q may be rejected while some p needs it — either
            // outcome is fine, the state just must stay comparable.
            3 => drop(cdb.commit_updates_with_retry(&[del("q", k)], 4)),
            // Commits outside every closure: carried-forward entries.
            4 => drop(cdb.commit_updates_with_retry(&[ins("noise", k)], 4)),
            5 => drop(cdb.commit_updates_with_retry(&[del("noise", k)], 4)),
            // Constraint-only schema swap: toggle an extra constraint
            // over a relation that is never populated — the *answers*
            // of QUERIES are unchanged, but serving them from a stale
            // RepairReport keyed without `fact_rev`/`constraint_rev`
            // would be unsound; the comparison keeps both honest.
            6 => cdb.update_schema(|d| {
                let mut cs = d.constraints().to_vec();
                match cs.iter().position(|c| c.name == "noq2") {
                    Some(i) => drop(cs.remove(i)),
                    None => cs.push(extra.clone()),
                }
                d.set_constraints(cs);
            }),
            // Raw fact edits: drive violations in (or out) bypassing
            // the guard, as an external loader would.
            _ => cdb.update_schema(|d| {
                let fact = uniform::Fact::parse_like("p", &[k]);
                let update = if rng.gen_bool(0.5) {
                    Update::insert(fact)
                } else {
                    Update::delete(fact)
                };
                d.apply(&update).expect("arity is fixed in this universe");
            }),
        }
        check_state(&cdb, &ctx);
    }
    cdb.certain_cache_stats()
}

#[test]
fn cached_certain_answers_equal_fresh_enumeration_across_schedules() {
    let mut totals = uniform::CertainCacheStats::default();
    for seed in 0..cases() {
        let stats = run_schedule(seed);
        totals.hits += stats.hits;
        totals.misses += stats.misses;
        totals.repair_hits += stats.repair_hits;
        totals.repair_misses += stats.repair_misses;
        totals.carried_forward += stats.carried_forward;
        totals.invalidated += stats.invalidated;
    }
    // The differential pass is only meaningful if the cache actually
    // served answers: every interesting path must have fired across
    // the run — row hits, repair reuse, carry-forward and
    // invalidation alike.
    assert!(totals.hits > 0, "no cached row was ever served: {totals:?}");
    assert!(totals.repair_hits > 0, "repair cache never hit: {totals:?}");
    assert!(
        totals.carried_forward > 0,
        "no commit ever carried the cache forward: {totals:?}"
    );
    assert!(
        totals.invalidated > 0,
        "nothing ever invalidated: {totals:?}"
    );
}
