//! Properties of the static analyzer (`uniform::analyze`) against the
//! runtime layers it precomputes for, over randomized workload schemas.
//!
//! * **Closures** — the per-constraint predicate closures and their
//!   union in [`AnalyzedProgram`] are bit-identical to what
//!   `RepairEngine::report_closure` derives per state: the static
//!   closure plus the predicates of the report's own repair operations
//!   (on a consistent state the sole repair is empty, so the two
//!   coincide exactly).
//! * **Read patterns** — the precompiled pattern templates specialize
//!   to exactly the binding-level read set `CheckReport::read_patterns`
//!   emits, proven against a naive oracle reimplemented here straight
//!   from the `Rule` structures (no shared code with
//!   `uniform_datalog::patterns`).
//! * **Refusal** — a candidate constraint the analyzer proves
//!   unsatisfiable is refused by `try_add_constraint` on *every* EDB —
//!   the verdict is a property of the schema, not the facts — with a
//!   typed `UniformError::Analyze` carrying UA0301, distinct from the
//!   repairable `CurrentlyViolated` path.
//!
//! Scaled by `PROPTEST_CASES` (13 schemas per seed, ≥256 schemas at
//! the default).

use std::collections::{BTreeSet, HashMap, HashSet};
use uniform::logic::{normalize, parse_formula, Rule, Sym, Term};
use uniform::workload;
use uniform::{
    AnalyzeCode, Analyzer, Checker, ConcurrentDatabase, Constraint, Database, ReadPattern,
    RepairEngine, SatClass, Transaction, UniformDatabase, UniformError, UniformOptions, Update,
};

fn cases() -> u64 {
    u64::from(proptest::ProptestConfig::with_cases(256).effective_cases())
}

/// Seeds to run: 13 schemas each, covering at least `cases()` schemas.
fn seeds() -> u64 {
    cases().div_ceil(13).max(4)
}

/// Every workload schema shape at one seed — consistent and violating
/// states, recursive and non-recursive rule sets, dense and sparse
/// constraint coverage.
fn schemas(seed: u64) -> Vec<(&'static str, Database)> {
    vec![
        ("university", workload::university(4, seed)),
        (
            "deductive_university",
            workload::deductive_university(4, seed),
        ),
        (
            "irrelevant_induction",
            workload::irrelevant_induction(4, seed).0,
        ),
        (
            "unchanged_rule_instances",
            workload::unchanged_rule_instances(3, seed).0,
        ),
        (
            "shared_subquery",
            workload::shared_subquery_university(3, 2, seed),
        ),
        ("tc_chain", workload::tc_chain(5, seed)),
        ("org", workload::org(2, 2, seed)),
        ("rule_update", workload::rule_update_workload(4, 2, 2, seed)),
        ("optimizer", workload::optimizer_workload(6, seed)),
        ("commit_mix", workload::commit_mix_db(2, seed)),
        ("violation_mix", workload::violation_mix_db(seed)),
        ("violation_state", workload::violation_state(3, seed)),
        ("violation_dense", workload::violation_dense_db(4, seed)),
    ]
}

// ---------------------------------------------------------------------------
// Property 1: static closures ≡ RepairEngine::report_closure.
// ---------------------------------------------------------------------------

/// `report_closure` = constraint closure ∪ repair-op predicates. The
/// static side of that union must be exactly `closure_union` (or
/// `closure_of(i)` for a single-constraint engine), in the same `Sym`
/// order.
fn assert_report_closure(label: &str, engine: &RepairEngine, static_closure: &[Sym]) {
    let Ok(report) = engine.repairs() else {
        // Repair budget exhausted — nothing to compare on this state.
        return;
    };
    let mut expect: BTreeSet<Sym> = static_closure.iter().copied().collect();
    for set in &report.repairs {
        for op in set.ops() {
            expect.insert(op.fact.pred);
        }
    }
    assert_eq!(
        expect.into_iter().collect::<Vec<Sym>>(),
        engine.report_closure(&report),
        "{label}: static closure ∪ repair ops must equal report_closure"
    );
}

#[test]
fn static_closures_match_repair_engine() {
    for seed in 0..seeds() {
        for (name, db) in schemas(seed) {
            let label = format!("{name}/{seed}");
            let analyzed = Analyzer::of_database(&db).analyze();

            // Whole constraint set.
            let engine = RepairEngine::new(
                db.facts().clone(),
                db.rules().clone(),
                db.constraints().to_vec(),
            );
            assert_report_closure(&label, &engine, analyzed.closure_union());

            // Each constraint on its own, plus the indexing invariants.
            let names: HashSet<&str> = db.constraints().iter().map(|c| c.name.as_str()).collect();
            let mut union: BTreeSet<Sym> = BTreeSet::new();
            for (i, c) in db.constraints().iter().enumerate() {
                let one = analyzed.closure_of(i);
                assert!(
                    one.windows(2).all(|w| w[0] < w[1]),
                    "{label}: closure_of({i}) must be sorted and deduped"
                );
                union.extend(one.iter().copied());
                if names.len() == db.constraints().len() {
                    assert_eq!(
                        analyzed.constraint_closure(&c.name),
                        Some(one),
                        "{label}: name lookup must agree with positional"
                    );
                }
                let single =
                    RepairEngine::new(db.facts().clone(), db.rules().clone(), vec![c.clone()]);
                assert_report_closure(&format!("{label}:{}", c.name), &single, one);
            }
            assert_eq!(
                union.into_iter().collect::<Vec<Sym>>(),
                analyzed.closure_union(),
                "{label}: closure_union must be the union of the parts"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Property 2: read-pattern templates ≡ a naive closure over the rules.
// ---------------------------------------------------------------------------

type Pattern = (Sym, Vec<Option<Sym>>);

/// The uncompiled pattern closure, written directly against the `Rule`
/// structures with none of `uniform_datalog::patterns`' machinery: same
/// widening (all-unbound seeds and per-predicate overflow at the
/// documented cap), same head unification, same final order.
struct NaiveCloser<'a> {
    rules: &'a [Rule],
    seen: BTreeSet<Pattern>,
    counts: HashMap<Sym, usize>,
    widened: BTreeSet<Sym>,
    frontier: Vec<Pattern>,
}

impl<'a> NaiveCloser<'a> {
    fn new(rules: &'a [Rule]) -> NaiveCloser<'a> {
        NaiveCloser {
            rules,
            seen: BTreeSet::new(),
            counts: HashMap::new(),
            widened: BTreeSet::new(),
            frontier: Vec::new(),
        }
    }

    fn add(&mut self, pred: Sym, args: Vec<Option<Sym>>) {
        if self.widened.contains(&pred) {
            return;
        }
        if args.iter().all(|a| a.is_none()) {
            self.widen(pred, args.len());
            return;
        }
        if !self.seen.insert((pred, args.clone())) {
            return;
        }
        let count = self.counts.entry(pred).or_insert(0);
        *count += 1;
        if *count > uniform::datalog::MAX_PATTERNS_PER_PRED {
            self.widen(pred, args.len());
            return;
        }
        self.frontier.push((pred, args));
    }

    fn widen(&mut self, pred: Sym, arity: usize) {
        self.widened.insert(pred);
        self.seen.retain(|(p, _)| *p != pred);
        let whole = vec![None; arity];
        self.seen.insert((pred, whole.clone()));
        self.frontier.push((pred, whole));
    }

    /// Unify `args` with the head of `rule`: `None` when a head
    /// constant or a repeated head variable contradicts the pattern,
    /// else the child pattern of every body literal.
    fn through_rule(rule: &Rule, args: &[Option<Sym>]) -> Option<Vec<Pattern>> {
        let mut bindings: HashMap<Sym, Sym> = HashMap::new();
        for (i, term) in rule.head.args.iter().enumerate() {
            let Some(bound) = args.get(i).copied().flatten() else {
                continue;
            };
            match term {
                Term::Const(c) => {
                    if *c != bound {
                        return None;
                    }
                }
                Term::Var(v) => match bindings.get(v) {
                    Some(&prev) if prev != bound => return None,
                    _ => {
                        bindings.insert(*v, bound);
                    }
                },
            }
        }
        Some(
            rule.body
                .iter()
                .map(|lit| {
                    let child = lit
                        .atom
                        .args
                        .iter()
                        .map(|t| match t {
                            Term::Const(c) => Some(*c),
                            Term::Var(v) => bindings.get(v).copied(),
                        })
                        .collect();
                    (lit.atom.pred, child)
                })
                .collect(),
        )
    }

    fn close(mut self) -> Vec<Pattern> {
        while let Some((pred, args)) = self.frontier.pop() {
            let children: Vec<Pattern> = self
                .rules
                .iter()
                .filter(|r| r.head.pred == pred)
                .filter_map(|r| Self::through_rule(r, &args))
                .flatten()
                .collect();
            for (child_pred, child_args) in children {
                self.add(child_pred, child_args);
            }
        }
        let mut patterns: Vec<Pattern> = self.seen.into_iter().collect();
        patterns.sort_by(|a, b| {
            let key = |p: &Pattern| {
                (
                    p.0.as_str(),
                    p.1.iter()
                        .map(|a| a.map(|c| c.as_str()))
                        .collect::<Vec<_>>(),
                )
            };
            key(a).cmp(&key(b))
        });
        patterns
    }
}

/// A seeded transaction over a schema's declared relations: a few
/// inserts and deletes of random (not necessarily existing) tuples.
fn sample_tx(db: &Database, seed: u64) -> Transaction {
    let mut preds: Vec<(String, usize)> = db
        .facts()
        .predicates()
        .filter_map(|p| {
            db.facts()
                .relation(p)
                .map(|r| (p.as_str().to_string(), r.arity()))
        })
        .collect();
    preds.sort();
    let pred_refs: Vec<(&str, usize)> = preds.iter().map(|(n, a)| (n.as_str(), *a)).collect();
    let consts = ["a", "b", "c", "s1", "d1", "m0", "x"];
    let updates: Vec<Update> = workload::random_facts(&pred_refs, &consts, 4, seed)
        .into_iter()
        .enumerate()
        .map(|(i, f)| {
            if i % 3 == 2 {
                Update::delete(f)
            } else {
                Update::insert(f)
            }
        })
        .collect();
    Transaction::new(updates)
}

#[test]
fn read_patterns_match_naive_oracle() {
    for seed in 0..seeds() {
        for (name, db) in schemas(seed) {
            if db.facts().predicates().next().is_none() {
                continue;
            }
            let checker = Checker::new(&db);
            for round in 0..2u64 {
                let tx = sample_tx(&db, seed.wrapping_mul(2).wrapping_add(round));
                let label = format!("{name}/{seed}/{round}");

                // The runtime side: the checker's reported read set.
                let got: Vec<Pattern> = checker
                    .check(&tx)
                    .read_patterns
                    .iter()
                    .map(|p: &ReadPattern| (p.pred, p.args.clone()))
                    .collect();

                // The oracle: re-derive the seeds exactly as documented
                // — the transaction's own tuples fully bound, plus
                // every trigger and instance literal of the compiled
                // update constraints — and close them through the raw
                // rules.
                let literals: Vec<_> = tx.updates.iter().map(|u| u.to_literal()).collect();
                let compiled = checker.compile(&literals);
                let mut naive = NaiveCloser::new(db.rules().rules());
                for u in &tx.updates {
                    naive.add(u.fact.pred, u.fact.args.iter().map(|&c| Some(c)).collect());
                }
                for uc in &compiled.update_constraints {
                    naive.add(
                        uc.trigger.atom.pred,
                        uc.trigger.atom.args.iter().map(|t| t.as_const()).collect(),
                    );
                    for occ in uc.instance.literals() {
                        naive.add(
                            occ.literal.atom.pred,
                            occ.literal.atom.args.iter().map(|t| t.as_const()).collect(),
                        );
                    }
                }
                assert_eq!(
                    got,
                    naive.close(),
                    "{label}: template specialization must equal the naive closure"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Property 3: proven unsatisfiability is EDB-independent and typed.
// ---------------------------------------------------------------------------

/// `(label, base program, candidate name, candidate formula)` — each
/// base is consistent on its own; adding the candidate makes the
/// constraint set unsatisfiable *as a set*, whatever the facts.
const UNSAT_BASES: &[(&str, &str, &str, &str)] = &[
    (
        "direct",
        "p(a).\nconstraint some_p: exists X: p(X).",
        "no_p",
        "forall X: p(X) -> false",
    ),
    (
        "derived",
        "q(X) :- p(X).\np(a).\nconstraint some_p: exists X: p(X).",
        "no_q",
        "forall X: q(X) -> false",
    ),
    (
        "chained",
        "leads(ann, sales).\ndepartment(sales).\n\
         constraint some_dept: exists X: department(X).\n\
         constraint led: forall X: department(X) -> (exists Y: leads(Y, X)).",
        "no_leads",
        "forall X, Y: leads(X, Y) -> false",
    ),
];

/// The base program with a seeded EDB bolted on: extra tuples over
/// unconstrained relations (and `p`, harmless in every base).
fn noisy_source(base: &str, seed: u64) -> String {
    let consts = ["a", "b", "c", "d", "e"];
    let mut src = base.to_string();
    for f in workload::random_facts(&[("noise", 1), ("other", 2), ("p", 1)], &consts, 5, seed) {
        src.push_str(&format!("{f}.\n"));
    }
    src
}

#[test]
fn unsatisfiable_candidates_are_refused_on_every_edb() {
    for seed in 0..seeds().min(16) {
        for (idx, (label, base, name, formula)) in UNSAT_BASES.iter().enumerate() {
            let src = noisy_source(base, seed.wrapping_mul(31).wrapping_add(idx as u64));
            let mut db = UniformDatabase::parse(&src).unwrap();

            // The analyzer proves the candidate set unsatisfiable from
            // rules and constraints alone — it never reads the facts.
            let mut candidate = db.constraints().to_vec();
            candidate.push(Constraint::new(
                name.to_string(),
                normalize(&parse_formula(formula).unwrap()).unwrap(),
            ));
            let analyzed = Analyzer::new(db.database().rules().clone(), candidate).analyze();
            assert_eq!(
                analyzed.set_class(),
                SatClass::Unsatisfiable,
                "{label}/{seed}: the candidate set must classify as unsatisfiable"
            );
            let refusal = analyzed.refusal().expect("unsatisfiable set must refuse");
            assert!(refusal
                .diagnostics
                .iter()
                .any(|d| d.code == AnalyzeCode::UnsatisfiableSet && d.is_error()));

            // And the facade refuses it with the typed UA0301 error on
            // this EDB — never the repairable CurrentlyViolated path.
            let before = db.constraints().len();
            match db.try_add_constraint(name, formula).unwrap_err() {
                UniformError::Analyze(e) => {
                    let d = e.primary().expect("refusal carries a diagnostic");
                    assert_eq!(d.code.as_str(), "UA0301", "{label}/{seed}");
                    assert!(d.is_error());
                }
                other => panic!("{label}/{seed}: expected a static Analyze refusal, got {other}"),
            }
            assert_eq!(
                db.constraints().len(),
                before,
                "{label}/{seed}: a refused constraint must not be registered"
            );

            // The concurrent gate takes the same typed path.
            let cdb = ConcurrentDatabase::from_database(
                Database::parse(&src).unwrap(),
                UniformOptions::default(),
            );
            match cdb.try_add_constraint(name, formula).unwrap_err() {
                UniformError::Analyze(e) => {
                    assert_eq!(e.primary().unwrap().code, AnalyzeCode::UnsatisfiableSet);
                }
                other => panic!("{label}/{seed} (concurrent): got {other}"),
            }
        }

        // Contrast: a satisfiable-but-currently-violated candidate is a
        // different refusal entirely — repairable, with the repair.
        let src = noisy_source(UNSAT_BASES[0].1, seed);
        let mut db = UniformDatabase::parse(&src).unwrap();
        match db
            .try_add_constraint("p_has_q2", "forall X: p(X) -> q2(X)")
            .unwrap_err()
        {
            UniformError::CurrentlyViolated { constraint, .. } => {
                assert_eq!(constraint, "p_has_q2");
            }
            other => panic!("violated/{seed}: expected CurrentlyViolated, got {other}"),
        }
    }
}
