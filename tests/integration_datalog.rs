//! Cross-crate integration tests for the deductive-database substrate:
//! parsing, stratified evaluation, the overlay engine and formula
//! evaluation working together through the public API.

use uniform::datalog::{
    satisfies_closed, Database, FactSet, Interp, Model, OverlayEngine, RuleSet, Update,
};
use uniform::logic::{normalize, parse_fact, parse_formula, parse_rule, Fact, Rule};

fn fact(src: &str) -> Fact {
    parse_fact(src).unwrap()
}

#[test]
fn ancestor_database_end_to_end() {
    let db = Database::parse(
        "
        parent(adam, beth). parent(beth, carl). parent(carl, dina).
        ancestor(X, Y) :- parent(X, Y).
        ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).
        constraint no_self_ancestor: forall X: ancestor(X, X) -> false.
        ",
    )
    .unwrap();
    assert!(db.is_consistent());
    assert!(db.holds(&fact("ancestor(adam, dina).")));
    assert!(!db.holds(&fact("ancestor(dina, adam).")));
    // 3 parent + 6 ancestor facts.
    assert_eq!(db.model().len(), 9);
}

#[test]
fn four_strata_program() {
    let db = Database::parse(
        "
        item(a). item(b). item(c).
        broken(a).
        usable(X) :- item(X), not broken(X).
        missing_spares(X) :- broken(X), not spare(X).
        sellable(X) :- usable(X), not reserved(X).
        reserved(b).
        ",
    )
    .unwrap();
    assert!(db.holds(&fact("usable(b).")));
    assert!(db.holds(&fact("usable(c).")));
    assert!(!db.holds(&fact("usable(a).")));
    assert!(db.holds(&fact("missing_spares(a).")));
    assert!(db.holds(&fact("sellable(c).")));
    assert!(!db.holds(&fact("sellable(b).")), "b is reserved");
}

#[test]
fn overlay_engine_simulates_before_commit() {
    let db = Database::parse(
        "
        edge(a, b). edge(b, c).
        tc(X, Y) :- edge(X, Y).
        tc(X, Z) :- tc(X, Y), edge(Y, Z).
        ",
    )
    .unwrap();
    // Simulate inserting edge(c,a): tc becomes cyclic in the simulation…
    let engine = OverlayEngine::updated(db.facts(), db.rules(), vec![fact("edge(c, a).")], vec![]);
    assert!(engine.holds(&fact("tc(a, a).")));
    // …but the database itself is untouched.
    assert!(!db.holds(&fact("tc(a, a).")));
}

#[test]
fn formula_evaluation_against_models() {
    let edb = FactSet::from_facts([
        fact("account(acme, 100)."),
        fact("account(zeta, 0)."),
        fact("flagged(zeta)."),
    ]);
    let rules = RuleSet::new(vec![parse_rule("dormant(X) :- account(X, 0).").unwrap()]).unwrap();
    let model = Model::compute(&edb, &rules);
    let ok = normalize(&parse_formula("forall X: dormant(X) -> flagged(X)").unwrap()).unwrap();
    assert!(satisfies_closed(&model, &ok));
    let bad =
        normalize(&parse_formula("forall X: flagged(X) -> account(X, 100)").unwrap()).unwrap();
    assert!(!satisfies_closed(&model, &bad));
}

#[test]
fn update_round_trip_preserves_model_cache_coherence() {
    let mut db = Database::parse(
        "
        p(a).
        q(X) :- p(X).
        ",
    )
    .unwrap();
    assert!(db.holds(&fact("q(a).")));
    db.apply(&Update::insert(fact("p(b)."))).unwrap();
    assert!(db.holds(&fact("q(b).")));
    db.apply(&Update::delete(fact("p(b)."))).unwrap();
    assert!(!db.holds(&fact("q(b).")));
    assert!(db.holds(&fact("q(a).")));
}

#[test]
fn large_chain_materializes_quickly() {
    // 2000-node chain: linear tc is 2000×~… too big; use reach from a
    // source only.
    let mut src = String::from("reach(n0).\n");
    src.push_str("reach(Y) :- reach(X), edge(X, Y).\n");
    for i in 0..2000 {
        src.push_str(&format!("edge(n{i}, n{}).\n", i + 1));
    }
    let db = Database::parse(&src).unwrap();
    assert!(db.holds(&fact("reach(n2000).")));
    assert_eq!(db.model().len(), 2000 /* edges */ + 2001 /* reach */);
}

#[test]
fn rules_singleton() {
    // A rule whose head predicate also has explicit facts, queried
    // through every path.
    let db = Database::parse(
        "
        member(bob, hr).
        leads(ann, sales).
        member(X, Y) :- leads(X, Y).
        ",
    )
    .unwrap();
    let engine = OverlayEngine::current(db.facts(), db.rules());
    assert!(engine.holds(&fact("member(bob, hr).")));
    assert!(engine.holds(&fact("member(ann, sales).")));
    let rule: &Rule = &db.rules().rules()[0];
    assert_eq!(rule.head.pred.as_str(), "member");
}
