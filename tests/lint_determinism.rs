//! Repo-level determinism lint: no unordered hash iteration feeding
//! user-visible output.
//!
//! Everything the engine renders, digests, or returns as a `Vec` must
//! not depend on `HashMap`/`HashSet` iteration order — the determinism
//! suite (`determinism.rs`, `prop_obs.rs`) catches such bugs only when
//! a schedule happens to expose them, so this test attacks the source:
//! it scans every crate for iteration over identifiers declared with a
//! hash-table type and requires each site to either be order-
//! insensitive on its face (membership tests, counting, folding into
//! another unordered structure), sort within a few lines, or appear in
//! the audited allowlist below with a reason.
//!
//! The scanner is a deliberately simple line-based heuristic — it
//! over-approximates, and the allowlist is the pressure valve. What it
//! must never do is miss a new `for x in hash_map` that pushes into a
//! rendered `Vec`: the self-check at the bottom pins that down.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// Audited sites: `(file suffix, identifier, why the order cannot
/// leak)`. Every entry must still match a flagged site — stale entries
/// fail the test so the list cannot rot.
const ALLOWLIST: &[(&str, &str, &str)] = &[
    (
        "core/src/query.rs",
        "bound",
        "Params::iter walks Params.bound, a BTreeMap (name order); the hash-typed \
         `bound` in this file is a plan-time local used only for membership",
    ),
    (
        "core/src/query.rs",
        "params",
        "every flagged `params` iteration is over a slice parameter or the \
         BTreeMap-backed Params; the hash-typed `params` local is membership-only",
    ),
    (
        "logic/src/semantics.rs",
        "facts",
        "test-helper iteration over a slice parameter feeding a set-semantics \
         interpretation; the hash-typed `facts` elsewhere is membership-only",
    ),
    (
        "datalog/src/depgraph.rs",
        "scc_of",
        "folds into another unordered map plus a running max — both order-free",
    ),
];

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).expect("readable source dir") {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Identifiers bound to a hash-table type anywhere in the file: struct
/// fields and lets (`name: HashMap<...>`), plus direct constructions
/// (`name = HashMap::new()` / `HashSet::new()`).
fn hash_idents(content: &str) -> BTreeSet<String> {
    let mut idents = BTreeSet::new();
    for line in content.lines() {
        for marker in ["HashMap<", "HashSet<", "HashMap::new", "HashSet::new"] {
            for (at, _) in line.match_indices(marker) {
                let head = line[..at].trim_end();
                let head = head
                    .strip_suffix(':')
                    .or_else(|| head.strip_suffix('='))
                    .unwrap_or(head)
                    .trim_end();
                let ident: String = head
                    .chars()
                    .rev()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect::<Vec<_>>()
                    .into_iter()
                    .rev()
                    .collect();
                if !ident.is_empty() && !ident.chars().next().unwrap().is_numeric() {
                    idents.insert(ident);
                }
            }
        }
    }
    idents
}

/// Does `line` iterate `ident` (declared hash-typed in this file)?
fn iterates(line: &str, ident: &str) -> bool {
    for method in [
        ".iter()",
        ".keys()",
        ".values()",
        ".values_mut()",
        ".drain()",
    ] {
        for prefix in ["", "self."] {
            if line.contains(&format!("{prefix}{ident}{method}")) {
                return true;
            }
        }
    }
    if let Some(at) = line.find(" in ") {
        let rest = line[at + 4..].trim_start_matches(['&', ' ']).trim_start();
        let rest = rest.strip_prefix("mut ").unwrap_or(rest);
        let rest = rest.strip_prefix("self.").unwrap_or(rest);
        if let Some(tail) = rest.strip_prefix(ident) {
            // `for x in map.get(..)` and friends are lookups, not walks.
            let walks = [".iter()", ".keys()", ".values()", ".drain", ".into_iter()"]
                .iter()
                .any(|m| tail.starts_with(m));
            return tail.is_empty() || tail.starts_with(' ') || tail.starts_with('{') || walks;
        }
    }
    false
}

/// Order-insensitive on the same line: membership, counting, aggregate
/// reductions, or folding straight into another unordered structure.
fn insensitive(line: &str) -> bool {
    [
        ".any(",
        ".all(",
        ".count()",
        ".sum()",
        ".sum::<",
        ".len()",
        ".min()",
        ".max()",
        ".min_by",
        ".max_by",
        ".is_empty()",
        "collect::<HashSet",
        "collect::<HashMap",
        "collect::<BTreeSet",
        "collect::<BTreeMap",
        "collect::<std::collections::BTree",
        // Type-ascribed collects into a set/map are order-free too.
        ": HashSet<",
        ": HashMap<",
        ": BTreeSet<",
        ": BTreeMap<",
    ]
    .iter()
    .any(|p| line.contains(p))
}

/// Sorted (or poured into an ordered structure) within the window after
/// the site — the common `collect` + `sort` idiom.
fn sorted_nearby(lines: &[&str], at: usize) -> bool {
    lines[at..(at + 10).min(lines.len())]
        .iter()
        .any(|l| l.contains(".sort") || l.contains("BTree"))
}

fn scan(path_label: &str, content: &str) -> Vec<String> {
    let idents = hash_idents(content);
    let lines: Vec<&str> = content.lines().collect();
    let mut findings = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let code = line.split("//").next().unwrap_or("");
        for ident in &idents {
            if iterates(code, ident) && !insensitive(code) && !sorted_nearby(&lines, i) {
                findings.push(format!("{path_label}:{}:{ident}", i + 1));
            }
        }
    }
    findings
}

#[test]
fn no_unordered_iteration_feeds_output() {
    let root = repo_root();
    let mut files = Vec::new();
    for crate_dir in [
        "analyze",
        "core",
        "datalog",
        "integrity",
        "logic",
        "obs",
        "repair",
        "satisfiability",
        "workload",
    ] {
        rust_sources(&root.join("crates").join(crate_dir).join("src"), &mut files);
    }
    files.sort();

    let mut findings: Vec<String> = Vec::new();
    for path in &files {
        let content = std::fs::read_to_string(path).expect("readable source");
        let label = path
            .strip_prefix(&root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        findings.extend(scan(&label, &content));
    }

    let allowed = |finding: &str| {
        ALLOWLIST.iter().any(|(suffix, ident, _)| {
            let (site, id) = finding.rsplit_once(':').unwrap();
            let (file, _line) = site.rsplit_once(':').unwrap();
            file.ends_with(suffix) && id == *ident
        })
    };
    let unexpected: Vec<&String> = findings.iter().filter(|f| !allowed(f)).collect();
    assert!(
        unexpected.is_empty(),
        "unordered hash iteration may feed user-visible output — sort it, \
         use a BTree collection, or add an audited allowlist entry:\n{unexpected:#?}"
    );

    // The allowlist cannot rot: every entry must still match a site.
    for (suffix, ident, _) in ALLOWLIST {
        assert!(
            findings.iter().any(|f| {
                let (site, id) = f.rsplit_once(':').unwrap();
                site.rsplit_once(':').unwrap().0.ends_with(suffix) && id == *ident
            }),
            "stale allowlist entry {suffix}:{ident} — the site no longer exists"
        );
    }
}

/// The scanner itself must keep catching the bug class it exists for.
#[test]
fn scanner_flags_the_canonical_bug() {
    let bad = r#"
        let mut by_pred: HashMap<Sym, usize> = HashMap::new();
        let mut out = String::new();
        for (pred, n) in &by_pred {
            writeln!(out, "{pred}: {n}").unwrap();
        }
    "#;
    assert_eq!(scan("synthetic.rs", bad).len(), 1);

    let fixed = r#"
        let mut by_pred: HashMap<Sym, usize> = HashMap::new();
        let mut rows: Vec<_> = by_pred.iter().collect();
        rows.sort();
    "#;
    assert!(scan("synthetic.rs", fixed).is_empty());

    let membership = r#"
        let seen: HashSet<Sym> = HashSet::new();
        let dead = preds.iter().filter(|p| !seen.iter().any(|s| s == *p));
    "#;
    assert!(scan("synthetic.rs", membership).is_empty());
}
