//! Properties of the unified observability layer (`uniform::obs`).
//!
//! * Counter totals and histogram bucket counts are identical across
//!   `UNIFORM_THREADS=1` vs `8` on seeded randomized commit/query
//!   schedules — internal parallelism must never leak into metrics.
//!   Like `determinism.rs`, the thread-count comparison re-executes
//!   this binary as a child per setting (`UNIFORM_THREADS` is latched
//!   once per process).
//! * The span ring is well-formed: every close pairs with its open,
//!   parentage nests per thread, and the close tags of `query.execute`
//!   spans name real outcome paths.
//! * The typed legacy accessors (`conflict_stats`, `maintenance`,
//!   `certain_cache_stats`, `plan_cache_stats`) are views over the
//!   registry: both surfaces must agree exactly.
//! * Under the pinned `NullClock` every histogram recording lands in
//!   bucket 0, and the JSON export round-trips losslessly.

use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;
use std::sync::Arc;
use uniform::workload;
use uniform::{
    ConcurrentDatabase, Consistency, Obs, ObsReport, Params, UniformOptions, ViolationPolicy,
};

/// FNV-1a over the rendered report (no external deps).
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A seeded commit/query schedule over one database pinned to the
/// `NullClock` obs domain. Everything the driver does is sequential —
/// only the engine's *internal* parallelism varies with
/// `UNIFORM_THREADS` — so every counter total is exact.
fn run_schedule(seed: u64) -> ConcurrentDatabase {
    let db = ConcurrentDatabase::from_database_with_obs(
        workload::violation_mix_db(seed),
        UniformOptions {
            violation_policy: ViolationPolicy::AutoRepair,
            ..UniformOptions::default()
        },
        Arc::new(Obs::null()),
    );
    let stream = workload::violation_mix_stream(0, 10, seed);
    let queries = workload::violation_read_queries();
    // Seeded LCG interleaving of reads between the commits: the
    // "randomized schedule" is a pure function of `seed`, identical in
    // every child process.
    let mut lcg = seed.wrapping_mul(2).wrapping_add(1);
    for tx in &stream {
        let _ = db.commit_transaction(tx);
        for _ in 0..2 {
            lcg = lcg
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            let q = queries[(lcg >> 33) as usize % queries.len()];
            let prepared = db.prepare(q).expect("hot query prepares");
            let level = if (lcg >> 17) & 1 == 0 {
                Consistency::Latest
            } else {
                Consistency::Certain
            };
            let _ = db.session().execute(&prepared, &Params::new(), level);
        }
    }
    db
}

/// Render the metric surface of a report: sorted counter names and
/// values plus per-histogram non-empty bucket counts (never wall-clock
/// readings — under `NullClock` they are all zero anyway).
fn render(report: &ObsReport) -> String {
    let mut out = String::new();
    for (name, value) in &report.counters {
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, snap) in &report.histograms {
        let _ = writeln!(out, "{name} {:?}", snap.nonzero());
    }
    out
}

const SEEDS: &[u64] = &[3, 17, 59];

/// Child mode: print the digest over every seeded schedule. Inert
/// unless the driver below sets `UNIFORM_PROP_OBS_CHILD`.
#[test]
fn obs_digest_child() {
    if std::env::var("UNIFORM_PROP_OBS_CHILD").is_err() {
        return;
    }
    let mut log = String::new();
    for &seed in SEEDS {
        let db = run_schedule(seed);
        let _ = writeln!(log, "seed {seed}\n{}", render(&db.obs_report()));
    }
    println!("OBSDIGEST={:016x}", fnv1a(&log));
}

fn child_digest(threads: &str) -> String {
    let exe = std::env::current_exe().expect("test binary path");
    let out = std::process::Command::new(exe)
        .args(["obs_digest_child", "--exact", "--nocapture"])
        .env("UNIFORM_PROP_OBS_CHILD", "1")
        .env("UNIFORM_THREADS", threads)
        .output()
        .expect("spawn child test binary");
    assert!(out.status.success(), "child failed: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let at = stdout
        .find("OBSDIGEST=")
        .unwrap_or_else(|| panic!("no digest in child output: {stdout}"));
    stdout[at + "OBSDIGEST=".len()..]
        .chars()
        .take_while(|c| c.is_ascii_hexdigit())
        .collect()
}

#[test]
fn metrics_identical_across_thread_counts() {
    assert_eq!(
        child_digest("1"),
        child_digest("8"),
        "UNIFORM_THREADS must not leak into counter totals or bucket counts"
    );
}

#[test]
fn span_ring_is_well_formed() {
    let db = run_schedule(23);
    let events = db.recent_events();
    assert!(!events.is_empty(), "the schedule must have recorded spans");

    // Replay the ring: per-thread stacks of live spans. Every close
    // must match an open with the same id/name; an open's parent must
    // be live on the same thread at open time. (The driver is
    // single-threaded, but repair internals may record from workers —
    // the invariant is per-thread, as documented on `SpanEvent`.)
    let mut live: HashMap<u64, Vec<(u64, &'static str)>> = HashMap::new();
    let mut opened = 0usize;
    for ev in &events {
        let stack = live.entry(ev.thread).or_default();
        if ev.close {
            let top = stack.pop().unwrap_or_else(|| {
                panic!("close of span {} ({}) with no live span", ev.id, ev.name)
            });
            assert_eq!(
                (top.0, top.1),
                (ev.id, ev.name),
                "spans must close in LIFO order per thread"
            );
        } else {
            opened += 1;
            if let Some(parent) = ev.parent {
                assert!(
                    stack.iter().any(|(id, _)| *id == parent),
                    "span {}'s parent {parent} is not live on its thread",
                    ev.id
                );
            } else {
                assert!(
                    stack.is_empty(),
                    "span {} has no parent but thread {} has live spans",
                    ev.id,
                    ev.thread
                );
            }
            stack.push((ev.id, ev.name));
        }
    }
    assert!(
        live.values().all(|s| s.is_empty()),
        "every opened span must have closed by the end of the schedule"
    );
    assert_eq!(db.obs().dropped_events(), 0, "ring must not have wrapped");

    // The taxonomy: commit and query roots exist; their names are from
    // the documented set; query.execute closes name real outcome paths.
    let names: HashSet<&'static str> = events.iter().map(|e| e.name).collect();
    assert!(names.contains("commit"), "commit roots: {names:?}");
    assert!(names.contains("query.execute"), "query roots: {names:?}");
    let known = [
        "commit",
        "commit.stage",
        "commit.check",
        "commit.admit",
        "commit.apply",
        "commit.maintain",
        "commit.repair",
        "commit.invalidate",
        "query.execute",
        "repair.run",
        "analyze.run",
        "analyze.classify",
    ];
    for name in &names {
        assert!(known.contains(name), "undocumented span name {name}");
    }
    for ev in events.iter().filter(|e| e.close) {
        if ev.name == "query.execute" {
            assert!(
                matches!(ev.tag, Some("eval" | "cache_hit" | "repair")),
                "query.execute closed with unknown path {:?}",
                ev.tag
            );
        }
        assert_eq!(ev.nanos, 0, "NullClock spans must never carry durations");
    }
    assert!(opened * 2 >= events.len(), "opens and closes must pair");
}

#[test]
fn legacy_accessors_are_views_over_the_registry() {
    let db = run_schedule(41);
    let report = db.obs_report();
    let counter = |name: &str| {
        report
            .counter(name)
            .unwrap_or_else(|| panic!("metric {name} not registered"))
    };

    let conflicts = db.conflict_stats();
    assert_eq!(counter("txn.commits.admitted"), conflicts.admitted);
    assert_eq!(
        counter("txn.conflicts.relation"),
        conflicts.relation_conflicts
    );
    assert_eq!(counter("txn.conflicts.key"), conflicts.key_conflicts);
    assert_eq!(
        counter("txn.conflicts.whole_relation_fallbacks"),
        conflicts.whole_relation_fallbacks
    );

    let maintenance = db.maintenance();
    assert_eq!(
        counter("maintain.commits.maintained"),
        maintenance.maintained
    );
    assert_eq!(
        counter("maintain.commits.rematerialized"),
        maintenance.rematerialized
    );
    assert_eq!(counter("maintain.bailouts"), maintenance.bailouts);
    assert_eq!(counter("maintain.schema_resets"), maintenance.schema_resets);

    let cache = db.certain_cache_stats();
    assert_eq!(counter("cache.certain.hits"), cache.hits);
    assert_eq!(counter("cache.certain.misses"), cache.misses);
    assert_eq!(counter("cache.certain.repair_misses"), cache.repair_misses);
    assert_eq!(counter("cache.certain.invalidated"), cache.invalidated);
    assert_eq!(counter("cache.certain.entries"), cache.entries as u64);

    let plans = db.plan_cache_stats();
    assert_eq!(counter("cache.plan.hits"), plans.hits);
    assert_eq!(counter("cache.plan.misses"), plans.misses);
    assert_eq!(counter("cache.plan.entries"), plans.entries as u64);

    let cow = db.with_database(|d| d.facts().cow_stats());
    assert_eq!(counter("store.cow.pages_cloned"), cow.pages_cloned);
    assert_eq!(counter("store.cow.tuples_cloned"), cow.tuples_cloned);
    assert_eq!(counter("store.cow.bytes_cloned"), cow.bytes_cloned);
}

#[test]
fn null_clock_keeps_every_recording_in_bucket_zero() {
    let db = run_schedule(7);
    let report = db.obs_report();
    let mut recorded = 0u64;
    for (name, snap) in &report.histograms {
        for (bucket, count) in snap.nonzero() {
            assert_eq!(bucket, 0, "{name}: NullClock recording left bucket 0");
            recorded += count;
        }
    }
    assert!(recorded > 0, "the schedule must have recorded latencies");
}

#[test]
fn json_export_round_trips() {
    let db = run_schedule(11);
    let report = db.obs_report();
    let parsed = ObsReport::parse_json(&report.to_json()).expect("export parses");
    assert_eq!(parsed, report.clone().sorted());
    // And on an empty registry.
    let empty = Obs::null().report();
    assert_eq!(ObsReport::parse_json(&empty.to_json()).unwrap(), empty);
}
