//! Integration tests for the satisfiability checker: the problem suite
//! through the public API, model verification, option interplay, and the
//! uniform façade's schema guards.

use uniform::datalog::{FactSet, Model, RuleSet};
use uniform::logic::Fact;
use uniform::satisfiability::problems;
use uniform::{SatChecker, SatOptions, SatOutcome, UniformDatabase};

/// Any model returned by the checker must actually satisfy every
/// constraint — verified independently through the datalog evaluator.
#[test]
fn returned_models_verify_against_constraints() {
    for p in problems::suite() {
        if p.expected != problems::Expectation::Satisfiable {
            continue;
        }
        let checker = p.checker();
        let report = checker.check();
        let SatOutcome::Satisfiable { explicit, .. } = &report.outcome else {
            panic!("{} expected satisfiable, got {:?}", p.name, report.outcome);
        };
        let edb = FactSet::from_facts(explicit.iter().cloned());
        let rules = RuleSet::new(p.rules.clone()).unwrap();
        let model = Model::compute(&edb, &rules);
        for c in checker.constraints() {
            assert!(
                uniform::datalog::satisfies_closed(&model, &c.rq),
                "{}: witness model violates {}",
                p.name,
                c.name
            );
        }
    }
}

#[test]
fn unsat_verdicts_stable_across_option_profiles() {
    let profiles: Vec<(&str, SatOptions)> = vec![
        ("default", SatOptions::default()),
        ("paper", SatOptions::paper()),
        (
            "non-incremental",
            SatOptions {
                incremental_checking: false,
                ..SatOptions::default()
            },
        ),
        (
            "no-deepening",
            SatOptions {
                iterative_deepening: false,
                ..SatOptions::default()
            },
        ),
    ];
    for p in problems::suite() {
        if p.expected != problems::Expectation::Unsatisfiable {
            continue;
        }
        for (name, opts) in &profiles {
            let report = p.checker_with(opts.clone()).check();
            assert_eq!(
                report.outcome,
                SatOutcome::Unsatisfiable,
                "{} under profile {name}",
                p.name
            );
        }
    }
}

#[test]
fn sat_problems_found_by_every_complete_profile() {
    // tableaux() is deliberately incomplete; every other profile must
    // find the finite models.
    let profiles: Vec<(&str, SatOptions)> = vec![
        ("default", SatOptions::default()),
        (
            "non-incremental",
            SatOptions {
                incremental_checking: false,
                ..SatOptions::default()
            },
        ),
    ];
    for p in problems::suite() {
        if p.expected != problems::Expectation::Satisfiable {
            continue;
        }
        for (name, opts) in &profiles {
            let report = p.checker_with(opts.clone()).check();
            assert!(
                report.outcome.is_satisfiable(),
                "{} under profile {name}: {:?}",
                p.name,
                report.outcome
            );
        }
    }
}

#[test]
fn budget_zero_handles_propositional_problems() {
    // Propositional problems need no fresh constants at all.
    for p in problems::pelletier_propositional() {
        let report = p
            .checker_with(SatOptions {
                max_fresh_constants: 0,
                ..SatOptions::default()
            })
            .check();
        assert_eq!(report.outcome, SatOutcome::Unsatisfiable, "{}", p.name);
    }
}

#[test]
fn seeded_search_respects_existing_facts() {
    let rules = RuleSet::empty();
    let constraints = vec![uniform::Constraint::new(
        "cover",
        uniform::logic::normalize(
            &uniform::logic::parse_formula("forall X: item(X) -> boxed(X)").unwrap(),
        )
        .unwrap(),
    )];
    let report = SatChecker::new(rules, constraints)
        .with_seed(vec![
            Fact::parse_like("item", &["i1"]),
            Fact::parse_like("item", &["i2"]),
        ])
        .check();
    match report.outcome {
        SatOutcome::Satisfiable { model, .. } => {
            assert!(model.contains(&Fact::parse_like("boxed", &["i1"])));
            assert!(model.contains(&Fact::parse_like("boxed", &["i2"])));
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn facade_schema_guard_detects_incompatibility_added_in_any_order() {
    // Regardless of insertion order, the third constraint clashes.
    let schema = [
        ("a", "exists X: resource(X)"),
        (
            "b",
            "forall X: resource(X) -> (exists Y: owner(Y) & owns(Y, X))",
        ),
        ("c", "forall X, Y: owns(X, Y) -> false"),
    ];
    for rotation in 0..3 {
        let mut db = UniformDatabase::new();
        let mut rejected = false;
        for k in 0..3 {
            let (name, f) = schema[(rotation + k) % 3];
            match db.try_add_constraint(name, f) {
                Ok(()) => {}
                Err(e) => {
                    rejected = true;
                    let msg = e.to_string();
                    assert!(
                        msg.contains("unsatisfiable") || msg.contains("violated"),
                        "unexpected error: {msg}"
                    );
                    break;
                }
            }
        }
        assert!(
            rejected,
            "rotation {rotation} accepted an unsatisfiable trio"
        );
    }
}

#[test]
fn stats_reflect_the_search_shape() {
    let report = problems::paper_example().checker().check();
    assert!(report.stats.attempts >= 2, "needs deepening past budget 0");
    assert!(report.stats.undo_events > 0, "the §5 search backtracks");
    assert!(report.stats.max_level >= 3, "the §5 trace reaches level 3+");
    assert!(report.stats.incremental_checks > 0);
}

#[test]
fn completion_constraints_visible_through_checker() {
    let db = uniform::Database::parse(
        "
        visible(X) :- page(X), not hidden(X).
        constraint some: exists X: page(X).
        ",
    )
    .unwrap();
    let checker = SatChecker::from_database(&db);
    assert!(
        checker
            .constraints()
            .iter()
            .any(|c| c.name.starts_with("completion(")),
        "completion constraint for the negative rule must be added"
    );
    let report = checker.check();
    assert!(report.outcome.is_satisfiable());
}
