//! The prepared read path's differential proof: prepared-query results
//! must be bit-identical to the legacy one-shot evaluation at **both**
//! consistency levels, across randomized databases — and plans cached
//! before a schema change must be invalidated, never serving stale
//! answers.
//!
//! The references are independent reimplementations of what the
//! pre-session façade methods did inline: `all_solutions` over the
//! canonical model for `Latest`, `RepairEngine::consistent_answers`
//! for `Certain`. The prepared path goes through
//! `ConcurrentDatabase::prepare` (the sharded plan cache), `Session`
//! (pinned snapshot, session-level repair cache) and the per-revision
//! plan store — none of which the references share.

use rand::{rngs::StdRng, Rng, SeedableRng};
use uniform::datalog::{all_solutions, Database, RuleSet};
use uniform::logic::{parse_query, parse_rule, Subst, Sym, Term};
use uniform::repair::{RepairEngine, RepairError, RepairOptions};
use uniform::workload;
use uniform::{ConcurrentDatabase, Consistency, Params, QueryError, UniformOptions};

/// ≥256 randomized databases; `PROPTEST_CASES` scales the effort like
/// every other property suite in the repo.
fn cases() -> u64 {
    u64::from(proptest::ProptestConfig::with_cases(256).effective_cases())
}

fn repair_options() -> RepairOptions {
    RepairOptions {
        max_changes: 3,
        max_branches: 500_000,
        max_repairs: 4096,
        domain_cap: 512,
        verify: false,
        ..RepairOptions::default()
    }
}

fn concurrent(db: &Database) -> ConcurrentDatabase {
    ConcurrentDatabase::from_database(
        db.clone(),
        UniformOptions {
            repair: repair_options(),
            ..UniformOptions::default()
        },
    )
}

/// The canonical result order the typed read path guarantees: sorted by
/// rendered values, column by column.
fn canonical(mut bindings: Vec<Vec<(Sym, Sym)>>) -> Vec<Vec<(Sym, Sym)>> {
    bindings.sort_by(|a, b| {
        a.iter()
            .map(|(_, c)| c.as_str())
            .cmp(b.iter().map(|(_, c)| c.as_str()))
    });
    bindings.dedup();
    bindings
}

/// The legacy `Latest` path, verbatim: parse per call, enumerate over
/// the canonical model with the runtime-greedy join order.
fn legacy_latest(db: &Database, src: &str) -> Vec<Vec<(Sym, Sym)>> {
    let literals = parse_query(src).expect("query parses");
    let mut vars: Vec<Sym> = Vec::new();
    for l in &literals {
        for v in l.vars() {
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
    }
    let model = db.model();
    let sols = all_solutions(model.as_ref(), &literals, &mut Subst::new(), &vars);
    canonical(
        sols.into_iter()
            .map(|s| {
                vars.iter()
                    .filter_map(|&v| match s.walk(Term::Var(v)) {
                        Term::Const(c) => Some((v, c)),
                        Term::Var(_) => None,
                    })
                    .collect()
            })
            .collect(),
    )
}

/// The legacy `Certain` path, verbatim: a fresh repair enumeration and
/// overlay intersection per call.
fn legacy_certain(db: &Database, src: &str) -> Result<Vec<Vec<(Sym, Sym)>>, RepairError> {
    RepairEngine::new(
        db.facts().clone(),
        db.rules().clone(),
        db.constraints().to_vec(),
    )
    .with_options(repair_options())
    .consistent_answers(&parse_query(src).expect("query parses"))
}

/// Prepared == legacy on one database, every query, both levels.
fn check_db(db: &Database, queries: &[&str], ctx: &str) {
    let cdb = concurrent(db);
    let session = cdb.session();
    for src in queries {
        let q = cdb.prepare(src).expect("query prepares");
        let rows = session
            .execute(&q, &Params::new(), Consistency::Latest)
            .expect("latest executes");
        assert_eq!(
            rows.bindings(),
            legacy_latest(db, src),
            "Latest mismatch for `{src}` on {ctx}"
        );
        match (
            session.execute(&q, &Params::new(), Consistency::Certain),
            legacy_certain(db, src),
        ) {
            (Ok(rows), Ok(want)) => assert_eq!(
                rows.bindings(),
                want,
                "Certain mismatch for `{src}` on {ctx}"
            ),
            (Err(QueryError::Budget(_)), Err(_)) => {} // both refused
            (got, want) => panic!("Certain divergence for `{src}` on {ctx}: {got:?} vs {want:?}"),
        }
    }
}

#[test]
fn prepared_equals_legacy_on_randomized_databases_both_levels() {
    for seed in 0..cases() {
        // Inconsistent (violation-churned) states: the Certain level
        // intersects over real repairs here.
        let churn = (seed % 6) as usize;
        let db = workload::violation_state(churn, seed);
        check_db(
            &db,
            workload::violation_read_queries(),
            &format!("violation_state({churn}, {seed})"),
        );
        // Consistent deductive states: Certain must coincide with
        // Latest through the single empty repair.
        let n = 3 + (seed % 5) as usize;
        let db = workload::deductive_university(n, seed);
        check_db(
            &db,
            workload::university_read_queries(),
            &format!("deductive_university({n}, {seed})"),
        );
    }
}

/// A recursive state whose constraints reach the recursion's EDB:
/// `edge` tuples may dangle (missing `node`), so minimal repairs
/// insert `node` facts or delete `edge` facts — certain `tc` answers
/// genuinely differ from latest ones. This is the shape whose prepared
/// plan carries a magic program (recursion-reaching goal).
fn tc_state(seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7c_57a7e);
    let nodes = ["a", "b", "c", "d", "e"];
    let mut src = String::from(
        "tc(X, Y) :- edge(X, Y).\n\
         tc(X, Z) :- edge(X, Y), tc(Y, Z).\n\
         constraint edom: forall X, Y: edge(X, Y) -> node(X).\n",
    );
    for node in nodes {
        if rng.gen_range(0..4u8) > 0 {
            src.push_str(&format!("node({node}).\n"));
        }
    }
    for _ in 0..rng.gen_range(2..7usize) {
        let from = nodes[rng.gen_range(0..nodes.len())];
        let to = nodes[rng.gen_range(0..nodes.len())];
        src.push_str(&format!("edge({from}, {to}).\n"));
    }
    Database::parse(&src).expect("tc state parses")
}

#[test]
fn prepared_params_equal_substituted_one_shots_incl_magic_path() {
    for seed in 0..cases() {
        let db = tc_state(seed);
        let cdb = concurrent(&db);
        let q = cdb
            .prepare_with_params("tc(S, X)", &["S"])
            .expect("parameterized query prepares");
        let session = cdb.session();
        for start in ["a", "c", "e"] {
            let params = Params::new().bind("S", start);
            let substituted = format!("tc({start}, X)");
            let rows = session
                .execute(&q, &params, Consistency::Latest)
                .expect("latest executes");
            assert_eq!(
                rows.bindings(),
                legacy_latest(&db, &substituted),
                "Latest mismatch for S={start}, seed {seed}"
            );
            match (
                session.execute(&q, &params, Consistency::Certain),
                legacy_certain(&db, &substituted),
            ) {
                (Ok(rows), Ok(want)) => assert_eq!(
                    rows.bindings(),
                    want,
                    "Certain mismatch for S={start}, seed {seed}"
                ),
                (Err(QueryError::Budget(_)), Err(_)) => {}
                (got, want) => panic!("Certain divergence seed {seed}: {got:?} vs {want:?}"),
            }
        }
    }
}

#[test]
fn cached_plans_invalidate_on_rule_updates_and_schema_changes() {
    for seed in 0..cases().min(128) {
        let n = 3 + (seed % 4) as usize;
        let db = workload::deductive_university(n, seed);
        let cdb = concurrent(&db);
        let q = cdb.prepare("enrolled(X, C)").expect("query prepares");
        let before = cdb
            .session()
            .execute(&q, &Params::new(), Consistency::Latest)
            .unwrap();
        assert_eq!(
            before.bindings(),
            cdb.with_database(|d| legacy_latest(d, "enrolled(X, C)"))
        );
        let (_, misses0) = q.plan_counters();

        // Guarded rule addition: the rule revision moves; the cached
        // plan must be rebuilt and the new derivations served.
        assert!(cdb
            .try_add_rule("enrolled(X, ml) :- attends(X, ddb).")
            .unwrap());
        let q_again = cdb.prepare("enrolled(X, C)").expect("cache still serves");
        let after_rule = cdb
            .session()
            .execute(&q_again, &Params::new(), Consistency::Latest)
            .unwrap();
        assert_eq!(
            after_rule.bindings(),
            cdb.with_database(|d| legacy_latest(d, "enrolled(X, C)")),
            "stale plan served after try_add_rule (seed {seed})"
        );
        assert!(
            after_rule.len() > before.len(),
            "the added rule's derivations must be visible (seed {seed})"
        );
        let (_, misses1) = q.plan_counters();
        assert_eq!(misses1, misses0 + 1, "exactly one re-plan per revision");

        // Raw schema mutation through the queue: same guarantee.
        cdb.update_schema(|d| {
            let mut rules = d.rules().rules().to_vec();
            rules.push(parse_rule("senior(X) :- student(X), attends(X, ddb).").unwrap());
            d.set_rules(RuleSet::new(rules).unwrap());
        });
        let after_schema = cdb
            .session()
            .execute(&q, &Params::new(), Consistency::Latest)
            .unwrap();
        assert_eq!(
            after_schema.bindings(),
            cdb.with_database(|d| legacy_latest(d, "enrolled(X, C)")),
            "stale plan served after update_schema (seed {seed})"
        );
        let (_, misses2) = q.plan_counters();
        assert_eq!(misses2, misses1 + 1);
    }
}
