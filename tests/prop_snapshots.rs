//! Snapshot isolation under concurrent commits.
//!
//! Property: a reader holding a [`Snapshot`] observes exactly the
//! snapshot-time canonical model — fact by fact, query by query — no
//! matter how many transactions writer threads commit to the originating
//! database while the reader keeps asking. Taking a fresh snapshot
//! afterwards observes the final state.

use proptest::prelude::*;
use std::sync::Mutex;
use uniform::datalog::{Database, Snapshot, Update};
use uniform::logic::Fact;

const PREDS: [&str; 3] = ["p", "q", "r"];
const CONSTS: [&str; 4] = ["a", "b", "c", "d"];

/// Base program: one derived relation and one constraint, so snapshots
/// carry rules and constraints, not just explicit facts.
fn base_db() -> Database {
    Database::parse(
        "
        s(X) :- p(X), q(X).
        constraint guarded: forall X: r(X) -> p(X).
        ",
    )
    .unwrap()
}

fn arb_updates() -> impl Strategy<Value = Vec<(usize, usize, bool)>> {
    prop::collection::vec((0..PREDS.len(), 0..CONSTS.len(), any::<bool>()), 1..40)
}

fn to_update(&(p, c, insert): &(usize, usize, bool)) -> Update {
    let fact = Fact::parse_like(PREDS[p], &[CONSTS[c]]);
    if insert {
        Update::insert(fact)
    } else {
        Update::delete(fact)
    }
}

/// Everything a reader can observe through a snapshot, rendered
/// comparably.
fn observe(snap: &Snapshot) -> (Vec<String>, Vec<String>, Vec<bool>) {
    let mut model: Vec<String> = snap.model().iter().map(|f| f.to_string()).collect();
    model.sort();
    let violated = snap.violated_constraints();
    let point_queries: Vec<bool> = PREDS
        .iter()
        .flat_map(|p| {
            CONSTS
                .iter()
                .map(move |c| snap.holds(&Fact::parse_like(p, &[c])))
        })
        .collect();
    (model, violated, point_queries)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Writers commit batches while readers repeatedly re-observe a
    /// pre-commit snapshot; every observation equals the snapshot-time
    /// one.
    #[test]
    fn snapshot_readers_unaffected_by_concurrent_commits(
        initial in arb_updates(),
        batch_a in arb_updates(),
        batch_b in arb_updates(),
    ) {
        let mut db = base_db();
        for spec in &initial {
            db.apply(&to_update(spec)).unwrap();
        }
        let snapshot = db.snapshot();
        let reference = observe(&snapshot);

        let shared = Mutex::new(db);
        let isolation_held = std::thread::scope(|scope| {
            // Two writer threads committing interleaved batches.
            for batch in [&batch_a, &batch_b] {
                let shared = &shared;
                scope.spawn(move || {
                    for spec in batch {
                        let mut db = shared.lock().unwrap();
                        db.apply(&to_update(spec)).unwrap();
                        // Touch the model cache like a real commit cycle
                        // (forces recomputation while readers hold Arcs).
                        let _ = db.model();
                    }
                });
            }
            // Two reader threads hammering the old snapshot.
            let readers: Vec<_> = (0..2)
                .map(|_| {
                    let snap = snapshot.clone();
                    let reference = &reference;
                    scope.spawn(move || {
                        (0..25).all(|_| &observe(&snap) == reference)
                    })
                })
                .collect();
            readers.into_iter().all(|r| r.join().unwrap())
        });
        prop_assert!(isolation_held, "a reader saw a state other than the snapshot-time one");

        // The snapshot still answers from its own era even after all
        // commits landed…
        prop_assert_eq!(&observe(&snapshot), &reference);

        // …while a fresh snapshot agrees with the database's final state.
        let db = shared.into_inner().unwrap();
        let fresh = db.snapshot();
        let mut final_model: Vec<String> = db.model().iter().map(|f| f.to_string()).collect();
        final_model.sort();
        prop_assert_eq!(observe(&fresh).0, final_model);
        prop_assert_eq!(fresh.violated_constraints(), db.violated_constraints());
    }

    /// Sequential sanity for the same machinery: a snapshot per commit,
    /// each later compared against an independently recomputed model of
    /// the same prefix of updates.
    #[test]
    fn snapshots_pin_each_prefix_of_a_commit_sequence(
        updates in arb_updates(),
    ) {
        let mut db = base_db();
        let mut pinned: Vec<(Snapshot, Vec<String>)> = Vec::new();
        for spec in &updates {
            db.apply(&to_update(spec)).unwrap();
            let snap = db.snapshot();
            let mut model: Vec<String> = snap.model().iter().map(|f| f.to_string()).collect();
            model.sort();
            pinned.push((snap, model));
        }
        // Replay: recompute each prefix on a fresh database and compare
        // against what the pinned snapshot still reports.
        for (i, (snap, expected)) in pinned.iter().enumerate() {
            let mut replay = base_db();
            for spec in &updates[..=i] {
                replay.apply(&to_update(spec)).unwrap();
            }
            let mut replay_model: Vec<String> =
                replay.model().iter().map(|f| f.to_string()).collect();
            replay_model.sort();
            prop_assert_eq!(&replay_model, expected, "prefix {} diverged", i);
            let mut still: Vec<String> = snap.model().iter().map(|f| f.to_string()).collect();
            still.sort();
            prop_assert_eq!(&still, expected, "snapshot {} drifted", i);
        }
    }
}
