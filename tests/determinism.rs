//! Output determinism across thread counts and across processes.
//!
//! `UNIFORM_THREADS` is latched once per process (`uniform_datalog::par`),
//! so the cross-thread-count comparison re-executes this test binary as a
//! child process per setting and compares digests of everything
//! user-visible a workload produces: guarded-update violation lists (in
//! order), maintained-model flip lists (in order), checker read sets,
//! satisfiability outcomes, prepared-query `Rows` iteration order and
//! plan-cache counters, and final fact/model iteration order.
//!
//! This is the regression net for the ROADMAP's `net_effect`-style bug
//! class: any `HashMap`/`HashSet` iteration leaking into user-visible
//! order shows up as a digest mismatch — across two runs in one process,
//! across processes, or across `UNIFORM_THREADS=1` vs `8`.

use std::fmt::Write as _;
use uniform::datalog::{Database, MaintainedModel, RuleSet};
use uniform::integrity::Checker;
use uniform::logic::{parse_query, parse_rule};
use uniform::workload;
use uniform::{
    CommitQueue, ConcurrentDatabase, Consistency, Fact, Obs, Params, RepairBackend, RepairEngine,
    RepairOptions, RepairPreferences, SatChecker, Transaction, UniformOptions, Update,
    ViolationPolicy,
};

/// FNV-1a over the rendered observation log (no external deps).
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Everything user-visible from a mixed workload, rendered in the order
/// the APIs produce it (no sorting — order is what's under test).
fn observation_log() -> String {
    let mut log = String::new();

    // 1. Guarded updates over the org workload: violation lists and
    //    culprits in report order, read sets, acceptance outcomes.
    let mut db = workload::org(3, 2, 11);
    for update in workload::org_updates(3, 2, 40, 17) {
        let tx = Transaction::single(update.clone());
        let report = Checker::new(&db).check(&tx);
        let _ = write!(log, "upd {update} -> {}", report.satisfied);
        for v in &report.violations {
            let _ = write!(log, " viol {} via {:?}", v.constraint, v.culprit);
        }
        let _ = write!(
            log,
            " reads {:?}",
            report.reads.iter().map(|s| s.as_str()).collect::<Vec<_>>()
        );
        // Binding-level read patterns, rendered name-wise (`_` for an
        // unbound position): the conflict fingerprints fed to the
        // commit queue must not depend on interner or thread order.
        let _ = write!(
            log,
            " patterns {:?}",
            report
                .read_patterns
                .iter()
                .map(|p| {
                    let args: Vec<&str> = p
                        .args
                        .iter()
                        .map(|a| a.map_or("_", |s| s.as_str()))
                        .collect();
                    format!("{}({})", p.pred.as_str(), args.join(","))
                })
                .collect::<Vec<_>>()
        );
        if report.satisfied {
            for u in &tx.updates {
                db.apply(u).unwrap();
            }
        }
        log.push('\n');
    }
    for f in db.facts().iter() {
        let _ = writeln!(log, "fact {f}");
    }
    for f in db.model().iter() {
        let _ = writeln!(log, "model {f}");
    }
    let _ = writeln!(log, "violated {:?}", db.violated_constraints());
    // The chunked page tables themselves: page count, per-page arena
    // size and live count, tombstone totals. Chunk boundaries are a
    // function of the operation sequence alone, so they must digest
    // identically across thread counts and processes.
    for pred in db.facts().predicates() {
        let rel = db.facts().relation(pred).unwrap();
        let _ = writeln!(
            log,
            "shape {} {:?} stale {}",
            pred.as_str(),
            rel.page_shape(),
            rel.stale_slots()
        );
    }

    // 2. Maintained-model flip lists, in emission order.
    let seed_db = workload::deductive_university(12, 5);
    let mut maintained = MaintainedModel::new(seed_db.facts().clone(), seed_db.rules().clone());
    for update in workload::tc_updates(6, 25, 23) {
        // tc_updates emits edge facts; reuse them as generic churn.
        let flips = maintained.apply(&update);
        let _ = writeln!(
            log,
            "flips {:?}",
            flips.iter().map(|l| l.to_string()).collect::<Vec<_>>()
        );
    }

    // 3. The commit-mix streams and their sequential outcome.
    let (mix_db, streams) = workload::commit_mix(3, 6, 29);
    let mut seq = mix_db;
    for stream in &streams {
        for tx in stream {
            let report = Checker::new(&seq).check(tx);
            let _ = write!(log, "mix {}", report.satisfied);
            for v in &report.violations {
                let _ = write!(log, " {} via {:?}", v.constraint, v.culprit);
            }
            log.push('\n');
            if report.satisfied {
                for u in &tx.updates {
                    seq.apply(u).unwrap();
                }
            }
        }
    }
    for f in seq.facts().iter() {
        let _ = writeln!(log, "mixfact {f}");
    }

    // 4. Commit-pipeline model maintenance: per-commit ModelPath
    //    markers, the maintenance counters, and the post-commit
    //    maintained model's *iteration order* (user-visible through
    //    snapshots) — including a mid-stream schema reset that forces
    //    the rematerialization fallback.
    let (mut mdb, mstreams) = workload::commit_mix(2, 5, 37);
    {
        let mut rules = mdb.rules().rules().to_vec();
        rules.push(parse_rule("vip_flag(X) :- vip(X).").unwrap());
        mdb.set_rules(RuleSet::new(rules).unwrap());
    }
    let queue = CommitQueue::new(mdb);
    let mut committed = 0usize;
    for i in 0..5 {
        for stream in &mstreams {
            let mut t = queue.begin();
            for u in &stream[i].updates {
                t.stage(u.clone());
            }
            let r = queue.commit(&t).unwrap();
            let _ = writeln!(
                log,
                "commit v{} path {:?} effective {}",
                r.version,
                r.model_path,
                r.effective.len()
            );
            committed += 1;
            if committed == 4 {
                queue.update_schema(|db| {
                    let mut rules = db.rules().rules().to_vec();
                    rules.push(parse_rule("audited_vip(X) :- vip(X), audit(X).").unwrap());
                    db.set_rules(RuleSet::new(rules).unwrap());
                });
                let _ = writeln!(log, "schema reset path {:?}", queue.model_path());
            }
        }
    }
    for f in queue.snapshot().model().iter() {
        let _ = writeln!(log, "maintained {f}");
    }
    let _ = writeln!(log, "maintenance {:?}", queue.maintenance());
    // A forced key overlap: the conflict log line (granularity, relation
    // names, version) and the queue's running conflict counters are
    // user-visible and must be order-stable.
    {
        let fact = Fact::parse_like("vip", &["dcheck"]);
        let mut first = queue.begin();
        first.stage(Update::insert(fact.clone()));
        let mut second = queue.begin();
        second.stage(Update::insert(fact));
        queue.commit(&first).unwrap();
        let err = queue.commit(&second).unwrap_err();
        let _ = writeln!(log, "conflict {err}");
        let _ = writeln!(log, "conflictstats {:?}", queue.conflict_stats());
    }

    // 5. Repair sets and certain-answer lists over an inconsistent
    //    state — both user-visible and order-sensitive (repairs in
    //    (size, name) order, answers in rendered-binding order) — plus
    //    the repair deltas AutoRepair folds into a violation-heavy
    //    stream.
    let rdb = workload::violation_state(5, 41);
    let engine = RepairEngine::new(
        rdb.facts().clone(),
        rdb.rules().clone(),
        rdb.constraints().to_vec(),
    );
    match engine.repairs() {
        Ok(report) => {
            for r in &report.repairs {
                let _ = writeln!(log, "repair {r}");
            }
            for q in ["p(X)", "q(X)", "flagged(X)", "s(X, Y)"] {
                let answers = engine.consistent_answers(&parse_query(q).unwrap()).unwrap();
                let rendered: Vec<String> = answers
                    .iter()
                    .map(|b| {
                        b.iter()
                            .map(|(v, c)| format!("{}={}", v.as_str(), c.as_str()))
                            .collect::<Vec<_>>()
                            .join(",")
                    })
                    .collect();
                let _ = writeln!(log, "certain {q} {rendered:?}");
            }
        }
        Err(e) => {
            let _ = writeln!(log, "repair error {e}");
        }
    }
    // 5b. The SAT backend on the same state plus a violation-dense one:
    //     the clause encoding's variable order, the blocking-clause
    //     enumeration order and the CDCL effort counters are all
    //     deterministic by construction, and all user-visible (repairs,
    //     coverage, `RepairStats::solver`). Any nondeterminism in the
    //     encoder's candidate order would show up here first.
    for (name, sdb) in [
        ("mix", workload::violation_state(5, 41)),
        ("dense", workload::violation_dense_db(12, 41)),
    ] {
        let sat_engine = RepairEngine::new(
            sdb.facts().clone(),
            sdb.rules().clone(),
            sdb.constraints().to_vec(),
        )
        .with_options(RepairOptions {
            max_changes: 12,
            backend: RepairBackend::Sat,
            ..RepairOptions::default()
        });
        match sat_engine.repairs() {
            Ok(report) => {
                for r in &report.repairs {
                    let _ = writeln!(log, "satrepair {name} {r}");
                }
                let _ = writeln!(
                    log,
                    "satrepair {name} covers {} solver {:?}",
                    report.covers_all_minimal_repairs(),
                    report.stats.solver
                );
            }
            Err(e) => {
                let _ = writeln!(log, "satrepair {name} error {e}");
            }
        }
        let prefs = RepairPreferences::new().weight("p", 2).weight("q", 3);
        match sat_engine.preferred_repair(&prefs) {
            Ok(best) => {
                let _ = writeln!(log, "preferred {name} {} cost {}", best.repair, best.cost);
            }
            Err(e) => {
                let _ = writeln!(log, "preferred {name} error {e}");
            }
        }
    }

    let auto = ConcurrentDatabase::from_database(
        workload::violation_mix_db(43),
        UniformOptions {
            violation_policy: ViolationPolicy::AutoRepair,
            ..UniformOptions::default()
        },
    );
    for tx in workload::violation_mix_stream(0, 6, 43) {
        match auto.commit_transaction(&tx) {
            Ok(outcome) => {
                let _ = writeln!(
                    log,
                    "auto v{} path {:?} repair {:?}",
                    outcome.version,
                    outcome.model_path,
                    outcome.repair.map(|r| r.to_string())
                );
            }
            Err(e) => {
                let _ = writeln!(log, "auto err {e}");
            }
        }
    }

    // 6. The prepared read path: Rows iteration order (the typed
    //    result set's deterministic order is user-visible), per-query
    //    plan counters and the shared plan-cache stats, at both
    //    consistency levels and across a schema change (stale-rev
    //    re-planning included).
    // Pinned to the `NullClock` obs domain (not `from_env`) so the
    // observability digest below stays bit-identical even when the
    // environment sets `UNIFORM_OBS=1`: counters don't read clocks, and
    // every histogram recording lands in bucket 0.
    let qdb = ConcurrentDatabase::from_database_with_obs(
        workload::violation_state(4, 47),
        UniformOptions::default(),
        std::sync::Arc::new(Obs::null()),
    );
    for src in ["p(X)", "s(X, Y)", "flagged(X)", "r(X), s(X, Y)"] {
        let q = qdb.prepare(src).unwrap();
        let session = qdb.session();
        for level in [Consistency::Latest, Consistency::Certain] {
            match session.execute(&q, &Params::new(), level) {
                Ok(rows) => {
                    let _ = writeln!(log, "rows {src} {level:?} {rows}");
                }
                Err(e) => {
                    let _ = writeln!(log, "rows {src} {level:?} err {e}");
                }
            }
        }
        let _ = writeln!(log, "plan {src} {:?}", q.plan_counters());
    }
    {
        // A rule update moves the revision: the re-planned execution's
        // rows and the plan-miss counter both enter the digest.
        let q = qdb.prepare("flagged(X)").unwrap();
        qdb.try_add_rule("flagged(X) :- r(X), bad(X).").unwrap();
        let rows = qdb
            .session()
            .execute(&q, &Params::new(), Consistency::Latest)
            .unwrap();
        let _ = writeln!(log, "replanned {rows} plan {:?}", q.plan_counters());
    }
    let _ = writeln!(log, "plancache {:?}", qdb.plan_cache_stats());
    // The shared certain-answer cache: one append outside every cached
    // closure, then re-reads through fresh sessions — the carried-
    // forward rows and the hit/miss/carry counters are user-visible
    // and must digest identically across thread counts and processes
    // (all reads here are sequential, so the counters are exact).
    {
        // Prime the cache post-rule-update (the `try_add_rule` above
        // invalidated it wholesale), so the audit append below
        // exercises the carry-forward path, not a cold install.
        for src in ["p(X)", "flagged(X)"] {
            let q = qdb.prepare(src).unwrap();
            let _ = qdb
                .session()
                .execute(&q, &Params::new(), Consistency::Certain);
        }
        let audit = Update::insert(Fact::parse_like("audit", &["determinism"]));
        qdb.commit_updates_with_retry(&[audit], 4).unwrap();
        for src in ["p(X)", "flagged(X)"] {
            let q = qdb.prepare(src).unwrap();
            match qdb
                .session()
                .execute(&q, &Params::new(), Consistency::Certain)
            {
                Ok(rows) => {
                    let _ = writeln!(log, "carried {src} {rows}");
                }
                Err(e) => {
                    let _ = writeln!(log, "carried {src} err {e}");
                }
            }
        }
        let _ = writeln!(log, "certaincache {:?}", qdb.certain_cache_stats());
    }
    // 6b. The unified observability export over the same query
    //     database: sorted counter names and values, plus histogram
    //     bucket counts — never wall-clock values. All reads above are
    //     sequential, so every counter total is exact, and under the
    //     pinned NullClock each histogram is `count` recordings in
    //     bucket 0: the report digests identically across thread
    //     counts, processes, and `UNIFORM_OBS` settings.
    {
        let report = qdb.obs_report();
        for (name, value) in &report.counters {
            let _ = writeln!(log, "obs {name} {value}");
        }
        for (name, snap) in &report.histograms {
            let _ = writeln!(log, "obs {name} buckets {:?}", snap.nonzero());
        }
    }

    // 7. Satisfiability search outcome (frontier order feeds the found
    //    model's explicit facts).
    let schema = Database::parse(
        "
        member(X, Y) :- leads(X, Y).
        constraint c1: forall X: department(X) -> (exists Y: member(Y, X)).
        constraint c2: forall X, Y: leads(X, Y) -> employee(X).
        constraint seeded: exists X: department(X).
        ",
    )
    .unwrap();
    let report = SatChecker::from_database(&schema).check();
    let _ = writeln!(log, "sat {:?}", report.outcome);

    // 8. The static analyzer: diagnostics, per-constraint closures and
    //    the satisfiability classification over two workload schemas —
    //    all rendered through predicate *names* (closures are kept in
    //    `Sym` order internally, which is interning order and must
    //    never reach a digest).
    for (name, adb) in [
        ("org", workload::org(2, 1, 13)),
        ("violation", workload::violation_state(3, 13)),
    ] {
        let analyzed = uniform::Analyzer::of_database(&adb).analyze();
        for d in analyzed.diagnostics() {
            let _ = writeln!(log, "analyze {name} diag {d}");
        }
        for (i, c) in adb.constraints().iter().enumerate() {
            let mut preds: Vec<&str> = analyzed.closure_of(i).iter().map(|p| p.as_str()).collect();
            preds.sort_unstable();
            let _ = writeln!(log, "analyze {name} closure {} {preds:?}", c.name);
        }
        let schema: Vec<&str> = analyzed
            .schema_predicates()
            .iter()
            .map(|p| p.as_str())
            .collect();
        let _ = writeln!(
            log,
            "analyze {name} schema {schema:?} set {}",
            analyzed.set_class()
        );
    }

    log
}

/// Child mode: print the digest and nothing else of substance. Inert
/// unless the driver below sets `UNIFORM_DETERMINISM_CHILD`.
#[test]
fn determinism_digest_child() {
    if std::env::var("UNIFORM_DETERMINISM_CHILD").is_err() {
        return;
    }
    println!("DIGEST={:016x}", fnv1a(&observation_log()));
}

fn child_digest(threads: &str) -> String {
    let exe = std::env::current_exe().expect("test binary path");
    let out = std::process::Command::new(exe)
        .args(["determinism_digest_child", "--exact", "--nocapture"])
        .env("UNIFORM_DETERMINISM_CHILD", "1")
        .env("UNIFORM_THREADS", threads)
        .output()
        .expect("spawn child test binary");
    assert!(out.status.success(), "child failed: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    // With --nocapture the digest may share a line with libtest chatter.
    let at = stdout
        .find("DIGEST=")
        .unwrap_or_else(|| panic!("no digest in child output: {stdout}"));
    stdout[at + "DIGEST=".len()..]
        .chars()
        .take_while(|c| c.is_ascii_hexdigit())
        .collect()
}

#[test]
fn identical_output_within_one_process() {
    assert_eq!(
        fnv1a(&observation_log()),
        fnv1a(&observation_log()),
        "same workload, same process, different output"
    );
}

#[test]
fn identical_output_across_thread_counts() {
    let single = child_digest("1");
    let eight = child_digest("8");
    assert_eq!(
        single, eight,
        "UNIFORM_THREADS=1 vs 8 must produce identical user-visible output"
    );
    // And across independent processes with the same setting (catches
    // per-process hash-seed dependence).
    assert_eq!(single, child_digest("1"));
}
