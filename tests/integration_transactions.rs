//! Transaction semantics end to end: Def. 1 edge cases, net-effect
//! cancellation, atomicity of the guarded path, and interaction with
//! derived predicates.

use uniform::datalog::{Transaction, Update};
use uniform::integrity::Checker;
use uniform::logic::parse_literal;
use uniform::UniformDatabase;
use uniform_workload as workload;

fn upd(src: &str) -> Update {
    Update::from_literal(&parse_literal(src).unwrap()).unwrap()
}

#[test]
fn swap_requires_transaction() {
    // Swapping the leader of a department: neither single step is legal,
    // the transaction is.
    let mut db = UniformDatabase::parse(
        "
        member(X, Y) :- leads(X, Y).
        constraint led: forall X: department(X) -> (exists Y: leads(Y, X)).
        constraint one_lead: forall X, Y, Z: leads(X, Z) & leads(Y, Z) -> same(X, Y).
        same(ann, ann). same(bob, bob).
        department(sales).
        leads(ann, sales).
        ",
    )
    .unwrap();
    assert!(
        db.try_delete("leads(ann, sales).").is_err(),
        "sales would be unled"
    );
    assert!(db.try_insert("leads(bob, sales).").is_err(), "two leaders");
    db.try_update_all(&["not leads(ann, sales)", "leads(bob, sales)"])
        .unwrap();
    assert!(db.query("member(bob, sales)").unwrap());
    assert!(!db.query("member(ann, sales)").unwrap());
}

#[test]
fn cancelling_transaction_is_noop() {
    let db = workload::university(20, 0);
    let checker = Checker::new(&db);
    let tx = Transaction::new(vec![
        upd("student(ghost)"),
        upd("enrolled(ghost, cs)"),
        upd("not enrolled(ghost, cs)"),
        upd("not student(ghost)"),
    ]);
    let rep = checker.check(&tx);
    assert!(rep.satisfied);
    assert_eq!(rep.stats.instances_evaluated, 0, "net effect is empty");
}

#[test]
fn last_write_wins_inside_transaction() {
    let db = UniformDatabase::parse("constraint c: forall X: p(X) -> q(X). q(a).").unwrap();
    // insert p(b) (bad), then delete it again, then insert p(a) (fine).
    let tx = Transaction::new(vec![upd("p(b)"), upd("not p(b)"), upd("p(a)")]);
    let rep = db.check(&tx);
    assert!(rep.satisfied, "{:?}", rep.violations);
}

#[test]
fn transaction_atomicity_on_rejection() {
    let mut db = UniformDatabase::parse("constraint c: forall X: p(X) -> q(X). q(a).").unwrap();
    let before: Vec<String> = db.facts().map(|f| f.to_string()).collect();
    let err = db.try_update_all(&["p(a)", "p(b)"]).unwrap_err();
    assert!(err.to_string().contains('c'));
    let after: Vec<String> = db.facts().map(|f| f.to_string()).collect();
    assert_eq!(
        before, after,
        "rejected transaction must not change the database"
    );
}

#[test]
fn mixed_insert_delete_with_derived_effects() {
    let db = uniform::Database::parse(
        "
        present(X) :- emp(X), not away(X).
        constraint coverage: exists X: present(X).
        emp(a). emp(b). away(b).
        ",
    )
    .unwrap();
    assert!(db.is_consistent());
    let checker = Checker::new(&db);
    // Sending a away while bringing b back keeps coverage.
    let ok = Transaction::new(vec![upd("away(a)"), upd("not away(b)")]);
    assert!(checker.check(&ok).satisfied);
    // Sending a away alone empties the office.
    let bad = Transaction::single(upd("away(a)"));
    assert!(!checker.check(&bad).satisfied);
}

#[test]
fn bulk_transaction_scales() {
    let db = workload::university(200, 0);
    let checker = Checker::new(&db);
    // 50 new students, all correctly enrolled and attending.
    let mut updates = Vec::new();
    for i in 0..50 {
        updates.push(upd(&format!("student(bulk{i})")));
        updates.push(upd(&format!("enrolled(bulk{i}, cs)")));
        updates.push(upd(&format!("attends(bulk{i}, ddb)")));
    }
    let rep = checker.check(&Transaction::new(updates));
    assert!(rep.satisfied, "{:?}", rep.violations.first());

    // Same bulk, one attendance missing: rejected with the right culprit.
    let mut updates = Vec::new();
    for i in 0..50 {
        updates.push(upd(&format!("student(bulk{i})")));
        updates.push(upd(&format!("enrolled(bulk{i}, cs)")));
        if i != 31 {
            updates.push(upd(&format!("attends(bulk{i}, ddb)")));
        }
    }
    let rep = checker.check(&Transaction::new(updates));
    assert!(!rep.satisfied);
    assert!(rep.violations.iter().all(|v| v
        .culprit
        .as_ref()
        .unwrap()
        .to_string()
        .contains("bulk31")));
}

#[test]
fn facade_transaction_report_statistics() {
    let mut db = UniformDatabase::parse(
        "
        member(X, Y) :- leads(X, Y).
        constraint dom: forall X, Y: member(X, Y) -> department(Y).
        department(sales).
        ",
    )
    .unwrap();
    let report = db.try_update_all(&["leads(ann, sales)"]).unwrap();
    assert!(
        report.stats.potential_updates >= 2,
        "leads + derived member patterns"
    );
    assert!(report.satisfied);
}
