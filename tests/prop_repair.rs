//! The repair engine's differential proof: brute force on small
//! domains.
//!
//! Over ≥256 randomized inconsistent states (the `violation_mix`
//! workload: four constraint classes — implication, domain,
//! existential, derived-trigger — over a 3-constant active domain,
//! churned by raw unguarded updates), the suite checks:
//!
//! * **soundness** — every repair the engine emits, applied to the
//!   state, leaves zero violations (full recomputation, not the
//!   engine's own verifier);
//! * **minimality & completeness** — the engine's repair list equals,
//!   set for set, the brute-force enumeration of all subset-minimal
//!   repairs over the *full operation universe* (every deletion of a
//!   current fact, every insertion of a known-predicate fact over the
//!   active domain) up to the shared fact budget;
//! * **certain answers** — `consistent_answers` equals the
//!   intersection of the query's answers over all brute-forced minimal
//!   repairs, each evaluated on a *materialized* repaired database
//!   (the oracle shares nothing with the engine's overlay path);
//! * **AutoRepair maintenance** — committing violation-heavy streams
//!   under `ViolationPolicy::AutoRepair` keeps every post-commit
//!   maintained model bit-identical to `Model::compute` on the
//!   repaired EDB, and the final state consistent.

use std::collections::{BTreeMap, BTreeSet};
use uniform::datalog::satisfies_closed;
use uniform::logic::{parse_query, Literal, Subst, Sym, Term};
use uniform::repair::{RepairEngine, RepairError, RepairOptions, RepairSet, ViolationPolicy};
use uniform::workload;
use uniform::{
    ConcurrentDatabase, Database, Fact, Model, ModelPath, TxnError, UniformOptions, Update,
};

/// The shared fact budget: both the engine and the brute-force oracle
/// enumerate repairs of at most this many operations.
const MAX_CHANGES: usize = 3;

fn options() -> RepairOptions {
    RepairOptions {
        max_changes: MAX_CHANGES,
        max_branches: 500_000,
        max_repairs: 4096,
        domain_cap: 512,
        verify: true,
        ..RepairOptions::default()
    }
}

/// ≥256 randomized states; `PROPTEST_CASES` scales the effort like
/// every other property suite in the repo.
fn schedules() -> u64 {
    u64::from(proptest::ProptestConfig::with_cases(256).effective_cases())
}

/// Does applying `repair` to `db` leave every constraint satisfied?
/// Independent of the engine: materialize and recompute.
fn consistent_after(db: &Database, repair: &RepairSet) -> bool {
    let edb = repair.apply_to(db.facts());
    let model = Model::compute(&edb, db.rules());
    db.constraints()
        .iter()
        .all(|c| satisfies_closed(&model, &c.rq))
}

/// The full operation universe of `db`: deletions of every current
/// fact, insertions of every absent fact over known predicates × the
/// active domain (constants of facts, rules and constraints).
fn op_universe(db: &Database) -> Vec<Update> {
    let mut domain: BTreeSet<String> = db
        .facts()
        .active_domain()
        .iter()
        .map(|s| s.as_str().to_string())
        .collect();
    let mut preds: BTreeMap<String, usize> = BTreeMap::new();
    for p in db.facts().predicates() {
        preds.insert(
            p.as_str().to_string(),
            db.arity_of(p).expect("fact predicates have arities"),
        );
    }
    for r in db.rules().rules() {
        for atom in std::iter::once(&r.head).chain(r.body.iter().map(|l| &l.atom)) {
            preds.insert(atom.pred.as_str().to_string(), atom.args.len());
            for t in &atom.args {
                if let Some(c) = t.as_const() {
                    domain.insert(c.as_str().to_string());
                }
            }
        }
    }
    for c in db.constraints() {
        for occ in c.rq.literals() {
            let atom = &occ.literal.atom;
            preds.insert(atom.pred.as_str().to_string(), atom.args.len());
            for t in &atom.args {
                if let Some(s) = t.as_const() {
                    domain.insert(s.as_str().to_string());
                }
            }
        }
    }
    let domain: Vec<String> = domain.into_iter().collect();

    let mut ops: Vec<Update> = Vec::new();
    let mut facts: Vec<Fact> = db.facts().iter().collect();
    facts.sort();
    for f in facts {
        ops.push(Update::delete(f));
    }
    for (pred, arity) in &preds {
        let mut idx = vec![0usize; *arity];
        if domain.is_empty() && *arity > 0 {
            continue;
        }
        'tuples: loop {
            let args: Vec<&str> = idx.iter().map(|&i| domain[i].as_str()).collect();
            let fact = Fact::parse_like(pred, &args);
            if !db.facts().contains(&fact) {
                ops.push(Update::insert(fact));
            }
            if *arity == 0 {
                break;
            }
            for slot in idx.iter_mut() {
                *slot += 1;
                if *slot < domain.len() {
                    continue 'tuples;
                }
                *slot = 0;
            }
            break;
        }
    }
    ops
}

/// Brute force: every subset of the operation universe up to
/// `MAX_CHANGES` ops, smallest first, keeping the consistent ones that
/// have no smaller consistent subset — i.e. all subset-minimal repairs
/// within the budget.
fn brute_force_minimal(db: &Database) -> Vec<RepairSet> {
    let ops = op_universe(db);
    let mut minimal: Vec<RepairSet> = Vec::new();
    let mut stack: Vec<usize> = Vec::new();
    fn enumerate(
        db: &Database,
        ops: &[Update],
        start: usize,
        stack: &mut Vec<usize>,
        size: usize,
        minimal: &mut Vec<RepairSet>,
    ) {
        if stack.len() == size {
            let rs = RepairSet::from_ops(stack.iter().map(|&i| ops[i].clone()));
            if minimal.iter().any(|m| m.is_subset_of(&rs)) {
                return;
            }
            if consistent_after(db, &rs) {
                minimal.push(rs);
            }
            return;
        }
        for i in start..ops.len() {
            stack.push(i);
            enumerate(db, ops, i + 1, stack, size, minimal);
            stack.pop();
        }
    }
    for size in 0..=MAX_CHANGES {
        enumerate(db, &ops, 0, &mut stack, size, &mut minimal);
    }
    minimal.sort();
    minimal
}

/// Oracle-side certain answers: intersect the query's answers over all
/// `repairs`, each applied to a **materialized** copy of the database
/// (nothing shared with the engine's overlay evaluation).
fn brute_certain_answers(
    db: &Database,
    repairs: &[RepairSet],
    query: &[Literal],
) -> BTreeSet<String> {
    let mut vars: Vec<Sym> = Vec::new();
    for l in query {
        for v in l.vars() {
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
    }
    let mut certain: Option<BTreeSet<String>> = None;
    for repair in repairs {
        let edb = repair.apply_to(db.facts());
        let model = Model::compute(&edb, db.rules());
        let answers: BTreeSet<String> =
            uniform::datalog::all_solutions(&model, query, &mut Subst::new(), &vars)
                .iter()
                .map(|s| render_binding(&vars, s))
                .collect();
        certain = Some(match certain {
            None => answers,
            Some(prev) => prev.intersection(&answers).cloned().collect(),
        });
    }
    certain.unwrap_or_default()
}

fn render_binding(vars: &[Sym], s: &Subst) -> String {
    vars.iter()
        .filter_map(|&v| match s.walk(Term::Var(v)) {
            Term::Const(c) => Some(format!("{}={}", v.as_str(), c.as_str())),
            Term::Var(_) => None,
        })
        .collect::<Vec<_>>()
        .join(",")
}

const QUERIES: &[&str] = &["p(X)", "q(X)", "flagged(X)", "s(X, Y)", "ok(X)"];

#[test]
fn repairs_match_brute_force_over_randomized_states() {
    let mut certain_checked = 0u64;
    for seed in 0..schedules() {
        let churn = 2 + (seed % 5) as usize;
        let db = workload::violation_state(churn, seed);
        let engine = RepairEngine::new(
            db.facts().clone(),
            db.rules().clone(),
            db.constraints().to_vec(),
        )
        .with_options(options());
        let oracle = brute_force_minimal(&db);
        match engine.repairs() {
            Ok(report) => {
                assert!(
                    report.complete,
                    "seed {seed}: enumeration must be exhaustive"
                );
                // (a) Soundness: applied repairs leave zero violations.
                for r in &report.repairs {
                    assert!(
                        consistent_after(&db, r),
                        "seed {seed}: repair {r} does not restore consistency"
                    );
                }
                // (b) Exactly the brute-forced subset-minimal repairs.
                let got: Vec<String> = report.repairs.iter().map(|r| r.to_string()).collect();
                let want: Vec<String> = oracle.iter().map(|r| r.to_string()).collect();
                assert_eq!(
                    got, want,
                    "seed {seed}: repair sets diverge from brute force"
                );
                // (c) Certain answers = intersection over the
                // brute-forced repairs on materialized databases. Only
                // claimable when the fact budget never clipped a branch
                // (then the within-budget repairs are provably ALL
                // minimal repairs); on clipped seeds the API must
                // refuse instead of answering unsoundly.
                if !report.covers_all_minimal_repairs() {
                    let err = engine
                        .consistent_answers(&parse_query(QUERIES[0]).unwrap())
                        .unwrap_err();
                    assert!(
                        matches!(
                            err,
                            RepairError::BudgetExhausted {
                                budget_clipped: true,
                                ..
                            }
                        ),
                        "seed {seed}: clipped enumeration must refuse certainty: {err}"
                    );
                    continue;
                }
                certain_checked += 1;
                for query in QUERIES {
                    let lits = parse_query(query).unwrap();
                    let got: BTreeSet<String> = engine
                        .consistent_answers(&lits)
                        .unwrap()
                        .iter()
                        .map(|binding| {
                            binding
                                .iter()
                                .map(|(v, c)| format!("{}={}", v.as_str(), c.as_str()))
                                .collect::<Vec<_>>()
                                .join(",")
                        })
                        .collect();
                    let want = brute_certain_answers(&db, &oracle, &lits);
                    assert_eq!(got, want, "seed {seed} query {query}");
                }
            }
            Err(RepairError::Unrepairable { .. }) => {
                assert!(
                    oracle.is_empty(),
                    "seed {seed}: engine found nothing, brute force found {oracle:?}"
                );
            }
            Err(e) => panic!("seed {seed}: unexpected repair failure: {e}"),
        }
    }
    assert!(
        certain_checked * 2 >= schedules(),
        "certain-answer oracle must cover most seeds, got {certain_checked}/{}",
        schedules()
    );
}

/// The consistent state must report exactly the empty repair, making
/// `consistent_answer` coincide with plain answering.
#[test]
fn consistent_states_get_the_empty_repair() {
    let db = workload::violation_mix_db(7);
    assert!(db.is_consistent());
    let engine = RepairEngine::new(
        db.facts().clone(),
        db.rules().clone(),
        db.constraints().to_vec(),
    )
    .with_options(options());
    let report = engine.repairs().unwrap();
    assert_eq!(report.repairs.len(), 1);
    assert!(report.repairs[0].is_empty());
    let brute = brute_force_minimal(&db);
    assert_eq!(brute.len(), 1);
    assert!(brute[0].is_empty());
}

/// AutoRepair under multi-writer churn: every admitted commit (repaired
/// or not) leaves the maintained model bit-identical to a from-scratch
/// `Model::compute` of the same snapshot, and the end state consistent.
#[test]
fn auto_repair_commits_keep_the_maintained_model_exact() {
    const WRITERS: usize = 2;
    const TXNS_PER_WRITER: usize = 4;
    const MAX_RETRIES: usize = 64;
    for seed in 0..schedules() {
        let (db, streams) = workload::violation_mix(WRITERS, TXNS_PER_WRITER, seed);
        let cdb = ConcurrentDatabase::from_database(
            db,
            UniformOptions {
                violation_policy: ViolationPolicy::AutoRepair,
                ..UniformOptions::default()
            },
        );
        std::thread::scope(|scope| {
            for stream in &streams {
                let cdb = cdb.clone();
                scope.spawn(move || {
                    for tx in stream {
                        let mut attempts = 0;
                        loop {
                            attempts += 1;
                            let mut txn = cdb.begin();
                            for u in &tx.updates {
                                txn.stage(u.clone());
                            }
                            match cdb.commit(&txn) {
                                Ok(outcome) => {
                                    if !outcome.effective.is_empty() {
                                        assert_eq!(
                                            outcome.model_path,
                                            ModelPath::Maintained,
                                            "seed {seed}: repaired commits maintain too"
                                        );
                                    }
                                    if let Some(repair) = &outcome.repair {
                                        assert!(
                                            !repair.is_empty(),
                                            "seed {seed}: applied repairs are non-trivial"
                                        );
                                    }
                                    let snap = cdb.snapshot();
                                    let fresh = Model::compute(snap.facts(), snap.rules());
                                    let mut got: Vec<String> =
                                        snap.model().iter().map(|f| f.to_string()).collect();
                                    let mut want: Vec<String> =
                                        fresh.iter().map(|f| f.to_string()).collect();
                                    got.sort();
                                    want.sort();
                                    assert_eq!(
                                        got, want,
                                        "seed {seed}: maintained model != rematerialization"
                                    );
                                    break;
                                }
                                Err(e @ TxnError::RepairFailed { .. }) => {
                                    panic!("seed {seed}: {e}")
                                }
                                Err(e) if e.is_retriable() && attempts <= MAX_RETRIES => continue,
                                Err(e) => panic!("seed {seed}: unexpected commit failure: {e}"),
                            }
                        }
                    }
                });
            }
        });
        assert!(
            cdb.with_database(|d| d.is_consistent()),
            "seed {seed}: AutoRepair must land every stream consistently"
        );
    }
}
