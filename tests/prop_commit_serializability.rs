//! The commit pipeline's proof of correctness: differential replay.
//!
//! For each randomized multi-writer schedule:
//!
//! * writer threads push their transaction mix through a shared
//!   [`ConcurrentDatabase`] — snapshot-pinned integrity checks,
//!   first-committer-wins admission, bounded conflict retries;
//! * the admitted transactions are then replayed **sequentially in
//!   commit order** on a copy of the base database: every one must
//!   check clean again, and after each the full-recheck oracle
//!   (`violated_constraints` on the recomputed model) must agree with
//!   the incremental verdict (Decker's incremental-vs-oracle
//!   validation discipline, arXiv:2304.09944);
//! * the final concurrent EDB, canonical model and violation list must
//!   be bit-identical to the sequential replay's;
//! * every *refused* transaction must reproduce the identical violation
//!   list when re-checked against its pinned snapshot, and applying it
//!   to that snapshot's state must make the full recheck report a
//!   violation — the incremental rejection is never a false alarm.

use std::sync::Mutex;
use uniform::datalog::Database;
use uniform::integrity::{CheckReport, Checker};
use uniform::workload;
use uniform::{ConcurrentDatabase, Snapshot, Transaction, TxnError, UniformOptions};

const SCHEDULES: u64 = 256;
const WRITERS: usize = 3;
const TXNS_PER_WRITER: usize = 4;
const MAX_RETRIES: usize = 64;

/// Render a violation list comparably (constraint name + culprit, in
/// report order — order is part of the contract).
fn violation_key(report: &CheckReport) -> Vec<String> {
    report
        .violations
        .iter()
        .map(|v| format!("{}|{:?}", v.constraint, v.culprit))
        .collect()
}

fn sorted_facts(db: &Database) -> Vec<String> {
    let mut out: Vec<String> = db.facts().iter().map(|f| f.to_string()).collect();
    out.sort();
    out
}

fn sorted_model(db: &Database) -> Vec<String> {
    let mut out: Vec<String> = db.model().iter().map(|f| f.to_string()).collect();
    out.sort();
    out
}

struct ScheduleStats {
    committed: usize,
    rejected: usize,
    retried: usize,
}

fn run_schedule(seed: u64) -> ScheduleStats {
    let (base, streams) = workload::commit_mix(WRITERS, TXNS_PER_WRITER, seed);
    let sequential_base = base.clone();
    let cdb = ConcurrentDatabase::from_database(base, UniformOptions::default());

    // (commit version, transaction) for admitted; (pinned snapshot,
    // transaction, report) for integrity-refused.
    let committed: Mutex<Vec<(u64, Transaction)>> = Mutex::new(Vec::new());
    let refused: Mutex<Vec<(Snapshot, Transaction, Box<CheckReport>)>> = Mutex::new(Vec::new());
    let retried = Mutex::new(0usize);

    std::thread::scope(|scope| {
        for stream in &streams {
            let (cdb, committed, refused, retried) = (cdb.clone(), &committed, &refused, &retried);
            scope.spawn(move || {
                for tx in stream {
                    let mut attempts = 0;
                    loop {
                        attempts += 1;
                        let mut txn = cdb.begin();
                        for u in &tx.updates {
                            txn.stage(u.clone());
                        }
                        let snapshot = txn.snapshot().clone();
                        match cdb.commit(&txn) {
                            Ok(outcome) => {
                                committed
                                    .lock()
                                    .unwrap()
                                    .push((outcome.version, tx.clone()));
                                break;
                            }
                            Err(TxnError::Rejected(report)) => {
                                refused.lock().unwrap().push((snapshot, tx.clone(), report));
                                break;
                            }
                            Err(e) if e.is_retriable() && attempts <= MAX_RETRIES => {
                                *retried.lock().unwrap() += 1;
                                continue;
                            }
                            Err(e) => panic!("seed {seed}: unexpected commit failure: {e}"),
                        }
                    }
                }
            });
        }
    });

    // ---- sequential replay in commit order -------------------------------
    let mut log = committed.into_inner().unwrap();
    // Versions are unique for effective commits; no-op commits share the
    // preceding version and commute with everything, so a stable sort is
    // a valid serialization order.
    log.sort_by_key(|&(version, _)| version);

    let mut seq = sequential_base;
    assert!(
        seq.is_consistent(),
        "seed {seed}: base must start consistent"
    );
    for (version, tx) in &log {
        let report = Checker::new(&seq).check(tx);
        assert!(
            report.satisfied,
            "seed {seed}: admitted commit {version} must replay clean sequentially; got {:?}",
            violation_key(&report)
        );
        for u in &tx.updates {
            seq.apply(u).unwrap();
        }
        // Incremental admission vs full-recheck oracle, per transaction.
        let violated = seq.violated_constraints();
        assert!(
            violated.is_empty(),
            "seed {seed}: full recheck disagrees after commit {version}: {violated:?}"
        );
    }

    // ---- bit-identical end states ----------------------------------------
    let (concurrent_facts, concurrent_model, concurrent_violations) = cdb.with_database(|db| {
        (
            sorted_facts(db),
            sorted_model(db),
            db.violated_constraints(),
        )
    });
    assert_eq!(
        concurrent_facts,
        sorted_facts(&seq),
        "seed {seed}: EDB diverged from sequential replay"
    );
    assert_eq!(
        concurrent_model,
        sorted_model(&seq),
        "seed {seed}: canonical model diverged from sequential replay"
    );
    assert_eq!(
        concurrent_violations,
        seq.violated_constraints(),
        "seed {seed}: violation lists diverged"
    );

    // ---- refused transactions --------------------------------------------
    let refused = refused.into_inner().unwrap();
    for (snapshot, tx, report) in &refused {
        // Deterministic: the identical check against the pinned snapshot
        // reproduces the identical violation list, order included.
        let again = Checker::for_snapshot(snapshot).check(tx);
        assert!(!again.satisfied);
        assert_eq!(
            violation_key(report),
            violation_key(&again),
            "seed {seed}: refusal must be reproducible from its snapshot"
        );
        // Oracle: the refusal is real — applying the transaction to the
        // snapshot state makes the full recheck report a violation.
        let mut oracle = Database::with(
            snapshot.facts().clone(),
            snapshot.rules().clone(),
            snapshot.constraints().to_vec(),
        );
        for u in &tx.updates {
            oracle.apply(u).unwrap();
        }
        assert!(
            !oracle.violated_constraints().is_empty(),
            "seed {seed}: incremental check rejected {tx:?} but the full recheck accepts it"
        );
    }

    let retried = *retried.lock().unwrap();
    ScheduleStats {
        committed: log.len(),
        rejected: refused.len(),
        retried,
    }
}

#[test]
fn concurrent_schedules_replay_sequentially_identical() {
    let mut total = ScheduleStats {
        committed: 0,
        rejected: 0,
        retried: 0,
    };
    for seed in 0..SCHEDULES {
        let stats = run_schedule(seed);
        assert_eq!(
            stats.committed + stats.rejected,
            WRITERS * TXNS_PER_WRITER,
            "seed {seed}: every transaction must be admitted or refused"
        );
        total.committed += stats.committed;
        total.rejected += stats.rejected;
        total.retried += stats.retried;
    }
    // The mix must actually exercise both admission outcomes; retries
    // depend on scheduling and may legitimately be zero on one core.
    assert!(total.committed > 0 && total.rejected > 0);
    println!(
        "schedules={SCHEDULES} committed={} rejected={} conflict_retries={}",
        total.committed, total.rejected, total.retried
    );
}

/// A deterministic (thread-free) conflict schedule: the interleaving is
/// forced, so the first-committer-wins outcome — and its sequential
/// equivalence — is asserted exactly, not probabilistically.
#[test]
fn forced_interleaving_matches_sequential_order() {
    let (base, _) = workload::commit_mix(2, 0, 1);
    let sequential_base = base.clone();
    let cdb = ConcurrentDatabase::from_database(base, UniformOptions::default());

    // Both writers pin the same snapshot and write the same `shared`
    // key of the vip/audit pair — conflict detection is per key now, so
    // only an actual tuple overlap (not mere relation overlap) forces
    // the second committer to retry.
    let mk = |tags: &[&str]| {
        Transaction::new(
            tags.iter()
                .flat_map(|tag| {
                    [
                        uniform::Update::insert(uniform::Fact::parse_like("audit", &[tag])),
                        uniform::Update::insert(uniform::Fact::parse_like("vip", &[tag])),
                    ]
                })
                .collect(),
        )
    };
    let (tx1, tx2) = (mk(&["shared"]), mk(&["shared", "beta"]));
    let mut t1 = cdb.begin();
    let mut t2 = cdb.begin();
    for u in &tx1.updates {
        t1.stage(u.clone());
    }
    for u in &tx2.updates {
        t2.stage(u.clone());
    }
    let first = cdb.commit(&t1).unwrap();
    let err = cdb.commit(&t2).unwrap_err();
    assert!(
        matches!(err, TxnError::Conflict { ref relations, .. }
            if relations.iter().any(|s| s.as_str() == "audit" || s.as_str() == "vip")),
        "{err}"
    );
    let second = cdb.commit_transaction(&tx2).unwrap();
    assert!(second.version > first.version);

    // Replay the admitted order sequentially: identical end state.
    let mut seq = sequential_base;
    for tx in [&tx1, &tx2] {
        assert!(Checker::new(&seq).check(tx).satisfied);
        for u in &tx.updates {
            seq.apply(u).unwrap();
        }
    }
    let cfacts = cdb.with_database(sorted_facts);
    assert_eq!(cfacts, sorted_facts(&seq));
    assert_eq!(cdb.with_database(sorted_model), sorted_model(&seq));
}
