//! The SAT backend's differential proof: the bounded enforcement
//! search as oracle.
//!
//! Over ≥256 randomized inconsistent states the suite checks:
//!
//! * **backend agreement** — on every `violation_state` seed where the
//!   search answers, `RepairBackend::Sat` reports the *identical*
//!   minimal-repair list (rendered set for set) and identical certain
//!   answers, and never claims less coverage than the search proved;
//! * **crossover** — on `violation_dense` states starved of branch
//!   budget the search must refuse with `BudgetExhausted` while the
//!   SAT backend (and `RepairBackend::Auto`, escalating) still answers
//!   with the unique covered repair, verified consistent by full
//!   materialized recomputation;
//! * **preference order** — `preferred_repair` under seeded weights
//!   and protections returns a subset-minimal repair that never
//!   touches a protected relation and whose cost equals the
//!   brute-forced weight minimum over *all* protection-respecting
//!   subset-minimal repairs;
//! * **UNSAT-core sanity** — every `Unrepairable` classification from
//!   the SAT backend agrees with [`SatChecker`]'s bounded §4
//!   classification on states where both are defined, and a repair
//!   found by the clause encoding never coexists with an
//!   `Unsatisfiable` verdict from the enforcement search.

use std::collections::{BTreeMap, BTreeSet};
use uniform::datalog::satisfies_closed;
use uniform::logic::{parse_query, Sym};
use uniform::repair::{
    RepairBackend, RepairChooser, RepairEngine, RepairError, RepairOptions, RepairSet,
};
use uniform::workload;
use uniform::{Database, Fact, Model, SatChecker, SatOptions, SatOutcome, Update};

/// The shared fact budget on the `violation_state` seeds (the dense
/// crossover states use their own, sized to the violation count).
const MAX_CHANGES: usize = 3;

fn options(backend: RepairBackend) -> RepairOptions {
    RepairOptions {
        max_changes: MAX_CHANGES,
        max_branches: 500_000,
        max_repairs: 4096,
        domain_cap: 512,
        verify: true,
        backend,
    }
}

fn engine(db: &Database, opts: RepairOptions) -> RepairEngine {
    RepairEngine::new(
        db.facts().clone(),
        db.rules().clone(),
        db.constraints().to_vec(),
    )
    .with_options(opts)
}

/// ≥256 randomized states; `PROPTEST_CASES` scales the effort like
/// every other property suite in the repo.
fn schedules() -> u64 {
    u64::from(proptest::ProptestConfig::with_cases(256).effective_cases())
}

/// Does applying `repair` to `db` leave every constraint satisfied?
/// Independent of both backends: materialize and recompute.
fn consistent_after(db: &Database, repair: &RepairSet) -> bool {
    let edb = repair.apply_to(db.facts());
    let model = Model::compute(&edb, db.rules());
    db.constraints()
        .iter()
        .all(|c| satisfies_closed(&model, &c.rq))
}

fn render(repairs: &[RepairSet]) -> Vec<String> {
    repairs.iter().map(|r| r.to_string()).collect()
}

fn render_answers(answers: &[Vec<(Sym, Sym)>]) -> BTreeSet<String> {
    answers
        .iter()
        .map(|binding| {
            binding
                .iter()
                .map(|(v, c)| format!("{}={}", v.as_str(), c.as_str()))
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect()
}

const QUERIES: &[&str] = &["p(X)", "q(X)", "flagged(X)", "s(X, Y)", "ok(X)"];

/// Both backends on the same randomized states: identical repair
/// lists, identical certain answers, coverage never weaker than the
/// search's own proof.
#[test]
fn sat_backend_matches_the_search_oracle() {
    let mut answers_checked = 0u64;
    for seed in 0..schedules() {
        let churn = 2 + (seed % 5) as usize;
        let db = workload::violation_state(churn, seed);
        let search = engine(&db, options(RepairBackend::Search));
        let sat = engine(&db, options(RepairBackend::Sat));
        match search.repairs() {
            Ok(found) => {
                let clause = sat
                    .repairs()
                    .unwrap_or_else(|e| panic!("seed {seed}: SAT refused a searchable state: {e}"));
                assert_eq!(
                    render(&clause.repairs),
                    render(&found.repairs),
                    "seed {seed}: backend repair lists diverge"
                );
                if found.covers_all_minimal_repairs() {
                    // The search *proved* coverage; the exact SAT
                    // probe must reach the same conclusion, and the
                    // certain answers must agree query for query.
                    assert!(
                        clause.covers_all_minimal_repairs(),
                        "seed {seed}: SAT probe lost coverage the search proved"
                    );
                    answers_checked += 1;
                    for query in QUERIES {
                        let lits = parse_query(query).unwrap();
                        let got = render_answers(&sat.consistent_answers(&lits).unwrap());
                        let want = render_answers(&search.consistent_answers(&lits).unwrap());
                        assert_eq!(got, want, "seed {seed} query {query}");
                    }
                }
            }
            Err(RepairError::Unrepairable { .. }) => {
                let err = sat
                    .repairs()
                    .expect_err("seed {seed}: SAT repaired an unrepairable state");
                assert!(
                    matches!(err, RepairError::Unrepairable { .. }),
                    "seed {seed}: SAT must classify unrepairable states too: {err}"
                );
            }
            Err(e) => panic!("seed {seed}: unexpected search failure: {e}"),
        }
    }
    assert!(
        answers_checked * 2 >= schedules(),
        "certain-answer agreement must cover most seeds, got {answers_checked}/{}",
        schedules()
    );
}

/// Starved of branch budget on violation-dense states, the search
/// refuses; the SAT backend and the Auto escalation both still answer,
/// and the answer is genuinely a repair.
#[test]
fn sat_answers_states_the_search_refuses() {
    for seed in 0..schedules() {
        let n = 10 + (seed % 7) as usize;
        let db = workload::violation_dense_db(n, seed);
        let starved = |backend| RepairOptions {
            max_changes: 24,
            max_branches: 3_000,
            backend,
            ..RepairOptions::default()
        };
        let err = engine(&db, starved(RepairBackend::Search))
            .repairs()
            .expect_err("the dense state exceeds the starved branch budget");
        assert!(
            matches!(err, RepairError::BudgetExhausted { .. }),
            "seed {seed}: the search must refuse, not misclassify: {err}"
        );
        let clause = engine(&db, starved(RepairBackend::Sat))
            .repairs()
            .unwrap_or_else(|e| panic!("seed {seed}: SAT must answer the dense state: {e}"));
        assert_eq!(
            clause.repairs.len(),
            1,
            "seed {seed}: the dense minimal repair is unique"
        );
        assert_eq!(clause.repairs[0].len(), n, "seed {seed}: n deletions");
        assert!(
            clause.covers_all_minimal_repairs(),
            "seed {seed}: the exact probe covers the unique repair"
        );
        assert!(
            consistent_after(&db, &clause.repairs[0]),
            "seed {seed}: the SAT repair must restore consistency"
        );
        let auto = engine(&db, starved(RepairBackend::Auto))
            .repairs()
            .unwrap_or_else(|e| panic!("seed {seed}: Auto must escalate past the refusal: {e}"));
        assert_eq!(
            render(&auto.repairs),
            render(&clause.repairs),
            "seed {seed}: Auto escalation must land on the SAT answer"
        );
    }
}

/// Seeded per-relation weights, pseudo-random protections.
struct SeededPrefs {
    weights: BTreeMap<Sym, u64>,
    protected: BTreeSet<Sym>,
}

impl SeededPrefs {
    /// Weights in 1..=4 (strictly positive, so the weight minimum over
    /// subset-minimal repairs is the minimum over all repairs) keyed
    /// off the state's own predicates; every third seed protects one.
    fn for_db(db: &Database, seed: u64) -> SeededPrefs {
        let mut preds: BTreeSet<Sym> = db.facts().predicates().collect();
        for c in db.constraints() {
            for occ in c.rq.literals() {
                preds.insert(occ.literal.atom.pred);
            }
        }
        let preds: Vec<Sym> = preds.into_iter().collect();
        let weights = preds
            .iter()
            .map(|&p| (p, 1 + (fnv(p.as_str()) ^ seed) % 4))
            .collect();
        let mut protected = BTreeSet::new();
        if seed % 3 == 0 && !preds.is_empty() {
            protected.insert(preds[(seed / 3) as usize % preds.len()]);
        }
        SeededPrefs { weights, protected }
    }

    fn cost(&self, repair: &RepairSet) -> u64 {
        repair.ops().iter().map(|op| self.op_weight(op)).sum()
    }
}

impl RepairChooser for SeededPrefs {
    fn op_weight(&self, op: &Update) -> u64 {
        self.weights.get(&op.fact.pred).copied().unwrap_or(1)
    }

    fn is_protected(&self, op: &Update) -> bool {
        self.protected.contains(&op.fact.pred)
    }
}

fn fnv(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The full operation universe of `db` minus protected relations:
/// deletions of every current fact, insertions of every absent fact
/// over known predicates × the active domain.
fn respecting_ops(db: &Database, prefs: &SeededPrefs) -> Vec<Update> {
    let mut domain: BTreeSet<String> = db
        .facts()
        .active_domain()
        .iter()
        .map(|s| s.as_str().to_string())
        .collect();
    let mut preds: BTreeMap<String, usize> = BTreeMap::new();
    for p in db.facts().predicates() {
        preds.insert(
            p.as_str().to_string(),
            db.arity_of(p).expect("fact predicates have arities"),
        );
    }
    for r in db.rules().rules() {
        for atom in std::iter::once(&r.head).chain(r.body.iter().map(|l| &l.atom)) {
            preds.insert(atom.pred.as_str().to_string(), atom.args.len());
            for t in &atom.args {
                if let Some(c) = t.as_const() {
                    domain.insert(c.as_str().to_string());
                }
            }
        }
    }
    for c in db.constraints() {
        for occ in c.rq.literals() {
            let atom = &occ.literal.atom;
            preds.insert(atom.pred.as_str().to_string(), atom.args.len());
            for t in &atom.args {
                if let Some(s) = t.as_const() {
                    domain.insert(s.as_str().to_string());
                }
            }
        }
    }
    let domain: Vec<String> = domain.into_iter().collect();

    let mut ops: Vec<Update> = Vec::new();
    let mut facts: Vec<Fact> = db.facts().iter().collect();
    facts.sort();
    for f in facts {
        ops.push(Update::delete(f));
    }
    for (pred, arity) in &preds {
        if domain.is_empty() && *arity > 0 {
            continue;
        }
        let mut idx = vec![0usize; *arity];
        'tuples: loop {
            let args: Vec<&str> = idx.iter().map(|&i| domain[i].as_str()).collect();
            let fact = Fact::parse_like(pred, &args);
            if !db.facts().contains(&fact) {
                ops.push(Update::insert(fact));
            }
            if *arity == 0 {
                break;
            }
            for slot in idx.iter_mut() {
                *slot += 1;
                if *slot < domain.len() {
                    continue 'tuples;
                }
                *slot = 0;
            }
            break;
        }
    }
    ops.retain(|op| !prefs.is_protected(op));
    ops
}

/// Brute force over the protection-respecting operation universe: all
/// subset-minimal repairs of at most `MAX_CHANGES` ops.
fn brute_respecting_minimal(db: &Database, prefs: &SeededPrefs) -> Vec<RepairSet> {
    let ops = respecting_ops(db, prefs);
    let mut minimal: Vec<RepairSet> = Vec::new();
    let mut stack: Vec<usize> = Vec::new();
    fn enumerate(
        db: &Database,
        ops: &[Update],
        start: usize,
        stack: &mut Vec<usize>,
        size: usize,
        minimal: &mut Vec<RepairSet>,
    ) {
        if stack.len() == size {
            let rs = RepairSet::from_ops(stack.iter().map(|&i| ops[i].clone()));
            if minimal.iter().any(|m| m.is_subset_of(&rs)) {
                return;
            }
            if consistent_after(db, &rs) {
                minimal.push(rs);
            }
            return;
        }
        for i in start..ops.len() {
            stack.push(i);
            enumerate(db, ops, i + 1, stack, size, minimal);
            stack.pop();
        }
    }
    for size in 0..=MAX_CHANGES {
        enumerate(db, &ops, 0, &mut stack, size, &mut minimal);
    }
    minimal
}

/// The MaxSAT preference order against brute force: the returned
/// repair respects every protection, its cost is the brute-forced
/// weight minimum, and it is one of the min-cost subset-minimal
/// repairs.
#[test]
fn preferred_repairs_respect_protection_and_weight_order() {
    let mut optimized = 0u64;
    for seed in 0..schedules() {
        let churn = 2 + (seed % 5) as usize;
        let db = workload::violation_state(churn, seed);
        let prefs = SeededPrefs::for_db(&db, seed);
        let eng = engine(&db, options(RepairBackend::Sat));
        let oracle = brute_respecting_minimal(&db, &prefs);
        match eng.preferred_repair(&prefs) {
            Ok(best) => {
                assert!(
                    best.repair.ops().iter().all(|op| !prefs.is_protected(op)),
                    "seed {seed}: preferred repair touches a protected relation: {}",
                    best.repair
                );
                assert!(
                    consistent_after(&db, &best.repair),
                    "seed {seed}: preferred repair must restore consistency"
                );
                assert_eq!(
                    best.cost,
                    prefs.cost(&best.repair),
                    "seed {seed}: reported cost must be the chooser sum"
                );
                let min = oracle
                    .iter()
                    .map(|r| prefs.cost(r))
                    .min()
                    .unwrap_or_else(|| {
                        panic!("seed {seed}: engine repaired, brute force found nothing")
                    });
                assert_eq!(
                    best.cost, min,
                    "seed {seed}: cost must be the weight minimum"
                );
                let winners: BTreeSet<String> = oracle
                    .iter()
                    .filter(|r| prefs.cost(r) == min)
                    .map(|r| r.to_string())
                    .collect();
                assert!(
                    winners.contains(&best.repair.to_string()),
                    "seed {seed}: {} is not a min-cost subset-minimal repair",
                    best.repair
                );
                optimized += 1;
            }
            Err(_) => {
                assert!(
                    oracle.is_empty(),
                    "seed {seed}: engine refused, brute force found {oracle:?}"
                );
            }
        }
    }
    assert!(
        optimized * 2 >= schedules(),
        "the preference oracle must cover most seeds, got {optimized}/{}",
        schedules()
    );
}

/// A seeded pool of schemas spanning repairable, unrepairable-in-domain
/// and schema-unsatisfiable states for the classification property.
fn classification_db(seed: u64) -> Database {
    let src = match seed % 6 {
        // Denial plus existence: no database state at all.
        0 => {
            "constraint no_p: forall X: p(X) -> false.\n\
              constraint some_p: exists X: p(X).\n\
              p(a).\n"
        }
        // A plain repairable violation.
        1 => {
            "constraint imp: forall X: p(X) -> q(X).\n\
              p(a).\n\
              p(b).\n"
        }
        // Unsatisfiable through a rule: the derived q is denied.
        2 => {
            "q(X) :- p(X).\n\
              constraint no_q: forall X: q(X) -> false.\n\
              constraint some_p: exists X: p(X).\n\
              p(a).\n"
        }
        // Repairable only by insertion over the active domain.
        3 => {
            "constraint some: exists X: p(X) & q(X).\n\
              r(c).\n"
        }
        // Already consistent: the empty repair.
        4 => {
            "constraint ok: forall X: p(X) -> q(X).\n\
              p(a).\n\
              q(a).\n"
        }
        // Unsatisfiable through a constraint chain.
        _ => {
            "constraint step: forall X: p(X) -> q(X).\n\
              constraint stop: forall X: q(X) -> false.\n\
              constraint some_p: exists X: p(X).\n\
              p(a).\n"
        }
    };
    Database::parse(src).expect("classification schemas parse")
}

/// Satellite: the SAT backend's `Unrepairable` classification versus
/// the §4 enforcement search, two fully independent procedures. A
/// clause-encoded repair is a finite witness, so it must never coexist
/// with an `Unsatisfiable` verdict; and when the bounded checker *is*
/// decisive, `schema_unsatisfiable` must match it exactly.
#[test]
fn unrepairable_classification_agrees_with_the_satisfiability_checker() {
    let mut unsat_seen = 0u64;
    let mut repaired_seen = 0u64;
    for seed in 0..schedules() {
        let db = classification_db(seed);
        let verdict = SatChecker::from_database(&db)
            .with_options(SatOptions::classification())
            .check()
            .outcome;
        match engine(&db, options(RepairBackend::Sat)).repairs() {
            Ok(report) => {
                repaired_seen += 1;
                assert!(
                    !matches!(verdict, SatOutcome::Unsatisfiable),
                    "seed {seed}: a repaired state is a witness, yet the checker proved UNSAT"
                );
                for r in &report.repairs {
                    assert!(
                        consistent_after(&db, r),
                        "seed {seed}: repair {r} does not restore consistency"
                    );
                }
            }
            Err(RepairError::Unrepairable {
                schema_unsatisfiable,
                ..
            }) => {
                match &verdict {
                    SatOutcome::Unsatisfiable => {
                        unsat_seen += 1;
                        assert!(
                            schema_unsatisfiable,
                            "seed {seed}: the checker proved UNSAT, the backend must say so"
                        );
                    }
                    SatOutcome::Satisfiable { .. } => {
                        assert!(
                            !schema_unsatisfiable,
                            "seed {seed}: the checker built a model, the backend claims UNSAT"
                        );
                    }
                    // Both semi-decidable: no verdict, nothing to agree on.
                    SatOutcome::Unknown { .. } => {}
                }
            }
            Err(e) => panic!("seed {seed}: unexpected SAT-backend failure: {e}"),
        }
    }
    assert!(
        unsat_seen > 0 && repaired_seen > 0,
        "the pool must exercise both verdicts, got {unsat_seen} UNSAT / {repaired_seen} repaired"
    );
}
