//! The commit pipeline's model-maintenance proof: a differential oracle.
//!
//! Since the queue owns the canonical model's lifetime (PR 3), every
//! admitted commit flips a [`MaintainedModel`] forward instead of
//! invalidating the cache — so the one invariant everything rests on is
//! that the maintained model is **bit-identical to a from-scratch
//! rematerialization after every admitted commit**. This suite drives
//! ≥256 randomized multi-writer schedules (the `commit_mix` workload,
//! extended with stratified rules so induced updates actually flow) and
//! checks, after every commit and from every writer thread:
//!
//! * the snapshot's model equals `Model::compute(facts, rules)` of the
//!   same snapshot — contents, not provenance;
//! * the violation list evaluated over the maintained model equals the
//!   one evaluated over a freshly recomputed model;
//! * the receipt's [`ModelPath`] marker matches the path that actually
//!   ran: `Maintained` on the incremental path, `Rematerialized` when
//!   maintenance is disabled or a schema/rule update reset it.
//!
//! Schedules rotate through four modes: threaded guarded writers
//! (twice), a sequential raw-queue schedule with a mid-stream rule
//! update forcing the fallback path (and admitting integrity-violating
//! transactions, so violation lists are non-trivially compared), and a
//! maintenance-disabled queue (the rematerialize-always baseline).
//!
//! [`MaintainedModel`]: uniform::datalog::MaintainedModel
//! [`ModelPath`]: uniform::ModelPath

use uniform::datalog::RuleSet;
use uniform::logic::parse_rule;
use uniform::workload;
use uniform::{
    CommitQueue, ConcurrentDatabase, Database, Fact, Model, ModelPath, Rule, Snapshot, Transaction,
    TxnError, UniformOptions, Update,
};

const WRITERS: usize = 3;
const TXNS_PER_WRITER: usize = 4;
const MAX_RETRIES: usize = 64;

/// ≥256 randomized schedules; `PROPTEST_CASES` scales this suite's
/// effort with the same parsing the proptest shim applies to every
/// property test (one implementation, no drift).
fn schedules() -> u64 {
    u64::from(proptest::ProptestConfig::with_cases(256).effective_cases())
}

/// The commit-mix base, extended with stratified rules (including
/// negation) over the shared `vip`/`audit` pair so commits induce
/// derived-fact flips for the maintained model to track.
fn base_with_rules(seed: u64) -> (Database, Vec<Vec<Transaction>>) {
    let (mut db, streams) = workload::commit_mix(WRITERS, TXNS_PER_WRITER, seed);
    let mut rules: Vec<Rule> = db.rules().rules().to_vec();
    for src in [
        "vip_flag(X) :- vip(X).",
        "unaudited_vip(X) :- vip(X), not audit(X).",
        "cleared(X) :- vip_flag(X), audit(X).",
    ] {
        rules.push(parse_rule(src).unwrap());
    }
    db.set_rules(RuleSet::new(rules).unwrap());
    (db, streams)
}

/// The differential oracle: the snapshot's (possibly maintained) model
/// must be bit-identical to a from-scratch rematerialization of the
/// same state, and the violation list evaluated over it must equal the
/// freshly recomputed one.
fn verify_snapshot(snap: &Snapshot, ctx: &str) {
    let fresh = Model::compute(snap.facts(), snap.rules());
    let mut got: Vec<String> = snap.model().iter().map(|f| f.to_string()).collect();
    let mut want: Vec<String> = fresh.iter().map(|f| f.to_string()).collect();
    got.sort();
    want.sort();
    assert_eq!(got, want, "{ctx}: maintained model != rematerialization");

    let oracle = Database::with(
        snap.facts().clone(),
        snap.rules().clone(),
        snap.constraints().to_vec(),
    );
    assert_eq!(
        snap.violated_constraints(),
        oracle.violated_constraints(),
        "{ctx}: violation lists diverged"
    );
}

/// Threaded guarded writers over a maintained queue: every admitted
/// effective commit must take the incremental path and leave a snapshot
/// identical to the oracle.
fn run_guarded_schedule(seed: u64) {
    let (db, streams) = base_with_rules(seed);
    let cdb = ConcurrentDatabase::from_database(db, UniformOptions::default());
    std::thread::scope(|scope| {
        for stream in &streams {
            let cdb = cdb.clone();
            scope.spawn(move || {
                for tx in stream {
                    let mut attempts = 0;
                    loop {
                        attempts += 1;
                        let mut txn = cdb.begin();
                        for u in &tx.updates {
                            txn.stage(u.clone());
                        }
                        match cdb.commit(&txn) {
                            Ok(outcome) => {
                                if !outcome.effective.is_empty() {
                                    assert_eq!(
                                        outcome.model_path,
                                        ModelPath::Maintained,
                                        "seed {seed}: effective guarded commits maintain"
                                    );
                                }
                                verify_snapshot(&cdb.snapshot(), &format!("seed {seed} guarded"));
                                break;
                            }
                            Err(TxnError::Rejected(_)) => break,
                            Err(e) if e.is_retriable() && attempts <= MAX_RETRIES => continue,
                            Err(e) => panic!("seed {seed}: unexpected commit failure: {e}"),
                        }
                    }
                }
            });
        }
    });
    verify_snapshot(&cdb.snapshot(), &format!("seed {seed} guarded final"));
    assert!(cdb.with_database(|d| d.is_consistent()));
}

/// Sequential raw-queue schedule (no integrity guard, so violating
/// transactions are admitted and violation lists are non-trivial), with
/// a mid-stream rule update forcing the rematerialization fallback.
fn run_schema_update_schedule(seed: u64) {
    let (db, streams) = base_with_rules(seed);
    let q = CommitQueue::new(db);
    let mut commits = 0usize;
    for i in 0..TXNS_PER_WRITER {
        for stream in &streams {
            let mut t = q.begin();
            for u in &stream[i].updates {
                t.stage(u.clone());
            }
            let r = q.commit(&t).expect("sequential raw commits admit");
            if !r.effective.is_empty() {
                assert_eq!(
                    r.model_path,
                    ModelPath::Maintained,
                    "seed {seed}: effective raw commits maintain"
                );
            }
            verify_snapshot(&q.snapshot(), &format!("seed {seed} raw commit {commits}"));
            commits += 1;

            if commits == WRITERS + 1 {
                // A rule update cannot be absorbed incrementally: the
                // maintained model resets and the marker flips.
                q.update_schema(|db| {
                    let mut rules = db.rules().rules().to_vec();
                    rules.push(parse_rule("audited_pair(X) :- vip(X), audit(X).").unwrap());
                    db.set_rules(RuleSet::new(rules).unwrap());
                });
                assert_eq!(q.model_path(), ModelPath::Rematerialized);
                verify_snapshot(&q.snapshot(), &format!("seed {seed} post-schema"));
            }
        }
    }
    let counters = q.maintenance();
    assert_eq!(counters.schema_resets, 1, "seed {seed}");
    assert_eq!(counters.bailouts, 0, "seed {seed}");
    assert!(
        counters.maintained > 0,
        "seed {seed}: the incremental path must actually run"
    );
}

/// Maintenance disabled: every effective commit reports the fallback
/// marker and snapshots (which rematerialize) still match the oracle.
fn run_disabled_schedule(seed: u64) {
    let (db, streams) = base_with_rules(seed);
    let q = CommitQueue::without_maintenance(db);
    for i in 0..TXNS_PER_WRITER {
        for stream in &streams {
            let mut t = q.begin();
            for u in &stream[i].updates {
                t.stage(u.clone());
            }
            let r = q.commit(&t).expect("sequential raw commits admit");
            if !r.effective.is_empty() {
                assert_eq!(r.model_path, ModelPath::Rematerialized, "seed {seed}");
            }
            verify_snapshot(&q.snapshot(), &format!("seed {seed} disabled"));
        }
    }
    assert_eq!(q.maintenance().maintained, 0, "seed {seed}");
}

#[test]
fn maintained_model_equals_rematerialization_over_randomized_schedules() {
    for seed in 0..schedules() {
        match seed % 4 {
            0 | 1 => run_guarded_schedule(seed),
            2 => run_schema_update_schedule(seed),
            _ => run_disabled_schedule(seed),
        }
    }
}

/// Recursive rules route maintenance through the stratum-recomputation
/// fallback inside `MaintainedModel`; the commit pipeline must stay
/// bit-identical to the oracle through insert *and* delete churn.
#[test]
fn recursive_rules_maintained_through_commit_churn() {
    let db = Database::parse(
        "
        tc(X, Y) :- edge(X, Y).
        tc(X, Z) :- tc(X, Y), edge(Y, Z).
        reach(X) :- tc(n0, X).
        ",
    )
    .unwrap();
    let q = CommitQueue::new(db);
    for step in 0..60usize {
        let a = format!("n{}", (step * 7) % 6);
        let b = format!("n{}", (step * 5 + 1) % 6);
        let fact = Fact::parse_like("edge", &[&a, &b]);
        let update = if step % 3 == 2 {
            Update::delete(fact)
        } else {
            Update::insert(fact)
        };
        let mut t = q.begin();
        t.stage(update);
        let r = q.commit(&t).unwrap();
        if !r.effective.is_empty() {
            assert_eq!(r.model_path, ModelPath::Maintained, "step {step}");
        }
        verify_snapshot(&q.snapshot(), &format!("tc churn step {step}"));
    }
    assert!(q.maintenance().maintained > 0);
    assert_eq!(q.maintenance().bailouts, 0);
}

/// ROADMAP follow-up from PR 3: a *constraint-only* registry change
/// must not reset the maintained model — constraints never contribute
/// to the canonical model — while still fencing in-flight transactions
/// (their pinned integrity verdicts predate the new constraint set).
/// Rule updates in the same schedule still reset as before.
#[test]
fn constraint_only_registry_changes_keep_the_maintained_model() {
    use uniform::logic::{normalize, parse_formula, Constraint};
    for seed in 0..16u64 {
        let (db, streams) = base_with_rules(seed);
        let q = CommitQueue::new(db);
        // Warm the maintained model with one commit per writer.
        for stream in &streams {
            let mut t = q.begin();
            for u in &stream[0].updates {
                t.stage(u.clone());
            }
            q.commit(&t).unwrap();
            verify_snapshot(&q.snapshot(), &format!("seed {seed} warmup"));
        }
        assert_eq!(q.model_path(), ModelPath::Maintained, "seed {seed}");
        let maintained_before = q.maintenance().maintained;

        // In flight across the constraint change: must be fenced.
        let mut inflight = q.begin();
        inflight.stage(Update::insert(Fact::parse_like("vip", &["fence_probe"])));

        q.update_schema(|db| {
            db.add_constraint(Constraint::new(
                format!("extra{seed}"),
                normalize(&parse_formula("forall X: never(X) -> false").unwrap()).unwrap(),
            ));
        });
        assert_eq!(
            q.model_path(),
            ModelPath::Maintained,
            "seed {seed}: constraint-only change must keep the maintained model"
        );
        assert_eq!(q.maintenance().schema_resets, 0, "seed {seed}");
        assert_eq!(q.maintenance().constraint_only_updates, 1, "seed {seed}");
        verify_snapshot(&q.snapshot(), &format!("seed {seed} post-constraint"));
        assert!(
            matches!(
                q.commit(&inflight),
                Err(uniform::CommitError::SnapshotTooOld { .. })
            ),
            "seed {seed}: constraint changes still fence pinned checks"
        );

        // Maintenance continues on the very same model instance.
        for stream in &streams {
            let mut t = q.begin();
            for u in &stream[1].updates {
                t.stage(u.clone());
            }
            let r = q.commit(&t).unwrap();
            if !r.effective.is_empty() {
                assert_eq!(r.model_path, ModelPath::Maintained, "seed {seed}");
            }
            verify_snapshot(
                &q.snapshot(),
                &format!("seed {seed} post-constraint commit"),
            );
        }
        assert!(
            q.maintenance().maintained > maintained_before,
            "seed {seed}: the incremental path must keep running"
        );

        // A rule update afterwards still resets, as before.
        q.update_schema(|db| {
            let mut rules = db.rules().rules().to_vec();
            rules.push(parse_rule("late(X) :- vip(X).").unwrap());
            db.set_rules(RuleSet::new(rules).unwrap());
        });
        assert_eq!(q.model_path(), ModelPath::Rematerialized, "seed {seed}");
        assert_eq!(q.maintenance().schema_resets, 1, "seed {seed}");
        verify_snapshot(&q.snapshot(), &format!("seed {seed} post-rule"));
    }
}

/// The pipeline survives relations appearing for the first time *after*
/// maintenance started, and model-order determinism holds: replaying
/// the same schedule yields the same maintained iteration order.
#[test]
fn fresh_relations_and_replay_determinism() {
    let steps: [(&str, &[&str]); 4] = [
        ("a", &["x"]),
        ("zzz", &["1"]),
        ("a", &["y"]),
        ("fresh", &["k", "v"]),
    ];
    let run = || -> Vec<String> {
        let q = CommitQueue::new(Database::parse("b(X) :- a(X).").unwrap());
        for (i, (pred, args)) in steps.iter().enumerate() {
            let mut t = q.begin();
            t.insert(Fact::parse_like(pred, args));
            let r = q.commit(&t).unwrap();
            assert!(r.changed(), "step {i}");
            verify_snapshot(&q.snapshot(), &format!("fresh rel step {i}"));
        }
        q.snapshot().model().iter().map(|f| f.to_string()).collect()
    };
    let first = run();
    assert_eq!(first, run(), "maintained model order must be reproducible");
    assert!(first.contains(&"b(y)".to_string()));
}
