//! Smoke: the static analyzer accepts every shipped workload schema.
//!
//! Every `uniform::workload` generator must produce a schema the
//! analyzer is happy with — no error-severity diagnostics, no refusal,
//! and every advisory finding drawn from a small allowlist that this
//! test pins down. A new lint that starts firing on the workloads (or
//! a workload change that trips an existing lint) fails here with the
//! full diagnostic text, which is exactly the review prompt we want.

use std::collections::BTreeSet;
use uniform::{AnalyzeCode, Analyzer, Database, SatClass};

fn schemas(seed: u64) -> Vec<(&'static str, Database)> {
    use uniform::workload as w;
    vec![
        ("university", w::university(4, seed)),
        ("deductive_university", w::deductive_university(4, seed)),
        ("irrelevant_induction", w::irrelevant_induction(4, seed).0),
        (
            "unchanged_rule_instances",
            w::unchanged_rule_instances(3, seed).0,
        ),
        ("shared_subquery", w::shared_subquery_university(3, 2, seed)),
        ("tc_chain", w::tc_chain(5, seed)),
        ("org", w::org(2, 2, seed)),
        ("rule_update", w::rule_update_workload(4, 2, 2, seed)),
        ("optimizer", w::optimizer_workload(6, seed)),
        ("commit_mix", w::commit_mix_db(2, seed)),
        ("hot_relation", w::hot_relation_db(8, seed)),
        ("violation_mix", w::violation_mix_db(seed)),
        ("violation_state", w::violation_state(3, seed)),
        ("violation_dense", w::violation_dense_db(4, seed)),
    ]
}

/// Advisory codes the workloads are allowed to trip. Everything else —
/// and any error-severity finding — fails the smoke test.
const ALLOWED: &[AnalyzeCode] = &[
    AnalyzeCode::SingletonVariable,
    // `irrelevant_induction` stores no `p` facts until its transaction
    // runs, so its induction rule is statically dead on the base state.
    AnalyzeCode::DeadRule,
    AnalyzeCode::UnreachableFromConstraints,
    AnalyzeCode::ClosureCoversSchema,
    AnalyzeCode::TautologicalConstraint,
    AnalyzeCode::SatisfiabilityUnknown,
];

#[test]
fn every_workload_schema_passes_analysis() {
    for seed in [1, 7] {
        for (name, db) in schemas(seed) {
            let analyzed = Analyzer::of_database(&db).analyze();
            let diagnostics = analyzed.diagnostics();
            for d in &diagnostics {
                assert!(
                    !d.is_error(),
                    "{name}/{seed}: workload schema must not error: {d}"
                );
                assert!(
                    ALLOWED.contains(&d.code),
                    "{name}/{seed}: diagnostic outside the smoke allowlist: {d}"
                );
            }
            assert!(
                analyzed.refusal().is_none(),
                "{name}/{seed}: workload schema must not be refused"
            );
            assert_ne!(
                analyzed.set_class(),
                SatClass::Unsatisfiable,
                "{name}/{seed}: workload constraint sets are satisfiable"
            );

            // The precomputed artifacts are coherent: closures cover
            // only schema predicates, and declared relations are
            // name-sorted (the digest surfaces depend on it).
            let schema: BTreeSet<_> = analyzed.schema_predicates().iter().copied().collect();
            assert!(analyzed.closure_union().iter().all(|p| schema.contains(p)));
            assert!(analyzed
                .declared()
                .windows(2)
                .all(|w| w[0].0.as_str() <= w[1].0.as_str()));
        }
    }
}
