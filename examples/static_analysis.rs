//! Static analysis: lint a schema and refuse the unusable ones — all
//! before a single fact is stored.
//!
//! ```sh
//! cargo run --example static_analysis
//! ```
//!
//! The paper's satisfiability half (§4) is a *schema-time* property:
//! whether a constraint set admits any database state does not depend
//! on the facts. `uniform::analyze` pushes the whole class of
//! schema-time questions to registration time — stable `UAxxxx` lints
//! over rules and constraints, precomputed dependency artifacts, and a
//! bounded satisfiability classification whose `UA0301` verdict the
//! façade turns into a typed refusal.

use uniform::analyze::analyze_source;
use uniform::{UniformDatabase, UniformError};

fn main() {
    // 1. Lint a schema from source: findings carry stable codes and
    //    line:column spans.
    println!("== linting a schema ==\n");
    let report = analyze_source(
        "
        boss(X) :- leads(X, Y).
        review(X, Y) :- employee(X), auditor(Y).

        constraint led: forall X: department(X) -> (exists Y: leads(Y, X)).

        employee(ann). department(sales). leads(ann, sales).
        ",
    )
    .expect("the schema is well-formed");
    for d in report.lint_diagnostics() {
        println!("  {d}");
    }

    // 2. The precomputed artifacts: per-constraint predicate closures —
    //    what commits must intersect to invalidate cached verdicts.
    println!("\n== constraint closures ==\n");
    for (i, c) in report.constraints().iter().enumerate() {
        let mut preds: Vec<&str> = report.closure_of(i).iter().map(|p| p.as_str()).collect();
        preds.sort_unstable();
        println!("  {}: {}", c.name, preds.join(", "));
    }
    println!("  set classifies as: {}", report.set_class());

    // 3. The façade consults the same analysis when the schema changes:
    //    an unsatisfiable candidate set is refused with UA0301 — no
    //    database state could ever satisfy it, so no repair is offered.
    println!("\n== guarded schema change ==\n");
    let mut db = UniformDatabase::parse(
        "
        constraint some_dept: exists X: department(X).
        constraint led: forall X: department(X) -> (exists Y: leads(Y, X)).
        department(sales). leads(ann, sales).
        ",
    )
    .expect("initially consistent");
    match db.try_add_constraint("no_leads", "forall X, Y: leads(X, Y) -> false") {
        Err(UniformError::Analyze(e)) => {
            let code = e.primary().map(|d| d.code.as_str()).unwrap_or("?");
            println!("  no_leads rejected [{code}]: {e}");
        }
        other => panic!("expected a static refusal, got {other:?}"),
    }

    // A satisfiable-but-violated constraint takes the other path: the
    // engine proposes the repair instead of refusing the schema.
    match db.try_add_constraint("audited", "forall X: department(X) -> audited(X)") {
        Err(UniformError::CurrentlyViolated { constraint, repair }) => {
            println!("  {constraint} is violated right now; suggested repair: {repair:?}");
        }
        other => panic!("expected CurrentlyViolated, got {other:?}"),
    }
}
