//! Conditional (bulk) updates — §3.2's closing generalization.
//!
//! ```sh
//! cargo run --example bulk_updates
//! ```
//!
//! A registrar's database: students enroll in courses; failing the exam
//! of a course voids its prerequisites downstream. End-of-term
//! housekeeping is naturally expressed as *conditional updates* — one
//! update pattern plus a query that says where it applies — instead of
//! hand-written loops. Each conditional update is compiled to update
//! constraints **once**, from its pattern alone (no fact access), and
//! then checked against the expansion the way any transaction is.

use uniform::integrity::{Checker, ConditionalUpdate};
use uniform::{Database, UniformDatabase};

fn main() {
    let mut db = UniformDatabase::parse(
        "
        % Derived: a student in good standing attends and has not failed.
        standing(S) :- enrolled(S, C), not failed(S).

        % Constraints.
        constraint enrolled_students: forall S, C: enrolled(S, C) -> student(S).
        constraint honored_standing:  forall S: honors(S) -> standing(S).
        constraint no_failed_honors:  forall S: honors(S) & failed(S) -> false.

        % Term data.
        student(ada).    enrolled(ada, databases).  enrolled(ada, logic).
        student(berta).  enrolled(berta, databases).
        student(carl).   enrolled(carl, logic).     failed(carl).
        ",
    )
    .expect("well-formed and consistent");

    println!("== end-of-term housekeeping with conditional updates ==\n");

    // 1. Award honors to every student in good standing.
    let award = "honors(S) where student(S), standing(S)";
    match db.try_apply_where(award) {
        Ok(report) => println!(
            "apply `{award}`\n  -> ok ({} instances evaluated, {} shared)\n",
            report.stats.instances_evaluated, report.stats.instances_shared
        ),
        Err(e) => println!("apply `{award}`\n  -> rejected: {e}\n"),
    }
    println!("honors(ada)?   {}", db.query("honors(ada)").unwrap());
    println!("honors(carl)?  {}\n", db.query("honors(carl)").unwrap());

    // 2. A careless bulk award — every *student* — would honor carl, who
    //    failed. The guard rejects the whole expansion atomically.
    let careless = "honors(S) where student(S)";
    match db.try_apply_where(careless) {
        Ok(_) => unreachable!("must be rejected"),
        Err(e) => println!("apply `{careless}`\n  -> rejected: {e}\n"),
    }

    // 3. Unenroll failed students from everything they took.
    let unenroll = "not enrolled(S, C) where enrolled(S, C), failed(S)";
    match db.try_apply_where(unenroll) {
        Ok(_) => println!("apply `{unenroll}`\n  -> ok\n"),
        Err(e) => println!("apply `{unenroll}`\n  -> rejected: {e}\n"),
    }
    println!(
        "carl still enrolled somewhere?  {}",
        db.query("exists C: enrolled(carl, C)").unwrap()
    );

    // 4. The compile-once property: the same conditional shape, compiled
    //    against an empty database, evaluates correctly on any state.
    println!("\n== compile once, evaluate anywhere ==\n");
    let schema_only = Database::parse(
        "
        constraint no_failed_honors: forall S: honors(S) & failed(S) -> false.
        ",
    )
    .unwrap();
    let checker = Checker::new(&schema_only);
    let cu = ConditionalUpdate::parse("honors(S) where student(S)").unwrap();
    let compiled = checker.compile_conditional(&cu);
    println!(
        "compiled `{cu}` fact-free: {} potential update(s), {} update constraint(s)",
        compiled.potential.len(),
        compiled.update_constraints.len()
    );

    for facts in ["student(x).", "student(x). failed(x)."] {
        let mut src = String::from(
            "constraint no_failed_honors: forall S: honors(S) & failed(S) -> false.\n",
        );
        src.push_str(facts);
        let state = Database::parse(&src).unwrap();
        let checker = Checker::new(&state);
        let tx = checker.expand_conditional(&cu);
        let report = checker.evaluate(&compiled, &tx);
        println!(
            "  on state {{{facts}}} -> {}",
            if report.satisfied {
                "accepted"
            } else {
                "rejected"
            }
        );
    }
}
