//! The worked example of §5 of the paper, reproduced end to end.
//!
//! ```sh
//! cargo run --example paper_example
//! ```
//!
//! Runs the satisfiability checker on the employee/department constraint
//! set exactly as printed (unsatisfiable — every way of leading a
//! department bottoms out in `subordinate(x, x)`), prints the enforcement
//! trace mirroring the paper's level-by-level narrative, then checks the
//! repaired variant from the end of §5 and prints the finite model it
//! admits.

use uniform::satisfiability::problems::{paper_example, paper_example_repaired};
use uniform::{SatOptions, SatOutcome};

fn main() {
    println!("=== §5 example, as printed ===");
    let original = paper_example();
    for c in &original.constraints {
        println!("  {c}");
    }
    for r in &original.rules {
        println!("  rule: {r}");
    }

    let report = original
        .checker_with(SatOptions {
            trace: true,
            ..SatOptions::default()
        })
        .check();
    println!("\n--- enforcement trace (search order: reuse, known constants, fresh) ---");
    for line in &report.trace {
        println!("  {line}");
    }
    println!("\noutcome: {:?}", report.outcome);
    println!(
        "stats: {} attempts, {} enforcement steps, {} assertions, {} undo events, deepest level {}",
        report.stats.attempts,
        report.stats.enforcement_steps,
        report.stats.assertions,
        report.stats.undo_events,
        report.stats.max_level,
    );
    assert_eq!(
        report.outcome,
        SatOutcome::Unsatisfiable,
        "§5 set must be refuted"
    );

    println!("\n=== §5 example with constraint (3) weakened ===");
    println!("  (leaders exempt from the subordination requirement)");
    let repaired = paper_example_repaired();
    let report = repaired.checker().check();
    match &report.outcome {
        SatOutcome::Satisfiable { explicit, model } => {
            println!("finitely satisfiable. sample fact base:");
            for f in explicit {
                println!("  {f}");
            }
            println!("canonical model (with member derived through the rule):");
            for f in model {
                println!("  {f}");
            }
        }
        other => panic!("expected a finite model, got {other:?}"),
    }
}
