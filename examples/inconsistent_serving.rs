//! Inconsistency-tolerant serving: minimal repairs, certain answers
//! through the prepared read path, and the violation policies of the
//! commit pipeline.
//!
//! ```sh
//! cargo run --example inconsistent_serving
//! ```

use uniform::{
    ConcurrentDatabase, Consistency, Fact, Params, PreparedQuery, UniformDatabase, UniformOptions,
    Update, ViolationPolicy,
};

fn main() {
    // An external load left the data inconsistent: jack and jill are
    // enrolled, but only jill attends the mandatory course.
    let db = UniformDatabase::parse_tolerant(
        "
        enrolled(X, cs) :- student(X).
        constraint cdb: forall X: student(X) & enrolled(X, cs) -> attends(X, ddb).
        student(jack). student(jill).
        attends(jill, ddb).
    ",
    )
    .unwrap();

    println!("minimal repairs of the loaded state:");
    for repair in db.minimal_repairs().unwrap() {
        println!("  {repair}");
    }

    // One prepared query, two consistency levels — the read path the
    // paper's uniform treatment suggests. `Latest` answers against the
    // canonical model as loaded; `Certain` serves only what is true in
    // EVERY minimal repair: jill is certainly enrolled; jack's
    // enrollment depends on which repair you pick (expelling him vs.
    // marking him as attending), so it is not certain. The session
    // enumerates the repairs once and reuses them per execute.
    let enrolled = PreparedQuery::prepare_with_params("enrolled(X, C)", &["C"]).unwrap();
    let session = db.session();
    let course = Params::new().bind("C", "cs");
    for level in [Consistency::Latest, Consistency::Certain] {
        let rows = session.execute(&enrolled, &course, level).unwrap();
        println!("{level:?} enrolled(X, cs): {rows}");
    }

    // The commit pipeline can explain or auto-repair violations.
    let cdb = ConcurrentDatabase::parse(
        "
        enrolled(X, cs) :- student(X).
        constraint cdb: forall X: student(X) & enrolled(X, cs) -> attends(X, ddb).
        student(jill). attends(jill, ddb).
    ",
    )
    .unwrap();

    // Explain: rejected, but the error names the minimal repair.
    let mut txn = cdb.begin();
    txn.stage(Update::insert(Fact::parse_like("student", &["zoe"])));
    let err = cdb
        .commit_with_policy(&txn, ViolationPolicy::Explain)
        .unwrap_err();
    println!("explain: {err}");

    // AutoRepair: the repair delta is folded into the commit itself.
    let auto = ConcurrentDatabase::from_database(
        uniform::Database::parse(
            "
            enrolled(X, cs) :- student(X).
            constraint cdb: forall X: student(X) & enrolled(X, cs) -> attends(X, ddb).
            student(jill). attends(jill, ddb).
        ",
        )
        .unwrap(),
        UniformOptions {
            violation_policy: ViolationPolicy::AutoRepair,
            ..UniformOptions::default()
        },
    );
    let mut txn = auto.begin();
    txn.stage(Update::insert(Fact::parse_like("student", &["zoe"])));
    let outcome = auto.commit(&txn).unwrap();
    println!(
        "auto-repaired commit at v{} with delta {}",
        outcome.version,
        outcome.repair.expect("a repair was folded in")
    );
    assert!(auto.with_database(|d| d.is_consistent()));
}
