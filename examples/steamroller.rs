//! Schubert's steamroller through the satisfiability checker — the
//! canonical model-generation benchmark of the paper's era (§6 reports
//! "promising efficiency … on well-known benchmark examples from the
//! theorem-proving literature").
//!
//! ```sh
//! cargo run --release --example steamroller
//! ```
//!
//! The axioms plus the negated conclusion are unsatisfiable; refuting
//! them proves that some animal eats a grain-eating animal. The example
//! also runs the rest of the benchmark suite.

use uniform::satisfiability::problems::{self, Expectation};
use uniform::SatOutcome;

fn main() {
    let steamroller = problems::steamroller();
    println!(
        "=== Schubert's steamroller ({} axioms) ===",
        steamroller.constraints.len()
    );
    let t0 = std::time::Instant::now();
    let report = steamroller.checker().check();
    let elapsed = t0.elapsed();
    println!("outcome: {:?}", report.outcome);
    println!(
        "refuted in {elapsed:.1?}: {} enforcement steps, {} assertions, {} undo events",
        report.stats.enforcement_steps, report.stats.assertions, report.stats.undo_events
    );
    assert_eq!(report.outcome, SatOutcome::Unsatisfiable);

    println!("\n=== full benchmark suite ===");
    println!(
        "{:<24} {:>14} {:>10} {:>8} {:>8}",
        "problem", "expected", "outcome", "steps", "time"
    );
    for p in problems::suite() {
        let t0 = std::time::Instant::now();
        let report = p.checker().check();
        let elapsed = t0.elapsed();
        let outcome = match report.outcome {
            SatOutcome::Satisfiable { .. } => "sat",
            SatOutcome::Unsatisfiable => "unsat",
            SatOutcome::Unknown { .. } => "unknown",
        };
        let expected = match p.expected {
            Expectation::Satisfiable => "sat",
            Expectation::Unsatisfiable => "unsat",
            Expectation::Infinite => "unknown",
        };
        assert_eq!(outcome, expected, "{}", p.name);
        println!(
            "{:<24} {:>14} {:>10} {:>8} {:>7.1?}",
            p.name, expected, outcome, report.stats.enforcement_steps, elapsed
        );
    }
    println!("\nall outcomes match expectations.");
}
