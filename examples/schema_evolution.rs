//! Schema evolution: constraint and rule updates, guarded the paper's way.
//!
//! ```sh
//! cargo run --example schema_evolution
//! ```
//!
//! The second half of the paper (§4) exists for exactly this workflow:
//! constraints and rules change over a system's life, and three distinct
//! failure modes must be told apart —
//!
//! 1. the new schema is **unsatisfiable** (no database state could ever
//!    satisfy it): reject outright, no facts can fix it;
//! 2. the new constraint is satisfiable but **violated right now**:
//!    reject, and *suggest the repair* the model-generation search found;
//! 3. a new or removed **rule** changes derived facts so that existing
//!    constraints break: checked *incrementally* — rule updates act like
//!    conditional updates (§3.2), so only constraints relevant to what
//!    the rule can derive are evaluated.

use uniform::integrity::{check_rule_update, RuleUpdate};
use uniform::logic::parse_rule;
use uniform::{UniformDatabase, UniformError};

fn main() {
    let mut db = UniformDatabase::parse(
        "
        member(X, Y) :- leads(X, Y).

        constraint led:        forall X: department(X) -> (exists Y: employee(Y) & leads(Y, X)).
        constraint emp_member: forall X: employee(X) -> (exists Y: member(X, Y)).

        employee(ann).   department(sales).  leads(ann, sales).
        employee(bob).   department(dev).    leads(bob, dev).
        ",
    )
    .expect("initially consistent");

    println!("== adding constraints ==\n");

    // Accepted: satisfiable and already satisfied.
    let dom = "forall X, Y: leads(X, Y) -> employee(X)";
    match db.try_add_constraint("leader_dom", dom) {
        Ok(()) => println!("add leader_dom: `{dom}`\n  -> accepted\n"),
        Err(e) => println!("add leader_dom -> {e}\n"),
    }

    // Violated now, but satisfiable: the error carries the smallest
    // minimal repair of the would-be state (the RepairEngine's, so it
    // never disagrees with `minimal_repairs`).
    let audited = "forall X, Y: leads(X, Y) -> audited(X)";
    match db.try_add_constraint("audited_leads", audited) {
        Err(UniformError::CurrentlyViolated { constraint, repair }) => {
            println!("add {constraint}: `{audited}`\n  -> violated by the current state");
            if let Some(repair) = &repair {
                println!("  -> suggested repair: {repair}");
                // Take the suggestion, then retry.
                for op in repair.ops() {
                    if op.insert {
                        db.try_insert(&op.fact.to_string())
                            .expect("repair insertions are safe");
                    } else {
                        db.try_delete(&op.fact.to_string())
                            .expect("repair deletions are safe");
                    }
                }
                db.try_add_constraint("audited_leads", audited)
                    .expect("accepted after repair");
                println!("  -> applied repair; constraint accepted\n");
            }
        }
        other => println!("unexpected: {other:?}\n"),
    }

    // Unsatisfiable with what is already there: once some department
    // must exist, `led` forces a leader — forbidding leaders leaves no
    // model at all. The satisfiability check (§4) fires before any fact
    // is consulted; no update could ever repair this.
    db.try_add_constraint("some_dept", "exists X: department(X)")
        .expect("satisfied: sales exists");
    let nobody = "forall X, Y: leads(X, Y) -> false";
    match db.try_add_constraint("nobody_leads", nobody) {
        Err(UniformError::Analyze(e)) => {
            println!("add nobody_leads: `{nobody}`\n  -> rejected [{}]: unsatisfiable with `led` + `some_dept`; no repair can exist\n",
                e.primary().map(|d| d.code.as_str()).unwrap_or("?"))
        }
        other => println!("unexpected: {other:?}\n"),
    }

    println!("== rule updates, checked incrementally ==\n");

    // A benign derived predicate.
    match db.try_add_rule("boss(X) :- leads(X, Y).") {
        Ok(()) => println!("add rule boss/1      -> accepted (no constraint mentions boss)"),
        Err(e) => println!("add rule boss/1      -> {e}"),
    }

    // A rule whose derivations violate a constraint. With `some_dept`
    // and `led` in scope every model must contain a leading employee,
    // so the rule makes the *schema* unsatisfiable under `no_self_sub`
    // and the §4 guard fires before any fact is consulted; without
    // those constraints the incremental state check would reject it
    // with the culprit derivation instead. Both guards are shown.
    db.try_add_constraint("no_self_sub", "forall X: subordinate(X, X) -> false")
        .expect("satisfiable and satisfied");
    match db.try_add_rule("subordinate(X, X) :- employee(X).") {
        Err(UniformError::Analyze(_)) => println!(
            "add rule subordinate -> rejected by the satisfiability guard: every model of \
             `some_dept` + `led` contains a leading employee, whom the rule would make their \
             own subordinate — no database state could satisfy the schema"
        ),
        Err(UniformError::UpdateRejected(report)) => {
            let v = &report.violations[0];
            println!(
                "add rule subordinate -> rejected: {} (culprit {}; {} instance(s) evaluated, not the whole constraint set)",
                v.constraint,
                v.culprit.as_ref().map(|c| c.to_string()).unwrap_or_default(),
                report.stats.instances_evaluated,
            );
        }
        other => println!("unexpected: {other:?}"),
    }

    // Removing a load-bearing rule: ann and bob are members only through
    // the rule; dropping it would violate emp_member.
    match db.try_remove_rule("member(X, Y) :- leads(X, Y).") {
        Err(UniformError::UpdateRejected(report)) => println!(
            "remove rule member   -> rejected: {} (via {})",
            report.violations[0].constraint,
            report.violations[0]
                .culprit
                .as_ref()
                .map(|c| c.to_string())
                .unwrap_or_default(),
        ),
        other => println!("unexpected: {other:?}"),
    }

    // Materialize the memberships, then removal goes through.
    db.try_update_all(&["member(ann, sales)", "member(bob, dev)"])
        .expect("explicit members are fine");
    match db.try_remove_rule("member(X, Y) :- leads(X, Y).") {
        Ok(true) => println!("remove rule member   -> accepted once memberships are explicit"),
        other => println!("unexpected: {other:?}"),
    }

    println!("\n== what the incremental check saves ==\n");

    // Compare the work of the incremental rule-update check against the
    // full re-check a naive system performs, on a database where only
    // one of many constraints is relevant to the rule.
    let big = UniformDatabase::parse(
        "
        constraint c_loud: forall X: loud(X) -> warned(X).
        constraint c_a: forall X: pa(X) -> qa(X).
        constraint c_b: forall X: pb(X) -> qb(X).
        constraint c_c: forall X: pc(X) -> qc(X).
        constraint c_d: forall X: pd(X) -> qd(X).
        speaker(s1). speaker(s2). warned(s1). warned(s2).
        ",
    )
    .unwrap();
    let update = RuleUpdate::Add(parse_rule("loud(X) :- speaker(X).").unwrap());
    let report = check_rule_update(big.database(), &update).unwrap();
    println!(
        "incremental: {} of 5 constraints compiled into update constraints, {} instance(s) evaluated -> {}",
        report.stats.update_constraints,
        report.stats.instances_evaluated,
        if report.satisfied { "accepted" } else { "rejected" },
    );
    println!("full re-check would evaluate all 5 constraints over the whole state.");
}
