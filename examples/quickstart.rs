//! Quickstart: a guarded deductive database in ten minutes.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Shows the two halves of the uniform approach on a tiny personnel
//! database: updates checked with the integrity-maintenance method, and
//! schema changes checked with the finite-satisfiability method — plus
//! the typed read path: prepared queries executed through a session.

use uniform::{Consistency, Params, PreparedQuery, UniformDatabase};

fn main() {
    let mut db = UniformDatabase::parse(
        "
        % Deduction rule: whoever leads a department is a member of it.
        member(X, Y) :- leads(X, Y).

        % Integrity constraints.
        constraint led:        forall X: department(X) -> (exists Y: employee(Y) & leads(Y, X)).
        constraint emp_member: forall X: employee(X) -> (exists Y: member(X, Y)).
        constraint member_dom: forall X, Y: member(X, Y) -> department(Y).

        % Initial facts.
        employee(ann).
        department(sales).
        leads(ann, sales).
        ",
    )
    .expect("program is well-formed and initially consistent");

    println!("== queries: prepare once, execute many ==");
    // Parse + plan happen here, once; `execute` only evaluates. The
    // `D` variable is a named parameter bound per call.
    let members = PreparedQuery::prepare_with_params("member(X, D)", &["D"]).unwrap();
    let led = PreparedQuery::prepare_formula("exists X: member(ann, X)").unwrap();
    let session = db.session(); // pins a snapshot of the current state
    let rows = session
        .execute(
            &members,
            &Params::new().bind("D", "sales"),
            Consistency::Latest,
        )
        .unwrap();
    println!("member(X, sales)?              {rows}");
    println!(
        "exists X: member(ann, X)?      {}",
        session
            .execute(&led, &Params::new(), Consistency::Latest)
            .unwrap()
            .is_true()
    );

    println!("\n== guarded updates ==");
    // Inserting a dangling department violates `led`.
    match db.try_insert("department(hr).") {
        Ok(_) => unreachable!(),
        Err(e) => println!("insert department(hr)          -> {e}"),
    }
    // The same change as a transaction with a leader is fine.
    let report = db
        .try_update_all(&["department(hr)", "employee(bob)", "leads(bob, hr)"])
        .expect("transaction preserves integrity");
    println!(
        "tx {{department(hr), employee(bob), leads(bob, hr)}} accepted \
         ({} instances evaluated, {} potential updates)",
        report.stats.instances_evaluated, report.stats.potential_updates
    );
    // Sessions pin their snapshot; a fresh one sees the commit —
    // through the same prepared plan.
    println!(
        "member(X, hr)? (new session)   {}",
        db.session()
            .execute(
                &members,
                &Params::new().bind("D", "hr"),
                Consistency::Latest
            )
            .unwrap()
    );

    // Deleting ann's leadership would leave sales unled.
    match db.try_delete("leads(ann, sales).") {
        Ok(_) => unreachable!(),
        Err(e) => println!("delete leads(ann, sales)       -> {e}"),
    }

    println!("\n== guarded schema changes ==");
    // A constraint that is satisfiable but currently violated: the error
    // suggests a repair (computed by the model-generation search seeded
    // with the current facts).
    match db.try_add_constraint("audited", "forall X, Y: leads(X, Y) -> audited(X)") {
        Ok(_) => unreachable!(),
        Err(e) => println!("add `audited`                  -> {e}"),
    }

    // Apply the repair and retry.
    db.try_update_all(&["audited(ann)", "audited(bob)"])
        .unwrap();
    db.try_add_constraint("audited", "forall X, Y: leads(X, Y) -> audited(X)")
        .unwrap();
    println!("add `audited` after repair     -> accepted");

    // A constraint making the whole schema unsatisfiable is rejected
    // outright, no matter the facts.
    db.try_add_constraint("some_dept", "exists X: department(X)")
        .unwrap();
    match db.try_add_constraint("nobody", "forall X, Y: leads(X, Y) -> false") {
        Ok(_) => unreachable!(),
        Err(e) => println!("add `nobody`                   -> {e}"),
    }

    println!("\n== final state ==");
    let mut facts: Vec<String> = db.facts().map(|f| f.to_string()).collect();
    facts.sort();
    println!("{}", facts.join("\n"));
}
