//! An interactive shell over [`uniform::UniformDatabase`].
//!
//! ```sh
//! cargo run --example repl
//! ```
//!
//! Commands:
//!
//! ```text
//! fact(a, b).                       guarded insertion
//! - fact(a, b).                     guarded deletion
//! lit(X) where cond(X), ...         guarded conditional (bulk) update
//! head(X) :- body(X).               guarded rule addition (incremental)
//! :delrule head(X) :- body(X).      guarded rule removal (incremental)
//! constraint name: <formula>.       guarded constraint addition
//! :delconstraint name               constraint removal
//! ? <closed formula>                truth query
//! ?- lit1(X), not lit2(X)           conjunctive query with answers
//! :facts  :rules  :constraints      inspect state
//! :sat                              check schema satisfiability
//! :check <literal>                  dry-run an update
//! :why fact(a, b).                  derivation tree of a model fact
//! :save <path>  :load <path>        persist / restore the program
//! :help   :quit
//! ```

use std::io::{BufRead, Write};
use uniform::datalog::{Transaction, Update};
use uniform::logic::parse_literal;
use uniform::{SatOutcome, UniformDatabase};

fn main() {
    let mut db = UniformDatabase::new();
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    println!("uniform deductive database — :help for commands, :quit to leave");
    loop {
        print!("> ");
        out.flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match dispatch(&mut db, line) {
            Command::Quit => break,
            Command::Done => {}
        }
    }
    println!("bye.");
}

enum Command {
    Done,
    Quit,
}

fn dispatch(db: &mut UniformDatabase, line: &str) -> Command {
    match line {
        ":quit" | ":q" => return Command::Quit,
        ":help" | ":h" => {
            println!(
                "  fact(a, b).                      guarded insertion\n  \
                 - fact(a, b).                    guarded deletion\n  \
                 lit(X) where cond(X), ...        guarded conditional (bulk) update\n  \
                 head(X) :- body(X).              guarded rule addition (incremental)\n  \
                 :delrule head(X) :- body(X).     guarded rule removal (incremental)\n  \
                 constraint name: <formula>.      guarded constraint addition\n  \
                 :delconstraint name              constraint removal\n  \
                 ? <closed formula>               truth query\n  \
                 ?- lit1(X), not lit2(X)          conjunctive query\n  \
                 :facts :rules :constraints :sat :check <lit>\n  \
                 :why fact(a, b).                 derivation tree of a model fact\n  \
                 :save <path> :load <path> :quit"
            );
            return Command::Done;
        }
        ":facts" => {
            let mut facts: Vec<String> = db.facts().map(|f| f.to_string()).collect();
            facts.sort();
            if facts.is_empty() {
                println!("  (none)");
            }
            for f in facts {
                println!("  {f}.");
            }
            return Command::Done;
        }
        ":rules" => {
            for r in db.database().rules().rules() {
                println!("  {r}.");
            }
            return Command::Done;
        }
        ":constraints" => {
            for c in db.constraints() {
                println!("  {c}");
            }
            return Command::Done;
        }
        ":save" => {
            println!("  usage: :save <path>");
            return Command::Done;
        }
        ":load" => {
            println!("  usage: :load <path>");
            return Command::Done;
        }
        ":sat" => {
            let report = db.check_satisfiability();
            match report.outcome {
                SatOutcome::Satisfiable { model, .. } => {
                    println!("  satisfiable; witness model:");
                    for f in model {
                        println!("    {f}");
                    }
                }
                other => println!("  {other:?}"),
            }
            return Command::Done;
        }
        _ => {}
    }

    if let Some(path) = line.strip_prefix(":save ") {
        match std::fs::write(path.trim(), db.to_program_source()) {
            Ok(()) => println!("  saved to {}", path.trim()),
            Err(e) => println!("  {e}"),
        }
        return Command::Done;
    }

    if let Some(path) = line.strip_prefix(":load ") {
        match std::fs::read_to_string(path.trim()) {
            Ok(src) => match UniformDatabase::parse(&src) {
                Ok(loaded) => {
                    *db = loaded;
                    println!("  loaded {}", path.trim());
                }
                Err(e) => println!("  {e}"),
            },
            Err(e) => println!("  {e}"),
        }
        return Command::Done;
    }

    if let Some(rest) = line.strip_prefix(":why ") {
        match db.explain(rest.trim().trim_end_matches('.')) {
            Ok(Some(tree)) => println!("{tree}"),
            Ok(None) => println!("  not in the model."),
            Err(e) => println!("  {e}"),
        }
        return Command::Done;
    }

    if let Some(rest) = line.strip_prefix(":delrule ") {
        match db.try_remove_rule(rest.trim()) {
            Ok(true) => println!("  rule removed."),
            Ok(false) => println!("  no such rule."),
            Err(e) => println!("  rejected: {e}"),
        }
        return Command::Done;
    }

    if let Some(rest) = line.strip_prefix(":delconstraint ") {
        if db.remove_constraint(rest.trim()) {
            println!("  constraint removed.");
        } else {
            println!("  no such constraint.");
        }
        return Command::Done;
    }

    if let Some(rest) = line.strip_prefix(":check ") {
        match parse_literal(rest) {
            Ok(lit) => match Update::from_literal(&lit) {
                Some(u) => {
                    let report = db.check(&Transaction::single(u));
                    if report.satisfied {
                        println!("  would be accepted");
                    } else {
                        for v in &report.violations {
                            println!("  would violate {}", v.constraint);
                        }
                    }
                }
                None => println!("  update must be ground"),
            },
            Err(e) => println!("  {e}"),
        }
        return Command::Done;
    }

    if let Some(rest) = line.strip_prefix("?-") {
        match db.solutions(rest.trim()) {
            Ok(sols) if sols.is_empty() => println!("  no."),
            Ok(sols) => {
                for s in sols {
                    if s.is_empty() {
                        println!("  yes.");
                    } else {
                        let row: Vec<String> =
                            s.iter().map(|(v, c)| format!("{v} = {c}")).collect();
                        println!("  {}", row.join(", "));
                    }
                }
            }
            Err(e) => println!("  {e}"),
        }
        return Command::Done;
    }

    if let Some(rest) = line.strip_prefix('?') {
        match db.query(rest.trim().trim_end_matches('.')) {
            Ok(v) => println!("  {}", if v { "yes." } else { "no." }),
            Err(e) => println!("  {e}"),
        }
        return Command::Done;
    }

    if let Some(rest) = line.strip_prefix('-') {
        match db.try_delete(rest.trim()) {
            Ok(_) => println!("  deleted."),
            Err(e) => println!("  rejected: {e}"),
        }
        return Command::Done;
    }

    if line.starts_with("constraint") {
        // constraint name: formula.
        let body = line.trim_start_matches("constraint").trim();
        let Some((name, formula)) = body.split_once(':') else {
            println!("  expected `constraint name: formula.`");
            return Command::Done;
        };
        match db.try_add_constraint(name.trim(), formula.trim().trim_end_matches('.')) {
            Ok(()) => println!("  constraint added."),
            Err(e) => println!("  rejected: {e}"),
        }
        return Command::Done;
    }

    if line.contains(":-") {
        match db.try_add_rule(line) {
            Ok(()) => println!("  rule added."),
            Err(e) => println!("  rejected: {e}"),
        }
        return Command::Done;
    }

    if line.contains(" where ") {
        match db.try_apply_where(line.trim_end_matches('.')) {
            Ok(report) => println!(
                "  applied ({} instance(s) evaluated).",
                report.stats.instances_evaluated
            ),
            Err(e) => println!("  rejected: {e}"),
        }
        return Command::Done;
    }

    // Default: guarded fact insertion.
    match db.try_insert(line) {
        Ok(_) => println!("  inserted."),
        Err(e) => println!("  rejected: {e}"),
    }
    Command::Done
}
