//! Integrity maintenance on the §3.2 university database, comparing the
//! paper's two-phase method against the three baselines on the same
//! updates.
//!
//! ```sh
//! cargo run --example university_integrity
//! ```

use uniform::datalog::{Transaction, Update};
use uniform::integrity::{full_recheck, interleaved_check, lloyd_topor_check, Checker};
use uniform::logic::parse_literal;
use uniform::workload;

fn upd(src: &str) -> Update {
    Update::from_literal(&parse_literal(src).unwrap()).unwrap()
}

fn main() {
    // 500 students, everyone enrolled in cs and attending ddb; enrollment
    // derived by rule.
    let db = workload::deductive_university(500, 0);
    println!(
        "database: {} facts, {} rule(s), {} constraint(s)\n",
        db.facts().len(),
        db.rules().len(),
        db.constraints().len()
    );

    let updates: Vec<(Transaction, &str, &str)> = vec![
        (
            Transaction::single(upd("student(jack)")),
            "student(jack)",
            "rejected: the induced enrolled(jack, cs) requires attends(jack, ddb)",
        ),
        (
            Transaction::new(vec![upd("student(jack)"), upd("attends(jack, ddb)")]),
            "tx {student(jack), attends(jack, ddb)}",
            "accepted: obligation and discharge in one transaction",
        ),
        (
            Transaction::single(upd("not attends(s17, ddb)")),
            "not attends(s17, ddb)",
            "rejected: cdb for s17",
        ),
        (
            Transaction::new(vec![upd("not student(s17)"), upd("not attends(s17, ddb)")]),
            "tx {not student(s17), not attends(s17, ddb)}",
            "accepted: removes student and trace together",
        ),
        (
            Transaction::single(upd("student(s3)")),
            "student(s3)",
            "no-op: already present (Def. 1), nothing evaluated",
        ),
    ];

    let checker = Checker::new(&db);
    for (tx, src, why) in updates {
        println!("update {src:<44} — {why}");

        let t0 = std::time::Instant::now();
        let main = checker.check(&tx);
        let t_main = t0.elapsed();

        let t0 = std::time::Instant::now();
        let full = full_recheck(&db, &tx);
        let t_full = t0.elapsed();

        let t0 = std::time::Instant::now();
        let inter = interleaved_check(&db, &tx);
        let t_inter = t0.elapsed();

        let t0 = std::time::Instant::now();
        let lt = lloyd_topor_check(&db, &tx);
        let t_lt = t0.elapsed();

        assert_eq!(main.satisfied, full.satisfied);
        assert_eq!(main.satisfied, inter.satisfied);
        assert_eq!(main.satisfied, lt.satisfied);

        println!(
            "  verdict: {}",
            if main.satisfied {
                "accepted"
            } else {
                "rejected"
            }
        );
        if !main.satisfied {
            for v in &main.violations {
                println!(
                    "    violated {} via {}",
                    v.constraint,
                    v.culprit
                        .as_ref()
                        .map(|c| c.to_string())
                        .unwrap_or_default()
                );
            }
        }
        println!(
            "  two-phase  : {:>9.1?}  ({} instances evaluated, {} update constraints)",
            t_main, main.stats.instances_evaluated, main.stats.update_constraints
        );
        println!(
            "  full check : {:>9.1?}  ({} constraints re-evaluated)",
            t_full, full.stats.instances_evaluated
        );
        println!(
            "  interleaved: {:>9.1?}  ({} induced updates, {} instance evaluations)",
            t_inter, inter.stats.delta.answers, inter.stats.instances_evaluated
        );
        println!(
            "  lloyd-topor: {:>9.1?}  ({} trigger answers, {} instance evaluations)\n",
            t_lt, lt.stats.delta.answers, lt.stats.instances_evaluated
        );
    }

    println!("(the absolute numbers vary per machine; the shape — two-phase work \n independent of |student|, full check linear in it — is experiment E1)");
}
