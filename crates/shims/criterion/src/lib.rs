//! Offline shim for `criterion`.
//!
//! Implements the API subset the bench targets use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `Throughput`, `Bencher::{iter, iter_custom}`, and the
//! `criterion_group!` / `criterion_main!` macros — as a plain wall-clock
//! harness: per benchmark it warms up once, takes `sample_size` timed
//! samples, and prints min/median to stdout. No statistics, plots, or
//! baselines; the point is that `cargo bench` builds and produces usable
//! numbers in an offline environment. Swap in the real crate via
//! `[workspace.dependencies]` for publication-grade measurement.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value (best-effort).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level harness state.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Criterion {
        run_benchmark(&name.into(), self.sample_size, &mut f);
        self
    }
}

/// Identifier `function_name/parameter` for one benchmark in a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Units-per-iteration annotation (printed, not charted).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&label, self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Anything usable as a benchmark id within a group.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher {
    sample: Option<Duration>,
}

impl Bencher {
    /// Time one execution of `routine` (one sample = one iteration).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let t0 = Instant::now();
        black_box(routine());
        self.sample = Some(t0.elapsed());
    }

    /// The routine does its own timing over `iters` iterations and
    /// reports the total; the recorded sample is the per-iteration mean.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut routine: F) {
        const ITERS: u64 = 1;
        let total = routine(ITERS);
        self.sample = Some(total / ITERS as u32);
    }
}

fn run_benchmark(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    // Warm-up pass (not recorded).
    let mut bencher = Bencher { sample: None };
    f(&mut bencher);
    let mut samples: Vec<Duration> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut bencher = Bencher { sample: None };
        f(&mut bencher);
        samples.push(bencher.sample.unwrap_or_default());
    }
    samples.sort();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    println!(
        "{label}: min {} median {} ({} samples)",
        fmt_dur(min),
        fmt_dur(median),
        sample_size
    );
}

fn fmt_dur(d: Duration) -> FmtDur {
    FmtDur(d)
}

struct FmtDur(Duration);

impl fmt::Display for FmtDur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0.as_nanos();
        if ns < 1_000 {
            write!(f, "{ns} ns")
        } else if ns < 1_000_000 {
            write!(f, "{:.2} µs", ns as f64 / 1e3)
        } else if ns < 1_000_000_000 {
            write!(f, "{:.2} ms", ns as f64 / 1e6)
        } else {
            write!(f, "{:.3} s", ns as f64 / 1e9)
        }
    }
}

/// Define a benchmark group function, in either criterion syntax.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("trivial", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("with_input", 4), &4usize, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    criterion_group!(demo, sample_bench);

    #[test]
    fn harness_runs() {
        demo();
    }

    #[test]
    fn bencher_records_custom_timing() {
        let mut b = Bencher { sample: None };
        b.iter_custom(|iters| {
            assert_eq!(iters, 1);
            Duration::from_millis(5)
        });
        assert_eq!(b.sample, Some(Duration::from_millis(5)));
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
