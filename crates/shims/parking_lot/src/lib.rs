//! Offline shim for `parking_lot`.
//!
//! The build environment has no access to a crate registry, so this crate
//! provides the subset of the `parking_lot` API the workspace uses —
//! [`Mutex`] and [`RwLock`] with non-poisoning guards — implemented on top
//! of `std::sync`. Poisoning is deliberately swallowed (`parking_lot`
//! locks do not poison): a panic while holding a guard leaves the data in
//! whatever state it was in, exactly like the real crate.
//!
//! Swap this for the published `parking_lot` by editing the workspace
//! `[workspace.dependencies]` table only; no source change is needed.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// Non-poisoning mutual-exclusion lock (std-backed).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub struct MutexGuard<'a, T: ?Sized>(sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Non-poisoning reader–writer lock (std-backed).
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 2);
        }
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn poison_is_swallowed() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock usable after a panicking holder");
    }
}
