//! Runner support types: configuration, case-failure error, and the
//! deterministic generator RNG.

use std::fmt;

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for Config {
    fn default() -> Config {
        Config { cases: 64 }
    }
}

impl Config {
    pub fn with_cases(cases: u32) -> Config {
        Config { cases }
    }

    /// The case count a `proptest!` block actually runs: the
    /// `PROPTEST_CASES` environment variable (the same knob real
    /// proptest honors) overrides every configured count, so CI can dial
    /// property-test effort up or down without code changes.
    pub fn effective_cases(&self) -> u32 {
        Self::cases_with_env(self.cases, std::env::var("PROPTEST_CASES").ok().as_deref())
    }

    fn cases_with_env(configured: u32, env: Option<&str>) -> u32 {
        env.and_then(|v| v.trim().parse().ok())
            .unwrap_or(configured)
    }
}

/// Failure of a single generated case.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// The generator RNG: xoshiro256++ seeded from the test's full path, so
/// every run of a given test explores the same cases.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seed deterministically from a test name (FNV-1a over the bytes,
    /// expanded through SplitMix64).
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let mut sm = h;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform value in `0..bound` (`bound` of 0 yields 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound <= 1 {
            return 0;
        }
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        let mut c = TestRng::from_name("y");
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn env_override_parses_and_falls_back() {
        // Pure-function check: no process-global env mutation (tests in
        // this binary run concurrently and all read PROPTEST_CASES).
        assert_eq!(Config::cases_with_env(64, None), 64);
        assert_eq!(Config::cases_with_env(64, Some("1024")), 1024);
        assert_eq!(Config::cases_with_env(64, Some(" 8 ")), 8);
        assert_eq!(Config::cases_with_env(64, Some("not-a-number")), 64);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::from_name("bounds");
        assert_eq!(rng.below(0), 0);
        assert_eq!(rng.below(1), 0);
        for _ in 0..100 {
            assert!(rng.below(7) < 7);
        }
    }
}
