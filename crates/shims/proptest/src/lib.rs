//! Offline shim for `proptest`.
//!
//! The build environment has no registry access, so this crate implements
//! the subset of the proptest API this workspace's property tests use:
//!
//! * [`Strategy`] with `prop_map` and `prop_recursive`, boxed strategies,
//!   tuple/range/`&str`(regex-lite)/[`Just`] strategies and `prop_oneof!`;
//! * [`collection::vec`], [`sample::select`], [`sample::subsequence`];
//! * `any::<bool>()` (and the other primitive `Arbitrary` impls);
//! * the `proptest!`, `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`
//!   macros.
//!
//! Semantics differ from real proptest in deliberate ways: generation is
//! seeded **deterministically from the test name** (every run explores
//! the same cases — reproducible in CI, no persistence files), and
//! shrinking is **greedy and structural** rather than value-tree based:
//! a failing argument tuple is shrunk one coordinate at a time (integers
//! halve toward their range's lower bound, vectors truncate to shorter
//! prefixes) and the first still-failing candidate is taken, until no
//! candidate fails. Strategies whose generation is not invertible
//! ([`Just`], `prop_map`, `prop_oneof!`, …) keep the original
//! counterexample. The `PROPTEST_CASES` environment variable (the knob
//! real proptest honors) overrides every configured case count, so CI
//! can dial effort up without code changes. Swap in the real crate via
//! `[workspace.dependencies]` for full value-tree shrinking; no test
//! source changes are needed.

use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

pub mod test_runner;

pub use test_runner::{Config as ProptestConfig, TestCaseError, TestRng};

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

/// A recipe for generating values of one type.
pub trait Strategy {
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Candidate strictly-smaller replacements for a failing `value`,
    /// most aggressive first. The default refuses to shrink — correct
    /// for strategies whose generation is not invertible (`prop_map`,
    /// `prop_oneof!`, …), which therefore keep the original
    /// counterexample. Every candidate must stay inside the strategy's
    /// domain so a shrunk counterexample is still a valid input.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Recursively extend this strategy: `recurse` receives a strategy for
    /// the inner levels and returns the strategy for one level up. `depth`
    /// bounds the recursion; the size hints of the real API are accepted
    /// and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        Recursive {
            base: self.boxed(),
            recurse: Arc::new(move |inner| recurse(inner).boxed()),
            depth,
        }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
    fn shrink_dyn(&self, value: &T) -> Vec<T>;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
    fn shrink_dyn(&self, value: &S::Value) -> Vec<S::Value> {
        self.shrink(value)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        self.0.shrink_dyn(value)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Result of [`Strategy::prop_recursive`].
pub struct Recursive<T> {
    base: BoxedStrategy<T>,
    recurse: Arc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
    depth: u32,
}

impl<T> Clone for Recursive<T> {
    fn clone(&self) -> Self {
        Recursive {
            base: self.base.clone(),
            recurse: self.recurse.clone(),
            depth: self.depth,
        }
    }
}

impl<T> Strategy for Recursive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        // Choose a nesting level for this case, then stack the recursion
        // that many times; level 0 samples the base strategy directly.
        let levels = rng.below(self.depth as u64 + 1) as u32;
        let mut strategy = self.base.clone();
        for _ in 0..levels {
            strategy = (self.recurse)(strategy);
        }
        strategy.generate(rng)
    }
}

/// Uniform choice between strategies (backs `prop_oneof!`).
pub struct OneOf<T> {
    pub options: Vec<BoxedStrategy<T>>,
}

impl<T> Clone for OneOf<T> {
    fn clone(&self) -> Self {
        OneOf {
            options: self.options.clone(),
        }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(
            !self.options.is_empty(),
            "prop_oneof! needs at least one option"
        );
        let pick = rng.below(self.options.len() as u64) as usize;
        self.options[pick].generate(rng)
    }
}

/// Halving shrink candidates for an integer drawn from `lo..`: the lower
/// bound itself, the midpoint between it and the failing value, and the
/// predecessor — every candidate in-domain and strictly smaller.
fn shrink_toward(lo: i128, value: i128) -> Vec<i128> {
    let mut out = Vec::new();
    if value > lo {
        out.push(lo);
        let mid = lo + (value - lo) / 2;
        if mid != lo {
            out.push(mid);
        }
        let prev = value - 1;
        if prev != lo && prev != mid {
            out.push(prev);
        }
    }
    out
}

// Integer ranges are strategies.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_toward(self.start as i128, *value as i128)
                    .into_iter()
                    .map(|v| v as $t)
                    .collect()
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_toward(*self.start() as i128, *value as i128)
                    .into_iter()
                    .map(|v| v as $t)
                    .collect()
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// The empty tuple is the (trivial) strategy of a zero-argument property.
impl Strategy for () {
    type Value = ();
    fn generate(&self, _rng: &mut TestRng) {}
}

// Tuples of strategies are strategies; shrinking replaces one coordinate
// at a time with that coordinate's shrink candidates.
macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+)
        where
            $($name::Value: Clone,)+
        {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out: Vec<Self::Value> = Vec::new();
                $(
                    for candidate in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = candidate;
                        out.push(next);
                    }
                )+
                out
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

// String literals are regex-lite strategies.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        string::generate_from_pattern(self, rng)
    }
}

// ---------------------------------------------------------------------------
// any / Arbitrary
// ---------------------------------------------------------------------------

/// Types with a canonical strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.below(2) == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy produced by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct AnyStrategy<A>(std::marker::PhantomData<A>);

impl<A: Arbitrary> Strategy for AnyStrategy<A> {
    type Value = A;
    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// The canonical strategy for `A`.
pub fn any<A: Arbitrary>() -> AnyStrategy<A> {
    AnyStrategy(std::marker::PhantomData)
}

// ---------------------------------------------------------------------------
// collection
// ---------------------------------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Accepted size specifications for [`vec()`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl SizeRange {
        pub(crate) fn sample(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
        }

        pub(crate) fn clamped(&self, max: usize) -> SizeRange {
            SizeRange {
                lo: self.lo.min(max),
                hi: self.hi.min(max),
            }
        }

        /// Smallest admissible length (the shrink floor).
        pub(crate) fn min(&self) -> usize {
            self.lo
        }
    }

    /// Prefix truncations of a failing vector down to `min_len`:
    /// shortest first, then the halfway prefix, then one-shorter.
    pub(crate) fn shrink_prefixes<T: Clone>(value: &[T], min_len: usize) -> Vec<Vec<T>> {
        let len = value.len();
        let mut out = Vec::new();
        if len > min_len {
            out.push(value[..min_len].to_vec());
            let mid = min_len + (len - min_len) / 2;
            if mid != min_len && mid != len {
                out.push(value[..mid].to_vec());
            }
            if len - 1 != min_len && len - 1 != mid {
                out.push(value[..len - 1].to_vec());
            }
        }
        out
    }

    /// Vectors of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            // Prefix truncation keeps every element in-domain; element
            // positions also shrink through the element strategy.
            let mut out = shrink_prefixes(value, self.size.min());
            for (i, v) in value.iter().enumerate() {
                for candidate in self.element.shrink(v) {
                    let mut next = value.clone();
                    next[i] = candidate;
                    out.push(next);
                }
            }
            out
        }
    }
}

// ---------------------------------------------------------------------------
// sample
// ---------------------------------------------------------------------------

pub mod sample {
    use super::{Strategy, TestRng};
    use crate::collection::SizeRange;

    /// Uniform choice of one element of `options`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    #[derive(Clone)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }

    /// An order-preserving random subsequence of `pool` whose length is
    /// drawn from `size` (clamped to the pool length).
    pub fn subsequence<T: Clone>(pool: Vec<T>, size: impl Into<SizeRange>) -> Subsequence<T> {
        Subsequence {
            pool,
            size: size.into(),
        }
    }

    #[derive(Clone)]
    pub struct Subsequence<T: Clone> {
        pool: Vec<T>,
        size: SizeRange,
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        fn shrink(&self, value: &Vec<T>) -> Vec<Vec<T>> {
            // A prefix of a subsequence is a subsequence: truncate down
            // to the (pool-clamped) minimum length.
            crate::collection::shrink_prefixes(value, self.size.clamped(self.pool.len()).min())
        }
        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            let want = self.size.clamped(self.pool.len()).sample(rng);
            // Floyd-style distinct index sampling, then restore pool order.
            let mut picked: Vec<usize> = Vec::with_capacity(want);
            let n = self.pool.len();
            for j in (n - want)..n {
                let t = rng.below(j as u64 + 1) as usize;
                if picked.contains(&t) {
                    picked.push(j);
                } else {
                    picked.push(t);
                }
            }
            picked.sort_unstable();
            picked.into_iter().map(|i| self.pool[i].clone()).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// string (regex-lite generation)
// ---------------------------------------------------------------------------

mod string {
    use super::TestRng;

    /// One parsed pattern element: a set of candidate chars plus a
    /// repetition count range.
    struct Piece {
        chars: Vec<char>,
        min: usize,
        max: usize,
    }

    /// Printable pool backing `\PC`: ASCII printables plus a spread of
    /// multi-byte characters so parser fuzzing sees non-ASCII input.
    fn printable_pool() -> Vec<char> {
        let mut pool: Vec<char> = (0x20u8..0x7F).map(|b| b as char).collect();
        pool.extend("éüßñλπΩж中日ेा🙂🚀".chars());
        pool
    }

    /// Generate a string from the regex subset the tests use: literal
    /// chars, `\PC`, character classes `[...]` (with `a-z` ranges), and
    /// `{m,n}` / `{n}` repetition. Anything else panics loudly — extend
    /// the subset rather than silently misgenerating.
    pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut pieces: Vec<Piece> = Vec::new();
        let mut chars = pattern.chars().peekable();
        while let Some(c) = chars.next() {
            let set: Vec<char> = match c {
                '[' => {
                    let mut set = Vec::new();
                    let mut prev: Option<char> = None;
                    loop {
                        let Some(m) = chars.next() else {
                            panic!("unterminated character class in {pattern:?}");
                        };
                        match m {
                            ']' => break,
                            '-' => match (prev, chars.peek()) {
                                // `a-z` range (when `-` is between chars).
                                (Some(lo), Some(&hi)) if hi != ']' => {
                                    chars.next();
                                    assert!(lo <= hi, "bad range in {pattern:?}");
                                    set.extend(lo..=hi);
                                    prev = None;
                                }
                                // Trailing or leading `-` is literal.
                                _ => {
                                    set.push('-');
                                    prev = Some('-');
                                }
                            },
                            '\\' => {
                                let esc = chars.next().unwrap_or('\\');
                                set.push(esc);
                                prev = Some(esc);
                            }
                            other => {
                                set.push(other);
                                prev = Some(other);
                            }
                        }
                    }
                    assert!(!set.is_empty(), "empty character class in {pattern:?}");
                    set
                }
                '\\' => match chars.next() {
                    Some('P') => {
                        // `\PC`: any non-control ("printable") character.
                        let tag = chars.next();
                        assert_eq!(tag, Some('C'), "unsupported \\P class in {pattern:?}");
                        printable_pool()
                    }
                    Some(esc) => vec![esc],
                    None => panic!("dangling escape in {pattern:?}"),
                },
                '{' | '}' | '*' | '+' | '?' | '(' | ')' | '|' | '^' | '$' => {
                    panic!("unsupported regex construct {c:?} in {pattern:?}")
                }
                literal => vec![literal],
            };
            // Optional repetition.
            let (min, max) = if chars.peek() == Some(&'{') {
                chars.next();
                let mut spec = String::new();
                for m in chars.by_ref() {
                    if m == '}' {
                        break;
                    }
                    spec.push(m);
                }
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad repetition"),
                        hi.trim().parse().expect("bad repetition"),
                    ),
                    None => {
                        let n: usize = spec.trim().parse().expect("bad repetition");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            pieces.push(Piece {
                chars: set,
                min,
                max,
            });
        }

        let mut out = String::new();
        for piece in &pieces {
            let n = piece.min + rng.below((piece.max - piece.min + 1) as u64) as usize;
            for _ in 0..n {
                out.push(piece.chars[rng.below(piece.chars.len() as u64) as usize]);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// prelude and macros
// ---------------------------------------------------------------------------

pub mod prelude {
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace mirror so `prop::collection::vec(...)` works, as in the
    /// real prelude.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf { options: vec![$($crate::Strategy::boxed($strategy)),+] }
    };
}

/// Property assertion: fails the current case (not the process).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)*), l, r
        );
    }};
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Greedy structural shrinking: repeatedly replace the failing input
/// with the first shrink candidate that still fails, until no candidate
/// fails or the step budget runs out. Candidates that *panic* (rather
/// than return a [`TestCaseError`]) count as failing too — a panicking
/// input is still a counterexample. Returns the smallest failing input,
/// the number of successful shrink steps, and the failure it produced.
/// (Used by the `proptest!` macro; public so the expansion can call it.)
pub fn shrink_failure<S: Strategy>(
    strategy: &S,
    initial: S::Value,
    initial_error: TestCaseError,
    case: &mut dyn FnMut(&S::Value) -> Result<(), TestCaseError>,
) -> (S::Value, usize, TestCaseError) {
    const MAX_SHRINK_STEPS: usize = 1024;
    let mut failing = initial;
    let mut error = initial_error;
    let mut steps = 0;
    'search: while steps < MAX_SHRINK_STEPS {
        for candidate in strategy.shrink(&failing) {
            if let Some(e) = run_case_caught(case, &candidate) {
                failing = candidate;
                error = e;
                steps += 1;
                continue 'search;
            }
        }
        break;
    }
    (failing, steps, error)
}

/// Run one case, converting a panic into a [`TestCaseError`] carrying
/// the panic message — a panicking input (an `unwrap` in the body, an
/// index out of bounds) is a counterexample like any other, and must be
/// shrinkable like any other.
fn run_case_caught<V>(
    case: &mut dyn FnMut(&V) -> Result<(), TestCaseError>,
    values: &V,
) -> Option<TestCaseError> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(values))) {
        Ok(Ok(())) => None,
        Ok(Err(e)) => Some(e),
        Err(payload) => Some(TestCaseError::fail(panic_message(payload.as_ref()))),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panicked while running a property case".to_string()
    }
}

/// The case loop behind `proptest!`: generate, run, and on failure
/// shrink and panic with the minimal counterexample. A named function
/// (rather than macro-expanded inline code) so the case closure's
/// argument type is pinned by this signature — and so every property
/// test shares one tested runner.
pub fn run_property<S: Strategy>(
    name: &str,
    cases: u32,
    strategy: &S,
    case: &mut dyn FnMut(&S::Value) -> Result<(), TestCaseError>,
) where
    S::Value: std::fmt::Debug,
{
    // Deterministic per-test seed: same cases every run.
    let mut rng = TestRng::from_name(name);
    for case_no in 0..cases {
        let values = strategy.generate(&mut rng);
        // Panic-failing cases are caught and shrunk exactly like
        // Err-failing ones (prop_assert is not the only failure mode —
        // bodies `unwrap` freely).
        if let Some(e) = run_case_caught(case, &values) {
            let (minimal, steps, final_err) = shrink_failure(strategy, values, e, case);
            panic!(
                "property failed at case {}/{}: {}\n  minimal failing input (after {} shrink step(s)): {:?}",
                case_no + 1,
                cases,
                final_err,
                steps,
                minimal
            );
        }
    }
}

/// Define property tests. Each `arg in strategy` parameter is freshly
/// generated per case; the body may use `prop_assert*` and
/// `return Ok(())`. A failing case is shrunk (see [`shrink_failure`])
/// and reported with its minimal failing input.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($config) $($rest)*);
    };
    (@munch ($config:expr)) => {};
    (@munch ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            // One composite strategy over the argument tuple: components
            // generate in argument order (the value stream per seed is
            // unchanged), and the tuple is the unit of shrinking.
            let strategy = ($($strategy,)*);
            $crate::run_property(
                concat!(module_path!(), "::", stringify!($name)),
                config.effective_cases(),
                &strategy,
                &mut |values| {
                    #[allow(unused_variables)]
                    let ($($arg,)*) = ::core::clone::Clone::clone(values);
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
        $crate::proptest!(@munch ($config) $($rest)*);
    };
    // A `@munch` input reaching this far failed the function matcher above;
    // bail out instead of looping through the default-config arm below.
    (@munch $($rest:tt)*) => {
        compile_error!("unsupported syntax inside proptest! (this shim accepts `fn name(pat in strategy, ...) { ... }` items)");
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_and_vec_generate_in_bounds() {
        let mut rng = crate::TestRng::from_name("shim::bounds");
        let strat = prop::collection::vec((0..5usize, 0u8..3), 2..6);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&(a, b)| a < 5 && b < 3));
        }
    }

    #[test]
    fn string_patterns_match_shape() {
        let mut rng = crate::TestRng::from_name("shim::strings");
        for _ in 0..200 {
            let s = "[a-z][a-z0-9_]{0,5}".generate(&mut rng);
            assert!((1..=6).contains(&s.chars().count()), "{s}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
            let t = "[A-Z][A-Za-z0-9]{0,3}".generate(&mut rng);
            assert!(t.chars().next().unwrap().is_ascii_uppercase());
            let any = "\\PC{0,80}".generate(&mut rng);
            assert!(any.chars().count() <= 80);
            let cls = "[a-zA-Z0-9_,():~&|<>?%. -]{0,120}".generate(&mut rng);
            assert!(cls.chars().count() <= 120);
        }
    }

    #[test]
    fn oneof_and_just_and_select() {
        let mut rng = crate::TestRng::from_name("shim::oneof");
        let strat = prop_oneof![Just(1), Just(2), Just(3)];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(strat.generate(&mut rng));
        }
        assert_eq!(seen, [1, 2, 3].into_iter().collect());
        let sel = crate::sample::select(vec!["a", "b"]);
        assert!(["a", "b"].contains(&sel.generate(&mut rng)));
    }

    #[test]
    fn subsequence_preserves_order() {
        let mut rng = crate::TestRng::from_name("shim::subseq");
        let strat = crate::sample::subsequence(vec![1, 2, 3, 4, 5], 0..=5);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!(v.windows(2).all(|w| w[0] < w[1]), "{v:?}");
            assert!(v.len() <= 5);
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Clone, Debug, PartialEq)]
        enum Tree {
            Leaf,
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = Just(Tree::Leaf).prop_recursive(3, 16, 2, |inner| {
            (inner.clone(), inner)
                .prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
                .boxed()
        });
        let mut rng = crate::TestRng::from_name("shim::rec");
        for _ in 0..50 {
            assert!(depth(&strat.generate(&mut rng)) <= 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn the_macro_wires_up(x in 0..100usize, flip in any::<bool>()) {
            prop_assert!(x < 100);
            if flip {
                return Ok(());
            }
            prop_assert_eq!(x, x, "x must equal itself ({})", x);
            prop_assert_ne!(x + 1, x);
        }
    }

    #[test]
    fn failures_report_case_numbers() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(5))]
                #[allow(unused)]
                fn always_fails(x in 0..10usize) {
                    prop_assert!(false, "boom {}", x);
                }
            }
            always_fails();
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("property failed at case 1/5"), "{msg}");
        assert!(msg.contains("boom"), "{msg}");
        // Everything fails, so the greedy shrinker bottoms out at the
        // range's lower bound.
        assert!(msg.contains("minimal failing input"), "{msg}");
        assert!(msg.contains("(0,)"), "{msg}");
    }

    #[test]
    fn integer_and_vec_shrinks_stay_in_domain() {
        let int = 5..100usize;
        for c in int.shrink(&73) {
            assert!((5..73).contains(&c), "candidate {c} out of domain");
        }
        assert!(int.shrink(&5).is_empty(), "lower bound cannot shrink");
        let vecs = crate::collection::vec(0..10usize, 2..6);
        let value = vec![9, 8, 7, 6, 5];
        for c in vecs.shrink(&value) {
            assert!(
                (2..=5).contains(&c.len()) && c.iter().all(|&x| x < 10),
                "candidate {c:?} out of domain"
            );
            assert_ne!(c, value, "candidates must differ from the input");
        }
        let sub = crate::sample::subsequence(vec![1, 2, 3, 4], 1..=4);
        for c in sub.shrink(&vec![1, 3, 4]) {
            assert!(!c.is_empty() && c.len() < 3, "{c:?}");
        }
    }

    #[test]
    fn seeded_failure_shrinks_to_smaller_counterexample() {
        // The property fails iff x >= 10: the minimal counterexample is
        // exactly ([], 10) — the vector truncates to its 0-length floor
        // and x halves down until every candidate (0, mid < 10, 9)
        // passes. A greedy value-level shrinker must land there.
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(16))]
                #[allow(unused)]
                fn fails_when_x_is_big(
                    noise in prop::collection::vec(0..100usize, 0..30),
                    x in 0..1000usize,
                ) {
                    prop_assert!(x < 10, "x too big: {}", x);
                }
            }
            fails_when_x_is_big();
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("minimal failing input"), "{msg}");
        assert!(
            msg.contains("([], 10)"),
            "expected the minimal counterexample ([], 10): {msg}"
        );
        assert!(msg.contains("x too big: 10"), "{msg}");
    }

    #[test]
    fn panicking_bodies_are_caught_and_shrunk() {
        // A body that fails by raw panic (not prop_assert) must still be
        // reported with a case number and a minimal counterexample.
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(8))]
                #[allow(unused)]
                fn panics_when_big(x in 0..1000usize) {
                    assert!(x < 10, "raw panic at {}", x);
                }
            }
            panics_when_big();
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("property failed at case"), "{msg}");
        assert!(msg.contains("minimal failing input"), "{msg}");
        assert!(msg.contains("(10,)"), "{msg}");
        assert!(msg.contains("raw panic at 10"), "{msg}");
    }

    #[test]
    fn shrinking_treats_panicking_candidates_as_failures() {
        // A candidate that panics (instead of prop_assert-failing) is
        // still a counterexample; shrinking must absorb it, not abort.
        let strategy = (1..100usize,);
        let mut case = |v: &(usize,)| -> Result<(), TestCaseError> {
            if v.0 >= 40 {
                return Err(TestCaseError::fail("assert-style failure"));
            }
            if v.0 >= 20 {
                panic!("panic-style failure at {}", v.0);
            }
            Ok(())
        };
        let (minimal, steps, err) =
            crate::shrink_failure(&strategy, (90,), TestCaseError::fail("seed"), &mut case);
        assert_eq!(minimal, (20,), "panicking region reached and minimized");
        assert!(steps > 0);
        assert!(
            err.to_string().contains("panic-style failure at 20"),
            "{err}"
        );
    }
}
