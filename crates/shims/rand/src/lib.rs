//! Offline shim for `rand` (0.8 API subset).
//!
//! Provides [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over half-open integer ranges and [`Rng::gen_bool`]
//! — everything the workload generators and tests use. The generator is
//! xoshiro256++ seeded via SplitMix64, so streams are deterministic per
//! seed and of high enough quality for workload shuffling. Numeric
//! streams differ from the real `rand::StdRng` (which is ChaCha-based);
//! nothing in this workspace depends on specific values, only on
//! same-seed reproducibility.

use std::ops::Range;

/// Core entropy source: 64 random bits per call.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open integer range. Panics when the
    /// range is empty, like the real crate.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }

    /// Bernoulli sample. `p` outside `[0, 1]` is clamped.
    fn gen_bool(&mut self, p: f64) -> bool {
        // 53 bits of mantissa: the standard unit-interval construction.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Integer types [`Rng::gen_range`] can sample.
pub trait SampleUniform: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                // Multiply-shift bounded sampling; the modulo bias over a
                // 64-bit draw is negligible for workload purposes.
                let draw = rng.next_u64() as u128 % span;
                (range.start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0..4u8);
            assert!(y < 4);
            let z = rng.gen_range(-5..5i32);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(99);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "{heads}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
