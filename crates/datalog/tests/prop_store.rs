//! Property tests for the tombstoning fact store, centered on
//! [`Relation::compact`]: delete/reinsert churn heavy enough to cross
//! the 50% auto-rebuild threshold must preserve exact tuple sets,
//! membership answers and per-column index lookups — before, across,
//! and after compaction.

use proptest::prelude::*;
use std::collections::BTreeSet;
use uniform_datalog::{FactSet, Relation};
use uniform_logic::{Fact, Sym};

const KEYS: usize = 12;
const TAGS: usize = 3;

fn fact(k: usize, t: usize) -> Fact {
    Fact::parse_like("p", &[&format!("k{k}"), &format!("t{t}")])
}

/// (op, key, tag): op 0 = insert, 1 = delete, 2 = delete-then-reinsert
/// (tombstone revival, the compaction-sensitive pattern).
fn arb_ops() -> impl Strategy<Value = Vec<(u8, usize, usize)>> {
    prop::collection::vec((0u8..3, 0..KEYS, 0..TAGS), 1..300)
}

/// Assert that `rel` answers exactly like the `mirror` set, through
/// membership, full scans, and every single-column index lookup.
fn assert_matches_mirror(rel: &Relation, mirror: &BTreeSet<(usize, usize)>, ctx: &str) {
    assert_eq!(rel.len(), mirror.len(), "{ctx}: live count");
    for k in 0..KEYS {
        for t in 0..TAGS {
            assert_eq!(
                rel.contains(&fact(k, t).args),
                mirror.contains(&(k, t)),
                "{ctx}: contains(k{k},t{t})"
            );
        }
    }
    // Full scan sees exactly the live tuples.
    let mut scanned: BTreeSet<(usize, usize)> = BTreeSet::new();
    rel.scan(&[None, None], &mut |args| {
        let k: usize = args[0].as_str()[1..].parse().unwrap();
        let t: usize = args[1].as_str()[1..].parse().unwrap();
        assert!(scanned.insert((k, t)), "{ctx}: duplicate tuple in scan");
        true
    });
    assert_eq!(&scanned, mirror, "{ctx}: full scan contents");
    // Column-0 index lookups skip tombstones and stale slots.
    for k in 0..KEYS {
        let mut seen = BTreeSet::new();
        rel.scan(&[Some(Sym::new(&format!("k{k}"))), None], &mut |args| {
            seen.insert(args[1].as_str()[1..].parse::<usize>().unwrap());
            true
        });
        let expect: BTreeSet<usize> = mirror
            .iter()
            .filter(|&&(mk, _)| mk == k)
            .map(|&(_, t)| t)
            .collect();
        assert_eq!(seen, expect, "{ctx}: index lookup on k{k}");
    }
    // Column-1 likewise.
    for t in 0..TAGS {
        let mut seen = BTreeSet::new();
        rel.scan(&[None, Some(Sym::new(&format!("t{t}")))], &mut |args| {
            seen.insert(args[0].as_str()[1..].parse::<usize>().unwrap());
            true
        });
        let expect: BTreeSet<usize> = mirror
            .iter()
            .filter(|&&(_, mt)| mt == t)
            .map(|&(k, _)| k)
            .collect();
        assert_eq!(seen, expect, "{ctx}: index lookup on t{t}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn churn_preserves_contents_across_compaction(ops in arb_ops()) {
        let mut fs = FactSet::new();
        let mut mirror: BTreeSet<(usize, usize)> = BTreeSet::new();
        let mut threshold_crossings = 0usize;
        for &(op, k, t) in &ops {
            let stale_before = fs
                .relation(Sym::new("p"))
                .map(|r| r.stale_slots())
                .unwrap_or(0);
            match op {
                0 => {
                    prop_assert_eq!(fs.insert(&fact(k, t)), mirror.insert((k, t)));
                }
                1 => {
                    prop_assert_eq!(fs.remove(&fact(k, t)), mirror.remove(&(k, t)));
                }
                _ => {
                    fs.remove(&fact(k, t));
                    mirror.remove(&(k, t));
                    prop_assert!(fs.insert(&fact(k, t)), "revival must report a change");
                    mirror.insert((k, t));
                }
            }
            let Some(rel) = fs.relation(Sym::new("p")) else {
                continue; // nothing stored yet (leading deletes)
            };
            if rel.stale_slots() < stale_before {
                threshold_crossings += 1;
            }
            // The auto-compaction invariant: past the size floor, stale
            // slots never dominate the arena.
            let arena = rel.len() + rel.stale_slots();
            prop_assert!(
                arena < 32 || rel.stale_slots() * 2 <= arena,
                "stale fraction unbounded: {} of {}",
                rel.stale_slots(),
                arena
            );
        }
        let Some(rel) = fs.relation(Sym::new("p")) else {
            prop_assert!(mirror.is_empty());
            return Ok(());
        };
        assert_matches_mirror(rel, &mirror, "after churn");

        // An explicit compact drops every tombstone and changes nothing
        // observable but the arena size.
        let mut compacted = rel.clone();
        compacted.compact();
        prop_assert_eq!(compacted.stale_slots(), 0);
        assert_matches_mirror(&compacted, &mirror, "after explicit compact");

        // Live-tuple iteration order survives compaction verbatim.
        let before: Vec<Vec<Sym>> = rel.iter().map(|t| t.to_vec()).collect();
        let after: Vec<Vec<Sym>> = compacted.iter().map(|t| t.to_vec()).collect();
        prop_assert_eq!(before, after, "iteration order must be preserved");

        // Keep the generator honest: tombstone-heavy cases must actually
        // exercise the threshold sometimes (over all cases, not each).
        let _ = threshold_crossings;
    }
}

/// Regression (found by the 1024-case `PROPTEST_CASES` pass and shrunk
/// by the shim): a relation below the compaction floor can accumulate
/// tombstones past 50% (sub-floor removes never compact); the *insert*
/// that then grows the arena across the floor must re-check the
/// dominance invariant, not leave it violated until the next delete.
#[test]
fn floor_crossing_insert_compacts() {
    let mut fs = FactSet::new();
    // 31 live tuples: arena 31, below the floor of 32.
    let tuples: Vec<(usize, usize)> = (0..KEYS)
        .flat_map(|k| (0..TAGS).map(move |t| (k, t)))
        .take(31)
        .collect();
    for &(k, t) in &tuples {
        fs.insert(&fact(k, t));
    }
    // Tombstone 17 of them — over half, but the arena is sub-floor so
    // no remove triggers compaction.
    for &(k, t) in tuples.iter().take(17) {
        fs.remove(&fact(k, t));
    }
    assert_eq!(fs.relation(Sym::new("p")).unwrap().stale_slots(), 17);
    // The 32nd slot crosses the floor: stale slots must not dominate.
    fs.insert(&fact(KEYS - 1, TAGS - 1));
    let rel = fs.relation(Sym::new("p")).unwrap();
    let arena = rel.len() + rel.stale_slots();
    assert!(
        rel.stale_slots() * 2 <= arena,
        "stale fraction unbounded after floor-crossing insert: {} of {arena}",
        rel.stale_slots()
    );
    assert_eq!(rel.len(), 15, "14 survivors + the new tuple");
}

/// Deterministic heavy churn that provably crosses the 50% threshold
/// repeatedly, then keeps using the indexes.
#[test]
fn repeated_threshold_crossings_keep_indexes_exact() {
    let mut fs = FactSet::new();
    let mut mirror: BTreeSet<(usize, usize)> = BTreeSet::new();
    for round in 0..6 {
        for k in 0..KEYS {
            for t in 0..TAGS {
                fs.insert(&fact(k, t));
                mirror.insert((k, t));
            }
        }
        // Delete all but one tag; arena (36+) is past the floor, so the
        // tombstone fraction crosses 50% and auto-compaction fires.
        for k in 0..KEYS {
            for t in 0..TAGS {
                if t != round % TAGS {
                    fs.remove(&fact(k, t));
                    mirror.remove(&(k, t));
                }
            }
        }
        let rel = fs.relation(Sym::new("p")).unwrap();
        let arena = rel.len() + rel.stale_slots();
        assert!(
            rel.stale_slots() * 2 <= arena,
            "round {round}: compaction should have bounded staleness"
        );
        assert_matches_mirror(rel, &mirror, &format!("round {round}"));
    }
}
