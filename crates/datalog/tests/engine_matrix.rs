//! Engine-agreement matrix: for a catalogue of programs, the overlay
//! engine (goal-directed `new` simulation) must agree with brute-force
//! recomputation of the canonical model for every single-fact update and
//! every ground goal over a small constant grid.

use uniform_datalog::{FactSet, Interp, Model, OverlayEngine, RuleSet, Update};
use uniform_logic::{parse_fact, parse_rule, Fact, Rule};

struct Program {
    name: &'static str,
    facts: Vec<Fact>,
    rules: RuleSet,
    preds: Vec<(&'static str, usize)>,
}

fn program(
    name: &'static str,
    facts: &[&str],
    rules: &[&str],
    preds: &[(&'static str, usize)],
) -> Program {
    Program {
        name,
        facts: facts.iter().map(|f| parse_fact(f).unwrap()).collect(),
        rules: RuleSet::new(
            rules
                .iter()
                .map(|r| parse_rule(r).unwrap())
                .collect::<Vec<Rule>>(),
        )
        .unwrap(),
        preds: preds.to_vec(),
    }
}

fn catalogue() -> Vec<Program> {
    vec![
        program(
            "flat",
            &["l(a,b)."],
            &["m(X,Y) :- l(X,Y)."],
            &[("l", 2), ("m", 2)],
        ),
        program(
            "join",
            &["q(a,b).", "p(b,c)."],
            &["r(X) :- q(X,Y), p(Y,Z)."],
            &[("q", 2), ("p", 2), ("r", 1)],
        ),
        program(
            "negation",
            &["e(a).", "e(b).", "g(b)."],
            &["u(X) :- e(X), not g(X)."],
            &[("e", 1), ("g", 1), ("u", 1)],
        ),
        program(
            "two-strata",
            &["e(a).", "g(a).", "h(b)."],
            &["u(X) :- e(X), not g(X).", "v(X) :- h(X), not u(X)."],
            &[("e", 1), ("g", 1), ("h", 1), ("u", 1), ("v", 1)],
        ),
        program(
            "recursive",
            &["edge(a,b).", "edge(b,c)."],
            &["tc(X,Y) :- edge(X,Y).", "tc(X,Z) :- tc(X,Y), edge(Y,Z)."],
            &[("edge", 2), ("tc", 2)],
        ),
        program(
            "mixed-explicit-derived",
            &["m(a,b).", "l(c,d)."],
            &["m(X,Y) :- l(X,Y)."],
            &[("l", 2), ("m", 2)],
        ),
    ]
}

fn ground_goals(preds: &[(&str, usize)]) -> Vec<Fact> {
    let consts = ["a", "b", "c", "d"];
    let mut out = Vec::new();
    for &(p, arity) in preds {
        match arity {
            1 => {
                for c in consts {
                    out.push(Fact::parse_like(p, &[c]));
                }
            }
            2 => {
                for c1 in consts {
                    for c2 in consts {
                        out.push(Fact::parse_like(p, &[c1, c2]));
                    }
                }
            }
            _ => unreachable!(),
        }
    }
    out
}

#[test]
fn overlay_engine_agrees_with_recomputation_everywhere() {
    for prog in catalogue() {
        let edb = FactSet::from_facts(prog.facts.iter().cloned());
        let goals = ground_goals(&prog.preds);
        // Updates: insert/delete every EDB-shaped goal.
        for goal in &goals {
            for insert in [true, false] {
                let update = if insert {
                    Update::insert(goal.clone())
                } else {
                    Update::delete(goal.clone())
                };
                // Ground truth: apply and recompute.
                let mut applied = edb.clone();
                update.apply(&mut applied);
                let truth = Model::compute(&applied, &prog.rules);
                // Simulation: overlay engine.
                let engine = OverlayEngine::updated(
                    &edb,
                    &prog.rules,
                    update.added().cloned().into_iter().collect(),
                    update.removed().cloned().into_iter().collect(),
                );
                for probe in &goals {
                    assert_eq!(
                        engine.holds(probe),
                        truth.contains(probe),
                        "{}: update {:?}, probe {probe}",
                        prog.name,
                        update
                    );
                }
            }
        }
    }
}

#[test]
fn overlay_scans_agree_with_recomputation() {
    for prog in catalogue() {
        let edb = FactSet::from_facts(prog.facts.iter().cloned());
        let new_fact = {
            // One representative insertion per program: the first goal.
            let goals = ground_goals(&prog.preds);
            goals.into_iter().next().unwrap()
        };
        let engine = OverlayEngine::updated(&edb, &prog.rules, vec![new_fact.clone()], vec![]);
        let mut applied = edb.clone();
        applied.insert(&new_fact);
        let truth = Model::compute(&applied, &prog.rules);
        for &(pred, arity) in &prog.preds {
            let pattern = vec![None; arity];
            let mut from_engine: Vec<Vec<uniform_logic::Sym>> = Vec::new();
            engine.scan(uniform_logic::Sym::new(pred), &pattern, &mut |t| {
                from_engine.push(t.to_vec());
                true
            });
            let mut from_truth: Vec<Vec<uniform_logic::Sym>> = Vec::new();
            truth.scan(uniform_logic::Sym::new(pred), &pattern, &mut |t| {
                from_truth.push(t.to_vec());
                true
            });
            from_engine.sort();
            from_truth.sort();
            assert_eq!(from_engine, from_truth, "{}: scan of {pred}", prog.name);
        }
    }
}

#[test]
fn model_recomputation_is_idempotent() {
    for prog in catalogue() {
        let edb = FactSet::from_facts(prog.facts.iter().cloned());
        let m1 = Model::compute(&edb, &prog.rules);
        let m2 = Model::compute(&edb, &prog.rules);
        let mut f1: Vec<Fact> = m1.iter().collect();
        let mut f2: Vec<Fact> = m2.iter().collect();
        f1.sort();
        f2.sort();
        assert_eq!(f1, f2, "{}", prog.name);
    }
}
