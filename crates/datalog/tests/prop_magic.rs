//! Property tests: magic-sets answers must equal the canonical-model
//! answers for every goal, on randomly generated graphs and programs.

use proptest::prelude::*;
use uniform_datalog::{answer_goal_magic, Database, Model};
use uniform_logic::{match_atom, Atom, Term};

/// Build a database from random edges over a small constant pool, with
/// the given recursive program.
fn graph_db(edges: &[(u8, u8)], program: &str) -> Database {
    let mut src = String::new();
    for (a, b) in edges {
        src.push_str(&format!("edge(n{a}, n{b}).\n"));
    }
    src.push_str(program);
    Database::parse(&src).unwrap()
}

fn naive_answers(db: &Database, goal: &Atom) -> Vec<String> {
    let model = Model::compute(db.facts(), db.rules());
    let mut out: Vec<String> = model
        .iter()
        .filter(|f| f.pred == goal.pred && match_atom(goal, f).is_some())
        .map(|f| f.to_string())
        .collect();
    out.sort();
    out
}

fn magic_answers(db: &Database, goal: &Atom) -> Vec<String> {
    let mut out: Vec<String> = answer_goal_magic(db.facts(), db.rules(), goal)
        .unwrap()
        .answers
        .iter()
        .map(|f| f.to_string())
        .collect();
    out.sort();
    out.dedup();
    out
}

/// Goal shapes: (bound?, bound?) over the node pool.
fn goal_for(pred: &str, pattern: u8, x: u8, y: u8) -> Atom {
    let tx = |bound: bool, c: u8, var: &str| {
        if bound {
            Term::from_name(&format!("n{c}"))
        } else {
            Term::from_name(var)
        }
    };
    Atom::new(
        pred,
        vec![tx(pattern & 1 != 0, x, "U"), tx(pattern & 2 != 0, y, "V")],
    )
}

const LINEAR_TC: &str = "
    tc(X, Y) :- edge(X, Y).
    tc(X, Z) :- edge(X, Y), tc(Y, Z).
";

const RIGHT_TC: &str = "
    tc(X, Y) :- edge(X, Y).
    tc(X, Z) :- tc(X, Y), edge(Y, Z).
";

const NONLINEAR_TC: &str = "
    tc(X, Y) :- edge(X, Y).
    tc(X, Z) :- tc(X, Y), tc(Y, Z).
";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn magic_equals_naive_on_linear_tc(
        edges in proptest::collection::vec((0u8..6, 0u8..6), 0..14),
        pattern in 0u8..4,
        x in 0u8..6,
        y in 0u8..6,
    ) {
        let db = graph_db(&edges, LINEAR_TC);
        let goal = goal_for("tc", pattern, x, y);
        prop_assert_eq!(magic_answers(&db, &goal), naive_answers(&db, &goal));
    }

    #[test]
    fn magic_equals_naive_on_right_recursion(
        edges in proptest::collection::vec((0u8..6, 0u8..6), 0..14),
        pattern in 0u8..4,
        x in 0u8..6,
        y in 0u8..6,
    ) {
        let db = graph_db(&edges, RIGHT_TC);
        let goal = goal_for("tc", pattern, x, y);
        prop_assert_eq!(magic_answers(&db, &goal), naive_answers(&db, &goal));
    }

    #[test]
    fn magic_equals_naive_on_nonlinear_tc(
        edges in proptest::collection::vec((0u8..5, 0u8..5), 0..10),
        pattern in 0u8..4,
        x in 0u8..5,
        y in 0u8..5,
    ) {
        let db = graph_db(&edges, NONLINEAR_TC);
        let goal = goal_for("tc", pattern, x, y);
        prop_assert_eq!(magic_answers(&db, &goal), naive_answers(&db, &goal));
    }

    #[test]
    fn magic_never_over_derives(
        edges in proptest::collection::vec((0u8..6, 0u8..6), 0..14),
        x in 0u8..6,
    ) {
        // With the source bound, the rewrite must not derive more facts
        // than the full materialization of the closure.
        let db = graph_db(&edges, RIGHT_TC);
        let goal = goal_for("tc", 1, x, 0);
        let result = answer_goal_magic(db.facts(), db.rules(), &goal).unwrap();
        let full = Model::compute(db.facts(), db.rules());
        let full_derived = full.len() - db.facts().len();
        // Each magic fact + adorned fact + import copy can at most
        // triple-count a closure fact plus one seed.
        prop_assert!(result.derived_facts <= 3 * full_derived + 1,
            "derived {} vs full {}", result.derived_facts, full_derived);
    }

    #[test]
    fn magic_agrees_with_overlay_engine_provability(
        edges in proptest::collection::vec((0u8..6, 0u8..6), 0..14),
        x in 0u8..6,
        y in 0u8..6,
    ) {
        // Cross-engine agreement: ground tc goals answered by the magic
        // rewrite match the canonical model membership used everywhere
        // else.
        let db = graph_db(&edges, LINEAR_TC);
        let goal = goal_for("tc", 3, x, y);
        let magic_yes = !magic_answers(&db, &goal).is_empty();
        let fact = uniform_logic::Fact::parse_like("tc", &[&format!("n{x}"), &format!("n{y}")]);
        let model = db.model();
        prop_assert_eq!(magic_yes, model.contains(&fact));
    }
}
