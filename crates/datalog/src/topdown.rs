//! The overlay query engine: the evaluator `new(U, ·)` relies on.
//!
//! §3.3.2 simulates the updated database with a meta-interpreter instead
//! of applying the update: an atom holds in `U(D)` if it is explicit and
//! not deleted, or is the inserted fact, or follows from a rule whose body
//! holds in `U(D)`. The paper notes that the interpreter "is not
//! recursive as long as no deduction rules of the database are recursive",
//! and that recursive rules require a query evaluator able to handle
//! recursion (Vieille 87).
//!
//! This engine follows the same split:
//!
//! * predicates whose reachable subprogram is non-recursive are solved by
//!   goal-directed SLD-style resolution over the overlaid EDB — zero
//!   materialization, bindings pushed into scans;
//! * predicates that reach recursion fall back to a lazily materialized
//!   canonical model of the overlaid database (computed once per engine,
//!   restricted to the reachable subprogram).

use crate::cq::solve_conjunction;
use crate::interp::{Interp, Overlay};
use crate::memo::StripedMemo;
use crate::model::Model;
use crate::program::RuleSet;
use crate::store::FactSet;
use parking_lot::RwLock;
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use uniform_logic::{Fact, Subst, Sym, Term};

/// A virtual interpretation of the canonical model of `U(D)`, where the
/// update is *not* applied to `edb`.
///
/// `Sync`: the lazily materialized fallback model and the shared-subquery
/// memo sit behind locks, so one engine can serve the parallel
/// per-constraint evaluation loop of `uniform-integrity` directly.
pub struct OverlayEngine<'a> {
    edb: &'a FactSet,
    rules: &'a RuleSet,
    added: Vec<Fact>,
    removed: Vec<Fact>,
    /// Lazily materialized canonical model of the overlaid database, only
    /// built when a recursion-reaching predicate is queried.
    materialized: RwLock<Option<Arc<Model>>>,
    /// Statistics: how many times the recursive fallback was taken.
    materializations: AtomicUsize,
    /// Memo for ground IDB goals solved through the SLD path. This is the
    /// engine-level realization of §3.2's "global evaluation": when many
    /// simplified instances are evaluated against one simulated state,
    /// shared subqueries (the paper's `attends(jack, ddb)` example) are
    /// answered once. Striped by goal hash so parallel evaluators don't
    /// contend on one lock (see [`StripedMemo`]).
    goal_memo: StripedMemo<Fact, bool>,
    memo_hits: AtomicUsize,
}

impl<'a> OverlayEngine<'a> {
    /// Engine for the *current* state (no update) — this is `evaluate`.
    pub fn current(edb: &'a FactSet, rules: &'a RuleSet) -> Self {
        Self::updated(edb, rules, Vec::new(), Vec::new())
    }

    /// Engine for the updated state `U(D)` — this is `new`. Positive
    /// update literals are insertions, negative ones deletions (§3); a
    /// transaction passes its net effect.
    pub fn updated(
        edb: &'a FactSet,
        rules: &'a RuleSet,
        insert: Vec<Fact>,
        delete: Vec<Fact>,
    ) -> Self {
        OverlayEngine {
            edb,
            rules,
            added: insert,
            removed: delete,
            materialized: RwLock::new(None),
            materializations: AtomicUsize::new(0),
            goal_memo: StripedMemo::new(),
            memo_hits: AtomicUsize::new(0),
        }
    }

    fn overlay(&self) -> Overlay<'_, FactSet> {
        Overlay::new(self.edb, &self.added, &self.removed)
    }

    /// Number of times the materialized fallback was built (0 or 1; for
    /// instrumentation).
    pub fn materialization_count(&self) -> usize {
        self.materializations.load(Ordering::Relaxed)
    }

    /// Ground-subquery memo hits (instrumentation for experiment E4).
    pub fn memo_hits(&self) -> usize {
        self.memo_hits.load(Ordering::Relaxed)
    }

    fn ensure_materialized(&self) -> Arc<Model> {
        if let Some(model) = self.materialized.read().as_ref() {
            return model.clone();
        }
        let mut slot = self.materialized.write();
        if slot.is_none() {
            let mut edb = self.edb.clone();
            for f in &self.added {
                edb.insert(f);
            }
            for f in &self.removed {
                edb.remove(f);
            }
            *slot = Some(Arc::new(Model::compute(&edb, self.rules)));
            self.materializations.fetch_add(1, Ordering::Relaxed);
        }
        slot.as_ref().expect("just materialized").clone()
    }

    /// Resolve a ground goal by scanning with every position bound
    /// (the uncached slow path behind [`Interp::holds`]).
    fn resolve(&self, fact: &Fact) -> bool {
        let pattern: Vec<Option<Sym>> = fact.args.iter().map(|&c| Some(c)).collect();
        let mut found = false;
        self.scan(fact.pred, &pattern, &mut |_| {
            found = true;
            false
        });
        found
    }

    /// Solve an IDB goal by SLD resolution (non-recursive path).
    fn solve_rules(
        &self,
        pred: Sym,
        pattern: &[Option<Sym>],
        emitted: &mut HashSet<Vec<Sym>>,
        each: &mut dyn FnMut(&[Sym]) -> bool,
    ) -> bool {
        for (_, rule) in self.rules.rules_for(pred) {
            let rule = rule.rename_apart();
            // Unify the head with the call pattern.
            let mut subst = Subst::new();
            let mut ok = true;
            for (&arg, pat) in rule.head.args.iter().zip(pattern) {
                if let Some(c) = pat {
                    if !uniform_logic::unify_terms(&mut subst, arg, Term::Const(*c)) {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                continue;
            }
            let mut keep_going = true;
            solve_conjunction(self, &rule.body, &mut subst, &mut |s| {
                let Some(fact) = s.ground_atom(&rule.head) else {
                    return true;
                };
                if emitted.insert(fact.args.clone()) {
                    keep_going = each(&fact.args);
                }
                keep_going
            });
            if !keep_going {
                return false;
            }
        }
        true
    }
}

impl Interp for OverlayEngine<'_> {
    fn holds(&self, fact: &Fact) -> bool {
        // Memoize ground IDB goals on the SLD path; EDB lookups and
        // materialized (recursive) predicates are O(1) already. Each
        // goal gets a `OnceLock` slot so exactly one thread resolves it
        // (concurrent askers of the *same* goal block on that slot) and
        // `memo_hits` counts re-asks deterministically regardless of
        // scheduling. Non-recursive goals cannot re-enter their own
        // slot, so `get_or_init` cannot self-deadlock.
        let graph = self.rules.graph();
        let memoizable = graph.is_idb(fact.pred) && !graph.reaches_recursion(fact.pred);
        if !memoizable {
            return self.resolve(fact);
        }
        let slot = self.goal_memo.slot(fact);
        let mut resolved_here = false;
        let verdict = *slot.get_or_init(|| {
            resolved_here = true;
            self.resolve(fact)
        });
        if !resolved_here {
            self.memo_hits.fetch_add(1, Ordering::Relaxed);
        }
        verdict
    }

    fn scan(
        &self,
        pred: Sym,
        pattern: &[Option<Sym>],
        each: &mut dyn FnMut(&[Sym]) -> bool,
    ) -> bool {
        let graph = self.rules.graph();
        if !graph.is_idb(pred) {
            // Pure EDB predicate: overlaid base facts only.
            return self.overlay().scan(pred, pattern, each);
        }
        if graph.reaches_recursion(pred) {
            return self.ensure_materialized().scan(pred, pattern, each);
        }
        // Non-recursive IDB: explicit facts first, then SLD over rules,
        // deduplicating across both sources.
        let mut emitted: HashSet<Vec<Sym>> = HashSet::new();
        let completed = self.overlay().scan(pred, pattern, &mut |args| {
            if emitted.insert(args.to_vec()) {
                each(args)
            } else {
                true
            }
        });
        if !completed {
            return false;
        }
        self.solve_rules(pred, pattern, &mut emitted, each)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniform_logic::{parse_fact, parse_rule, Rule};

    fn edb(facts: &[&str]) -> FactSet {
        FactSet::from_facts(facts.iter().map(|f| parse_fact(f).unwrap()))
    }

    fn rules(srcs: &[&str]) -> RuleSet {
        RuleSet::new(
            srcs.iter()
                .map(|s| parse_rule(s).unwrap())
                .collect::<Vec<Rule>>(),
        )
        .unwrap()
    }

    fn fact(src: &str) -> Fact {
        parse_fact(src).unwrap()
    }

    #[test]
    fn edb_queries_see_overlay() {
        let e = edb(&["p(a)."]);
        let r = rules(&[]);
        let engine = OverlayEngine::updated(&e, &r, vec![fact("p(b).")], vec![]);
        assert!(engine.holds(&fact("p(a).")));
        assert!(engine.holds(&fact("p(b).")));
        let engine2 = OverlayEngine::updated(&e, &r, vec![], vec![fact("p(a).")]);
        assert!(!engine2.holds(&fact("p(a).")));
    }

    #[test]
    fn derived_facts_follow_insertion() {
        // §5 rule: member(X,Y) :- leads(X,Y). Inserting leads(c,b) makes
        // member(c,b) true in the simulated state.
        let e = edb(&[]);
        let r = rules(&["member(X,Y) :- leads(X,Y)."]);
        let engine = OverlayEngine::updated(&e, &r, vec![fact("leads(c,b).")], vec![]);
        assert!(engine.holds(&fact("member(c,b).")));
        assert!(!engine.holds(&fact("member(b,c).")));
        assert_eq!(engine.materialization_count(), 0, "non-recursive: pure SLD");
    }

    #[test]
    fn derived_facts_follow_deletion() {
        let e = edb(&["leads(c,b)."]);
        let r = rules(&["member(X,Y) :- leads(X,Y)."]);
        let engine = OverlayEngine::updated(&e, &r, vec![], vec![fact("leads(c,b).")]);
        assert!(!engine.holds(&fact("member(c,b).")));
        // And the current-state engine still sees it.
        let now = OverlayEngine::current(&e, &r);
        assert!(now.holds(&fact("member(c,b).")));
    }

    #[test]
    fn explicit_and_derived_deduplicated() {
        let e = edb(&["member(a,b).", "leads(a,b)."]);
        let r = rules(&["member(X,Y) :- leads(X,Y)."]);
        let engine = OverlayEngine::current(&e, &r);
        let mut n = 0;
        engine.scan(Sym::new("member"), &[None, None], &mut |_| {
            n += 1;
            true
        });
        assert_eq!(n, 1);
    }

    #[test]
    fn negation_in_rule_bodies() {
        let e = edb(&["emp(a).", "emp(b).", "absent(b)."]);
        let r = rules(&["present(X) :- emp(X), not absent(X)."]);
        let engine = OverlayEngine::current(&e, &r);
        assert!(engine.holds(&fact("present(a).")));
        assert!(!engine.holds(&fact("present(b).")));
        // Simulate inserting absent(a): present(a) flips off.
        let upd = OverlayEngine::updated(&e, &r, vec![fact("absent(a).")], vec![]);
        assert!(!upd.holds(&fact("present(a).")));
    }

    #[test]
    fn recursive_predicates_materialize() {
        let e = edb(&["edge(a,b).", "edge(b,c)."]);
        let r = rules(&["tc(X,Y) :- edge(X,Y).", "tc(X,Z) :- tc(X,Y), edge(Y,Z)."]);
        let engine = OverlayEngine::updated(&e, &r, vec![fact("edge(c,d).")], vec![]);
        assert!(engine.holds(&fact("tc(a,d).")));
        assert_eq!(engine.materialization_count(), 1);
        // Second recursive query reuses the materialization.
        assert!(engine.holds(&fact("tc(b,d).")));
        assert_eq!(engine.materialization_count(), 1);
        assert!(!engine.holds(&fact("tc(d,a).")));
    }

    #[test]
    fn recursion_behind_nonrecursive_wrapper() {
        let e = edb(&["edge(a,b)."]);
        let r = rules(&[
            "tc(X,Y) :- edge(X,Y).",
            "tc(X,Z) :- tc(X,Y), edge(Y,Z).",
            "connected(X,Y) :- tc(X,Y).",
        ]);
        let engine = OverlayEngine::updated(&e, &r, vec![fact("edge(b,c).")], vec![]);
        assert!(engine.holds(&fact("connected(a,c).")));
    }

    #[test]
    fn scan_with_pattern_over_rules() {
        let e = edb(&["leads(ann,sales).", "leads(bob,hr)."]);
        let r = rules(&["member(X,Y) :- leads(X,Y)."]);
        let engine = OverlayEngine::current(&e, &r);
        let mut seen = Vec::new();
        engine.scan(
            Sym::new("member"),
            &[None, Some(Sym::new("hr"))],
            &mut |t| {
                seen.push(t[0].as_str());
                true
            },
        );
        assert_eq!(seen, vec!["bob"]);
    }

    #[test]
    fn striped_goal_memo_counts_reasks_deterministically() {
        let e = edb(&["leads(ann,sales).", "leads(bob,hr)."]);
        let r = rules(&["member(X,Y) :- leads(X,Y)."]);
        let engine = OverlayEngine::current(&e, &r);
        // Distinct goals land on (potentially) distinct stripes; re-asks
        // of the same goal hit its OnceLock slot exactly once each.
        assert!(engine.holds(&fact("member(ann,sales).")));
        assert!(engine.holds(&fact("member(bob,hr).")));
        assert_eq!(engine.memo_hits(), 0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let engine = &engine;
                scope.spawn(move || {
                    assert!(engine.holds(&fact("member(ann,sales).")));
                    assert!(!engine.holds(&fact("member(ann,hr).")));
                });
            }
        });
        // 4 re-asks of the warm goal; the cold goal was resolved once by
        // whichever thread got there first and re-asked by the other 3.
        assert_eq!(engine.memo_hits(), 7);
    }

    #[test]
    fn inserting_explicitly_present_fact_changes_nothing() {
        let e = edb(&["p(a)."]);
        let r = rules(&["q(X) :- p(X)."]);
        let engine = OverlayEngine::updated(&e, &r, vec![fact("p(a).")], vec![]);
        let mut n = 0;
        engine.scan(Sym::new("q"), &[None], &mut |_| {
            n += 1;
            true
        });
        assert_eq!(n, 1);
    }
}
