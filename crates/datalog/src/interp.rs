//! The interpretation interface shared by every evaluator.
//!
//! Constraint evaluation, rule bodies, ranges of restricted quantifiers —
//! everything queries the database through [`Interp`]: membership tests
//! and indexed scans. Implementors include the raw [`FactSet`]
//! (relational case), the materialized canonical [`Model`]
//! (deductive case), and the overlay engine that simulates the updated
//! database for `new` (§3.3.2) without applying the update.
//!
//! [`FactSet`]: crate::store::FactSet
//! [`Model`]: crate::model::Model

use crate::store::FactSet;
use uniform_logic::{Fact, Sym};

/// A (possibly virtual) interpretation: the set of true ground atoms.
pub trait Interp {
    /// Is `fact` true?
    fn holds(&self, fact: &Fact) -> bool;

    /// Enumerate true facts of `pred` whose argument at position `i`
    /// equals `pattern[i]` wherever it is `Some`. `each` returns `false`
    /// to abort; the return value reports whether the scan completed.
    fn scan(
        &self,
        pred: Sym,
        pattern: &[Option<Sym>],
        each: &mut dyn FnMut(&[Sym]) -> bool,
    ) -> bool;
}

impl Interp for FactSet {
    fn holds(&self, fact: &Fact) -> bool {
        self.contains(fact)
    }

    fn scan(
        &self,
        pred: Sym,
        pattern: &[Option<Sym>],
        each: &mut dyn FnMut(&[Sym]) -> bool,
    ) -> bool {
        match self.relation(pred) {
            Some(rel) if rel.arity() == pattern.len() => rel.scan(pattern, each),
            _ => true,
        }
    }
}

/// An interpretation shifted by an update: `base` with the facts in
/// `added` treated as true and those in `removed` as false (a single-fact
/// update uses one-element slices; a transaction its net effect).
/// Zero-copy view used by both the relational checker and as the EDB
/// layer of the deductive overlay engine.
pub struct Overlay<'a, I: ?Sized> {
    pub base: &'a I,
    pub added: &'a [Fact],
    pub removed: &'a [Fact],
}

impl<'a, I: Interp + ?Sized> Overlay<'a, I> {
    pub fn new(base: &'a I, added: &'a [Fact], removed: &'a [Fact]) -> Self {
        Overlay {
            base,
            added,
            removed,
        }
    }
}

impl<I: Interp + ?Sized> Interp for Overlay<'_, I> {
    fn holds(&self, fact: &Fact) -> bool {
        if self.added.contains(fact) {
            return true;
        }
        if self.removed.contains(fact) {
            return false;
        }
        self.base.holds(fact)
    }

    fn scan(
        &self,
        pred: Sym,
        pattern: &[Option<Sym>],
        each: &mut dyn FnMut(&[Sym]) -> bool,
    ) -> bool {
        let matches = |f: &Fact| {
            f.pred == pred
                && f.args.len() == pattern.len()
                && pattern
                    .iter()
                    .zip(&f.args)
                    .all(|(p, &v)| p.is_none_or(|c| c == v))
        };
        for add in self.added {
            if matches(add) && !self.base.holds(add) && !each(&add.args) {
                return false;
            }
        }
        let removed = self.removed;
        self.base.scan(pred, pattern, &mut |args| {
            if removed.iter().any(|f| f.pred == pred && f.args == args) {
                return true;
            }
            each(args)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fact(p: &str, args: &[&str]) -> Fact {
        Fact::parse_like(p, args)
    }

    #[test]
    fn factset_is_an_interp() {
        let fs = FactSet::from_facts([fact("p", &["a"]), fact("p", &["b"])]);
        assert!(fs.holds(&fact("p", &["a"])));
        assert!(!fs.holds(&fact("p", &["c"])));
        let mut n = 0;
        fs.scan(Sym::new("p"), &[None], &mut |_| {
            n += 1;
            true
        });
        assert_eq!(n, 2);
        // Unknown predicate scans empty.
        assert!(fs.scan(Sym::new("zzz"), &[None], &mut |_| false));
    }

    #[test]
    fn overlay_insertion_visible() {
        let fs = FactSet::from_facts([fact("p", &["a"])]);
        let add = fact("p", &["b"]);
        let ov = Overlay::new(&fs, std::slice::from_ref(&add), &[]);
        assert!(ov.holds(&fact("p", &["b"])));
        assert!(ov.holds(&fact("p", &["a"])));
        let mut seen = Vec::new();
        ov.scan(Sym::new("p"), &[None], &mut |t| {
            seen.push(t[0].as_str());
            true
        });
        seen.sort();
        assert_eq!(seen, vec!["a", "b"]);
    }

    #[test]
    fn overlay_deletion_hidden() {
        let fs = FactSet::from_facts([fact("p", &["a"]), fact("p", &["b"])]);
        let del = fact("p", &["a"]);
        let ov = Overlay::new(&fs, &[], std::slice::from_ref(&del));
        assert!(!ov.holds(&fact("p", &["a"])));
        assert!(ov.holds(&fact("p", &["b"])));
        let mut seen = Vec::new();
        ov.scan(Sym::new("p"), &[None], &mut |t| {
            seen.push(t[0].as_str());
            true
        });
        assert_eq!(seen, vec!["b"]);
    }

    #[test]
    fn overlay_insert_existing_fact_not_duplicated() {
        let fs = FactSet::from_facts([fact("p", &["a"])]);
        let add = fact("p", &["a"]);
        let ov = Overlay::new(&fs, std::slice::from_ref(&add), &[]);
        let mut n = 0;
        ov.scan(Sym::new("p"), &[None], &mut |_| {
            n += 1;
            true
        });
        assert_eq!(n, 1);
    }

    #[test]
    fn overlay_scan_respects_pattern() {
        let fs = FactSet::from_facts([fact("q", &["a", "x"])]);
        let add = fact("q", &["b", "y"]);
        let ov = Overlay::new(&fs, std::slice::from_ref(&add), &[]);
        let mut seen = Vec::new();
        ov.scan(Sym::new("q"), &[Some(Sym::new("b")), None], &mut |t| {
            seen.push(t.to_vec());
            true
        });
        assert_eq!(seen, vec![vec![Sym::new("b"), Sym::new("y")]]);
    }
}
