//! Incremental maintenance of the materialized canonical model.
//!
//! Induced updates (Def. 4) are exactly the *view deltas* of the
//! canonical model across an EDB change. The paper's checkers consume
//! them transiently — `delta` enumerates descendants of the update, the
//! overlay engine simulates the new state without materializing it.
//! This module provides the complementary systems piece a resident
//! deductive database needs: a [`MaintainedModel`] that keeps the
//! canonical model materialized and applies updates *incrementally*
//! instead of recomputing from scratch.
//!
//! Method: the classic counting algorithm over delta rules. Each
//! derived fact of a **non-recursive stratum** carries the number of
//! rule instantiations deriving it; a batch of truth flips Δ is pushed
//! through every rule body position `i` with the telescoping join
//!
//! ```text
//! Δ(body) = Σᵢ  new(b₁ … bᵢ₋₁) ⋈ Δ(bᵢ) ⋈ old(bᵢ₊₁ … bₙ)
//! ```
//!
//! (negative literals contribute with flipped sign), so simultaneous
//! insertions and deletions net out exactly. Counting is sound only
//! without recursion; **recursive strata** are re-derived from their
//! inputs by the stratified fixpoint and diffed — the standard
//! fallback. Flips propagate upward stratum by stratum; the returned
//! flip list equals the brute-force model diff (property-tested).

use crate::interp::{Interp, Overlay};
use crate::model::Model;
use crate::program::RuleSet;
use crate::store::FactSet;
use crate::update::{Transaction, Update};
use std::collections::HashMap;
use uniform_logic::{match_atom, Fact, Literal, Subst, Sym};

/// Counters exposed for tests and benchmarks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MaintainStats {
    /// Batches of flips pushed through a stratum's rules.
    pub batches: usize,
    /// Signed count contributions computed by delta joins.
    pub contributions: usize,
    /// Visible truth flips (the induced updates), EDB level included.
    pub flips: usize,
    /// Recursive strata re-derived from scratch.
    pub strata_recomputed: usize,
}

/// A materialized canonical model maintained across updates.
pub struct MaintainedModel {
    rules: RuleSet,
    edb: FactSet,
    /// Current canonical model (EDB facts plus supported IDB facts).
    model: FactSet,
    /// Rule-instantiation counts of derived facts in non-recursive
    /// strata (facts of recursive strata are tracked by `model` alone).
    counts: HashMap<Fact, i64>,
    /// Rule indices grouped by head stratum.
    rules_by_stratum: Vec<Vec<usize>>,
    /// Does the stratum contain a recursive head predicate?
    stratum_recursive: Vec<bool>,
    /// Set when a counting invariant broke (a derivation count went
    /// negative): the maintained contents can no longer be trusted and
    /// the owner must fall back to full rematerialization.
    poisoned: bool,
    stats: MaintainStats,
}

impl MaintainedModel {
    /// Materialize `(edb, rules)` and prepare the counting state.
    pub fn new(edb: FactSet, rules: RuleSet) -> MaintainedModel {
        let model = Model::compute(&edb, &rules).facts().clone();
        MaintainedModel::with_model(edb, rules, model)
    }

    /// Adopt an already-materialized canonical model of `(edb, rules)` —
    /// e.g. a database's cached model — and prepare the counting state
    /// without recomputing the fixpoint. The caller asserts `model` *is*
    /// the canonical model; handing in anything else silently corrupts
    /// maintenance.
    pub fn with_model(edb: FactSet, rules: RuleSet, model: FactSet) -> MaintainedModel {
        let graph = rules.graph();
        let height = graph.height();
        let mut rules_by_stratum: Vec<Vec<usize>> = vec![Vec::new(); height.max(1)];
        let mut stratum_recursive = vec![false; height.max(1)];
        for (idx, rule) in rules.rules().iter().enumerate() {
            let s = graph.stratum(rule.head.pred);
            rules_by_stratum[s].push(idx);
            if graph.is_recursive(rule.head.pred) {
                stratum_recursive[s] = true;
            }
        }

        // Counts: number of body instantiations per derived fact, for
        // rules in non-recursive strata, evaluated over the fixpoint.
        let mut counts: HashMap<Fact, i64> = HashMap::new();
        for (s, rule_ids) in rules_by_stratum.iter().enumerate() {
            if stratum_recursive[s] {
                continue;
            }
            for &idx in rule_ids {
                let rule = rules.rule(idx);
                crate::cq::solve_conjunction(&model, &rule.body, &mut Subst::new(), &mut |sub| {
                    if let Some(head) = sub.ground_atom(&rule.head) {
                        *counts.entry(head).or_insert(0) += 1;
                    }
                    true
                });
            }
        }

        MaintainedModel {
            rules,
            edb,
            model,
            counts,
            rules_by_stratum,
            stratum_recursive,
            poisoned: false,
            stats: MaintainStats::default(),
        }
    }

    /// Did a counting invariant break? A poisoned model's contents can
    /// no longer be trusted; owners (the commit queue) drop it and fall
    /// back to rematerialization.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// The maintained model.
    pub fn model(&self) -> &FactSet {
        &self.model
    }

    /// The extensional facts.
    pub fn edb(&self) -> &FactSet {
        &self.edb
    }

    pub fn stats(&self) -> MaintainStats {
        self.stats
    }

    /// Is `fact` true in the maintained model?
    pub fn holds(&self, fact: &Fact) -> bool {
        self.model.contains(fact)
    }

    /// Apply one update; returns the visible truth flips (the update
    /// itself when effective, plus every induced update, Def. 4).
    pub fn apply(&mut self, update: &Update) -> Vec<Literal> {
        self.apply_transaction(&Transaction::single(update.clone()))
    }

    /// Apply a transaction atomically; returns the visible truth flips.
    pub fn apply_transaction(&mut self, tx: &Transaction) -> Vec<Literal> {
        // Def. 1 net effect at the EDB level.
        let mut seed: Vec<(Fact, i64)> = Vec::new();
        for u in &tx.updates {
            let effective = u.apply(&mut self.edb);
            if effective {
                seed.push((u.fact.clone(), if u.insert { 1 } else { -1 }));
            }
        }
        // Net out insert-then-delete pairs inside the transaction.
        let mut net: HashMap<&Fact, i64> = HashMap::new();
        for (f, s) in &seed {
            *net.entry(f).or_insert(0) += s;
        }

        let strata = self.rules_by_stratum.len();
        // Per-stratum inbox of truth flips to push through that
        // stratum's rules.
        let mut inbox: Vec<Vec<(Fact, i64)>> = vec![Vec::new(); strata];
        let mut flips: Vec<Literal> = Vec::new();

        // Apply the EDB-level flips, walking the effective-update list
        // rather than the net map: HashMap iteration order is
        // per-instance random, and the returned flip list (and every
        // downstream consumer of it) must be identical run to run.
        let mut emitted: std::collections::HashSet<&Fact> = std::collections::HashSet::new();
        for (fact, _) in &seed {
            if !emitted.insert(fact) {
                continue;
            }
            let (fact, sign) = (fact.clone(), net[fact]);
            if sign == 0 {
                continue;
            }
            // EDB presence changed; visible truth changes unless the
            // fact stays derived (deletion masked by a derivation) or
            // was already derived (insertion of a derived fact).
            let now = sign > 0 || self.counts.get(&fact).copied().unwrap_or(0) > 0;
            let was = self.model.contains(&fact);
            if now != was {
                self.record_flip(&fact, now, &mut inbox, &mut flips);
            }
        }

        // Push flips upward, stratum by stratum. Within a stratum,
        // batches repeat until quiescent (positive same-stratum chains).
        for s in 0..strata {
            loop {
                let batch: Vec<(Fact, i64)> = std::mem::take(&mut inbox[s]);
                if batch.is_empty() {
                    break;
                }
                self.stats.batches += 1;
                if self.stratum_recursive[s] {
                    self.recompute_stratum(s, &mut inbox, &mut flips);
                    // Recomputation consumed every pending flip for this
                    // stratum in one go.
                    continue;
                }
                self.push_batch(s, &batch, &mut inbox, &mut flips);
            }
        }
        flips
    }

    /// Record a visible truth flip: update the model, the output list
    /// and the inboxes of every stratum consuming the predicate.
    fn record_flip(
        &mut self,
        fact: &Fact,
        now: bool,
        inbox: &mut [Vec<(Fact, i64)>],
        flips: &mut Vec<Literal>,
    ) {
        if now {
            self.model.insert(fact);
        } else {
            self.model.remove(fact);
        }
        self.stats.flips += 1;
        flips.push(Literal::new(now, fact.to_atom()));
        let sign = if now { 1 } else { -1 };
        for (s, rule_ids) in self.rules_by_stratum.iter().enumerate() {
            let consumes = rule_ids.iter().any(|&idx| {
                self.rules
                    .rule(idx)
                    .body
                    .iter()
                    .any(|l| l.atom.pred == fact.pred)
            });
            if consumes {
                inbox[s].push((fact.clone(), sign));
            }
        }
    }

    /// Delta-join one batch of flips through the rules of a
    /// non-recursive stratum (the telescoping sum over body positions).
    fn push_batch(
        &mut self,
        s: usize,
        batch: &[(Fact, i64)],
        inbox: &mut [Vec<(Fact, i64)>],
        flips: &mut Vec<Literal>,
    ) {
        // Old state = current model with this batch undone.
        let (inserted, deleted): (Vec<_>, Vec<_>) = batch.iter().partition(|&&(_, sign)| sign > 0);
        let inserted: Vec<Fact> = inserted.into_iter().map(|(f, _)| f.clone()).collect();
        let deleted: Vec<Fact> = deleted.into_iter().map(|(f, _)| f.clone()).collect();

        // First-contribution order, not map order: the resulting flips
        // are user-visible, so their order must not depend on HashMap
        // iteration.
        let mut head_order: Vec<Fact> = Vec::new();
        let mut contributions: HashMap<Fact, i64> = HashMap::new();
        {
            let new_view = &self.model;
            let old_view = Overlay::new(&self.model, &deleted, &inserted);
            for &idx in &self.rules_by_stratum[s] {
                let rule = self.rules.rule(idx);
                for (pos, lit) in rule.body.iter().enumerate() {
                    for (fact, sign) in batch {
                        if lit.atom.pred != fact.pred {
                            continue;
                        }
                        let Some(binding) = match_atom(&lit.atom, fact) else {
                            continue;
                        };
                        // A flip of `fact` changes the truth of this
                        // body literal: same direction for positive
                        // occurrences, inverted for negative ones.
                        let contribution = if lit.positive { *sign } else { -sign };
                        let prefix = &rule.body[..pos];
                        let suffix = &rule.body[pos + 1..];
                        let mut sub = binding.clone();
                        crate::cq::solve_conjunction(new_view, prefix, &mut sub, &mut |s1| {
                            crate::cq::solve_conjunction(&old_view, suffix, s1, &mut |s2| {
                                if let Some(head) = s2.ground_atom(&rule.head) {
                                    match contributions.entry(head) {
                                        std::collections::hash_map::Entry::Occupied(mut e) => {
                                            *e.get_mut() += contribution;
                                        }
                                        std::collections::hash_map::Entry::Vacant(e) => {
                                            head_order.push(e.key().clone());
                                            e.insert(contribution);
                                        }
                                    }
                                }
                                true
                            });
                            true
                        });
                    }
                }
            }
        }

        for head in head_order {
            let delta = contributions[&head];
            if delta == 0 {
                continue;
            }
            self.stats.contributions += 1;
            let count = self.counts.entry(head.clone()).or_insert(0);
            *count += delta;
            if *count < 0 {
                // A broken counting invariant. Never panic here (a panic
                // would unwind out of the commit queue's critical section
                // with the store already mutated): mark the model
                // untrustworthy so the owner drops it and rematerializes.
                self.poisoned = true;
                *count = 0;
            }
            let now = *count > 0 || self.edb.contains(&head);
            let was = self.model.contains(&head);
            if now != was {
                self.record_flip(&head, now, inbox, flips);
            }
        }
    }

    /// Re-derive a recursive stratum from its (already updated) inputs
    /// and diff against the previous contents.
    fn recompute_stratum(
        &mut self,
        s: usize,
        inbox: &mut [Vec<(Fact, i64)>],
        flips: &mut Vec<Literal>,
    ) {
        self.stats.strata_recomputed += 1;
        let head_preds: Vec<Sym> = {
            let mut out: Vec<Sym> = Vec::new();
            for &idx in &self.rules_by_stratum[s] {
                let p = self.rules.rule(idx).head.pred;
                if !out.contains(&p) {
                    out.push(p);
                }
            }
            out
        };

        // Inputs: the current model minus this stratum's derived facts,
        // with the stratum's explicit EDB facts retained.
        let mut base = FactSet::new();
        for f in self.model.iter() {
            if !head_preds.contains(&f.pred) {
                base.insert(&f);
            }
        }
        for f in self.edb.iter() {
            if head_preds.contains(&f.pred) {
                base.insert(&f);
            }
        }

        // Naive fixpoint of this stratum's rules over the base (inputs
        // are frozen; only head predicates grow).
        loop {
            let mut grew = false;
            for &idx in &self.rules_by_stratum[s] {
                let rule = self.rules.rule(idx);
                let mut derived: Vec<Fact> = Vec::new();
                crate::cq::solve_conjunction(&base, &rule.body, &mut Subst::new(), &mut |sub| {
                    if let Some(head) = sub.ground_atom(&rule.head) {
                        derived.push(head);
                    }
                    true
                });
                for f in derived {
                    grew |= base.insert(&f);
                }
            }
            if !grew {
                break;
            }
        }

        // Diff against the previous stratum contents.
        let mut changes: Vec<(Fact, bool)> = Vec::new();
        for &p in &head_preds {
            if let Some(rel) = base.relation(p) {
                for args in rel.iter() {
                    let f = Fact {
                        pred: p,
                        args: args.to_vec(),
                    };
                    if !self.model.contains(&f) {
                        changes.push((f, true));
                    }
                }
            }
            if let Some(rel) = self.model.relation(p) {
                for args in rel.iter() {
                    let f = Fact {
                        pred: p,
                        args: args.to_vec(),
                    };
                    if !base.contains(&f) {
                        changes.push((f, false));
                    }
                }
            }
        }
        for (fact, now) in changes {
            self.record_flip(&fact, now, inbox, flips);
        }
        // Flips of this stratum's own predicates were just settled by the
        // recomputation; drop any self-notifications to avoid a loop.
        inbox[s].retain(|(f, _)| !head_preds.contains(&f.pred));
    }
}

impl Interp for MaintainedModel {
    fn holds(&self, fact: &Fact) -> bool {
        self.model.contains(fact)
    }

    fn scan(
        &self,
        pred: Sym,
        pattern: &[Option<Sym>],
        each: &mut dyn FnMut(&[Sym]) -> bool,
    ) -> bool {
        self.model.scan(pred, pattern, each)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;
    use uniform_logic::{parse_fact, parse_literal};

    fn setup(src: &str) -> MaintainedModel {
        let db = Database::parse(src).unwrap();
        MaintainedModel::new(db.facts().clone(), db.rules().clone())
    }

    fn upd(src: &str) -> Update {
        Update::from_literal(&parse_literal(src).unwrap()).unwrap()
    }

    fn sorted(mut v: Vec<Literal>) -> Vec<String> {
        let mut out: Vec<String> = v.drain(..).map(|l| l.to_string()).collect();
        out.sort();
        out
    }

    /// Oracle: recompute from scratch and compare contents.
    fn assert_matches_recompute(m: &MaintainedModel) {
        let fresh = Model::compute(m.edb(), &m.rules);
        let mut a: Vec<String> = m.model().iter().map(|f| f.to_string()).collect();
        let mut b: Vec<String> = fresh.iter().map(|f| f.to_string()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "maintained model diverged from recomputation");
    }

    #[test]
    fn chain_insert_and_delete() {
        let mut m = setup("b(X) :- a(X). c(X) :- b(X).");
        let flips = m.apply(&upd("a(x)"));
        assert_eq!(sorted(flips), vec!["a(x)", "b(x)", "c(x)"]);
        assert_matches_recompute(&m);
        let flips = m.apply(&upd("not a(x)"));
        assert_eq!(sorted(flips), vec!["not a(x)", "not b(x)", "not c(x)"]);
        assert_matches_recompute(&m);
        assert!(m.model().is_empty());
    }

    #[test]
    fn double_derivation_survives_single_deletion() {
        let mut m = setup(
            "
            w(X) :- l(X, Y).
            l(a, d1). l(a, d2).
        ",
        );
        assert!(m.holds(&parse_fact("w(a)").unwrap()));
        let flips = m.apply(&upd("not l(a, d1)"));
        assert_eq!(sorted(flips), vec!["not l(a,d1)"], "w(a) still supported");
        assert!(m.holds(&parse_fact("w(a)").unwrap()));
        let flips = m.apply(&upd("not l(a, d2)"));
        assert_eq!(sorted(flips), vec!["not l(a,d2)", "not w(a)"]);
        assert_matches_recompute(&m);
    }

    #[test]
    fn explicit_fact_masks_derived_deletion() {
        let mut m = setup(
            "
            member(X, Y) :- leads(X, Y).
            member(a, s). leads(a, s).
        ",
        );
        let flips = m.apply(&upd("not member(a, s)"));
        assert!(flips.is_empty(), "still derived: {flips:?}");
        assert!(m.holds(&parse_fact("member(a,s)").unwrap()));
        let flips = m.apply(&upd("not leads(a, s)"));
        assert_eq!(sorted(flips), vec!["not leads(a,s)", "not member(a,s)"]);
        assert_matches_recompute(&m);
    }

    #[test]
    fn negation_flips_both_ways() {
        let mut m = setup(
            "
            idle(X) :- emp(X), not works(X).
            emp(a).
        ",
        );
        assert!(m.holds(&parse_fact("idle(a)").unwrap()));
        let flips = m.apply(&upd("works(a)"));
        assert_eq!(sorted(flips), vec!["not idle(a)", "works(a)"]);
        let flips = m.apply(&upd("not works(a)"));
        assert_eq!(sorted(flips), vec!["idle(a)", "not works(a)"]);
        assert_matches_recompute(&m);
    }

    #[test]
    fn recursive_stratum_recomputed() {
        let mut m = setup(
            "
            tc(X, Y) :- e(X, Y).
            tc(X, Z) :- tc(X, Y), e(Y, Z).
            e(a, b). e(b, c).
        ",
        );
        let flips = m.apply(&upd("e(c, d)"));
        assert_eq!(
            sorted(flips),
            vec!["e(c,d)", "tc(a,d)", "tc(b,d)", "tc(c,d)"]
        );
        assert!(m.stats().strata_recomputed > 0);
        let flips = m.apply(&upd("not e(b, c)"));
        assert_eq!(
            sorted(flips),
            vec![
                "not e(b,c)",
                "not tc(a,c)",
                "not tc(a,d)",
                "not tc(b,c)",
                "not tc(b,d)"
            ]
        );
        assert_matches_recompute(&m);
    }

    #[test]
    fn downstream_of_recursion_maintained() {
        let mut m = setup(
            "
            tc(X, Y) :- e(X, Y).
            tc(X, Z) :- tc(X, Y), e(Y, Z).
            reach(X) :- tc(src, X).
            e(src, a).
        ",
        );
        let flips = m.apply(&upd("e(a, b)"));
        assert_eq!(
            sorted(flips),
            vec!["e(a,b)", "reach(b)", "tc(a,b)", "tc(src,b)"]
        );
        assert_matches_recompute(&m);
    }

    #[test]
    fn transaction_nets_out() {
        let mut m = setup("b(X) :- a(X).");
        let tx = Transaction::new(vec![upd("a(x)"), upd("not a(x)")]);
        let flips = m.apply_transaction(&tx);
        assert!(flips.is_empty(), "{flips:?}");
        assert_matches_recompute(&m);
    }

    #[test]
    fn simultaneous_flip_of_two_body_literals() {
        // The Def. 4 regression shape: both supports flip in one batch.
        let mut m = setup(
            "
            b(X) :- d(X). c(X) :- d(X).
            a(X) :- b(X), c(X).
            d(k).
        ",
        );
        let flips = m.apply(&upd("not d(k)"));
        assert_eq!(
            sorted(flips),
            vec!["not a(k)", "not b(k)", "not c(k)", "not d(k)"]
        );
        assert_matches_recompute(&m);
        let flips = m.apply(&upd("d(k)"));
        assert_eq!(sorted(flips), vec!["a(k)", "b(k)", "c(k)", "d(k)"]);
        assert_matches_recompute(&m);
    }

    #[test]
    fn noop_updates_produce_no_flips() {
        let mut m = setup("b(X) :- a(X). a(x).");
        assert!(m.apply(&upd("a(x)")).is_empty(), "re-insertion");
        assert!(m.apply(&upd("not a(zzz)")).is_empty(), "absent deletion");
        assert_matches_recompute(&m);
    }

    #[test]
    fn flips_equal_model_diff_on_random_sequences() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let src = "
            m(X,Y) :- l(X,Y).
            t(X) :- p(X), q(X).
            u(X) :- p(X), not q(X).
            tc(X,Y) :- r(X,Y).
            tc(X,Z) :- tc(X,Y), r(Y,Z).
            w(X) :- m(X,Y), s(Y).
        ";
        let db = Database::parse(src).unwrap();
        let mut m = MaintainedModel::new(db.facts().clone(), db.rules().clone());
        let consts = ["a", "b", "c"];
        let mut rng = StdRng::seed_from_u64(7);
        for step in 0..300 {
            let (pred, arity) =
                [("p", 1), ("q", 1), ("s", 1), ("l", 2), ("r", 2)][rng.gen_range(0..5)];
            let args: Vec<&str> = (0..arity)
                .map(|_| consts[rng.gen_range(0..consts.len())])
                .collect();
            let fact = Fact::parse_like(pred, &args);
            let update = if rng.gen_bool(0.5) {
                Update::insert(fact)
            } else {
                Update::delete(fact)
            };

            let before = Model::compute(m.edb(), &db.rules().clone());
            let flips = m.apply(&update);
            let after = Model::compute(m.edb(), &db.rules().clone());

            // Contents match recomputation…
            let mut got: Vec<String> = m.model().iter().map(|f| f.to_string()).collect();
            let mut want: Vec<String> = after.iter().map(|f| f.to_string()).collect();
            got.sort();
            want.sort();
            assert_eq!(got, want, "step {step}: contents diverged on {update}");

            // …and the flip list equals the model diff.
            let mut expected: Vec<String> = Vec::new();
            for f in after.iter() {
                if !before.contains(&f) {
                    expected.push(format!("{f}"));
                }
            }
            for f in before.iter() {
                if !after.contains(&f) {
                    expected.push(format!("not {f}"));
                }
            }
            expected.sort();
            let got = sorted(flips);
            assert_eq!(got, expected, "step {step}: flips diverged on {update}");
        }
    }
}
