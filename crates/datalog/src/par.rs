//! Deterministic fork–join fan-out over std scoped threads.
//!
//! The engine parallelizes two embarrassingly parallel loops — the
//! per-stratum rule batch in [`crate::model`] and the per-constraint
//! group loop in `uniform-integrity` — over read-only shared state
//! (`&FactSet`, `&RuleSet`, snapshots). The build environment is
//! offline, so instead of `rayon` this module provides the one primitive
//! those loops need: an indexed parallel map whose output order equals
//! input order regardless of scheduling, so downstream fact-insertion
//! order (load-bearing for search determinism, see [`crate::store`])
//! never depends on thread timing.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::thread;

/// Upper bound on worker threads (matches the machine; override with
/// `UNIFORM_THREADS` for experiments). Resolved once per process:
/// `par_map` sits on hot paths (every semi-naive round re-enters it),
/// and `std::env::var` takes the process-global environment lock.
pub fn max_threads() -> usize {
    static MAX_THREADS: OnceLock<usize> = OnceLock::new();
    *MAX_THREADS.get_or_init(|| match std::env::var("UNIFORM_THREADS") {
        Ok(v) => v.parse().unwrap_or(1).max(1),
        Err(_) => thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    })
}

/// Map `f` over `items` on up to [`max_threads`] worker threads,
/// returning results in input order. Falls back to a plain sequential
/// map when the machine is single-threaded, the input is trivial, or a
/// worker would get less than two items.
///
/// `f` runs exactly once per item (workers pull indexes from a shared
/// counter), so side effects behind locks — memo caches, statistics —
/// observe the same multiset of calls as a sequential run.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = max_threads().min(items.len() / 2);
    if threads <= 1 {
        return items.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(i) else { break };
                    local.push((i, f(item)));
                }
                collected
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .extend(local);
            });
        }
    });
    let mut indexed = collected.into_inner().unwrap_or_else(|e| e.into_inner());
    indexed.sort_unstable_by_key(|&(i, _)| i);
    debug_assert_eq!(indexed.len(), items.len());
    indexed.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert_eq!(par_map(&[] as &[usize], |&x| x), Vec::<usize>::new());
        assert_eq!(par_map(&[7usize], |&x| x + 1), vec![8]);
        assert_eq!(par_map(&[1usize, 2, 3], |&x| x), vec![1, 2, 3]);
    }

    #[test]
    fn calls_f_once_per_item() {
        let count = AtomicUsize::new(0);
        let items: Vec<usize> = (0..257).collect();
        let _ = par_map(&items, |_| count.fetch_add(1, Ordering::Relaxed));
        assert_eq!(count.load(Ordering::Relaxed), 257);
    }
}
