//! # uniform-datalog
//!
//! Deductive-database substrate for the *uniform approach* (Bry, Decker &
//! Manthey, EDBT 1988): everything below the integrity and satisfiability
//! layers.
//!
//! * [`store`] — per-predicate relations as chunked copy-on-write page
//!   tables ([`PAGE_CAP`]-slot leaves behind `Arc`s, routed by the
//!   persistent trie in [`pagemap`]) with per-column hash indexes:
//!   snapshot clones bump refcounts, mutation copies one page;
//! * [`program`] — indexed rule sets with [`depgraph`] stratification;
//! * [`model`] — stratified semi-naive materialization of the canonical
//!   model (§2 semantics);
//! * [`cq`] / [`eval`] — conjunctive-query and restricted-quantification
//!   formula evaluation over any [`Interp`];
//! * [`magic`] — goal-directed bottom-up evaluation via magic-sets
//!   rewriting (the compilation counterpart of [`topdown`]);
//! * [`maintain`] — counting-based incremental maintenance of the
//!   materialized canonical model (induced updates as view deltas);
//! * [`planner`] — cost-based optimization of general formulas (§6
//!   future work: reordering and simplifying whole constraints, not
//!   just conjunctive queries);
//! * [`provenance`] — well-founded derivation trees answering *why* a
//!   fact is in the canonical model;
//! * [`topdown`] — the overlay engine simulating the updated database
//!   (`new`, §3.3.2), goal-directed for non-recursive predicates and
//!   falling back to materialization for recursive ones;
//! * [`update`] — single-fact updates (Def. 1) and transactions;
//! * [`txn`] — the concurrent commit pipeline: transactions staged
//!   against MVCC snapshots, admitted by a [`txn::CommitQueue`] with
//!   first-committer-wins conflict detection over key-fingerprint
//!   read/write footprints ([`footprint`]), falling back to
//!   whole-relation conflicts only for genuinely unbounded reads;
//! * [`database`] — the `D = (F, R, I)` triple with a cached model.

pub mod cq;
pub mod database;
pub mod depgraph;
pub mod eval;
pub mod footprint;
pub mod interp;
pub mod magic;
pub mod maintain;
pub mod memo;
pub mod model;
pub mod pagemap;
pub mod par;
pub mod patterns;
pub mod planner;
pub mod program;
pub mod provenance;
pub mod serialize;
pub mod store;
pub mod topdown;
pub mod txn;
pub mod update;

pub use cq::{all_solutions, bind_pattern, provable, solve_conjunction, solve_planned};
pub use database::{validate_transaction_arities, ApplyError, Database, Snapshot};
pub use depgraph::{DepGraph, StratificationError};
pub use eval::{satisfies, satisfies_closed};
pub use footprint::{ConflictGranularity, KeyFp, ReadFootprint, ReadPattern, RelAccess};
pub use interp::{Interp, Overlay};
pub use magic::{
    answer_goal_magic, answer_prepared, magic_rewrite, MagicAnswers, MagicError, MagicProgram,
};
pub use maintain::{MaintainStats, MaintainedModel};
pub use memo::StripedMemo;
pub use model::Model;
pub use patterns::{PatternSpecializer, PatternTemplates, MAX_PATTERNS_PER_PRED};
pub use planner::{optimize_rq, Cardinality, ConjunctionPlan, FixedStats, PlanReport, Planner};
pub use program::{BodyOccurrence, RuleSet};
pub use provenance::{Derivation, Provenance};
pub use serialize::to_program_source;
pub use store::{CowStats, FactSet, Relation, COMPACT_FLOOR, PAGE_CAP};
pub use topdown::OverlayEngine;
pub use txn::{
    CommitError, CommitQueue, CommitReceipt, ConflictStats, MaintenanceCounters, ModelPath,
    TxnBuilder,
};
pub use update::{Transaction, Update};
