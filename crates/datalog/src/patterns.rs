//! Precompiled read-pattern templates.
//!
//! The integrity checker's binding-level read set (PR 6,
//! `uniform_integrity::CheckReport::read_patterns`) closes trigger and
//! instance patterns downward through rule bodies, propagating the
//! update's constants. The *shape* of that closure — which rules apply
//! to a predicate, which head positions must agree with the pattern,
//! and where each head binding lands in each body literal — is a pure
//! function of the rule set, yet it used to be re-derived from the
//! `Rule` structures on every commit. This module compiles it once per
//! [`RuleSet`](crate::RuleSet): a [`PatternTemplates`] table, built at
//! rule-set construction, that a [`PatternSpecializer`] instantiates
//! with the concrete constants of one check. The output is bit-
//! identical to the uncompiled closure (the analyzer's property suite
//! proves this against a naive oracle on randomized schemas).

use crate::footprint::ReadPattern;
use std::collections::{BTreeSet, HashMap};
use uniform_logic::{Atom, Rule, Sym, Term};

/// Distinct binding patterns a predicate may accumulate during one
/// closure before its entry widens to the all-unbound pattern (which
/// subsumes every bounded one — sound, monotonic widening).
pub const MAX_PATTERNS_PER_PRED: usize = 64;

/// How one argument position of a body literal obtains its binding
/// when a head pattern is specialized through the rule.
#[derive(Clone, Copy, Debug)]
enum TemplateArg {
    /// A constant written in the rule body: always bound.
    Const(Sym),
    /// A head variable: bound to whatever constant the head pattern
    /// pins at (any of) that variable's head positions. Index into
    /// [`RuleTemplate::head_var_positions`].
    HeadVar(usize),
    /// A variable not occurring in the head (join-derived): never
    /// bound by the pattern — unbounded in the child.
    Unbound,
}

/// One rule, compiled for pattern specialization.
#[derive(Clone, Debug)]
struct RuleTemplate {
    /// Head positions occupied by constants: a pattern binding one of
    /// these to a *different* constant rules the rule out (it cannot
    /// derive any tuple the pattern covers).
    head_consts: Vec<(usize, Sym)>,
    /// Per distinct head variable, every head position it occupies. A
    /// pattern binding two positions of one variable to different
    /// constants rules the rule out.
    head_var_positions: Vec<Vec<usize>>,
    /// Body literals: predicate + per-position binding source.
    body: Vec<(Sym, Vec<TemplateArg>)>,
}

impl RuleTemplate {
    fn compile(rule: &Rule) -> RuleTemplate {
        let mut head_consts = Vec::new();
        let mut var_index: HashMap<Sym, usize> = HashMap::new();
        let mut head_var_positions: Vec<Vec<usize>> = Vec::new();
        for (i, term) in rule.head.args.iter().enumerate() {
            match term {
                Term::Const(c) => head_consts.push((i, *c)),
                Term::Var(v) => {
                    let idx = *var_index.entry(*v).or_insert_with(|| {
                        head_var_positions.push(Vec::new());
                        head_var_positions.len() - 1
                    });
                    head_var_positions[idx].push(i);
                }
            }
        }
        let body = rule
            .body
            .iter()
            .map(|lit| {
                let args = lit
                    .atom
                    .args
                    .iter()
                    .map(|t| match t {
                        Term::Const(c) => TemplateArg::Const(*c),
                        Term::Var(v) => match var_index.get(v) {
                            Some(&idx) => TemplateArg::HeadVar(idx),
                            None => TemplateArg::Unbound,
                        },
                    })
                    .collect();
                (lit.atom.pred, args)
            })
            .collect();
        RuleTemplate {
            head_consts,
            head_var_positions,
            body,
        }
    }

    /// Specialize a head pattern through this rule: `None` when the
    /// rule is inapplicable (a head constant or a shared head variable
    /// contradicts the pattern), else the child pattern of every body
    /// literal. Mirrors head unification in the uncompiled closure:
    /// only positions the pattern actually binds are consulted, via
    /// `get` so arity mismatches degrade to "unbound" rather than
    /// panicking (the analyzer lints those separately).
    fn specialize(&self, args: &[Option<Sym>]) -> Option<Vec<(Sym, Vec<Option<Sym>>)>> {
        for &(i, c) in &self.head_consts {
            if let Some(bound) = args.get(i).copied().flatten() {
                if bound != c {
                    return None;
                }
            }
        }
        let mut bindings: Vec<Option<Sym>> = Vec::with_capacity(self.head_var_positions.len());
        for positions in &self.head_var_positions {
            let mut value: Option<Sym> = None;
            for &i in positions {
                if let Some(bound) = args.get(i).copied().flatten() {
                    match value {
                        Some(prev) if prev != bound => return None,
                        _ => value = Some(bound),
                    }
                }
            }
            bindings.push(value);
        }
        Some(
            self.body
                .iter()
                .map(|(pred, template)| {
                    let child = template
                        .iter()
                        .map(|arg| match arg {
                            TemplateArg::Const(c) => Some(*c),
                            TemplateArg::HeadVar(idx) => bindings[*idx],
                            TemplateArg::Unbound => None,
                        })
                        .collect();
                    (*pred, child)
                })
                .collect(),
        )
    }
}

/// The compiled pattern-closure shape of one rule set: per head
/// predicate, the templates of its rules in rule-set order. Built once
/// by [`RuleSet::new`](crate::RuleSet::new) and shared by every
/// specialization (commit checks, the static analyzer, the certain-
/// answer cache's footprints).
#[derive(Clone, Debug, Default)]
pub struct PatternTemplates {
    by_head: HashMap<Sym, Vec<RuleTemplate>>,
}

impl PatternTemplates {
    pub fn build(rules: &[Rule]) -> PatternTemplates {
        let mut by_head: HashMap<Sym, Vec<RuleTemplate>> = HashMap::new();
        for rule in rules {
            by_head
                .entry(rule.head.pred)
                .or_default()
                .push(RuleTemplate::compile(rule));
        }
        PatternTemplates { by_head }
    }

    /// Start a specialization run (one integrity check's worth of seed
    /// patterns).
    pub fn specializer(&self) -> PatternSpecializer<'_> {
        PatternSpecializer {
            templates: self,
            seen: BTreeSet::new(),
            counts: HashMap::new(),
            widened: BTreeSet::new(),
            frontier: Vec::new(),
        }
    }

    /// One-shot convenience: seed with `seeds` and close.
    pub fn specialize(
        &self,
        seeds: impl IntoIterator<Item = (Sym, Vec<Option<Sym>>)>,
    ) -> Vec<ReadPattern> {
        let mut s = self.specializer();
        for (pred, args) in seeds {
            s.add(pred, args);
        }
        s.close()
    }
}

/// Worklist closure over binding patterns, driven by precompiled
/// [`PatternTemplates`]: propagates pattern constants through rule
/// heads into rule bodies, skipping rules whose head constants
/// contradict the pattern. Widening to an all-unbound pattern (on
/// overflow, or when a pattern arrives with no bound position) is
/// monotonic: the unbounded pattern subsumes every bounded one and
/// still participates in the closure.
pub struct PatternSpecializer<'a> {
    templates: &'a PatternTemplates,
    seen: BTreeSet<(Sym, Vec<Option<Sym>>)>,
    counts: HashMap<Sym, usize>,
    widened: BTreeSet<Sym>,
    frontier: Vec<(Sym, Vec<Option<Sym>>)>,
}

impl PatternSpecializer<'_> {
    /// Seed (or propagate) one binding pattern.
    pub fn add(&mut self, pred: Sym, args: Vec<Option<Sym>>) {
        if self.widened.contains(&pred) {
            return;
        }
        if args.iter().all(|a| a.is_none()) {
            self.widen(pred, args.len());
            return;
        }
        if !self.seen.insert((pred, args.clone())) {
            return;
        }
        let count = self.counts.entry(pred).or_insert(0);
        *count += 1;
        if *count > MAX_PATTERNS_PER_PRED {
            self.widen(pred, args.len());
            return;
        }
        self.frontier.push((pred, args));
    }

    fn widen(&mut self, pred: Sym, arity: usize) {
        self.widened.insert(pred);
        self.seen.retain(|(p, _)| *p != pred);
        let whole = vec![None; arity];
        self.seen.insert((pred, whole.clone()));
        self.frontier.push((pred, whole));
    }

    /// Seed with an atom's constants (`None` at variable positions).
    pub fn add_atom(&mut self, atom: &Atom) {
        self.add(atom.pred, atom.args.iter().map(|t| t.as_const()).collect());
    }

    /// Close the collected patterns through the templates and return
    /// them sorted by predicate name, then argument names (a stable,
    /// interning-order-free order for reporting).
    pub fn close(mut self) -> Vec<ReadPattern> {
        while let Some((pred, args)) = self.frontier.pop() {
            let Some(templates) = self.templates.by_head.get(&pred) else {
                continue;
            };
            let children: Vec<(Sym, Vec<Option<Sym>>)> = templates
                .iter()
                .filter_map(|t| t.specialize(&args))
                .flatten()
                .collect();
            for (child_pred, child_args) in children {
                self.add(child_pred, child_args);
            }
        }
        let mut patterns: Vec<ReadPattern> = self
            .seen
            .into_iter()
            .map(|(pred, args)| ReadPattern { pred, args })
            .collect();
        patterns.sort_by(|a, b| {
            let key = |p: &ReadPattern| {
                (
                    p.pred.as_str(),
                    p.args
                        .iter()
                        .map(|a| a.map(|c| c.as_str()))
                        .collect::<Vec<_>>(),
                )
            };
            key(a).cmp(&key(b))
        });
        patterns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniform_logic::parse_rule;

    fn templates(srcs: &[&str]) -> PatternTemplates {
        let rules: Vec<Rule> = srcs.iter().map(|s| parse_rule(s).unwrap()).collect();
        PatternTemplates::build(&rules)
    }

    fn pat(parts: &[Option<&str>]) -> Vec<Option<Sym>> {
        parts.iter().map(|p| p.map(Sym::new)).collect()
    }

    fn render(patterns: &[ReadPattern]) -> Vec<String> {
        patterns
            .iter()
            .map(|p| {
                let args: Vec<&str> = p
                    .args
                    .iter()
                    .map(|a| a.map_or("_", |s| s.as_str()))
                    .collect();
                format!("{}({})", p.pred.as_str(), args.join(","))
            })
            .collect()
    }

    #[test]
    fn constants_propagate_through_heads_into_bodies() {
        let t = templates(&["enrolled(X, cs) :- student(X)."]);
        let out = t.specialize([(Sym::new("enrolled"), pat(&[Some("jack"), Some("cs")]))]);
        assert_eq!(render(&out), vec!["enrolled(jack,cs)", "student(jack)"]);
    }

    #[test]
    fn contradicting_head_constant_rules_the_rule_out() {
        let t = templates(&["enrolled(X, cs) :- student(X)."]);
        let out = t.specialize([(Sym::new("enrolled"), pat(&[Some("jack"), Some("math")]))]);
        assert_eq!(render(&out), vec!["enrolled(jack,math)"]);
    }

    #[test]
    fn join_variables_stay_unbound() {
        let t = templates(&["works(X) :- assign(X,Y), dept(Y)."]);
        let out = t.specialize([(Sym::new("works"), pat(&[Some("jack")]))]);
        assert_eq!(
            render(&out),
            vec!["assign(jack,_)", "dept(_)", "works(jack)"]
        );
    }

    #[test]
    fn repeated_head_variable_requires_agreement() {
        let t = templates(&["same(X, X) :- thing(X)."]);
        // Agreeing bindings specialize; disagreeing ones drop the rule.
        let out = t.specialize([(Sym::new("same"), pat(&[Some("a"), Some("a")]))]);
        assert_eq!(render(&out), vec!["same(a,a)", "thing(a)"]);
        let out = t.specialize([(Sym::new("same"), pat(&[Some("a"), Some("b")]))]);
        assert_eq!(render(&out), vec!["same(a,b)"]);
        // A half-bound pattern binds the variable from either side.
        let out = t.specialize([(Sym::new("same"), pat(&[None, Some("b")]))]);
        assert_eq!(render(&out), vec!["same(_,b)", "thing(b)"]);
    }

    #[test]
    fn all_unbound_seeds_widen_and_subsume() {
        let t = templates(&["p(X) :- q(X)."]);
        let p = Sym::new("p");
        let mut s = t.specializer();
        s.add(p, pat(&[Some("a")]));
        s.add(p, pat(&[None]));
        let out = s.close();
        assert_eq!(render(&out), vec!["p(_)", "q(_)"]);
    }

    #[test]
    fn overflow_widens_to_the_whole_relation() {
        let t = templates(&["p(X) :- q(X)."]);
        let p = Sym::new("p");
        let mut s = t.specializer();
        for i in 0..(MAX_PATTERNS_PER_PRED + 1) {
            s.add(p, pat(&[Some(&format!("c{i}"))]));
        }
        let out = s.close();
        assert!(render(&out).contains(&"p(_)".to_string()));
        assert!(render(&out).contains(&"q(_)".to_string()));
    }

    #[test]
    fn recursive_rules_terminate() {
        let t = templates(&["tc(X,Z) :- tc(X,Y), edge(Y,Z).", "tc(X,Y) :- edge(X,Y)."]);
        let out = t.specialize([(Sym::new("tc"), pat(&[Some("a"), None]))]);
        // The recursive body literal re-derives tc(a,_) — already seen —
        // and edge goes data-dependent (whole).
        assert_eq!(render(&out), vec!["edge(_,_)", "tc(a,_)"]);
    }
}
