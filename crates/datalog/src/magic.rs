//! Magic-sets rewriting: goal-directed bottom-up evaluation.
//!
//! The paper's meta-evaluators (`new`, `delta`) assume "a database
//! query-answering system" able to answer goals over recursive rules
//! (§1, citing VIEI 87). The [`crate::topdown`] overlay engine fills
//! that role operationally; this module provides the classical
//! *compilation* alternative: rewrite the program so that bottom-up
//! materialization only derives facts relevant to a given goal.
//!
//! For a goal `p(c, X)` the rewrite specializes every reachable rule by
//! *adornment* (which argument positions are bound) using left-to-right
//! sideways information passing, and guards each adorned rule with a
//! `magic` predicate that collects the bindings actually demanded.
//! Materializing the rewritten program from the EDB plus the single
//! magic seed fact derives the goal's answers — and, on selective
//! goals, a small fraction of the full canonical model (experiment E9).
//!
//! Scope: the subprogram reachable from the goal must be free of
//! negation on derived predicates (negative literals on base relations
//! are kept verbatim). This matches the module's role here — the goals
//! `new`/`delta` issue during integrity checking are against positive
//! residues; general stratified evaluation stays with [`crate::model`].

use crate::depgraph::DepGraph;
use crate::model::Model;
use crate::program::RuleSet;
use crate::store::FactSet;
use std::collections::HashSet;
use std::fmt;
use uniform_logic::{match_atom, Atom, Fact, Literal, Rule, Sym, Term};

/// Why a program cannot be magic-rewritten for a goal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MagicError {
    /// A rule reachable from the goal negates a derived predicate.
    NegationReachable { rule: String, pred: Sym },
}

impl fmt::Display for MagicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MagicError::NegationReachable { rule, pred } => write!(
                f,
                "magic rewriting requires a negation-free reachable subprogram; \
                 rule `{rule}` negates derived predicate {pred}"
            ),
        }
    }
}

impl std::error::Error for MagicError {}

/// A magic-rewritten program for one goal.
///
/// The rewrite depends only on the goal's *adornment* (which argument
/// positions are bound), never on the bound constants themselves —
/// those flow in through the magic seed. A `MagicProgram` is therefore
/// reusable across every goal with the same binding shape: prepared
/// queries build it once per rule revision and re-seed it per
/// execution via [`answer_prepared`].
#[derive(Clone, Debug)]
pub struct MagicProgram {
    /// The rewritten rules (adorned + magic); empty for goals over base
    /// relations.
    pub rules: RuleSet,
    /// Magic seed facts (one, for derived goals) — for the goal the
    /// program was rewritten from. [`answer_prepared`] recomputes the
    /// seed from the actual goal instead.
    pub seeds: Vec<Fact>,
    /// The goal re-targeted at its adorned predicate (equal to the
    /// original goal when the goal predicate is a base relation).
    pub answer_goal: Atom,
    /// The goal as given.
    pub original_goal: Atom,
    /// The goal's adornment: `true` at argument positions that were
    /// bound (constants) in the rewritten-for goal. A later goal is
    /// compatible iff it is ground exactly at these positions.
    pub adornment: Vec<bool>,
    /// Number of distinct (predicate, adornment) pairs specialized.
    pub adorned_predicates: usize,
    /// Number of magic guard rules generated.
    pub magic_rules: usize,
}

impl MagicProgram {
    /// Is `goal` answerable through this program — same predicate,
    /// constants exactly at the adornment's bound positions?
    pub fn compatible_with(&self, goal: &Atom) -> bool {
        goal.pred == self.original_goal.pred
            && goal.args.len() == self.adornment.len()
            && goal
                .args
                .iter()
                .zip(&self.adornment)
                .all(|(t, &b)| t.is_const() == b)
    }
}

/// Result of answering a goal through the rewrite, with the derivation
/// volume exposed for the experiments.
#[derive(Clone, Debug)]
pub struct MagicAnswers {
    /// Ground instances of the original goal.
    pub answers: Vec<Fact>,
    /// Facts materialized by the rewritten program (magic + adorned),
    /// not counting the EDB.
    pub derived_facts: usize,
}

fn adorn_string(ad: &[bool]) -> String {
    ad.iter().map(|&b| if b { 'b' } else { 'f' }).collect()
}

fn adorned_sym(pred: Sym, ad: &[bool]) -> Sym {
    Sym::new(&format!("{pred}#{}", adorn_string(ad)))
}

fn magic_sym(pred: Sym, ad: &[bool]) -> Sym {
    Sym::new(&format!("m#{pred}#{}", adorn_string(ad)))
}

/// Argument terms at the bound positions of `ad`.
fn bound_args(atom: &Atom, ad: &[bool]) -> Vec<Term> {
    atom.args
        .iter()
        .zip(ad)
        .filter_map(|(&t, &b)| b.then_some(t))
        .collect()
}

/// Rewrite `rules` for `goal`.
///
/// Bound positions of the goal are those holding constants. The rewrite
/// follows the textbook generalized-magic-sets construction with a
/// left-to-right sideways-information-passing strategy over the safe
/// body order (positives first) the rules are already kept in.
pub fn magic_rewrite(rules: &RuleSet, goal: &Atom) -> Result<MagicProgram, MagicError> {
    let graph = rules.graph();
    let goal_ad: Vec<bool> = goal.args.iter().map(|t| t.is_const()).collect();
    if !graph.is_idb(goal.pred) {
        return Ok(MagicProgram {
            rules: RuleSet::empty(),
            seeds: Vec::new(),
            answer_goal: goal.clone(),
            original_goal: goal.clone(),
            adornment: goal_ad,
            adorned_predicates: 0,
            magic_rules: 0,
        });
    }
    check_negation_free(rules, graph, goal.pred)?;

    let mut out: Vec<Rule> = Vec::new();
    let mut magic_rules = 0usize;
    let mut seen: HashSet<(Sym, Vec<bool>)> = HashSet::new();
    let mut work: Vec<(Sym, Vec<bool>)> = Vec::new();
    seen.insert((goal.pred, goal_ad.clone()));
    work.push((goal.pred, goal_ad.clone()));

    while let Some((pred, ad)) = work.pop() {
        // Derived predicates may also hold explicit facts (§2 allows a
        // predicate to be both stored and derived); import them under
        // the adornment. In the rewritten program the *original*
        // predicate has no rules, so this body literal reads the EDB.
        let vars: Vec<Term> = (0..ad.len()).map(|_| Term::Var(Sym::fresh("_M"))).collect();
        let import_head = Atom::new(adorned_sym(pred, &ad), vars.clone());
        let import_guard = Literal::new(
            true,
            Atom::new(magic_sym(pred, &ad), bound_args(&import_head, &ad)),
        );
        let import_body = vec![import_guard, Literal::new(true, Atom::new(pred, vars))];
        out.push(
            Rule::new(import_head, import_body)
                .expect("import rule is range-restricted by construction"),
        );
        for (_, rule) in rules.rules_for(pred) {
            let mut bound: HashSet<Sym> = rule
                .head
                .args
                .iter()
                .zip(&ad)
                .filter(|&(_, &b)| b)
                .filter_map(|(&t, _)| t.as_var())
                .collect();
            let guard = Literal::new(
                true,
                Atom::new(magic_sym(pred, &ad), bound_args(&rule.head, &ad)),
            );
            let mut new_body: Vec<Literal> = vec![guard];
            for lit in &rule.body {
                if lit.positive && graph.is_idb(lit.atom.pred) {
                    let sub_ad: Vec<bool> = lit
                        .atom
                        .args
                        .iter()
                        .map(|t| match t {
                            Term::Const(_) => true,
                            Term::Var(v) => bound.contains(v),
                        })
                        .collect();
                    // Demand: whenever the prefix holds, the subgoal is
                    // asked with these bindings.
                    let magic_head = Atom::new(
                        magic_sym(lit.atom.pred, &sub_ad),
                        bound_args(&lit.atom, &sub_ad),
                    );
                    out.push(
                        Rule::new(magic_head, new_body.clone())
                            .expect("magic rule is range-restricted by construction"),
                    );
                    magic_rules += 1;
                    if seen.insert((lit.atom.pred, sub_ad.clone())) {
                        work.push((lit.atom.pred, sub_ad.clone()));
                    }
                    new_body.push(Literal::new(
                        true,
                        Atom::new(adorned_sym(lit.atom.pred, &sub_ad), lit.atom.args.clone()),
                    ));
                    bound.extend(lit.atom.vars());
                } else {
                    new_body.push(lit.clone());
                    if lit.positive {
                        bound.extend(lit.atom.vars());
                    }
                }
            }
            let head = Atom::new(adorned_sym(pred, &ad), rule.head.args.clone());
            out.push(Rule::new(head, new_body).expect("adorned rule is range-restricted"));
        }
    }

    let seed = Fact {
        pred: magic_sym(goal.pred, &goal_ad),
        args: goal.args.iter().filter_map(|t| t.as_const()).collect(),
    };
    Ok(MagicProgram {
        rules: RuleSet::new(out).expect("rewritten program is positive hence stratified"),
        seeds: vec![seed],
        answer_goal: Atom::new(adorned_sym(goal.pred, &goal_ad), goal.args.clone()),
        original_goal: goal.clone(),
        adornment: goal_ad,
        adorned_predicates: seen.len(),
        magic_rules,
    })
}

/// Answer `goal` against `edb` through an already-rewritten
/// [`MagicProgram`] — the execution half of a prepared magic plan. The
/// rewrite is constant-free (see [`MagicProgram`]), so the same program
/// answers every goal with its binding shape; only the seed fact and
/// the answer filter depend on the actual constants.
///
/// # Panics
/// When `goal` is not [`MagicProgram::compatible_with`] the program
/// (different predicate, arity, or binding shape) — prepared-query
/// plans guarantee compatibility by construction.
pub fn answer_prepared(edb: &FactSet, mp: &MagicProgram, goal: &Atom) -> MagicAnswers {
    assert!(
        mp.compatible_with(goal),
        "goal {goal} incompatible with magic program for {}",
        mp.original_goal
    );
    let mut answers = Vec::new();
    if mp.rules.is_empty() {
        // Base-relation goal: scan the EDB directly.
        let bound: Vec<Option<Sym>> = goal.args.iter().map(|t| t.as_const()).collect();
        if let Some(rel) = edb.relation(goal.pred) {
            rel.scan(&bound, &mut |args| {
                let f = Fact {
                    pred: goal.pred,
                    args: args.to_vec(),
                };
                if match_atom(goal, &f).is_some() {
                    answers.push(f);
                }
                true
            });
        }
        return MagicAnswers {
            answers,
            derived_facts: 0,
        };
    }

    let mut seeded = edb.clone();
    seeded.insert(&Fact {
        pred: magic_sym(goal.pred, &mp.adornment),
        args: goal.args.iter().filter_map(|t| t.as_const()).collect(),
    });
    let model = Model::compute(&seeded, &mp.rules);
    let derived_facts = model.len().saturating_sub(seeded.len());
    let answer_goal = Atom::new(adorned_sym(goal.pred, &mp.adornment), goal.args.clone());
    let bound: Vec<Option<Sym>> = answer_goal.args.iter().map(|t| t.as_const()).collect();
    use crate::interp::Interp as _;
    model.scan(answer_goal.pred, &bound, &mut |args| {
        let f = Fact {
            pred: answer_goal.pred,
            args: args.to_vec(),
        };
        if match_atom(&answer_goal, &f).is_some() {
            answers.push(Fact {
                pred: goal.pred,
                args: f.args,
            });
        }
        true
    });
    MagicAnswers {
        answers,
        derived_facts,
    }
}

fn check_negation_free(rules: &RuleSet, graph: &DepGraph, from: Sym) -> Result<(), MagicError> {
    for pred in graph.reachable(from) {
        for (_, rule) in rules.rules_for(pred) {
            for lit in &rule.body {
                if !lit.positive && graph.is_idb(lit.atom.pred) {
                    return Err(MagicError::NegationReachable {
                        rule: rule.to_string(),
                        pred: lit.atom.pred,
                    });
                }
            }
        }
    }
    Ok(())
}

/// Answer `goal` against `(edb, rules)` by magic rewriting +
/// materialization of the rewritten program.
pub fn answer_goal_magic(
    edb: &FactSet,
    rules: &RuleSet,
    goal: &Atom,
) -> Result<MagicAnswers, MagicError> {
    let mp = magic_rewrite(rules, goal)?;
    Ok(answer_prepared(edb, &mp, goal))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;

    fn setup(src: &str) -> (FactSet, RuleSet) {
        let db = Database::parse(src).unwrap();
        (db.facts().clone(), db.rules().clone())
    }

    /// Oracle: answers by scanning the full canonical model.
    fn naive(edb: &FactSet, rules: &RuleSet, goal: &Atom) -> Vec<String> {
        let model = Model::compute(edb, rules);
        let mut out: Vec<String> = model
            .iter()
            .filter(|f| f.pred == goal.pred && match_atom(goal, f).is_some())
            .map(|f| f.to_string())
            .collect();
        out.sort();
        out
    }

    fn magic(edb: &FactSet, rules: &RuleSet, goal: &Atom) -> Vec<String> {
        let mut out: Vec<String> = answer_goal_magic(edb, rules, goal)
            .unwrap()
            .answers
            .iter()
            .map(|f| f.to_string())
            .collect();
        out.sort();
        out
    }

    const TC: &str = "
        edge(a, b). edge(b, c). edge(c, d). edge(x, y).
        tc(X, Y) :- edge(X, Y).
        tc(X, Z) :- edge(X, Y), tc(Y, Z).
    ";

    #[test]
    fn bound_free_goal_on_transitive_closure() {
        let (edb, rules) = setup(TC);
        let goal = Atom::parse_like("tc", &["a", "V"]);
        assert_eq!(magic(&edb, &rules, &goal), naive(&edb, &rules, &goal));
        assert_eq!(
            magic(&edb, &rules, &goal),
            vec!["tc(a,b)", "tc(a,c)", "tc(a,d)"]
        );
    }

    #[test]
    fn magic_derives_less_than_full_materialization() {
        let (edb, rules) = setup(TC);
        let goal = Atom::parse_like("tc", &["x", "V"]);
        let result = answer_goal_magic(&edb, &rules, &goal).unwrap();
        assert_eq!(result.answers.len(), 1, "only tc(x,y)");
        let full = Model::compute(&edb, &rules).len() - edb.len();
        assert!(
            result.derived_facts < full,
            "magic {} >= full {full}",
            result.derived_facts
        );
    }

    #[test]
    fn free_free_goal_still_correct() {
        let (edb, rules) = setup(TC);
        let goal = Atom::parse_like("tc", &["U", "V"]);
        assert_eq!(magic(&edb, &rules, &goal), naive(&edb, &rules, &goal));
    }

    #[test]
    fn fully_bound_goal() {
        let (edb, rules) = setup(TC);
        let yes = Atom::parse_like("tc", &["a", "d"]);
        assert_eq!(magic(&edb, &rules, &yes).len(), 1);
        let no = Atom::parse_like("tc", &["d", "a"]);
        assert!(magic(&edb, &rules, &no).is_empty());
    }

    #[test]
    fn cyclic_graph_terminates() {
        let (edb, rules) = setup(
            "
            edge(a, b). edge(b, a). edge(b, c).
            tc(X, Y) :- edge(X, Y).
            tc(X, Z) :- edge(X, Y), tc(Y, Z).
        ",
        );
        let goal = Atom::parse_like("tc", &["a", "V"]);
        assert_eq!(magic(&edb, &rules, &goal), naive(&edb, &rules, &goal));
    }

    #[test]
    fn same_generation_bound_goal() {
        let (edb, rules) = setup(
            "
            parent(a, b). parent(a, c). parent(b, d). parent(c, e).
            sg(X, X) :- person(X).
            sg(X, Y) :- parent(XP, X), sg(XP, YP), parent(YP, Y).
            person(a). person(b). person(c). person(d). person(e).
        ",
        );
        let goal = Atom::parse_like("sg", &["d", "V"]);
        assert_eq!(magic(&edb, &rules, &goal), naive(&edb, &rules, &goal));
    }

    #[test]
    fn second_argument_bound() {
        let (edb, rules) = setup(TC);
        let goal = Atom::parse_like("tc", &["V", "d"]);
        assert_eq!(magic(&edb, &rules, &goal), naive(&edb, &rules, &goal));
    }

    #[test]
    fn repeated_variable_goal() {
        let (edb, rules) = setup(
            "
            edge(a, b). edge(b, a).
            tc(X, Y) :- edge(X, Y).
            tc(X, Z) :- edge(X, Y), tc(Y, Z).
        ",
        );
        // tc(V, V): loops a→b→a and b→a→b.
        let goal = Atom::parse_like("tc", &["V", "V"]);
        assert_eq!(magic(&edb, &rules, &goal), naive(&edb, &rules, &goal));
        assert_eq!(magic(&edb, &rules, &goal), vec!["tc(a,a)", "tc(b,b)"]);
    }

    #[test]
    fn goal_over_base_relation() {
        let (edb, rules) = setup(TC);
        let goal = Atom::parse_like("edge", &["a", "V"]);
        let result = answer_goal_magic(&edb, &rules, &goal).unwrap();
        assert_eq!(result.answers.len(), 1);
        assert_eq!(result.derived_facts, 0);
    }

    #[test]
    fn goal_over_unknown_predicate_is_empty() {
        let (edb, rules) = setup(TC);
        let goal = Atom::parse_like("ghost", &["V"]);
        assert!(answer_goal_magic(&edb, &rules, &goal)
            .unwrap()
            .answers
            .is_empty());
    }

    #[test]
    fn negation_on_base_relations_allowed() {
        let (edb, rules) = setup(
            "
            emp(a). emp(b). absent(b).
            present(X) :- emp(X), not absent(X).
            senior_present(X) :- present(X), senior(X).
            senior(a).
        ",
        );
        let goal = Atom::parse_like("senior_present", &["V"]);
        assert_eq!(magic(&edb, &rules, &goal), naive(&edb, &rules, &goal));
        assert_eq!(magic(&edb, &rules, &goal), vec!["senior_present(a)"]);
    }

    #[test]
    fn negation_on_derived_predicates_rejected() {
        let (edb, rules) = setup(
            "
            emp(a).
            works(X) :- contract(X).
            idle(X) :- emp(X), not works(X).
        ",
        );
        let goal = Atom::parse_like("idle", &["V"]);
        let err = answer_goal_magic(&edb, &rules, &goal).unwrap_err();
        assert!(matches!(err, MagicError::NegationReachable { .. }), "{err}");
        // But a goal that does not reach the negation is fine.
        let ok = Atom::parse_like("works", &["V"]);
        assert!(answer_goal_magic(&edb, &rules, &ok).is_ok());
    }

    #[test]
    fn nonlinear_recursion() {
        let (edb, rules) = setup(
            "
            edge(a, b). edge(b, c). edge(c, d).
            path(X, Y) :- edge(X, Y).
            path(X, Z) :- path(X, Y), path(Y, Z).
        ",
        );
        let goal = Atom::parse_like("path", &["a", "V"]);
        assert_eq!(magic(&edb, &rules, &goal), naive(&edb, &rules, &goal));
    }

    #[test]
    fn constants_inside_rule_bodies() {
        let (edb, rules) = setup(
            "
            likes(a, wine). likes(b, beer).
            winelover(X) :- likes(X, wine).
        ",
        );
        let goal = Atom::parse_like("winelover", &["V"]);
        assert_eq!(magic(&edb, &rules, &goal), vec!["winelover(a)"]);
    }

    #[test]
    fn constants_in_rule_heads() {
        let (edb, rules) = setup(
            "
            dept(d1). dept(d2).
            member(ghost, X) :- dept(X).
        ",
        );
        let goal = Atom::parse_like("member", &["ghost", "V"]);
        assert_eq!(magic(&edb, &rules, &goal), naive(&edb, &rules, &goal));
        let other = Atom::parse_like("member", &["real", "V"]);
        assert!(magic(&edb, &rules, &other).is_empty());
    }

    #[test]
    fn mutual_recursion() {
        let (edb, rules) = setup(
            "
            succ(z, one). succ(one, two). succ(two, three). succ(three, four).
            even(z).
            even(X) :- succ(Y, X), odd(Y).
            odd(X) :- succ(Y, X), even(Y).
        ",
        );
        for pred in ["even", "odd"] {
            let goal = Atom::parse_like(pred, &["V"]);
            assert_eq!(
                magic(&edb, &rules, &goal),
                naive(&edb, &rules, &goal),
                "{pred}"
            );
        }
        let bound = Atom::parse_like("even", &["two"]);
        assert_eq!(magic(&edb, &rules, &bound).len(), 1);
    }

    #[test]
    fn prepared_program_reusable_across_constants() {
        let (edb, rules) = setup(TC);
        // Rewrite once for the `bf` shape, answer for several constants.
        let mp = magic_rewrite(&rules, &Atom::parse_like("tc", &["a", "V"])).unwrap();
        for start in ["a", "b", "x", "nowhere"] {
            let goal = Atom::parse_like("tc", &[start, "V"]);
            assert!(mp.compatible_with(&goal));
            let mut got: Vec<String> = answer_prepared(&edb, &mp, &goal)
                .answers
                .iter()
                .map(|f| f.to_string())
                .collect();
            got.sort();
            assert_eq!(got, naive(&edb, &rules, &goal), "start {start}");
        }
        // A differently-shaped goal is refused.
        assert!(!mp.compatible_with(&Atom::parse_like("tc", &["V", "d"])));
        assert!(!mp.compatible_with(&Atom::parse_like("edge", &["a", "V"])));
    }

    #[test]
    fn rewrite_shape_counters() {
        let (_, rules) = setup(TC);
        let goal = Atom::parse_like("tc", &["a", "V"]);
        let mp = magic_rewrite(&rules, &goal).unwrap();
        // tc^bf only: edge is EDB, and the recursive call re-binds the
        // first argument.
        assert_eq!(mp.adorned_predicates, 1);
        assert_eq!(mp.magic_rules, 1);
        assert_eq!(mp.seeds.len(), 1);
        assert_eq!(mp.seeds[0].to_string(), "m#tc#bf(a)");
    }
}
