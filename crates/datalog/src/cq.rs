//! Conjunctive-query evaluation over an [`Interp`].
//!
//! Evaluates a conjunction of literals with trail-based backtracking:
//! positive literals scan the interpretation with the pattern induced by
//! the bindings accumulated so far; negative literals are checked by
//! negation as failure once ground. This single evaluator serves rule
//! bodies, the ranges of restricted quantifiers, and the `B\L'` residue
//! queries of induced-update computation (Def. 4).
//!
//! Literals are chosen greedily per step rather than strictly left to
//! right: fully bound literals (membership tests and ground negations)
//! are dispatched first, then the positive literal with the most bound
//! argument positions. This is the standard bound-is-easier heuristic;
//! range restriction guarantees a safe order always exists, and the
//! answer set is order independent.

use crate::interp::Interp;
use uniform_logic::{Atom, Literal, Subst, Sym, Term};

/// Bind pattern of `atom` under `subst`: `Some(c)` for positions resolved
/// to a constant.
pub fn bind_pattern(subst: &Subst, atom: &Atom) -> Vec<Option<Sym>> {
    atom.args
        .iter()
        .map(|&t| match subst.walk(t) {
            Term::Const(c) => Some(c),
            Term::Var(_) => None,
        })
        .collect()
}

/// Extend `subst` so that `atom`σ = `tuple`; records newly bound
/// variables on `trail` for undo. Returns `false` (with a clean trail
/// rollback left to the caller) on mismatch.
fn extend_match(subst: &mut Subst, atom: &Atom, tuple: &[Sym], trail: &mut Vec<Sym>) -> bool {
    for (&t, &v) in atom.args.iter().zip(tuple) {
        match subst.walk(t) {
            Term::Const(c) => {
                if c != v {
                    return false;
                }
            }
            Term::Var(var) => {
                subst.bind(var, Term::Const(v));
                trail.push(var);
            }
        }
    }
    true
}

fn unwind(subst: &mut Subst, trail: &mut Vec<Sym>, mark: usize) {
    while trail.len() > mark {
        let v = trail.pop().unwrap();
        subst.unbind(v);
    }
}

/// Enumerate all substitutions extending `subst` that satisfy the
/// conjunction of `literals` in `interp`. Calls `each` for every answer;
/// `each` returns `false` to stop. Returns `false` iff enumeration was
/// aborted.
///
/// `subst` is used as working state and restored before returning.
pub fn solve_conjunction(
    interp: &dyn Interp,
    literals: &[Literal],
    subst: &mut Subst,
    each: &mut dyn FnMut(&mut Subst) -> bool,
) -> bool {
    let mut trail = Vec::new();
    let mut remaining: Vec<usize> = (0..literals.len()).collect();
    solve_rec(interp, literals, &mut remaining, subst, &mut trail, each)
}

/// Pick the next literal to dispatch: any fully bound literal first
/// (constant-time membership / negation check), otherwise the positive
/// literal with the most bound argument positions. Returns the slot in
/// `remaining`.
fn select_literal(literals: &[Literal], remaining: &[usize], subst: &Subst) -> usize {
    let mut best_slot = 0;
    let mut best_score = -1isize;
    for (slot, &idx) in remaining.iter().enumerate() {
        let lit = &literals[idx];
        let bound = lit
            .atom
            .args
            .iter()
            .filter(|&&t| matches!(subst.walk(t), uniform_logic::Term::Const(_)))
            .count();
        let arity = lit.atom.args.len();
        if bound == arity {
            // Fully bound: dispatch immediately regardless of sign.
            return slot;
        }
        if lit.positive && bound as isize > best_score {
            best_score = bound as isize;
            best_slot = slot;
        }
    }
    if best_score < 0 {
        // Only non-ground negative literals remain — range restriction
        // was violated upstream.
        let idx = remaining[0];
        panic!(
            "negative literal not ground when evaluated: {} (unsafe ordering?)",
            literals[idx]
        );
    }
    best_slot
}

fn solve_rec(
    interp: &dyn Interp,
    literals: &[Literal],
    remaining: &mut Vec<usize>,
    subst: &mut Subst,
    trail: &mut Vec<Sym>,
    each: &mut dyn FnMut(&mut Subst) -> bool,
) -> bool {
    if remaining.is_empty() {
        return each(subst);
    }
    let slot = select_literal(literals, remaining, subst);
    let idx = remaining.remove(slot);
    let lit = &literals[idx];
    let keep_going = if lit.positive {
        let pattern = bind_pattern(subst, &lit.atom);
        // The scan callback recurses per matching tuple.
        let mut keep_going = true;
        interp.scan(lit.atom.pred, &pattern, &mut |tuple| {
            let mark = trail.len();
            if extend_match(subst, &lit.atom, tuple, trail) {
                keep_going = solve_rec(interp, literals, remaining, subst, trail, each);
            }
            unwind(subst, trail, mark);
            keep_going
        });
        keep_going
    } else {
        let ground = subst.apply_atom(&lit.atom);
        let fact = ground.to_fact().unwrap_or_else(|| {
            panic!("negative literal not ground when evaluated: not {ground} (unsafe ordering?)")
        });
        if interp.holds(&fact) {
            true // this branch fails, enumeration continues elsewhere
        } else {
            solve_rec(interp, literals, remaining, subst, trail, each)
        }
    };
    remaining.insert(slot, idx);
    keep_going
}

/// Enumerate all substitutions satisfying the conjunction, dispatching
/// literals in the fixed `order` (indices into `literals`) instead of
/// re-selecting greedily per step — the execution half of a prepared
/// [`crate::planner::ConjunctionPlan`]. `order` must be a permutation
/// of `0..literals.len()`; the answer set is identical to
/// [`solve_conjunction`]'s (conjunction is order independent), only the
/// join order — and thus the cost — differs.
///
/// # Panics
/// Like [`solve_conjunction`], on a negative literal that is not ground
/// when dispatched (the planner orders negatives after their binders
/// whenever the query is safe).
pub fn solve_planned(
    interp: &dyn Interp,
    literals: &[Literal],
    order: &[usize],
    subst: &mut Subst,
    each: &mut dyn FnMut(&mut Subst) -> bool,
) -> bool {
    debug_assert_eq!(order.len(), literals.len(), "order must cover the query");
    let mut trail = Vec::new();
    solve_planned_rec(interp, literals, order, subst, &mut trail, each)
}

fn solve_planned_rec(
    interp: &dyn Interp,
    literals: &[Literal],
    order: &[usize],
    subst: &mut Subst,
    trail: &mut Vec<Sym>,
    each: &mut dyn FnMut(&mut Subst) -> bool,
) -> bool {
    let Some((&idx, rest)) = order.split_first() else {
        return each(subst);
    };
    let lit = &literals[idx];
    if lit.positive {
        let pattern = bind_pattern(subst, &lit.atom);
        let mut keep_going = true;
        interp.scan(lit.atom.pred, &pattern, &mut |tuple| {
            let mark = trail.len();
            if extend_match(subst, &lit.atom, tuple, trail) {
                keep_going = solve_planned_rec(interp, literals, rest, subst, trail, each);
            }
            unwind(subst, trail, mark);
            keep_going
        });
        keep_going
    } else {
        let ground = subst.apply_atom(&lit.atom);
        let fact = ground.to_fact().unwrap_or_else(|| {
            panic!("negative literal not ground when evaluated: not {ground} (unsafe plan?)")
        });
        if interp.holds(&fact) {
            true // this branch fails, enumeration continues elsewhere
        } else {
            solve_planned_rec(interp, literals, rest, subst, trail, each)
        }
    }
}

/// Does the conjunction have at least one solution extending `subst`?
pub fn provable(interp: &dyn Interp, literals: &[Literal], subst: &mut Subst) -> bool {
    !solve_conjunction(interp, literals, subst, &mut |_| false)
}

/// Collect all solutions as substitutions restricted to `keep`.
pub fn all_solutions(
    interp: &dyn Interp,
    literals: &[Literal],
    subst: &mut Subst,
    keep: &[Sym],
) -> Vec<Subst> {
    let mut out = Vec::new();
    solve_conjunction(interp, literals, subst, &mut |s| {
        out.push(s.restrict(keep));
        true
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::FactSet;
    use uniform_logic::Fact;

    fn db() -> FactSet {
        FactSet::from_facts([
            Fact::parse_like("edge", &["a", "b"]),
            Fact::parse_like("edge", &["b", "c"]),
            Fact::parse_like("edge", &["c", "d"]),
            Fact::parse_like("red", &["b"]),
        ])
    }

    fn lits(spec: &[(&str, &[&str], bool)]) -> Vec<Literal> {
        spec.iter()
            .map(|(p, args, pos)| Literal::new(*pos, Atom::parse_like(p, args)))
            .collect()
    }

    #[test]
    fn single_positive_literal_enumerates() {
        let fs = db();
        let q = lits(&[("edge", &["X", "Y"], true)]);
        let sols = all_solutions(&fs, &q, &mut Subst::new(), &[Sym::new("X"), Sym::new("Y")]);
        assert_eq!(sols.len(), 3);
    }

    #[test]
    fn join_through_shared_variable() {
        let fs = db();
        // edge(X,Y), edge(Y,Z)
        let q = lits(&[("edge", &["X", "Y"], true), ("edge", &["Y", "Z"], true)]);
        let keep = [Sym::new("X"), Sym::new("Z")];
        let mut pairs: Vec<(String, String)> = all_solutions(&fs, &q, &mut Subst::new(), &keep)
            .iter()
            .map(|s| {
                (
                    format!("{:?}", s.walk(Term::from_name("X"))),
                    format!("{:?}", s.walk(Term::from_name("Z"))),
                )
            })
            .collect();
        pairs.sort();
        assert_eq!(
            pairs,
            vec![("a".into(), "c".into()), ("b".into(), "d".into())]
        );
    }

    #[test]
    fn negative_literal_filters() {
        let fs = db();
        // edge(X,Y), not red(Y)
        let q = lits(&[("edge", &["X", "Y"], true), ("red", &["Y"], false)]);
        let sols = all_solutions(&fs, &q, &mut Subst::new(), &[Sym::new("Y")]);
        let mut names: Vec<String> = sols
            .iter()
            .map(|s| format!("{:?}", s.walk(Term::from_name("Y"))))
            .collect();
        names.sort();
        assert_eq!(names, vec!["c", "d"]);
    }

    #[test]
    fn initial_bindings_restrict_scan() {
        let fs = db();
        let q = lits(&[("edge", &["X", "Y"], true)]);
        let mut init = Subst::new();
        init.bind(Sym::new("X"), Term::from_name("b"));
        let sols = all_solutions(&fs, &q, &mut init, &[Sym::new("Y")]);
        assert_eq!(sols.len(), 1);
        assert_eq!(sols[0].walk(Term::from_name("Y")), Term::from_name("c"));
    }

    #[test]
    fn provable_and_early_stop() {
        let fs = db();
        let q = lits(&[("edge", &["X", "Y"], true)]);
        assert!(provable(&fs, &q, &mut Subst::new()));
        let no = lits(&[("edge", &["d", "X"], true)]);
        assert!(!provable(&fs, &no, &mut Subst::new()));
    }

    #[test]
    fn repeated_variable_within_atom() {
        let mut fs = db();
        fs.insert(&Fact::parse_like("edge", &["e", "e"]));
        let q = lits(&[("edge", &["X", "X"], true)]);
        let sols = all_solutions(&fs, &q, &mut Subst::new(), &[Sym::new("X")]);
        assert_eq!(sols.len(), 1);
        assert_eq!(sols[0].walk(Term::from_name("X")), Term::from_name("e"));
    }

    #[test]
    fn empty_conjunction_yields_identity() {
        let fs = db();
        let sols = all_solutions(&fs, &[], &mut Subst::new(), &[]);
        assert_eq!(sols.len(), 1);
        assert!(sols[0].is_empty());
    }

    #[test]
    fn working_subst_restored() {
        let fs = db();
        let q = lits(&[("edge", &["X", "Y"], true)]);
        let mut s = Subst::new();
        solve_conjunction(&fs, &q, &mut s, &mut |_| true);
        assert!(s.is_empty(), "working substitution must be unwound");
    }

    #[test]
    #[should_panic(expected = "not ground")]
    fn unsafe_negative_literal_panics() {
        let fs = db();
        let q = lits(&[("red", &["X"], false)]);
        provable(&fs, &q, &mut Subst::new());
    }

    /// The planned evaluator must produce the same answer set as the
    /// runtime-greedy one for every dispatch order (conjunction is
    /// order independent) — here checked over all permutations of a
    /// join with negation.
    #[test]
    fn solve_planned_matches_greedy_for_every_safe_order() {
        let fs = db();
        let q = lits(&[
            ("edge", &["X", "Y"], true),
            ("edge", &["Y", "Z"], true),
            ("red", &["Y"], false),
        ]);
        let keep = [Sym::new("X"), Sym::new("Z")];
        let render = |sols: Vec<Subst>| {
            let mut out: Vec<String> = sols
                .iter()
                .map(|s| {
                    format!(
                        "{:?}{:?}",
                        s.walk(Term::from_name("X")),
                        s.walk(Term::from_name("Z"))
                    )
                })
                .collect();
            out.sort();
            out
        };
        let want = render(all_solutions(&fs, &q, &mut Subst::new(), &keep));
        // All safe orders: the negation (slot 2) needs Y, bound by
        // either positive literal.
        for order in [[0, 1, 2], [1, 0, 2], [0, 2, 1], [1, 2, 0]] {
            let mut got = Vec::new();
            let mut s = Subst::new();
            solve_planned(&fs, &q, &order, &mut s, &mut |s| {
                got.push(s.restrict(&keep));
                true
            });
            assert!(s.is_empty(), "working substitution unwound");
            assert_eq!(render(got), want, "order {order:?}");
        }
    }

    #[test]
    #[should_panic(expected = "unsafe plan")]
    fn solve_planned_rejects_unsafe_orders() {
        let fs = db();
        let q = lits(&[("edge", &["X", "Y"], true), ("red", &["Y"], false)]);
        // Dispatching the negation first is unsafe: Y is unbound.
        solve_planned(&fs, &q, &[1, 0], &mut Subst::new(), &mut |_| true);
    }
}
