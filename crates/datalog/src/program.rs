//! Rule sets with the two indexes integrity checking needs.
//!
//! * by head predicate — resolution of goals against rule heads
//!   (top-down evaluation, `new`);
//! * by body literal — the paper's `directly_dependent(L, A, R)` relation
//!   (§3.3.1): for every rule `A ← B` and every literal `L'` in `B`, an
//!   entry keyed by `L'`'s predicate and sign, carrying the head and the
//!   residue `B \ L'`. Both the induced-update (Def. 4) and the
//!   potential-update (Def. 5) computations walk this index.

use crate::depgraph::{DepGraph, StratificationError};
use crate::patterns::PatternTemplates;
use std::collections::HashMap;
use std::sync::Arc;
use uniform_logic::{Literal, Rule, Sym};

/// One `directly_dependent` entry: the body literal `L'` at `position` of
/// `rule` (`rules[rule_idx]`), whose head may change when a literal
/// unifying with `L'` (same sign) or its complement (opposite sign)
/// changes.
#[derive(Clone, Debug)]
pub struct BodyOccurrence {
    pub rule_idx: usize,
    pub position: usize,
}

/// An immutable, indexed rule set with its stratification.
#[derive(Clone, Debug)]
pub struct RuleSet {
    rules: Vec<Rule>,
    by_head: HashMap<Sym, Vec<usize>>,
    /// (body predicate, body-literal positivity) → occurrences.
    by_body: HashMap<(Sym, bool), Vec<BodyOccurrence>>,
    graph: DepGraph,
    /// Precompiled read-pattern templates (see [`crate::patterns`]):
    /// built once here, shared by every clone, specialized per check
    /// instead of re-walking `rules` on every commit.
    templates: Arc<PatternTemplates>,
}

impl RuleSet {
    pub fn new(rules: Vec<Rule>) -> Result<RuleSet, StratificationError> {
        let graph = DepGraph::build(&rules)?;
        let mut by_head: HashMap<Sym, Vec<usize>> = HashMap::new();
        let mut by_body: HashMap<(Sym, bool), Vec<BodyOccurrence>> = HashMap::new();
        for (i, rule) in rules.iter().enumerate() {
            by_head.entry(rule.head.pred).or_default().push(i);
            for (pos, lit) in rule.body.iter().enumerate() {
                by_body
                    .entry((lit.atom.pred, lit.positive))
                    .or_default()
                    .push(BodyOccurrence {
                        rule_idx: i,
                        position: pos,
                    });
            }
        }
        let templates = Arc::new(PatternTemplates::build(&rules));
        Ok(RuleSet {
            rules,
            by_head,
            by_body,
            graph,
            templates,
        })
    }

    pub fn empty() -> RuleSet {
        RuleSet::new(Vec::new()).expect("empty rule set is trivially stratified")
    }

    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    pub fn len(&self) -> usize {
        self.rules.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    pub fn graph(&self) -> &DepGraph {
        &self.graph
    }

    /// The precompiled read-pattern templates of this rule set.
    pub fn templates(&self) -> &Arc<PatternTemplates> {
        &self.templates
    }

    /// Rules whose head predicate is `pred`.
    pub fn rules_for(&self, pred: Sym) -> impl Iterator<Item = (usize, &Rule)> {
        self.by_head
            .get(&pred)
            .into_iter()
            .flatten()
            .map(move |&i| (i, &self.rules[i]))
    }

    /// Body occurrences of literals with predicate `pred` and the given
    /// positivity.
    pub fn body_occurrences(
        &self,
        pred: Sym,
        positive: bool,
    ) -> impl Iterator<Item = (&Rule, &Literal, &BodyOccurrence)> {
        self.by_body
            .get(&(pred, positive))
            .into_iter()
            .flatten()
            .map(move |occ| {
                let rule = &self.rules[occ.rule_idx];
                (rule, &rule.body[occ.position], occ)
            })
    }

    pub fn rule(&self, idx: usize) -> &Rule {
        &self.rules[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniform_logic::parse_rule;

    fn rs(srcs: &[&str]) -> RuleSet {
        RuleSet::new(srcs.iter().map(|s| parse_rule(s).unwrap()).collect()).unwrap()
    }

    #[test]
    fn head_index() {
        let set = rs(&[
            "member(X,Y) :- leads(X,Y).",
            "member(X,Y) :- assigned(X,Y).",
            "boss(X) :- leads(X,Y).",
        ]);
        assert_eq!(set.rules_for(Sym::new("member")).count(), 2);
        assert_eq!(set.rules_for(Sym::new("boss")).count(), 1);
        assert_eq!(set.rules_for(Sym::new("leads")).count(), 0);
    }

    #[test]
    fn body_index_distinguishes_sign() {
        let set = rs(&["p(X) :- q(X), not r(X)."]);
        assert_eq!(set.body_occurrences(Sym::new("q"), true).count(), 1);
        assert_eq!(set.body_occurrences(Sym::new("q"), false).count(), 0);
        assert_eq!(set.body_occurrences(Sym::new("r"), false).count(), 1);
        let (rule, lit, occ) = set.body_occurrences(Sym::new("r"), false).next().unwrap();
        assert!(!lit.positive);
        assert_eq!(rule.head.pred, Sym::new("p"));
        assert_eq!(occ.position, 1);
    }

    #[test]
    fn unstratified_rejected() {
        let rules: Vec<Rule> = ["win(X) :- move(X,Y), not win(Y)."]
            .iter()
            .map(|s| parse_rule(s).unwrap())
            .collect();
        assert!(RuleSet::new(rules).is_err());
    }

    #[test]
    fn empty_set() {
        let set = RuleSet::empty();
        assert!(set.is_empty());
        assert_eq!(set.graph().height(), 1);
    }
}
