//! Why-provenance: derivation trees for facts of the canonical model.
//!
//! When the checker rejects an update "via an induced update", the
//! natural follow-up question is *why that fact is derived at all*. This
//! module reconstructs a well-founded derivation tree: every internal
//! node is a rule application whose positive premises appeared strictly
//! earlier in the stratified fixpoint (so recursive programs yield
//! finite, non-circular explanations), and negative premises are
//! justified by absence (stratification guarantees the negated
//! predicate is settled in a lower stratum).

use crate::cq::solve_conjunction;
use crate::program::RuleSet;
use crate::store::FactSet;
use std::collections::HashMap;
use std::fmt;
use uniform_logic::{match_atom, Fact, Subst};

/// A well-founded justification of a model fact.
#[derive(Clone, Debug)]
pub enum Derivation {
    /// Stored in the EDB.
    Explicit(Fact),
    /// Derived by a rule application.
    Rule {
        /// The derived fact.
        fact: Fact,
        /// The rule, as printed.
        rule: String,
        /// Justifications of the positive body literals.
        premises: Vec<Derivation>,
        /// Negative body literals, true by absence.
        absent: Vec<Fact>,
    },
}

impl Derivation {
    /// The fact this derivation justifies.
    pub fn fact(&self) -> &Fact {
        match self {
            Derivation::Explicit(f) => f,
            Derivation::Rule { fact, .. } => fact,
        }
    }

    /// Number of rule applications in the tree.
    pub fn rule_applications(&self) -> usize {
        match self {
            Derivation::Explicit(_) => 0,
            Derivation::Rule { premises, .. } => {
                1 + premises
                    .iter()
                    .map(|p| p.rule_applications())
                    .sum::<usize>()
            }
        }
    }

    fn render(&self, indent: usize, out: &mut String) {
        use fmt::Write;
        let pad = "  ".repeat(indent);
        match self {
            Derivation::Explicit(f) => {
                let _ = writeln!(out, "{pad}{f}  [explicit]");
            }
            Derivation::Rule {
                fact,
                rule,
                premises,
                absent,
            } => {
                let _ = writeln!(out, "{pad}{fact}  [via {rule}]");
                for p in premises {
                    p.render(indent + 1, out);
                }
                for a in absent {
                    let _ = writeln!(out, "{}not {a}  [absent]", "  ".repeat(indent + 1));
                }
            }
        }
    }
}

impl fmt::Display for Derivation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.render(0, &mut out);
        f.write_str(out.trim_end())
    }
}

/// Rank of a fact in the stratified fixpoint: `(stratum, iteration)`.
/// Positive premises of a valid derivation step have strictly smaller
/// rank, which is what makes explanations well-founded.
type Rank = (u32, u32);

/// Provenance index over one database state.
pub struct Provenance<'a> {
    edb: &'a FactSet,
    rules: &'a RuleSet,
    model: FactSet,
    ranks: HashMap<Fact, Rank>,
}

impl<'a> Provenance<'a> {
    /// Build the index by re-running the naive stratified fixpoint and
    /// recording each fact's first appearance.
    pub fn build(edb: &'a FactSet, rules: &'a RuleSet) -> Provenance<'a> {
        let graph = rules.graph();
        let mut model = edb.clone();
        let mut ranks: HashMap<Fact, Rank> = HashMap::new();
        for f in edb.iter() {
            ranks.insert(f, (0, 0));
        }
        let height = graph.height().max(1);
        for s in 0..height {
            let stratum_rules: Vec<_> = rules
                .rules()
                .iter()
                .filter(|r| graph.stratum(r.head.pred) == s)
                .collect();
            if stratum_rules.is_empty() {
                continue;
            }
            let mut round: u32 = 0;
            loop {
                round += 1;
                let mut fresh: Vec<Fact> = Vec::new();
                for rule in &stratum_rules {
                    solve_conjunction(&model, &rule.body, &mut Subst::new(), &mut |sub| {
                        if let Some(head) = sub.ground_atom(&rule.head) {
                            if !model.contains(&head) {
                                fresh.push(head);
                            }
                        }
                        true
                    });
                }
                if fresh.is_empty() {
                    break;
                }
                for f in fresh {
                    if model.insert(&f) {
                        ranks.insert(f, (s as u32 + 1, round));
                    }
                }
            }
        }
        Provenance {
            edb,
            rules,
            model,
            ranks,
        }
    }

    /// The materialized model the index was built over.
    pub fn model(&self) -> &FactSet {
        &self.model
    }

    /// A well-founded derivation of `fact`, or `None` if the fact is not
    /// in the canonical model.
    pub fn explain(&self, fact: &Fact) -> Option<Derivation> {
        if self.edb.contains(fact) {
            return Some(Derivation::Explicit(fact.clone()));
        }
        let &rank = self.ranks.get(fact)?;
        for (_, original) in self.rules.rules_for(fact.pred) {
            let rule = original.rename_apart();
            let Some(binding) = match_atom(&rule.head, fact) else {
                continue;
            };
            let mut found: Option<(Vec<Fact>, Vec<Fact>)> = None;
            let mut sub = binding.clone();
            solve_conjunction(&self.model, &rule.body, &mut sub, &mut |s| {
                let mut premises = Vec::new();
                let mut absent = Vec::new();
                for lit in &rule.body {
                    let Some(ground) = s.ground_atom(&lit.atom) else {
                        return true; // not a usable solution
                    };
                    if lit.positive {
                        premises.push(ground);
                    } else {
                        absent.push(ground);
                    }
                }
                // Well-foundedness: every positive premise must appear
                // strictly earlier in the fixpoint.
                let well_founded = premises
                    .iter()
                    .all(|p| self.ranks.get(p).is_some_and(|&r| r < rank));
                if well_founded {
                    found = Some((premises, absent));
                    false // stop at the first valid support
                } else {
                    true
                }
            });
            if let Some((premises, absent)) = found {
                let sub_derivations: Option<Vec<Derivation>> =
                    premises.iter().map(|p| self.explain(p)).collect();
                // Premise ranks are strictly decreasing, so recursion
                // terminates; premises are model facts, so they explain.
                let premises = sub_derivations?;
                return Some(Derivation::Rule {
                    fact: fact.clone(),
                    rule: original.to_string(),
                    premises,
                    absent,
                });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;
    use uniform_logic::parse_fact;

    fn prov(src: &str) -> (Database, ()) {
        (Database::parse(src).unwrap(), ())
    }

    fn explain(db: &Database, fact: &str) -> Option<Derivation> {
        let p = Provenance::build(db.facts(), db.rules());
        p.explain(&parse_fact(fact).unwrap())
    }

    #[test]
    fn explicit_facts_are_their_own_explanation() {
        let (db, _) = prov("p(a).");
        let d = explain(&db, "p(a)").unwrap();
        assert!(matches!(d, Derivation::Explicit(_)));
        assert_eq!(d.rule_applications(), 0);
    }

    #[test]
    fn chain_derivation() {
        let (db, _) = prov("b(X) :- a(X). c(X) :- b(X). a(x).");
        let d = explain(&db, "c(x)").unwrap();
        assert_eq!(d.rule_applications(), 2);
        let printed = d.to_string();
        assert!(printed.contains("c(x)"), "{printed}");
        assert!(printed.contains("[explicit]"), "{printed}");
    }

    #[test]
    fn negative_premises_reported_absent() {
        let (db, _) = prov("idle(X) :- emp(X), not works(X). emp(a).");
        let d = explain(&db, "idle(a)").unwrap();
        match &d {
            Derivation::Rule {
                premises, absent, ..
            } => {
                assert_eq!(premises.len(), 1);
                assert_eq!(absent.len(), 1);
                assert_eq!(absent[0].to_string(), "works(a)");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(d.to_string().contains("not works(a)  [absent]"));
    }

    #[test]
    fn recursive_derivations_are_finite() {
        let (db, _) = prov(
            "
            tc(X, Y) :- e(X, Y).
            tc(X, Z) :- tc(X, Y), e(Y, Z).
            e(a, b). e(b, c). e(c, a).
        ",
        );
        // tc(a,a) goes around the whole cycle; the tree must be finite
        // and well-founded.
        let d = explain(&db, "tc(a, a)").unwrap();
        assert!(d.rule_applications() >= 3, "{d}");
        // Every leaf is explicit.
        fn leaves_explicit(d: &Derivation) -> bool {
            match d {
                Derivation::Explicit(_) => true,
                Derivation::Rule { premises, .. } => premises.iter().all(leaves_explicit),
            }
        }
        assert!(leaves_explicit(&d), "{d}");
    }

    #[test]
    fn diamond_picks_a_valid_support() {
        let (db, _) = prov("w(X) :- l(X, Y). l(a, d1). l(a, d2).");
        let d = explain(&db, "w(a)").unwrap();
        assert_eq!(d.rule_applications(), 1);
    }

    #[test]
    fn untrue_facts_have_no_explanation() {
        let (db, _) = prov("b(X) :- a(X). a(x).");
        assert!(explain(&db, "b(zzz)").is_none());
        assert!(explain(&db, "ghost(x)").is_none());
    }

    #[test]
    fn explicit_and_derived_prefers_explicit() {
        let (db, _) = prov("member(X,Y) :- leads(X,Y). member(a,s). leads(a,s).");
        let d = explain(&db, "member(a, s)").unwrap();
        assert!(matches!(d, Derivation::Explicit(_)));
    }

    #[test]
    fn provenance_model_matches_canonical_model() {
        let db = Database::parse(
            "
            m(X,Y) :- l(X,Y).
            u(X) :- p(X), not q(X).
            tc(X,Y) :- r(X,Y).
            tc(X,Z) :- tc(X,Y), r(Y,Z).
            l(a,b). p(a). p(b). q(b). r(a,b). r(b,c).
        ",
        )
        .unwrap();
        let p = Provenance::build(db.facts(), db.rules());
        let canonical = db.model();
        let mut a: Vec<String> = p.model().iter().map(|f| f.to_string()).collect();
        let mut b: Vec<String> = canonical.iter().map(|f| f.to_string()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        // Every model fact explains.
        for f in p.model().iter() {
            assert!(p.explain(&f).is_some(), "no derivation for {f}");
        }
    }
}
