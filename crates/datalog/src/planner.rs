//! Query planning for general formulas.
//!
//! §6 of the paper closes with: "Most of the optimization techniques
//! proposed till now are concerned with conjunctive queries. Since
//! constraints have often a more general syntax, optimization methods
//! for general formulas seem to be desirable." This module provides
//! that layer for restricted-quantification formulas ([`Rq`]):
//!
//! * a **cost model** driven by relation cardinalities (the statistics
//!   any fact store can supply);
//! * semantics-preserving **rewrites**: duplicate elimination and
//!   complementary-literal collapse inside `∧`/`∨`, lattice absorption
//!   (`X ∧ (X ∨ Y) ≡ X`), and cheapest-first reordering of `∧`/`∨`
//!   children so short-circuit evaluation meets a verdict early.
//!
//! Reordering is sound because `∧`/`∨` children of an [`Rq`] never bind
//! variables — bindings flow only through quantifier ranges — so every
//! child sees the same substitution regardless of order.
//!
//! The conjunctive level (rule bodies and quantifier ranges) already
//! self-optimizes at runtime: [`crate::cq`] selects the most-bound
//! literal per step. This module adds the formula level on top, and is
//! wired into the checker's evaluation phase behind
//! `CheckOptions::optimize_instances` (experiment E9): "evaluation can
//! fully benefit from query optimization techniques" precisely because
//! phase 1 hands whole formulas over.

use crate::model::Model;
use crate::store::FactSet;
use std::collections::HashSet;
use uniform_logic::{Literal, Rq, Sym, Term};

/// Source of relation cardinalities for the cost model.
pub trait Cardinality {
    /// Number of tuples stored for `pred` (0 for unknown predicates).
    fn cardinality(&self, pred: Sym) -> usize;
}

impl Cardinality for FactSet {
    fn cardinality(&self, pred: Sym) -> usize {
        self.relation(pred).map_or(0, |r| r.len())
    }
}

impl Cardinality for Model {
    fn cardinality(&self, pred: Sym) -> usize {
        self.facts().cardinality(pred)
    }
}

/// Fixed statistics (for tests and for planning against hypothetical
/// states).
#[derive(Clone, Debug, Default)]
pub struct FixedStats(pub std::collections::HashMap<Sym, usize>);

impl Cardinality for FixedStats {
    fn cardinality(&self, pred: Sym) -> usize {
        self.0.get(&pred).copied().unwrap_or(0)
    }
}

/// Counters describing what [`Planner::optimize`] did.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PlanReport {
    /// Estimated cost before optimization.
    pub cost_before: f64,
    /// Estimated cost after optimization.
    pub cost_after: f64,
    /// Children removed by idempotence (`X ∧ X`), absorption or
    /// complement collapse.
    pub pruned: usize,
    /// `∧`/`∨` nodes whose children were permuted.
    pub reordered: usize,
}

/// A cost-based optimizer for restricted-quantification formulas.
pub struct Planner<'a> {
    stats: &'a dyn Cardinality,
}

/// Per-position selectivity of a bound argument: each bound column is
/// assumed to cut the scanned tuples by this factor.
const BOUND_SELECTIVITY: f64 = 4.0;
const COST_CAP: f64 = 1e18;

impl<'a> Planner<'a> {
    pub fn new(stats: &'a dyn Cardinality) -> Planner<'a> {
        Planner { stats }
    }

    /// Optimize a formula. Free variables are treated as bound (they
    /// are, by the time the checker evaluates an instance).
    pub fn optimize(&self, rq: &Rq) -> Rq {
        self.optimize_with_report(rq).0
    }

    /// Optimize and report estimated costs and rewrite counts.
    pub fn optimize_with_report(&self, rq: &Rq) -> (Rq, PlanReport) {
        let bound: HashSet<Sym> = rq.free_vars().into_iter().collect();
        let mut report = PlanReport {
            cost_before: self.cost(rq, &bound),
            ..PlanReport::default()
        };
        let optimized = self.opt(rq, &bound, &mut report);
        report.cost_after = self.cost(&optimized, &bound);
        (optimized, report)
    }

    /// Estimated evaluation cost with the given bound variables.
    pub fn estimate(&self, rq: &Rq) -> f64 {
        let bound: HashSet<Sym> = rq.free_vars().into_iter().collect();
        self.cost(rq, &bound)
    }

    fn literal_cost(&self, lit: &Literal, bound: &HashSet<Sym>) -> f64 {
        let card = self.stats.cardinality(lit.atom.pred) as f64;
        let bound_positions = lit
            .atom
            .args
            .iter()
            .filter(|t| match t {
                Term::Const(_) => true,
                Term::Var(v) => bound.contains(v),
            })
            .count();
        if bound_positions == lit.atom.args.len() {
            return 1.0; // ground membership test
        }
        (card / BOUND_SELECTIVITY.powi(bound_positions as i32)).max(1.0)
    }

    /// Estimated number of solutions and cost of enumerating a
    /// quantifier range (a join of positive atoms).
    fn range_cost(&self, range: &[uniform_logic::Atom], bound: &HashSet<Sym>) -> (f64, f64) {
        let mut inner = bound.clone();
        let mut fanout = 1.0f64;
        let mut cost = 0.0f64;
        // The runtime join is greedy most-bound-first; mirror that.
        let mut remaining: Vec<&uniform_logic::Atom> = range.iter().collect();
        while !remaining.is_empty() {
            let (slot, _) = remaining
                .iter()
                .enumerate()
                .map(|(i, a)| (i, self.literal_cost(&(*a).clone().pos(), &inner)))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("non-empty");
            let atom = remaining.swap_remove(slot);
            let step = self.literal_cost(&atom.clone().pos(), &inner);
            cost = (cost + fanout * step).min(COST_CAP);
            fanout = (fanout * step).min(COST_CAP);
            inner.extend(atom.vars());
        }
        (fanout, cost)
    }

    fn cost(&self, rq: &Rq, bound: &HashSet<Sym>) -> f64 {
        match rq {
            Rq::True | Rq::False => 0.0,
            Rq::Lit(l) => self.literal_cost(l, bound),
            Rq::And(gs) | Rq::Or(gs) => gs
                .iter()
                .map(|g| self.cost(g, bound))
                .fold(0.0, |a, b| (a + b).min(COST_CAP)),
            Rq::Forall { vars, range, body } | Rq::Exists { vars, range, body } => {
                let (fanout, range_cost) = self.range_cost(range, bound);
                let mut inner = bound.clone();
                inner.extend(vars.iter().copied());
                (range_cost + fanout * self.cost(body, &inner)).min(COST_CAP)
            }
        }
    }

    fn opt(&self, rq: &Rq, bound: &HashSet<Sym>, report: &mut PlanReport) -> Rq {
        match rq {
            Rq::True | Rq::False | Rq::Lit(_) => rq.clone(),
            Rq::And(gs) => {
                let children: Vec<Rq> = gs.iter().map(|g| self.opt(g, bound, report)).collect();
                self.junction(children, bound, report, /*conjunction=*/ true)
            }
            Rq::Or(gs) => {
                let children: Vec<Rq> = gs.iter().map(|g| self.opt(g, bound, report)).collect();
                self.junction(children, bound, report, /*conjunction=*/ false)
            }
            Rq::Forall { vars, range, body } => {
                let mut inner = bound.clone();
                inner.extend(vars.iter().copied());
                Rq::Forall {
                    vars: vars.clone(),
                    range: range.clone(),
                    body: Box::new(self.opt(body, &inner, report)),
                }
            }
            Rq::Exists { vars, range, body } => {
                let mut inner = bound.clone();
                inner.extend(vars.iter().copied());
                Rq::Exists {
                    vars: vars.clone(),
                    range: range.clone(),
                    body: Box::new(self.opt(body, &inner, report)),
                }
            }
        }
    }

    /// Simplify and reorder the children of one `∧` (`conjunction`) or
    /// `∨` node.
    fn junction(
        &self,
        children: Vec<Rq>,
        bound: &HashSet<Sym>,
        report: &mut PlanReport,
        conjunction: bool,
    ) -> Rq {
        // Idempotence: drop structural duplicates.
        let mut kept: Vec<Rq> = Vec::with_capacity(children.len());
        for c in children {
            if kept.contains(&c) {
                report.pruned += 1;
            } else {
                kept.push(c);
            }
        }

        // Complement collapse: X ∧ ¬X ≡ false, X ∨ ¬X ≡ true (on
        // literal children with identical atoms).
        let lits: Vec<&Literal> = kept
            .iter()
            .filter_map(|c| match c {
                Rq::Lit(l) => Some(l),
                _ => None,
            })
            .collect();
        let clash = lits.iter().any(|l| {
            lits.iter()
                .any(|m| l.atom == m.atom && l.positive != m.positive)
        });
        if clash {
            report.pruned += kept.len();
            return if conjunction { Rq::False } else { Rq::True };
        }

        // Absorption: in a conjunction, X absorbs any ∨-sibling that
        // contains X (X ∧ (X ∨ Y) ≡ X); dually for disjunctions.
        let singles: Vec<Rq> = kept
            .iter()
            .filter(|c| !matches!(c, Rq::And(_) | Rq::Or(_)))
            .cloned()
            .collect();
        let before = kept.len();
        kept.retain(|c| {
            let inner = match (conjunction, c) {
                (true, Rq::Or(inner)) | (false, Rq::And(inner)) => inner,
                _ => return true,
            };
            !singles.iter().any(|s| inner.contains(s))
        });
        report.pruned += before - kept.len();

        // Cheapest-first ordering for short-circuit evaluation.
        let mut keyed: Vec<(f64, Rq)> = kept
            .into_iter()
            .map(|c| (self.cost(&c, bound), c))
            .collect();
        let already_sorted = keyed.windows(2).all(|w| w[0].0 <= w[1].0);
        if !already_sorted {
            keyed.sort_by(|a, b| a.0.total_cmp(&b.0));
            report.reordered += 1;
        }
        let ordered: Vec<Rq> = keyed.into_iter().map(|(_, c)| c).collect();
        if conjunction {
            Rq::and(ordered)
        } else {
            Rq::or(ordered)
        }
    }
}

/// One-shot convenience over [`Planner`].
pub fn optimize_rq(rq: &Rq, stats: &dyn Cardinality) -> Rq {
    Planner::new(stats).optimize(rq)
}

/// A precomputed static evaluation order for a conjunctive query — the
/// prepared-query counterpart of [`crate::cq::solve_conjunction`]'s
/// per-step greedy selection. Computed once (per rule revision) by
/// [`Planner::plan_conjunction`] and replayed by
/// [`crate::cq::solve_planned`], so hot queries stop paying the
/// most-bound-literal scan on every recursion step.
#[derive(Clone, Debug, PartialEq)]
pub struct ConjunctionPlan {
    /// Indices into the query's literal list, in dispatch order.
    pub order: Vec<usize>,
    /// Estimated cost of the planned order under the statistics the
    /// plan was built with (diagnostics only — never affects answers).
    pub estimated_cost: f64,
}

impl Planner<'_> {
    /// Choose a static dispatch order for the conjunction `literals`,
    /// with the variables in `bound` treated as already bound (query
    /// parameters are, by the time the query executes). Mirrors the
    /// runtime heuristic — fully bound literals first, then the
    /// cheapest positive literal — but decided once against the cost
    /// model instead of per backtracking step. Negative literals are
    /// dispatched as soon as their variables are covered by earlier
    /// positive literals; the answer set is order independent, so the
    /// plan only affects cost, never results.
    pub fn plan_conjunction(&self, literals: &[Literal], bound: &HashSet<Sym>) -> ConjunctionPlan {
        let mut bound = bound.clone();
        let mut remaining: Vec<usize> = (0..literals.len()).collect();
        let mut order = Vec::with_capacity(literals.len());
        let mut estimated_cost = 0.0f64;
        let mut fanout = 1.0f64;
        while !remaining.is_empty() {
            let ground_of = |lit: &Literal, bound: &HashSet<Sym>| {
                lit.atom.args.iter().all(|t| match t {
                    Term::Const(_) => true,
                    Term::Var(v) => bound.contains(v),
                })
            };
            // Fully bound literal (membership / ground negation test):
            // dispatch immediately, it can only shrink the search.
            let slot = remaining
                .iter()
                .position(|&i| ground_of(&literals[i], &bound))
                .or_else(|| {
                    // Otherwise the cheapest *positive* literal under the
                    // current binding set.
                    remaining
                        .iter()
                        .enumerate()
                        .filter(|&(_, &i)| literals[i].positive)
                        .map(|(slot, &i)| (slot, self.literal_cost(&literals[i], &bound)))
                        .min_by(|a, b| a.1.total_cmp(&b.1))
                        .map(|(slot, _)| slot)
                })
                // Only non-ground negative literals left: emit them in
                // query order; the runtime reports the safety violation
                // exactly like the unplanned path.
                .unwrap_or(0);
            let idx = remaining.remove(slot);
            let lit = &literals[idx];
            let step = self.literal_cost(lit, &bound);
            estimated_cost = (estimated_cost + fanout * step).min(COST_CAP);
            if lit.positive {
                fanout = (fanout * step).min(COST_CAP);
                bound.extend(lit.atom.vars());
            }
            order.push(idx);
        }
        ConjunctionPlan {
            order,
            estimated_cost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::satisfies_closed;
    use uniform_logic::{normalize, parse_fact, parse_formula};

    fn rq(src: &str) -> Rq {
        normalize(&parse_formula(src).unwrap()).unwrap()
    }

    fn facts(srcs: &[&str]) -> FactSet {
        FactSet::from_facts(srcs.iter().map(|f| parse_fact(f).unwrap()))
    }

    fn stats(pairs: &[(&str, usize)]) -> FixedStats {
        FixedStats(pairs.iter().map(|&(p, n)| (Sym::new(p), n)).collect())
    }

    #[test]
    fn literal_cost_prefers_bound_positions() {
        let s = stats(&[("big", 10_000)]);
        let p = Planner::new(&s);
        let free = rq("exists X, Y: big(X, Y)");
        let half = rq("exists X: big(X, c)");
        assert!(p.estimate(&free) > p.estimate(&half));
        assert_eq!(
            p.estimate(&rq("big(a, b)")),
            1.0,
            "ground literal is a lookup"
        );
    }

    #[test]
    fn disjunction_reordered_cheapest_first() {
        let s = stats(&[("huge", 1_000_000), ("tiny", 2)]);
        let p = Planner::new(&s);
        let f = rq("(exists X, Y: huge(X, Y)) | (exists X: tiny(X))");
        let (optimized, report) = p.optimize_with_report(&f);
        assert_eq!(report.reordered, 1);
        match optimized {
            Rq::Or(children) => match &children[0] {
                Rq::Exists { range, .. } => assert_eq!(range[0].pred, Sym::new("tiny")),
                other => panic!("unexpected first child {other}"),
            },
            other => panic!("not a disjunction: {other}"),
        }
    }

    #[test]
    fn already_ordered_left_alone() {
        let s = stats(&[("a", 1), ("b", 100)]);
        let p = Planner::new(&s);
        let f = rq("(exists X: a(X)) | (exists X: b(X))");
        let (_, report) = p.optimize_with_report(&f);
        assert_eq!(report.reordered, 0);
    }

    #[test]
    fn idempotent_duplicates_pruned() {
        let s = stats(&[]);
        let p = Planner::new(&s);
        let f = Rq::and(vec![rq("p(a)"), rq("p(a)"), rq("q(b)")]);
        let (optimized, report) = p.optimize_with_report(&f);
        assert_eq!(report.pruned, 1);
        assert_eq!(optimized, Rq::and(vec![rq("p(a)"), rq("q(b)")]));
    }

    #[test]
    fn complementary_literals_collapse() {
        let s = stats(&[]);
        let p = Planner::new(&s);
        assert_eq!(
            p.optimize(&Rq::and(vec![rq("p(a)"), rq("~p(a)")])),
            Rq::False
        );
        assert_eq!(p.optimize(&Rq::or(vec![rq("p(a)"), rq("~p(a)")])), Rq::True);
    }

    #[test]
    fn absorption_laws() {
        let s = stats(&[]);
        let p = Planner::new(&s);
        // p(a) ∧ (p(a) ∨ q(b)) ≡ p(a)
        let f = Rq::And(vec![rq("p(a)"), Rq::Or(vec![rq("p(a)"), rq("q(b)")])]);
        assert_eq!(p.optimize(&f), rq("p(a)"));
        // p(a) ∨ (p(a) ∧ q(b)) ≡ p(a)
        let g = Rq::Or(vec![rq("p(a)"), Rq::And(vec![rq("p(a)"), rq("q(b)")])]);
        assert_eq!(p.optimize(&g), rq("p(a)"));
    }

    #[test]
    fn quantifier_fanout_scales_cost() {
        let s = stats(&[("emp", 1000), ("dept", 10), ("member", 5000)]);
        let p = Planner::new(&s);
        let narrow = rq("forall X: dept(X) -> (exists Y: member(Y, X))");
        let wide = rq("forall X: emp(X) -> (exists Y: member(X, Y))");
        assert!(p.estimate(&wide) > p.estimate(&narrow));
    }

    /// The load-bearing property: optimization never changes the verdict.
    #[test]
    fn optimization_preserves_semantics_on_fixtures() {
        let dbs = [
            facts(&[]),
            facts(&["p(a).", "q(a)."]),
            facts(&["p(a).", "p(b).", "q(b).", "r(a, b)."]),
            facts(&["emp(a).", "emp(b).", "dept(d).", "member(a, d)."]),
        ];
        let formulas = [
            "forall X: p(X) -> q(X)",
            "(exists X: p(X)) | (exists X: q(X))",
            "(exists X: p(X) & q(X)) & (exists Y: p(Y))",
            "forall X: emp(X) -> (exists Y: dept(Y) & member(X, Y))",
            "forall X, Y: r(X, Y) -> (p(X) | q(Y))",
            "p(a) | ~p(a)",
            "(p(a) & q(a)) | (p(b) & q(b))",
        ];
        for db in &dbs {
            let planner = Planner::new(db);
            for src in formulas {
                let f = rq(src);
                let o = planner.optimize(&f);
                assert_eq!(
                    satisfies_closed(db, &f),
                    satisfies_closed(db, &o),
                    "verdict changed for `{src}`: optimized to `{o}`"
                );
            }
        }
    }

    #[test]
    fn conjunction_plans_are_safe_and_selective() {
        use uniform_logic::parse_query;
        let s = stats(&[("huge", 100_000), ("tiny", 2), ("mid", 500)]);
        let p = Planner::new(&s);
        // Cheapest positive first; the negative literal is dispatched
        // only once its variable is bound.
        let q = parse_query("huge(X, Y), tiny(X), not mid(Y)").unwrap();
        let plan = p.plan_conjunction(&q, &HashSet::new());
        assert_eq!(plan.order[0], 1, "tiny leads");
        assert!(
            plan.order.iter().position(|&i| i == 2).unwrap()
                > plan.order.iter().position(|&i| i == 0).unwrap(),
            "negation after its binder: {:?}",
            plan.order
        );
        // Parameters count as bound: with Y a parameter, the ground
        // negation can lead.
        let bound: HashSet<Sym> = [Sym::new("Y")].into();
        let q = parse_query("huge(X, Y), not mid(Y)").unwrap();
        let plan = p.plan_conjunction(&q, &bound);
        assert_eq!(plan.order, vec![1, 0]);
        // The order is always a permutation.
        let q = parse_query("mid(A, B), huge(B, C), tiny(C)").unwrap();
        let plan = p.plan_conjunction(&q, &HashSet::new());
        let mut sorted = plan.order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
        assert!(plan.estimated_cost.is_finite());
    }

    #[test]
    fn cost_cap_prevents_overflow() {
        let s = stats(&[("x", usize::MAX / 2)]);
        let p = Planner::new(&s);
        let f = rq("forall A, A2: x(A, A2) -> (forall B, B2: x(B, B2) -> (forall C, C2: x(C, C2) -> (exists D, D2: x(D, D2))))");
        assert!(p.estimate(&f).is_finite());
    }
}
