//! Program serialization: render a [`Database`] back to the surface
//! syntax it was parsed from, round-trippable through
//! [`Database::parse`]. Used by the REPL's save/load and by golden
//! tests.

use crate::database::Database;
use uniform_logic::{rq_to_formula, Fact};

/// Render the database (facts, rules, constraints) as a program.
///
/// Facts are emitted sorted for determinism; constraints are printed via
/// their general-formula rendering, which the parser accepts and the
/// normalizer maps back to the same restricted-quantification form.
pub fn to_program_source(db: &Database) -> String {
    let mut out = String::new();
    if !db.rules().is_empty() {
        out.push_str("% rules\n");
        for rule in db.rules().rules() {
            out.push_str(&format!("{rule}.\n"));
        }
    }
    if !db.constraints().is_empty() {
        out.push_str("% constraints\n");
        for c in db.constraints() {
            out.push_str(&format!(
                "constraint {}: {}.\n",
                c.name,
                rq_to_formula(&c.rq)
            ));
        }
    }
    let mut facts: Vec<Fact> = db.facts().iter().collect();
    facts.sort();
    if !facts.is_empty() {
        out.push_str("% facts\n");
        for f in facts {
            out.push_str(&format!("{f}.\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniform_logic::parse_fact;

    const PROGRAM: &str = "
        member(X, Y) :- leads(X, Y).
        idle(X) :- employee(X), not busy(X).
        constraint led: forall X: department(X) -> (exists Y: employee(Y) & leads(Y, X)).
        constraint some: exists X: employee(X).
        employee(ann).
        department(sales).
        leads(ann, sales).
        busy(ann).
    ";

    #[test]
    fn round_trip_preserves_everything() {
        let db = Database::parse(PROGRAM).unwrap();
        let printed = to_program_source(&db);
        let db2 = Database::parse(&printed)
            .unwrap_or_else(|e| panic!("printed program failed to parse: {e}\n{printed}"));

        // Facts identical.
        let mut f1: Vec<Fact> = db.facts().iter().collect();
        let mut f2: Vec<Fact> = db2.facts().iter().collect();
        f1.sort();
        f2.sort();
        assert_eq!(f1, f2);

        // Rules identical (same order, same text).
        let r1: Vec<String> = db.rules().rules().iter().map(|r| r.to_string()).collect();
        let r2: Vec<String> = db2.rules().rules().iter().map(|r| r.to_string()).collect();
        assert_eq!(r1, r2);

        // Constraints: names and normalized forms identical.
        assert_eq!(db.constraints().len(), db2.constraints().len());
        for (a, b) in db.constraints().iter().zip(db2.constraints()) {
            assert_eq!(a.name, b.name);
            assert_eq!(
                a.rq, b.rq,
                "constraint {} changed across round trip",
                a.name
            );
        }

        // And they answer queries identically.
        assert_eq!(
            db.holds(&parse_fact("member(ann, sales).").unwrap()),
            db2.holds(&parse_fact("member(ann, sales).").unwrap()),
        );
        assert_eq!(db.violated_constraints(), db2.violated_constraints());
    }

    #[test]
    fn empty_database_serializes_to_empty_program() {
        let db = Database::new();
        assert_eq!(to_program_source(&db), "");
        assert!(Database::parse("").unwrap().facts().is_empty());
    }

    #[test]
    fn deterministic_output() {
        let db = Database::parse(PROGRAM).unwrap();
        assert_eq!(to_program_source(&db), to_program_source(&db.clone()));
    }
}
