//! The fact store: per-predicate relations with per-column hash indexes.
//!
//! Tuples live in an append-only arena per relation; deletion tombstones a
//! slot (re-insertion revives it). Every column has a hash index from
//! value to slots, so a scan with any bound position is a bucket lookup
//! rather than a full pass — this is what makes simplified-instance
//! evaluation O(matching tuples) instead of O(relation), the asymmetry
//! experiment E1 measures.
//!
//! Relations accumulate tombstones and stale index entries under
//! delete-heavy churn; once more than half of a (non-trivial) arena is
//! dead, [`Relation::compact`] rebuilds it, preserving live-tuple order.
//!
//! [`FactSet`] holds each relation behind an [`Arc`] with copy-on-write
//! mutation: cloning a fact set is O(#relations) regardless of how many
//! tuples it holds, which is what makes database snapshots cheap enough
//! to hand to every reader (see `database::Snapshot`). A writer mutating
//! a shared relation clones just that relation, leaving snapshot holders
//! an immutable view of the pre-mutation state.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::Arc;
use uniform_logic::{Fact, Sym};

/// One stored relation (all facts of one predicate).
#[derive(Clone, Debug, Default)]
pub struct Relation {
    arity: usize,
    /// Slot arena. `None` = deleted.
    tuples: Vec<Option<Box<[Sym]>>>,
    /// Tuple → slot, including tombstoned slots (for revival).
    slot_of: HashMap<Box<[Sym]>, u32>,
    /// Per column: value → slots ever inserted with that value. Stale
    /// entries (tombstoned or revived-elsewhere) are filtered on read.
    col_index: Vec<HashMap<Sym, Vec<u32>>>,
    live: usize,
}

impl Relation {
    pub fn new(arity: usize) -> Relation {
        Relation {
            arity,
            tuples: Vec::new(),
            slot_of: HashMap::new(),
            col_index: (0..arity).map(|_| HashMap::new()).collect(),
            live: 0,
        }
    }

    pub fn arity(&self) -> usize {
        self.arity
    }

    pub fn len(&self) -> usize {
        self.live
    }

    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    pub fn contains(&self, args: &[Sym]) -> bool {
        self.slot_of
            .get(args)
            .is_some_and(|&slot| self.tuples[slot as usize].is_some())
    }

    /// Insert a tuple; returns `true` if it was not present.
    pub fn insert(&mut self, args: &[Sym]) -> bool {
        debug_assert_eq!(args.len(), self.arity);
        match self.slot_of.entry(args.into()) {
            Entry::Occupied(e) => {
                let slot = *e.get() as usize;
                if self.tuples[slot].is_some() {
                    false
                } else {
                    self.tuples[slot] = Some(args.into());
                    self.live += 1;
                    true
                }
            }
            Entry::Vacant(e) => {
                let slot = self.tuples.len() as u32;
                e.insert(slot);
                self.tuples.push(Some(args.into()));
                for (col, &value) in args.iter().enumerate() {
                    self.col_index[col].entry(value).or_default().push(slot);
                }
                self.live += 1;
                // Growing the arena can carry a small, tombstone-heavy
                // relation across the compaction floor (removes below
                // the floor never compact), so the dominance invariant
                // must be re-checked on insertion too — found by the
                // 1024-case property pass over `prop_store`.
                self.maybe_compact();
                true
            }
        }
    }

    /// Delete a tuple; returns `true` if it was present. Triggers a
    /// compaction when tombstones come to dominate the arena.
    pub fn remove(&mut self, args: &[Sym]) -> bool {
        if let Some(&slot) = self.slot_of.get(args) {
            let cell = &mut self.tuples[slot as usize];
            if cell.is_some() {
                *cell = None;
                self.live -= 1;
                self.maybe_compact();
                return true;
            }
        }
        false
    }

    /// Enumerate live tuples matching `pattern` (`Some(c)` pins a column).
    /// `each` returns `false` to stop early; `scan` reports whether the
    /// enumeration ran to completion.
    pub fn scan(&self, pattern: &[Option<Sym>], each: &mut dyn FnMut(&[Sym]) -> bool) -> bool {
        debug_assert_eq!(pattern.len(), self.arity);
        // Pick the most selective bound column.
        let mut best: Option<(usize, &Vec<u32>)> = None;
        for (col, p) in pattern.iter().enumerate() {
            if let Some(value) = p {
                match self.col_index[col].get(value) {
                    None => return true, // no tuple has this value: empty result
                    Some(bucket) => {
                        if best.is_none_or(|(_, b)| bucket.len() < b.len()) {
                            best = Some((col, bucket));
                        }
                    }
                }
            }
        }
        let matches = |tuple: &[Sym]| {
            pattern
                .iter()
                .zip(tuple)
                .all(|(p, &v)| p.is_none_or(|c| c == v))
        };
        match best {
            Some((_, bucket)) => {
                for &slot in bucket {
                    if let Some(tuple) = &self.tuples[slot as usize] {
                        if matches(tuple) && !each(tuple) {
                            return false;
                        }
                    }
                }
                true
            }
            None => {
                for tuple in self.tuples.iter().flatten() {
                    if matches(tuple) && !each(tuple) {
                        return false;
                    }
                }
                true
            }
        }
    }

    /// Iterate all live tuples.
    pub fn iter(&self) -> impl Iterator<Item = &[Sym]> {
        self.tuples.iter().filter_map(|t| t.as_deref())
    }

    /// Tombstoned slots currently held in the arena (each also pins stale
    /// `col_index` entries).
    pub fn stale_slots(&self) -> usize {
        self.tuples.len() - self.live
    }

    /// Rebuild the arena and indexes with only live tuples, dropping
    /// tombstones, revival bookkeeping and stale index entries. Live
    /// tuple order (and thus iteration order) is preserved.
    pub fn compact(&mut self) {
        if self.stale_slots() == 0 {
            return;
        }
        let mut rebuilt = Relation::new(self.arity);
        for tuple in self.tuples.iter().flatten() {
            rebuilt.insert(tuple);
        }
        *self = rebuilt;
    }

    /// Compact once tombstoned slots exceed half the arena. The size
    /// floor keeps small relations from re-indexing on every delete.
    fn maybe_compact(&mut self) {
        const COMPACT_FLOOR: usize = 32;
        if self.tuples.len() >= COMPACT_FLOOR && self.stale_slots() * 2 > self.tuples.len() {
            self.compact();
        }
    }
}

/// All extensional facts of a database, keyed by predicate.
///
/// Relations are kept in predicate-first-insertion order and all
/// iteration follows it: identical operation sequences produce
/// identical iteration orders. This determinism is load-bearing — the
/// satisfiability search enforces violated instances in
/// model-iteration order, and a randomized order (as with a plain
/// `HashMap` and its per-instance `RandomState`) makes search outcomes
/// within a fresh-constant budget irreproducible.
///
/// Each relation sits behind an [`Arc`] with copy-on-write mutation:
/// `clone()` is O(#relations) (it copies the predicate index and bumps
/// one refcount per relation, never tuple data), and mutating a shared
/// relation clones only that relation. Snapshot readers therefore keep
/// a stable view while writers proceed.
#[derive(Clone, Debug, Default)]
pub struct FactSet {
    index: HashMap<Sym, u32>,
    relations: Vec<(Sym, Arc<Relation>)>,
    len: usize,
}

impl FactSet {
    pub fn new() -> FactSet {
        FactSet::default()
    }

    pub fn from_facts(facts: impl IntoIterator<Item = Fact>) -> FactSet {
        let mut out = FactSet::new();
        for f in facts {
            out.insert(&f);
        }
        out
    }

    /// Total number of stored facts.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn contains(&self, fact: &Fact) -> bool {
        self.index.get(&fact.pred).is_some_and(|&slot| {
            let r = &self.relations[slot as usize].1;
            r.arity() == fact.args.len() && r.contains(&fact.args)
        })
    }

    /// Insert; returns `true` if the fact was new (Def. 1: inserting an
    /// explicit fact leaves the database unchanged). Copy-on-write: a
    /// relation shared with a snapshot is cloned before mutation.
    pub fn insert(&mut self, fact: &Fact) -> bool {
        let slot = *self.index.entry(fact.pred).or_insert_with(|| {
            let slot = self.relations.len() as u32;
            self.relations
                .push((fact.pred, Arc::new(Relation::new(fact.args.len()))));
            slot
        });
        let rel = &self.relations[slot as usize].1;
        assert_eq!(
            rel.arity(),
            fact.args.len(),
            "predicate {} used with arities {} and {}",
            fact.pred,
            rel.arity(),
            fact.args.len()
        );
        // Only pre-check membership when the relation is shared (with a
        // snapshot or clone): that is the one case where a no-op insert
        // would otherwise pay a full COW clone. Uniquely owned relations
        // go straight to the arena (the hot path of materialization).
        let arc = &mut self.relations[slot as usize].1;
        if Arc::get_mut(arc).is_none() && arc.contains(&fact.args) {
            return false;
        }
        let added = Arc::make_mut(arc).insert(&fact.args);
        if added {
            self.len += 1;
        }
        added
    }

    /// Delete; returns `true` if the fact was present (Def. 1: deleting an
    /// absent fact leaves the database unchanged). Copy-on-write, like
    /// [`FactSet::insert`].
    pub fn remove(&mut self, fact: &Fact) -> bool {
        let Some(&slot) = self.index.get(&fact.pred) else {
            return false;
        };
        // Same shared-only pre-check as `insert`.
        let arc = &mut self.relations[slot as usize].1;
        if Arc::get_mut(arc).is_none() && !arc.contains(&fact.args) {
            return false;
        }
        let removed = Arc::make_mut(arc).remove(&fact.args);
        if removed {
            self.len -= 1;
        }
        removed
    }

    pub fn relation(&self, pred: Sym) -> Option<&Relation> {
        self.index
            .get(&pred)
            .map(|&slot| &*self.relations[slot as usize].1)
    }

    /// Predicates with at least one stored (possibly tombstoned)
    /// relation, in first-insertion order.
    pub fn predicates(&self) -> impl Iterator<Item = Sym> + '_ {
        self.relations.iter().map(|&(pred, _)| pred)
    }

    /// Iterate all facts, in predicate-then-tuple insertion order.
    pub fn iter(&self) -> impl Iterator<Item = Fact> + '_ {
        self.relations.iter().flat_map(|(pred, rel)| {
            rel.iter().map(move |args| Fact {
                pred: *pred,
                args: args.to_vec(),
            })
        })
    }

    /// All constants appearing in stored facts (the active domain), in
    /// name order (stable across processes; interner-id order is not).
    pub fn active_domain(&self) -> Vec<Sym> {
        let mut out: Vec<Sym> = self
            .relations
            .iter()
            .flat_map(|(_, r)| r.iter().flatten().copied())
            .collect();
        out.sort_by_key(|s| s.as_str());
        out.dedup();
        out
    }
}

impl FromIterator<Fact> for FactSet {
    fn from_iter<I: IntoIterator<Item = Fact>>(iter: I) -> FactSet {
        FactSet::from_facts(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fact(p: &str, args: &[&str]) -> Fact {
        Fact::parse_like(p, args)
    }

    #[test]
    fn insert_remove_contains() {
        let mut fs = FactSet::new();
        assert!(fs.insert(&fact("p", &["a", "b"])));
        assert!(
            !fs.insert(&fact("p", &["a", "b"])),
            "duplicate insert is a no-op"
        );
        assert!(fs.contains(&fact("p", &["a", "b"])));
        assert_eq!(fs.len(), 1);
        assert!(fs.remove(&fact("p", &["a", "b"])));
        assert!(
            !fs.remove(&fact("p", &["a", "b"])),
            "absent delete is a no-op"
        );
        assert!(!fs.contains(&fact("p", &["a", "b"])));
        assert_eq!(fs.len(), 0);
    }

    #[test]
    fn reinsertion_after_delete_revives_slot() {
        let mut fs = FactSet::new();
        fs.insert(&fact("p", &["a"]));
        fs.remove(&fact("p", &["a"]));
        assert!(fs.insert(&fact("p", &["a"])));
        assert!(fs.contains(&fact("p", &["a"])));
        assert_eq!(fs.relation(Sym::new("p")).unwrap().len(), 1);
    }

    #[test]
    fn scan_with_bound_column_uses_index() {
        let mut fs = FactSet::new();
        for i in 0..100 {
            fs.insert(&fact("edge", &[&format!("n{i}"), &format!("n{}", i + 1)]));
        }
        let rel = fs.relation(Sym::new("edge")).unwrap();
        let mut seen = Vec::new();
        rel.scan(&[Some(Sym::new("n5")), None], &mut |t| {
            seen.push(t.to_vec());
            true
        });
        assert_eq!(seen, vec![vec![Sym::new("n5"), Sym::new("n6")]]);
    }

    #[test]
    fn scan_early_termination() {
        let mut fs = FactSet::new();
        for i in 0..10 {
            fs.insert(&fact("p", &[&format!("c{i}")]));
        }
        let rel = fs.relation(Sym::new("p")).unwrap();
        let mut count = 0;
        let completed = rel.scan(&[None], &mut |_| {
            count += 1;
            count < 3
        });
        assert!(!completed);
        assert_eq!(count, 3);
    }

    #[test]
    fn scan_skips_tombstones() {
        let mut fs = FactSet::new();
        fs.insert(&fact("p", &["a"]));
        fs.insert(&fact("p", &["b"]));
        fs.remove(&fact("p", &["a"]));
        let rel = fs.relation(Sym::new("p")).unwrap();
        let mut seen = Vec::new();
        rel.scan(&[None], &mut |t| {
            seen.push(t[0]);
            true
        });
        assert_eq!(seen, vec![Sym::new("b")]);
        // Bound scan on the tombstoned value finds nothing.
        let mut hit = false;
        rel.scan(&[Some(Sym::new("a"))], &mut |_| {
            hit = true;
            true
        });
        assert!(!hit);
    }

    #[test]
    fn unknown_value_short_circuits() {
        let mut fs = FactSet::new();
        fs.insert(&fact("p", &["a"]));
        let rel = fs.relation(Sym::new("p")).unwrap();
        let mut hit = false;
        assert!(rel.scan(&[Some(Sym::new("zzz"))], &mut |_| {
            hit = true;
            true
        }));
        assert!(!hit);
    }

    #[test]
    fn active_domain_collects_constants() {
        let mut fs = FactSet::new();
        fs.insert(&fact("p", &["a", "b"]));
        fs.insert(&fact("q", &["b", "c"]));
        let dom: Vec<&str> = fs.active_domain().iter().map(|s| s.as_str()).collect();
        assert_eq!(dom, vec!["a", "b", "c"]);
    }

    #[test]
    #[should_panic(expected = "arities")]
    fn arity_mismatch_panics() {
        let mut fs = FactSet::new();
        fs.insert(&fact("p", &["a"]));
        fs.insert(&fact("p", &["a", "b"]));
    }

    #[test]
    fn churn_triggers_compaction_and_preserves_contents() {
        // Insert/delete/revive churn: without compaction the arena and
        // col_index grow with every distinct tombstoned tuple forever.
        let mut fs = FactSet::new();
        for round in 0..10 {
            for i in 0..100 {
                fs.insert(&fact("p", &[&format!("r{round}_v{i}"), "k"]));
            }
            for i in 0..100 {
                if i % 10 != 0 {
                    fs.remove(&fact("p", &[&format!("r{round}_v{i}"), "k"]));
                }
            }
            // Revive a handful of this round's deletions.
            for i in [1usize, 11, 21] {
                fs.insert(&fact("p", &[&format!("r{round}_v{i}"), "k"]));
            }
        }
        let rel = fs.relation(Sym::new("p")).unwrap();
        // 13 survivors per round; staleness is bounded by the compaction
        // threshold instead of accumulating 870 tombstones.
        assert_eq!(rel.len(), 130);
        assert_eq!(fs.len(), 130);
        assert!(
            rel.stale_slots() * 2 <= rel.len() + rel.stale_slots() + 1,
            "stale fraction unbounded: {} stale vs {} live",
            rel.stale_slots(),
            rel.len()
        );
        // Contents and index behavior survive compaction.
        assert!(fs.contains(&fact("p", &["r9_v0", "k"])));
        assert!(fs.contains(&fact("p", &["r0_v21", "k"])));
        assert!(!fs.contains(&fact("p", &["r9_v2", "k"])));
        let mut seen = 0;
        rel.scan(&[None, Some(Sym::new("k"))], &mut |_| {
            seen += 1;
            true
        });
        assert_eq!(seen, 130, "indexed scan must see exactly the live tuples");
    }

    #[test]
    fn explicit_compact_drops_all_tombstones() {
        let mut fs = FactSet::new();
        for i in 0..10 {
            fs.insert(&fact("q", &[&format!("c{i}")]));
        }
        for i in 0..5 {
            fs.remove(&fact("q", &[&format!("c{i}")]));
        }
        let rel = fs.relation(Sym::new("q")).unwrap();
        assert_eq!(rel.stale_slots(), 5, "below the auto-compaction floor");
        let mut rel = rel.clone();
        rel.compact();
        assert_eq!(rel.stale_slots(), 0);
        assert_eq!(rel.len(), 5);
        let order: Vec<&str> = rel.iter().map(|t| t[0].as_str()).collect();
        assert_eq!(
            order,
            vec!["c5", "c6", "c7", "c8", "c9"],
            "live order preserved"
        );
    }

    #[test]
    fn clones_share_relations_until_mutation() {
        let mut a = FactSet::new();
        for i in 0..50 {
            a.insert(&fact("p", &[&format!("v{i}")]));
            a.insert(&fact("q", &[&format!("v{i}"), "x"]));
        }
        let b = a.clone();
        // Writer mutates p; the reader's view of both relations is stable.
        a.insert(&fact("p", &["new"]));
        a.remove(&fact("q", &["v0", "x"]));
        assert!(a.contains(&fact("p", &["new"])));
        assert!(!b.contains(&fact("p", &["new"])));
        assert!(!a.contains(&fact("q", &["v0", "x"])));
        assert!(b.contains(&fact("q", &["v0", "x"])));
        assert_eq!(b.len(), 100);
        assert_eq!(a.len(), 100);
    }

    #[test]
    fn iter_yields_all_live_facts() {
        let mut fs = FactSet::new();
        fs.insert(&fact("p", &["a"]));
        fs.insert(&fact("q", &["b", "c"]));
        fs.insert(&fact("p", &["d"]));
        fs.remove(&fact("p", &["a"]));
        let mut all: Vec<String> = fs.iter().map(|f| f.to_string()).collect();
        all.sort();
        assert_eq!(all, vec!["p(d)", "q(b,c)"]);
    }
}
