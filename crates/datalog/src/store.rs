//! The fact store: chunked copy-on-write relations with per-column
//! hash indexes.
//!
//! A [`Relation`] is a table of immutable-ish leaf *pages* of at most
//! [`PAGE_CAP`] slots each, every page behind its own [`Arc`]. Tuples
//! append to the tail page; deletion tombstones a slot in place
//! (re-insertion revives it, preserving its position and therefore
//! iteration order). A persistent `SlotMap` routes every tuple —
//! live or tombstoned — to its `(page, offset)` slot. Each page carries
//! its own per-column hash indexes, so a scan with any bound position
//! is a bucket lookup per page rather than a full pass — this is what
//! makes simplified-instance evaluation O(matching tuples) instead of
//! O(relation), the asymmetry experiment E1 measures.
//!
//! The chunking exists for the commit pipeline's copy-on-write
//! economics: cloning a relation bumps one refcount per page (plus the
//! router root), and mutating a clone copies only the touched pages
//! and the router path to them — O(delta), not O(relation). A snapshot
//! holder therefore keeps a bit-identical view while a writer lands a
//! commit whose storage cost is proportional to the delta the paper's
//! method already computes, never to the relation it lands in.
//! [`FactSet::cow_stats`] counts the pages, tuples and approximate
//! bytes those clones copy (`b6_hot_relation` reports them per
//! commit). The counters are scoped to a *relation family* — a
//! relation and every clone/snapshot descended from it share one
//! counter set — so concurrent tests and benches in the same process
//! never bleed into each other's before/after deltas.
//!
//! Tombstone accounting is per page, replacing the old global
//! `stale_slots`/`compact` pass: the tail page compacts once more than
//! half of a non-trivial arena is dead (the [`COMPACT_FLOOR`] keeps
//! small relations from re-indexing on every delete), while sealed
//! (non-tail) pages — which never grow again — compact as soon as
//! tombstones dominate, whatever their size. Page compaction rebuilds
//! one page and re-routes only that page's tuples; live-tuple order is
//! preserved. An explicit [`Relation::compact`] still rebuilds the
//! whole relation, dropping empty pages.
//!
//! [`FactSet`] holds each relation behind an [`Arc`] with copy-on-write
//! mutation: cloning a fact set is O(#relations) regardless of how many
//! tuples it holds, which is what makes database snapshots cheap enough
//! to hand to every reader (see `database::Snapshot`). A writer mutating
//! a shared relation clones just that relation — and with chunked
//! relations, "cloning" copies page refcounts, not tuple data.

use crate::pagemap::{SlotMap, SlotRef};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use uniform_logic::{Fact, Sym};

/// Maximum slots per leaf page.
pub const PAGE_CAP: usize = 1024;
/// Tail pages below this many slots never auto-compact.
pub const COMPACT_FLOOR: usize = 32;

/// Counters of copy-on-write page clones: how many shared pages
/// writers have had to copy before mutating, how many tuple slots
/// those pages held, and approximately how many bytes that copied.
/// Monotonic; read a delta around an operation to get its COW cost
/// (`b6_hot_relation` does this per commit).
///
/// Counters are *scoped*, not process-global: each relation family (a
/// relation plus every clone and snapshot descended from it) shares
/// one counter set, read via [`Relation::cow_stats`] and aggregated
/// per database via [`FactSet::cow_stats`]. Two databases built
/// independently therefore never see each other's clone traffic, even
/// when their tests run concurrently in one process.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CowStats {
    pub pages_cloned: u64,
    pub tuples_cloned: u64,
    pub bytes_cloned: u64,
}

impl std::ops::Add for CowStats {
    type Output = CowStats;
    fn add(self, rhs: CowStats) -> CowStats {
        CowStats {
            pages_cloned: self.pages_cloned + rhs.pages_cloned,
            tuples_cloned: self.tuples_cloned + rhs.tuples_cloned,
            bytes_cloned: self.bytes_cloned + rhs.bytes_cloned,
        }
    }
}

/// One relation family's shared COW counters. The handle is cloned
/// (not reset) along with the relation, so a writer and the snapshots
/// it unshares pages from all account into the same scope.
#[derive(Debug, Default)]
struct CowCounters {
    pages: AtomicU64,
    tuples: AtomicU64,
    bytes: AtomicU64,
}

impl CowCounters {
    /// Relaxed loads: each counter is individually monotonic, but the
    /// three fields of one snapshot may straddle a concurrent clone (a
    /// writer bumps pages/tuples/bytes as three separate relaxed adds).
    /// Exact cross-field arithmetic requires external quiescence —
    /// which is how every test and bench uses it: measure while no
    /// writer is mid-clone. The `store.cow.*` gauges exported through
    /// `uniform-obs` are sampled from this same snapshot at report
    /// time and inherit the same semantics.
    fn snapshot(&self) -> CowStats {
        CowStats {
            pages_cloned: self.pages.load(Ordering::Relaxed),
            tuples_cloned: self.tuples.load(Ordering::Relaxed),
            bytes_cloned: self.bytes.load(Ordering::Relaxed),
        }
    }
}

/// One leaf page: a slot arena of tuples with live flags, plus
/// per-column hash indexes local to the page. Tombstoned slots keep
/// their tuple value so revival preserves slot position and page
/// compaction can fix the router.
#[derive(Clone, Debug, Default)]
struct Page {
    slots: Vec<(Box<[Sym]>, bool)>,
    live: u32,
    /// Per column: value → slot offsets ever inserted with that value.
    /// Stale entries (tombstoned slots) are filtered on read.
    col_index: Vec<HashMap<Sym, Vec<u16>>>,
}

impl Page {
    fn new(arity: usize) -> Page {
        Page {
            slots: Vec::new(),
            live: 0,
            col_index: (0..arity).map(|_| HashMap::new()).collect(),
        }
    }

    /// Append a live tuple, indexing every column; returns its offset.
    fn push(&mut self, args: &[Sym]) -> u16 {
        let offset = self.slots.len() as u16;
        for (col, &value) in args.iter().enumerate() {
            self.col_index[col].entry(value).or_default().push(offset);
        }
        self.slots.push((args.into(), true));
        self.live += 1;
        offset
    }

    fn stale(&self) -> usize {
        self.slots.len() - self.live as usize
    }

    /// Approximate heap bytes a clone of this page copies.
    fn approx_bytes(&self) -> u64 {
        let per_slot = std::mem::size_of::<(Box<[Sym]>, bool)>();
        let mut bytes = self.slots.len() * per_slot;
        for (tuple, _) in &self.slots {
            // Tuple storage plus roughly one index entry per column.
            bytes += tuple.len() * (std::mem::size_of::<Sym>() + std::mem::size_of::<u16>());
        }
        bytes as u64
    }
}

/// One stored relation (all facts of one predicate), chunked into
/// `Arc`-shared pages.
#[derive(Clone, Debug, Default)]
pub struct Relation {
    arity: usize,
    /// The page table, in append order. Cloning the relation bumps one
    /// refcount per page; mutation copies only the touched page.
    pages: Vec<Arc<Page>>,
    /// Tuple → slot router, including tombstoned slots (for revival).
    /// Persistent: cloning is O(1), updates copy O(log n) trie nodes.
    slots: SlotMap,
    live: usize,
    /// COW counters shared by this relation's whole clone family.
    counters: Arc<CowCounters>,
}

impl Relation {
    pub fn new(arity: usize) -> Relation {
        Relation {
            arity,
            pages: Vec::new(),
            slots: SlotMap::default(),
            live: 0,
            counters: Arc::new(CowCounters::default()),
        }
    }

    pub fn arity(&self) -> usize {
        self.arity
    }

    /// This relation family's accumulated COW counters (see
    /// [`CowStats`] for the scoping rules).
    pub fn cow_stats(&self) -> CowStats {
        self.counters.snapshot()
    }

    pub fn len(&self) -> usize {
        self.live
    }

    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    pub fn contains(&self, args: &[Sym]) -> bool {
        self.slots
            .get(args)
            .is_some_and(|sr| self.pages[sr.page as usize].slots[sr.offset as usize].1)
    }

    /// Mutable access to page `p`, counting the copy-on-write clone if
    /// the page is shared with another relation handle.
    fn page_mut(&mut self, p: usize) -> &mut Page {
        if Arc::get_mut(&mut self.pages[p]).is_none() {
            let page = &self.pages[p];
            self.counters.pages.fetch_add(1, Ordering::Relaxed);
            self.counters
                .tuples
                .fetch_add(page.slots.len() as u64, Ordering::Relaxed);
            self.counters
                .bytes
                .fetch_add(page.approx_bytes(), Ordering::Relaxed);
        }
        Arc::make_mut(&mut self.pages[p])
    }

    /// Insert a tuple; returns `true` if it was not present.
    pub fn insert(&mut self, args: &[Sym]) -> bool {
        debug_assert_eq!(args.len(), self.arity);
        if let Some(sr) = self.slots.get(args) {
            let (p, o) = (sr.page as usize, sr.offset as usize);
            if self.pages[p].slots[o].1 {
                return false;
            }
            // Revival: flip the tombstoned slot back to live in place,
            // preserving its position (and thus iteration order). A
            // revival only improves the page's staleness, so no
            // compaction check is needed.
            let page = self.page_mut(p);
            page.slots[o].1 = true;
            page.live += 1;
            self.live += 1;
            return true;
        }
        // Fresh tuple: append to the tail page, opening a new one when
        // the tail is full (or the relation has no pages yet).
        let p = match self.pages.last() {
            Some(page) if page.slots.len() < PAGE_CAP => self.pages.len() - 1,
            _ => {
                self.pages.push(Arc::new(Page::new(self.arity)));
                self.pages.len() - 1
            }
        };
        let offset = self.page_mut(p).push(args);
        self.live += 1;
        self.slots.insert(
            args,
            SlotRef {
                page: p as u32,
                offset,
            },
        );
        // Growing the arena can carry a small, tombstone-heavy tail
        // page across the compaction floor (removes below the floor
        // never compact), so the dominance invariant must be re-checked
        // on insertion too — found by the 1024-case property pass over
        // `prop_store`.
        self.maybe_compact_page(p);
        true
    }

    /// Delete a tuple; returns `true` if it was present. Triggers a
    /// page compaction when tombstones come to dominate that page.
    pub fn remove(&mut self, args: &[Sym]) -> bool {
        let Some(sr) = self.slots.get(args) else {
            return false;
        };
        let (p, o) = (sr.page as usize, sr.offset as usize);
        if !self.pages[p].slots[o].1 {
            return false;
        }
        let page = self.page_mut(p);
        page.slots[o].1 = false;
        page.live -= 1;
        self.live -= 1;
        self.maybe_compact_page(p);
        true
    }

    /// Enumerate live tuples matching `pattern` (`Some(c)` pins a column).
    /// `each` returns `false` to stop early; `scan` reports whether the
    /// enumeration ran to completion. Enumeration order is insertion
    /// order (pages in order, offsets in order within each page).
    pub fn scan(&self, pattern: &[Option<Sym>], each: &mut dyn FnMut(&[Sym]) -> bool) -> bool {
        debug_assert_eq!(pattern.len(), self.arity);
        let has_bound = pattern.iter().any(|p| p.is_some());
        let matches = |tuple: &[Sym]| {
            pattern
                .iter()
                .zip(tuple)
                .all(|(p, &v)| p.is_none_or(|c| c == v))
        };
        'pages: for page in &self.pages {
            if !has_bound {
                for (tuple, live) in &page.slots {
                    if *live && !each(tuple) {
                        return false;
                    }
                }
                continue;
            }
            // Pick this page's most selective bound column; a bound
            // value absent from a page's index skips the page.
            let mut best: Option<&Vec<u16>> = None;
            for (col, p) in pattern.iter().enumerate() {
                if let Some(value) = p {
                    match page.col_index[col].get(value) {
                        None => continue 'pages,
                        Some(bucket) => {
                            if best.is_none_or(|b| bucket.len() < b.len()) {
                                best = Some(bucket);
                            }
                        }
                    }
                }
            }
            for &off in best.expect("pattern has a bound column") {
                let (tuple, live) = &page.slots[off as usize];
                if *live && matches(tuple) && !each(tuple) {
                    return false;
                }
            }
        }
        true
    }

    /// Iterate all live tuples, in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &[Sym]> {
        self.pages.iter().flat_map(|page| {
            page.slots
                .iter()
                .filter(|(_, live)| *live)
                .map(|(t, _)| &**t)
        })
    }

    /// Tombstoned slots currently held across all pages (each also pins
    /// stale per-page index entries).
    pub fn stale_slots(&self) -> usize {
        let stale = self.pages.iter().map(|p| p.slots.len()).sum::<usize>() - self.live;
        // The router tracks every slot, live or tombstoned.
        debug_assert_eq!(self.slots.len(), self.live + stale);
        stale
    }

    /// The chunked layout, one `(slots, live)` pair per page in page
    /// order: page count, per-page arena size and tombstone count.
    /// Feeds the determinism digest (`tests/determinism.rs`) — chunk
    /// boundaries must be identical across thread counts — and the
    /// differential store tests.
    pub fn page_shape(&self) -> Vec<(usize, usize)> {
        self.pages
            .iter()
            .map(|p| (p.slots.len(), p.live as usize))
            .collect()
    }

    /// How many leaf pages this relation physically shares (same `Arc`)
    /// with `other`, comparing page tables positionally — the aliasing
    /// tests' witness that cloning shares all pages and mutation
    /// unshares only the touched ones.
    pub fn shared_pages_with(&self, other: &Relation) -> usize {
        self.pages
            .iter()
            .zip(&other.pages)
            .filter(|(a, b)| Arc::ptr_eq(a, b))
            .count()
    }

    /// Rebuild the whole relation with only live tuples, dropping
    /// tombstones, revival bookkeeping, stale index entries and empty
    /// pages. Live tuple order (and thus iteration order) is preserved.
    pub fn compact(&mut self) {
        if self.stale_slots() == 0 {
            return;
        }
        let mut rebuilt = Relation::new(self.arity);
        // The rebuild stays in the same counter scope: compaction
        // replaces the relation's storage, not its clone family.
        rebuilt.counters = self.counters.clone();
        for page in &self.pages {
            for (tuple, live) in &page.slots {
                if *live {
                    rebuilt.insert(tuple);
                }
            }
        }
        *self = rebuilt;
    }

    /// Rebuild page `p` with only its live tuples (preserving their
    /// order) and re-route them; router entries of its tombstones are
    /// dropped. Cost is bounded by the page, never the relation.
    fn compact_page(&mut self, p: usize) {
        let old = self.pages[p].clone();
        let mut fresh = Page::new(self.arity);
        for (tuple, live) in &old.slots {
            if *live {
                let offset = fresh.push(tuple);
                self.slots.insert(
                    tuple,
                    SlotRef {
                        page: p as u32,
                        offset,
                    },
                );
            } else {
                self.slots.remove(tuple);
            }
        }
        self.pages[p] = Arc::new(fresh);
    }

    /// Per-page compaction policy. The size floor keeps a small tail
    /// page from re-indexing on every delete; sealed (non-tail) pages
    /// never grow again, so a tombstone majority there is permanent and
    /// compacts immediately, whatever the page size.
    fn maybe_compact_page(&mut self, p: usize) {
        let page = &self.pages[p];
        let slots = page.slots.len();
        let floor = if p + 1 == self.pages.len() {
            COMPACT_FLOOR
        } else {
            1
        };
        if slots >= floor && page.stale() * 2 > slots {
            self.compact_page(p);
        }
    }
}

/// All extensional facts of a database, keyed by predicate.
///
/// Relations are kept in predicate-first-insertion order and all
/// iteration follows it: identical operation sequences produce
/// identical iteration orders. This determinism is load-bearing — the
/// satisfiability search enforces violated instances in
/// model-iteration order, and a randomized order (as with a plain
/// `HashMap` and its per-instance `RandomState`) makes search outcomes
/// within a fresh-constant budget irreproducible.
///
/// Each relation sits behind an [`Arc`] with copy-on-write mutation:
/// `clone()` is O(#relations) (it copies the predicate index and bumps
/// one refcount per relation, never tuple data), and mutating a shared
/// relation clones only that relation's page table — the pages
/// themselves stay shared except the one the mutation lands in.
/// Snapshot readers therefore keep a stable view while writers proceed
/// at O(delta) copy cost.
#[derive(Clone, Debug, Default)]
pub struct FactSet {
    index: HashMap<Sym, u32>,
    relations: Vec<(Sym, Arc<Relation>)>,
    len: usize,
}

impl FactSet {
    pub fn new() -> FactSet {
        FactSet::default()
    }

    pub fn from_facts(facts: impl IntoIterator<Item = Fact>) -> FactSet {
        let mut out = FactSet::new();
        for f in facts {
            out.insert(&f);
        }
        out
    }

    /// Total number of stored facts.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn contains(&self, fact: &Fact) -> bool {
        self.index.get(&fact.pred).is_some_and(|&slot| {
            let r = &self.relations[slot as usize].1;
            r.arity() == fact.args.len() && r.contains(&fact.args)
        })
    }

    /// Insert; returns `true` if the fact was new (Def. 1: inserting an
    /// explicit fact leaves the database unchanged). Copy-on-write: a
    /// relation shared with a snapshot clones its page table before
    /// mutation (the pages stay shared).
    pub fn insert(&mut self, fact: &Fact) -> bool {
        let slot = *self.index.entry(fact.pred).or_insert_with(|| {
            let slot = self.relations.len() as u32;
            self.relations
                .push((fact.pred, Arc::new(Relation::new(fact.args.len()))));
            slot
        });
        let rel = &self.relations[slot as usize].1;
        assert_eq!(
            rel.arity(),
            fact.args.len(),
            "predicate {} used with arities {} and {}",
            fact.pred,
            rel.arity(),
            fact.args.len()
        );
        // Only pre-check membership when the relation is shared (with a
        // snapshot or clone): that is the one case where a no-op insert
        // would otherwise pay a COW clone. Uniquely owned relations
        // go straight to the arena (the hot path of materialization).
        let arc = &mut self.relations[slot as usize].1;
        if Arc::get_mut(arc).is_none() && arc.contains(&fact.args) {
            return false;
        }
        let added = Arc::make_mut(arc).insert(&fact.args);
        if added {
            self.len += 1;
        }
        added
    }

    /// Delete; returns `true` if the fact was present (Def. 1: deleting an
    /// absent fact leaves the database unchanged). Copy-on-write, like
    /// [`FactSet::insert`].
    pub fn remove(&mut self, fact: &Fact) -> bool {
        let Some(&slot) = self.index.get(&fact.pred) else {
            return false;
        };
        // Same shared-only pre-check as `insert`.
        let arc = &mut self.relations[slot as usize].1;
        if Arc::get_mut(arc).is_none() && !arc.contains(&fact.args) {
            return false;
        }
        let removed = Arc::make_mut(arc).remove(&fact.args);
        if removed {
            self.len -= 1;
        }
        removed
    }

    pub fn relation(&self, pred: Sym) -> Option<&Relation> {
        self.index
            .get(&pred)
            .map(|&slot| &*self.relations[slot as usize].1)
    }

    /// Aggregate COW counters over every relation family reachable
    /// from this fact set (see [`CowStats`]). Snapshots and clones of
    /// the same database read the same counters; unrelated databases
    /// read disjoint ones.
    pub fn cow_stats(&self) -> CowStats {
        self.relations
            .iter()
            .fold(CowStats::default(), |acc, (_, r)| acc + r.cow_stats())
    }

    /// Predicates with at least one stored (possibly tombstoned)
    /// relation, in first-insertion order.
    pub fn predicates(&self) -> impl Iterator<Item = Sym> + '_ {
        self.relations.iter().map(|&(pred, _)| pred)
    }

    /// Iterate all facts, in predicate-then-tuple insertion order.
    pub fn iter(&self) -> impl Iterator<Item = Fact> + '_ {
        self.relations.iter().flat_map(|(pred, rel)| {
            rel.iter().map(move |args| Fact {
                pred: *pred,
                args: args.to_vec(),
            })
        })
    }

    /// All constants appearing in stored facts (the active domain), in
    /// name order (stable across processes; interner-id order is not).
    pub fn active_domain(&self) -> Vec<Sym> {
        let mut out: Vec<Sym> = self
            .relations
            .iter()
            .flat_map(|(_, r)| r.iter().flatten().copied())
            .collect();
        out.sort_by_key(|s| s.as_str());
        out.dedup();
        out
    }
}

impl FromIterator<Fact> for FactSet {
    fn from_iter<I: IntoIterator<Item = Fact>>(iter: I) -> FactSet {
        FactSet::from_facts(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fact(p: &str, args: &[&str]) -> Fact {
        Fact::parse_like(p, args)
    }

    #[test]
    fn insert_remove_contains() {
        let mut fs = FactSet::new();
        assert!(fs.insert(&fact("p", &["a", "b"])));
        assert!(
            !fs.insert(&fact("p", &["a", "b"])),
            "duplicate insert is a no-op"
        );
        assert!(fs.contains(&fact("p", &["a", "b"])));
        assert_eq!(fs.len(), 1);
        assert!(fs.remove(&fact("p", &["a", "b"])));
        assert!(
            !fs.remove(&fact("p", &["a", "b"])),
            "absent delete is a no-op"
        );
        assert!(!fs.contains(&fact("p", &["a", "b"])));
        assert_eq!(fs.len(), 0);
    }

    #[test]
    fn reinsertion_after_delete_revives_slot() {
        let mut fs = FactSet::new();
        fs.insert(&fact("p", &["a"]));
        fs.remove(&fact("p", &["a"]));
        assert!(fs.insert(&fact("p", &["a"])));
        assert!(fs.contains(&fact("p", &["a"])));
        assert_eq!(fs.relation(Sym::new("p")).unwrap().len(), 1);
    }

    #[test]
    fn scan_with_bound_column_uses_index() {
        let mut fs = FactSet::new();
        for i in 0..100 {
            fs.insert(&fact("edge", &[&format!("n{i}"), &format!("n{}", i + 1)]));
        }
        let rel = fs.relation(Sym::new("edge")).unwrap();
        let mut seen = Vec::new();
        rel.scan(&[Some(Sym::new("n5")), None], &mut |t| {
            seen.push(t.to_vec());
            true
        });
        assert_eq!(seen, vec![vec![Sym::new("n5"), Sym::new("n6")]]);
    }

    #[test]
    fn scan_early_termination() {
        let mut fs = FactSet::new();
        for i in 0..10 {
            fs.insert(&fact("p", &[&format!("c{i}")]));
        }
        let rel = fs.relation(Sym::new("p")).unwrap();
        let mut count = 0;
        let completed = rel.scan(&[None], &mut |_| {
            count += 1;
            count < 3
        });
        assert!(!completed);
        assert_eq!(count, 3);
    }

    #[test]
    fn scan_skips_tombstones() {
        let mut fs = FactSet::new();
        fs.insert(&fact("p", &["a"]));
        fs.insert(&fact("p", &["b"]));
        fs.remove(&fact("p", &["a"]));
        let rel = fs.relation(Sym::new("p")).unwrap();
        let mut seen = Vec::new();
        rel.scan(&[None], &mut |t| {
            seen.push(t[0]);
            true
        });
        assert_eq!(seen, vec![Sym::new("b")]);
        // Bound scan on the tombstoned value finds nothing.
        let mut hit = false;
        rel.scan(&[Some(Sym::new("a"))], &mut |_| {
            hit = true;
            true
        });
        assert!(!hit);
    }

    #[test]
    fn unknown_value_short_circuits() {
        let mut fs = FactSet::new();
        fs.insert(&fact("p", &["a"]));
        let rel = fs.relation(Sym::new("p")).unwrap();
        let mut hit = false;
        assert!(rel.scan(&[Some(Sym::new("zzz"))], &mut |_| {
            hit = true;
            true
        }));
        assert!(!hit);
    }

    #[test]
    fn active_domain_collects_constants() {
        let mut fs = FactSet::new();
        fs.insert(&fact("p", &["a", "b"]));
        fs.insert(&fact("q", &["b", "c"]));
        let dom: Vec<&str> = fs.active_domain().iter().map(|s| s.as_str()).collect();
        assert_eq!(dom, vec!["a", "b", "c"]);
    }

    #[test]
    #[should_panic(expected = "arities")]
    fn arity_mismatch_panics() {
        let mut fs = FactSet::new();
        fs.insert(&fact("p", &["a"]));
        fs.insert(&fact("p", &["a", "b"]));
    }

    #[test]
    fn churn_triggers_compaction_and_preserves_contents() {
        // Insert/delete/revive churn: without compaction the arena and
        // col_index grow with every distinct tombstoned tuple forever.
        let mut fs = FactSet::new();
        for round in 0..10 {
            for i in 0..100 {
                fs.insert(&fact("p", &[&format!("r{round}_v{i}"), "k"]));
            }
            for i in 0..100 {
                if i % 10 != 0 {
                    fs.remove(&fact("p", &[&format!("r{round}_v{i}"), "k"]));
                }
            }
            // Revive a handful of this round's deletions.
            for i in [1usize, 11, 21] {
                fs.insert(&fact("p", &[&format!("r{round}_v{i}"), "k"]));
            }
        }
        let rel = fs.relation(Sym::new("p")).unwrap();
        // 13 survivors per round; staleness is bounded by the compaction
        // threshold instead of accumulating 870 tombstones.
        assert_eq!(rel.len(), 130);
        assert_eq!(fs.len(), 130);
        assert!(
            rel.stale_slots() * 2 <= rel.len() + rel.stale_slots() + 1,
            "stale fraction unbounded: {} stale vs {} live",
            rel.stale_slots(),
            rel.len()
        );
        // Contents and index behavior survive compaction.
        assert!(fs.contains(&fact("p", &["r9_v0", "k"])));
        assert!(fs.contains(&fact("p", &["r0_v21", "k"])));
        assert!(!fs.contains(&fact("p", &["r9_v2", "k"])));
        let mut seen = 0;
        rel.scan(&[None, Some(Sym::new("k"))], &mut |_| {
            seen += 1;
            true
        });
        assert_eq!(seen, 130, "indexed scan must see exactly the live tuples");
    }

    #[test]
    fn explicit_compact_drops_all_tombstones() {
        let mut fs = FactSet::new();
        for i in 0..10 {
            fs.insert(&fact("q", &[&format!("c{i}")]));
        }
        for i in 0..5 {
            fs.remove(&fact("q", &[&format!("c{i}")]));
        }
        let rel = fs.relation(Sym::new("q")).unwrap();
        assert_eq!(rel.stale_slots(), 5, "below the auto-compaction floor");
        let mut rel = rel.clone();
        rel.compact();
        assert_eq!(rel.stale_slots(), 0);
        assert_eq!(rel.len(), 5);
        let order: Vec<&str> = rel.iter().map(|t| t[0].as_str()).collect();
        assert_eq!(
            order,
            vec!["c5", "c6", "c7", "c8", "c9"],
            "live order preserved"
        );
    }

    #[test]
    fn clones_share_relations_until_mutation() {
        let mut a = FactSet::new();
        for i in 0..50 {
            a.insert(&fact("p", &[&format!("v{i}")]));
            a.insert(&fact("q", &[&format!("v{i}"), "x"]));
        }
        let b = a.clone();
        // Writer mutates p; the reader's view of both relations is stable.
        a.insert(&fact("p", &["new"]));
        a.remove(&fact("q", &["v0", "x"]));
        assert!(a.contains(&fact("p", &["new"])));
        assert!(!b.contains(&fact("p", &["new"])));
        assert!(!a.contains(&fact("q", &["v0", "x"])));
        assert!(b.contains(&fact("q", &["v0", "x"])));
        assert_eq!(b.len(), 100);
        assert_eq!(a.len(), 100);
    }

    #[test]
    fn iter_yields_all_live_facts() {
        let mut fs = FactSet::new();
        fs.insert(&fact("p", &["a"]));
        fs.insert(&fact("q", &["b", "c"]));
        fs.insert(&fact("p", &["d"]));
        fs.remove(&fact("p", &["a"]));
        let mut all: Vec<String> = fs.iter().map(|f| f.to_string()).collect();
        all.sort();
        assert_eq!(all, vec!["p(d)", "q(b,c)"]);
    }

    #[test]
    fn large_relations_spill_across_pages_in_order() {
        let mut fs = FactSet::new();
        let n = PAGE_CAP * 2 + 500;
        for i in 0..n {
            fs.insert(&fact("big", &[&format!("v{i:05}")]));
        }
        let rel = fs.relation(Sym::new("big")).unwrap();
        assert_eq!(rel.len(), n);
        assert_eq!(
            rel.page_shape(),
            vec![(PAGE_CAP, PAGE_CAP), (PAGE_CAP, PAGE_CAP), (500, 500)]
        );
        // Iteration order is insertion order across page boundaries.
        let order: Vec<String> = rel.iter().map(|t| t[0].as_str().to_string()).collect();
        let expect: Vec<String> = (0..n).map(|i| format!("v{i:05}")).collect();
        assert_eq!(order, expect);
        // Bound scans find tuples in any page.
        for probe in [0, PAGE_CAP - 1, PAGE_CAP, n - 1] {
            let mut hits = 0;
            rel.scan(&[Some(Sym::new(&format!("v{probe:05}")))], &mut |_| {
                hits += 1;
                true
            });
            assert_eq!(hits, 1, "probe {probe}");
        }
    }

    #[test]
    fn sealed_pages_compact_as_soon_as_tombstones_dominate() {
        let mut fs = FactSet::new();
        let n = PAGE_CAP + 100; // two pages: sealed full page + tail
        for i in 0..n {
            fs.insert(&fact("p", &[&format!("v{i}")]));
        }
        // Tombstone most of the sealed page; it must compact on its own
        // (the tail page is untouched and keeps its slots).
        for i in 0..(PAGE_CAP / 2 + 1) {
            fs.remove(&fact("p", &[&format!("v{i}")]));
        }
        let rel = fs.relation(Sym::new("p")).unwrap();
        let shape = rel.page_shape();
        assert_eq!(shape.len(), 2);
        assert_eq!(
            shape[0],
            (PAGE_CAP - (PAGE_CAP / 2 + 1), PAGE_CAP - (PAGE_CAP / 2 + 1)),
            "sealed page rebuilt with live tuples only"
        );
        assert_eq!(shape[1], (100, 100));
        // Contents and lookups survive the sealed-page rebuild.
        assert!(!fs.contains(&fact("p", &["v0"])));
        assert!(fs.contains(&fact("p", &[&format!("v{}", PAGE_CAP / 2 + 1)])));
        assert!(fs.contains(&fact("p", &[&format!("v{}", n - 1)])));
        // And a revival of a compacted-away tuple re-appends cleanly.
        assert!(fs.insert(&fact("p", &["v0"])));
        assert!(fs.contains(&fact("p", &["v0"])));
    }

    #[test]
    fn cloned_factsets_share_pages_and_unshare_only_touched_ones() {
        let mut a = FactSet::new();
        let n = PAGE_CAP * 2 + 500; // three pages, tail half-full
        for i in 0..n {
            a.insert(&fact("hot", &[&format!("k{i}"), "v"]));
        }
        let b = a.clone();
        {
            let ra = a.relation(Sym::new("hot")).unwrap();
            let rb = b.relation(Sym::new("hot")).unwrap();
            assert_eq!(ra.shared_pages_with(rb), 3, "clone shares every page");
        }
        let before = a.cow_stats();
        // One insert lands in the tail page only.
        a.insert(&fact("hot", &["fresh", "v"]));
        let after = a.cow_stats();
        let ra = a.relation(Sym::new("hot")).unwrap();
        let rb = b.relation(Sym::new("hot")).unwrap();
        assert_eq!(
            ra.shared_pages_with(rb),
            2,
            "only the written page unshares"
        );
        assert_eq!(
            after.pages_cloned - before.pages_cloned,
            1,
            "exactly one COW page clone"
        );
        assert!(after.bytes_cloned > before.bytes_cloned);
        // The reader's view is bit-identical to pre-mutation.
        assert_eq!(rb.len(), n);
        assert!(!rb.contains(&fact("hot", &["fresh", "v"]).args));
        // Counter scoping: the snapshot reads the same family counters
        // as the writer, while an unrelated fact set sees none of this
        // traffic (no process-global bleed).
        assert_eq!(b.cow_stats(), after);
        let mut cold = FactSet::new();
        cold.insert(&fact("cold", &["x"]));
        cold.insert(&fact("cold", &["y"]));
        assert_eq!(cold.cow_stats(), CowStats::default());
    }
}
