//! Predicate dependency graph, SCCs and stratification.
//!
//! §2 fixes the semantics of a deductive database to the canonical
//! interpretation of a *stratified* rule set in the sense of Apt, Blair &
//! Walker 1987. This module computes the predicate dependency graph,
//! checks that no cycle passes through negation, and assigns strata:
//! `stratum(p)` is an evaluation order such that every negative body
//! predicate of a rule for `p` lies in a strictly lower stratum.

use std::collections::HashMap;
use std::fmt;
use uniform_logic::{Rule, Sym};

/// An edge of the dependency graph: head predicate depends on body
/// predicate, positively or negatively.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Dep {
    pub on: Sym,
    pub negative: bool,
}

/// The rule set is not stratified: a recursive cycle passes through
/// negation.
#[derive(Clone, Debug)]
pub struct StratificationError {
    pub head: Sym,
    pub through: Sym,
}

impl fmt::Display for StratificationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rules are not stratified: predicate {} depends negatively on {} within a recursive cycle",
            self.head, self.through
        )
    }
}

impl std::error::Error for StratificationError {}

/// Dependency analysis result.
#[derive(Clone, Debug, Default)]
pub struct DepGraph {
    /// head predicate → body dependencies (deduplicated).
    edges: HashMap<Sym, Vec<Dep>>,
    /// predicate → stratum (only predicates appearing in rules; EDB-only
    /// predicates implicitly live in stratum 0).
    strata: HashMap<Sym, usize>,
    /// Number of strata.
    height: usize,
    /// Predicates defined by at least one rule (IDB predicates).
    idb: Vec<Sym>,
    /// Predicates involved in a recursive cycle (their SCC has more than
    /// one member or a self-loop).
    recursive: HashMap<Sym, bool>,
}

impl DepGraph {
    /// Build and stratify. Fails iff the rules are not stratifiable.
    pub fn build(rules: &[Rule]) -> Result<DepGraph, StratificationError> {
        let mut edges: HashMap<Sym, Vec<Dep>> = HashMap::new();
        let mut nodes: Vec<Sym> = Vec::new();
        let note = |p: Sym, nodes: &mut Vec<Sym>| {
            if !nodes.contains(&p) {
                nodes.push(p);
            }
        };
        for rule in rules {
            note(rule.head.pred, &mut nodes);
            let deps = edges.entry(rule.head.pred).or_default();
            for lit in &rule.body {
                note(lit.atom.pred, &mut nodes);
                let dep = Dep {
                    on: lit.atom.pred,
                    negative: !lit.positive,
                };
                if !deps.contains(&dep) {
                    deps.push(dep);
                }
            }
        }

        let sccs = tarjan(&nodes, &edges);
        let mut scc_of: HashMap<Sym, usize> = HashMap::new();
        for (i, scc) in sccs.iter().enumerate() {
            for &p in scc {
                scc_of.insert(p, i);
            }
        }

        // Reject negative edges within an SCC. `nodes` is in rule order,
        // so the reported offender is the first one written, not whatever
        // the edge map happens to yield first.
        for &head in &nodes {
            for dep in edges.get(&head).map(Vec::as_slice).unwrap_or_default() {
                if dep.negative && scc_of[&head] == scc_of[&dep.on] {
                    return Err(StratificationError {
                        head,
                        through: dep.on,
                    });
                }
            }
        }

        // Longest-path strata over the SCC condensation: positive edges
        // propagate the stratum, negative edges increment it. Tarjan
        // emits SCCs in reverse topological order, so processing them in
        // order guarantees dependencies are numbered first.
        let mut scc_stratum: Vec<usize> = vec![0; sccs.len()];
        for (i, scc) in sccs.iter().enumerate() {
            let mut s = 0;
            for &p in scc {
                if let Some(deps) = edges.get(&p) {
                    for dep in deps {
                        let j = scc_of[&dep.on];
                        if j != i {
                            let need = scc_stratum[j] + usize::from(dep.negative);
                            s = s.max(need);
                        }
                    }
                }
            }
            scc_stratum[i] = s;
        }

        let mut strata = HashMap::new();
        let mut height = 0;
        for (&p, &i) in &scc_of {
            strata.insert(p, scc_stratum[i]);
            height = height.max(scc_stratum[i] + 1);
        }

        let mut recursive = HashMap::new();
        for (i, scc) in sccs.iter().enumerate() {
            for &p in scc {
                let self_loop = edges
                    .get(&p)
                    .is_some_and(|deps| deps.iter().any(|d| d.on == p));
                recursive.insert(p, scc.len() > 1 || self_loop);
                let _ = i;
            }
        }

        let idb: Vec<Sym> = rules.iter().map(|r| r.head.pred).collect();
        let mut idb_dedup = idb.clone();
        idb_dedup.sort();
        idb_dedup.dedup();

        Ok(DepGraph {
            edges,
            strata,
            height,
            idb: idb_dedup,
            recursive,
        })
    }

    /// Stratum of a predicate (0 for pure-EDB predicates).
    pub fn stratum(&self, pred: Sym) -> usize {
        self.strata.get(&pred).copied().unwrap_or(0)
    }

    /// Number of strata (at least 1 when any rules exist).
    pub fn height(&self) -> usize {
        self.height.max(1)
    }

    /// Predicates defined by rules.
    pub fn idb_predicates(&self) -> &[Sym] {
        &self.idb
    }

    /// Is the predicate defined by rules?
    pub fn is_idb(&self, pred: Sym) -> bool {
        self.idb.binary_search(&pred).is_ok()
    }

    /// Is the predicate involved in recursion?
    pub fn is_recursive(&self, pred: Sym) -> bool {
        self.recursive.get(&pred).copied().unwrap_or(false)
    }

    /// Does any predicate reachable from `pred` (including itself)
    /// participate in a recursive cycle?
    pub fn reaches_recursion(&self, pred: Sym) -> bool {
        let mut stack = vec![pred];
        let mut seen = vec![pred];
        while let Some(p) = stack.pop() {
            if self.is_recursive(p) {
                return true;
            }
            if let Some(deps) = self.edges.get(&p) {
                for d in deps {
                    if !seen.contains(&d.on) {
                        seen.push(d.on);
                        stack.push(d.on);
                    }
                }
            }
        }
        false
    }

    /// All predicates reachable from `pred` through rule bodies
    /// (including `pred`).
    pub fn reachable(&self, pred: Sym) -> Vec<Sym> {
        let mut seen = vec![pred];
        let mut stack = vec![pred];
        while let Some(p) = stack.pop() {
            if let Some(deps) = self.edges.get(&p) {
                for d in deps {
                    if !seen.contains(&d.on) {
                        seen.push(d.on);
                        stack.push(d.on);
                    }
                }
            }
        }
        seen
    }
}

/// Tarjan's SCC algorithm (iterative). Returns SCCs in reverse
/// topological order (dependencies before dependents).
fn tarjan(nodes: &[Sym], edges: &HashMap<Sym, Vec<Dep>>) -> Vec<Vec<Sym>> {
    #[derive(Default, Clone)]
    struct NodeState {
        index: Option<u32>,
        lowlink: u32,
        on_stack: bool,
    }

    let mut state: HashMap<Sym, NodeState> =
        nodes.iter().map(|&n| (n, NodeState::default())).collect();
    let mut index = 0u32;
    let mut stack: Vec<Sym> = Vec::new();
    let mut out: Vec<Vec<Sym>> = Vec::new();

    // Explicit DFS stack: (node, next-edge-cursor).
    for &root in nodes {
        if state[&root].index.is_some() {
            continue;
        }
        let mut dfs: Vec<(Sym, usize)> = vec![(root, 0)];
        while let Some(&(v, cursor)) = dfs.last() {
            if cursor == 0 {
                if state[&v].index.is_some() {
                    // Duplicate frame (node was pushed by two parents and
                    // already processed): discard.
                    dfs.pop();
                    continue;
                }
                let st = state.get_mut(&v).unwrap();
                st.index = Some(index);
                st.lowlink = index;
                st.on_stack = true;
                index += 1;
                stack.push(v);
            }
            let deps = edges.get(&v).map(|d| d.as_slice()).unwrap_or(&[]);
            if let Some(dep) = deps.get(cursor) {
                dfs.last_mut().unwrap().1 += 1;
                let w = dep.on;
                match state[&w].index {
                    None => dfs.push((w, 0)),
                    Some(widx) => {
                        if state[&w].on_stack {
                            let low = state[&v].lowlink.min(widx);
                            state.get_mut(&v).unwrap().lowlink = low;
                        }
                    }
                }
            } else {
                // v finished.
                dfs.pop();
                if let Some(&(parent, _)) = dfs.last() {
                    let low = state[&parent].lowlink.min(state[&v].lowlink);
                    state.get_mut(&parent).unwrap().lowlink = low;
                }
                if state[&v].lowlink == state[&v].index.unwrap() {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().unwrap();
                        state.get_mut(&w).unwrap().on_stack = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    out.push(scc);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniform_logic::parse_rule;

    fn rules(srcs: &[&str]) -> Vec<Rule> {
        srcs.iter().map(|s| parse_rule(s).unwrap()).collect()
    }

    #[test]
    fn flat_rules_single_stratum() {
        let g = DepGraph::build(&rules(&["member(X,Y) :- leads(X,Y)."])).unwrap();
        assert_eq!(g.stratum(Sym::new("member")), 0);
        assert_eq!(g.stratum(Sym::new("leads")), 0);
        assert_eq!(g.height(), 1);
        assert!(g.is_idb(Sym::new("member")));
        assert!(!g.is_idb(Sym::new("leads")));
    }

    #[test]
    fn negation_pushes_to_higher_stratum() {
        let g = DepGraph::build(&rules(&[
            "reach(X,Y) :- edge(X,Y).",
            "reach(X,Z) :- reach(X,Y), edge(Y,Z).",
            "unreach(X,Y) :- node(X), node(Y), not reach(X,Y).",
        ]))
        .unwrap();
        assert_eq!(g.stratum(Sym::new("reach")), 0);
        assert_eq!(g.stratum(Sym::new("unreach")), 1);
        assert_eq!(g.height(), 2);
        assert!(g.is_recursive(Sym::new("reach")));
        assert!(!g.is_recursive(Sym::new("unreach")));
        assert!(g.reaches_recursion(Sym::new("unreach")));
    }

    #[test]
    fn negative_cycle_rejected() {
        let err = DepGraph::build(&rules(&[
            "p(X) :- base(X), not q(X).",
            "q(X) :- base(X), not p(X).",
        ]))
        .unwrap_err();
        let pair = (err.head.as_str(), err.through.as_str());
        assert!(pair == ("p", "q") || pair == ("q", "p"));
    }

    #[test]
    fn positive_cycle_allowed() {
        let g = DepGraph::build(&rules(&[
            "tc(X,Y) :- edge(X,Y).",
            "tc(X,Z) :- tc(X,Y), tc(Y,Z).",
        ]))
        .unwrap();
        assert!(g.is_recursive(Sym::new("tc")));
        assert_eq!(g.height(), 1);
    }

    #[test]
    fn mutual_recursion_same_stratum() {
        let g = DepGraph::build(&rules(&[
            "even(X) :- zero(X).",
            "even(X) :- succ(Y,X), odd(Y).",
            "odd(X) :- succ(Y,X), even(Y).",
        ]))
        .unwrap();
        assert_eq!(g.stratum(Sym::new("even")), g.stratum(Sym::new("odd")));
        assert!(g.is_recursive(Sym::new("even")));
        assert!(g.is_recursive(Sym::new("odd")));
    }

    #[test]
    fn stacked_negation_increments_strata() {
        let g = DepGraph::build(&rules(&[
            "a(X) :- base(X).",
            "b(X) :- base(X), not a(X).",
            "c(X) :- base(X), not b(X).",
        ]))
        .unwrap();
        assert_eq!(g.stratum(Sym::new("a")), 0);
        assert_eq!(g.stratum(Sym::new("b")), 1);
        assert_eq!(g.stratum(Sym::new("c")), 2);
        assert_eq!(g.height(), 3);
    }

    #[test]
    fn reachable_closure() {
        let g =
            DepGraph::build(&rules(&["a(X) :- b(X).", "b(X) :- c(X).", "d(X) :- e(X)."])).unwrap();
        let mut r: Vec<&str> = g
            .reachable(Sym::new("a"))
            .iter()
            .map(|s| s.as_str())
            .collect();
        r.sort();
        assert_eq!(r, vec!["a", "b", "c"]);
    }

    #[test]
    fn empty_rule_set() {
        let g = DepGraph::build(&[]).unwrap();
        assert_eq!(g.height(), 1);
        assert!(!g.is_idb(Sym::new("anything")));
    }
}
