//! Updates: ground literals (Def. 1) and transactions.
//!
//! "Let single-fact updates be represented by literals, a positive literal
//! indicating insertion, a negative literal indicating deletion." The
//! update semantics of Def. 1 make re-insertion and absent-deletion
//! no-ops.

use crate::store::FactSet;
use std::fmt;
use uniform_logic::{Fact, Literal};

/// A ground single-fact update.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Update {
    pub insert: bool,
    pub fact: Fact,
}

impl Update {
    pub fn insert(fact: Fact) -> Update {
        Update { insert: true, fact }
    }

    pub fn delete(fact: Fact) -> Update {
        Update {
            insert: false,
            fact,
        }
    }

    /// From a ground literal; `None` if the literal has variables.
    pub fn from_literal(lit: &Literal) -> Option<Update> {
        Some(Update {
            insert: lit.positive,
            fact: lit.atom.to_fact()?,
        })
    }

    /// The update as a literal (the representation Definitions 2–6 use).
    pub fn to_literal(&self) -> Literal {
        Literal::new(self.insert, self.fact.to_atom())
    }

    /// The complement literal (what constraint literals must unify with
    /// for the constraint to be relevant, Def. 2).
    pub fn complement(&self) -> Literal {
        Literal::new(!self.insert, self.fact.to_atom())
    }

    /// The inserted fact, if this is an insertion.
    pub fn added(&self) -> Option<&Fact> {
        self.insert.then_some(&self.fact)
    }

    /// The deleted fact, if this is a deletion.
    pub fn removed(&self) -> Option<&Fact> {
        (!self.insert).then_some(&self.fact)
    }

    /// Apply to a fact base per Def. 1. Returns `true` if the database
    /// changed.
    pub fn apply(&self, edb: &mut FactSet) -> bool {
        if self.insert {
            edb.insert(&self.fact)
        } else {
            edb.remove(&self.fact)
        }
    }

    /// Undo a previously applied update (only meaningful if `apply`
    /// returned `true`).
    pub fn undo(&self, edb: &mut FactSet) {
        if self.insert {
            edb.remove(&self.fact);
        } else {
            edb.insert(&self.fact);
        }
    }

    /// Is this update effective on `edb` (would `apply` change it)?
    pub fn is_effective(&self, edb: &FactSet) -> bool {
        self.insert != edb.contains(&self.fact)
    }
}

impl fmt::Debug for Update {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.insert {
            write!(f, "+{}", self.fact)
        } else {
            write!(f, "-{}", self.fact)
        }
    }
}

impl fmt::Display for Update {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A transaction: a sequence of single-fact updates applied atomically
/// (§3.2 mentions the extension to transactions, worked out in BRY 87).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Transaction {
    pub updates: Vec<Update>,
}

impl Transaction {
    pub fn new(updates: Vec<Update>) -> Transaction {
        Transaction { updates }
    }

    pub fn single(update: Update) -> Transaction {
        Transaction {
            updates: vec![update],
        }
    }

    pub fn len(&self) -> usize {
        self.updates.len()
    }

    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }

    /// Apply all updates in order; returns the ones that were effective
    /// (needed for precise undo).
    pub fn apply(&self, edb: &mut FactSet) -> Vec<Update> {
        let mut effective = Vec::new();
        for u in &self.updates {
            if u.apply(edb) {
                effective.push(u.clone());
            }
        }
        effective
    }

    /// Undo a set of effective updates (in reverse order).
    pub fn undo(effective: &[Update], edb: &mut FactSet) {
        for u in effective.iter().rev() {
            u.undo(edb);
        }
    }

    /// The net effect of the transaction on `edb` under Def. 1 semantics:
    /// the facts that end up inserted and deleted once intermediate
    /// insert-then-delete (and vice versa) pairs cancel out. Integrity
    /// checking only ever needs the net effect.
    pub fn net_effect(&self, edb: &FactSet) -> (Vec<Fact>, Vec<Fact>) {
        use std::collections::{HashMap, HashSet};
        let mut desired: HashMap<&Fact, bool> = HashMap::new();
        for u in &self.updates {
            desired.insert(&u.fact, u.insert);
        }
        // Walk the transaction, not the map: HashMap iteration order is
        // per-instance random, and downstream delta enumeration (and so
        // violation/culprit order) must be identical run to run.
        let mut seen: HashSet<&Fact> = HashSet::new();
        let mut added = Vec::new();
        let mut removed = Vec::new();
        for u in &self.updates {
            if !seen.insert(&u.fact) {
                continue;
            }
            let want = desired[&u.fact];
            let have = edb.contains(&u.fact);
            match (have, want) {
                (false, true) => added.push(u.fact.clone()),
                (true, false) => removed.push(u.fact.clone()),
                _ => {}
            }
        }
        (added, removed)
    }
}

impl FromIterator<Update> for Transaction {
    fn from_iter<I: IntoIterator<Item = Update>>(iter: I) -> Transaction {
        Transaction {
            updates: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniform_logic::parse_literal;

    fn fact(p: &str, args: &[&str]) -> Fact {
        Fact::parse_like(p, args)
    }

    #[test]
    fn literal_round_trip() {
        let u = Update::from_literal(&parse_literal("not q(c1,c2)").unwrap()).unwrap();
        assert!(!u.insert);
        assert_eq!(u.to_literal().to_string(), "not q(c1,c2)");
        assert_eq!(u.complement().to_string(), "q(c1,c2)");
        assert!(Update::from_literal(&parse_literal("q(X)").unwrap()).is_none());
    }

    #[test]
    fn apply_and_undo() {
        let mut edb = FactSet::new();
        let ins = Update::insert(fact("p", &["a"]));
        assert!(ins.apply(&mut edb));
        assert!(edb.contains(&fact("p", &["a"])));
        assert!(!ins.apply(&mut edb), "re-insert is a no-op (Def. 1)");
        ins.undo(&mut edb);
        assert!(!edb.contains(&fact("p", &["a"])));

        let del = Update::delete(fact("p", &["a"]));
        assert!(!del.apply(&mut edb), "absent delete is a no-op (Def. 1)");
        edb.insert(&fact("p", &["a"]));
        assert!(del.apply(&mut edb));
        del.undo(&mut edb);
        assert!(edb.contains(&fact("p", &["a"])));
    }

    #[test]
    fn effectiveness() {
        let mut edb = FactSet::new();
        edb.insert(&fact("p", &["a"]));
        assert!(!Update::insert(fact("p", &["a"])).is_effective(&edb));
        assert!(Update::insert(fact("p", &["b"])).is_effective(&edb));
        assert!(Update::delete(fact("p", &["a"])).is_effective(&edb));
        assert!(!Update::delete(fact("p", &["b"])).is_effective(&edb));
    }

    #[test]
    fn net_effect_cancels_and_filters_noops() {
        let mut edb = FactSet::new();
        edb.insert(&fact("p", &["a"]));
        let tx = Transaction::new(vec![
            Update::insert(fact("q", &["b"])), // real insertion
            Update::insert(fact("p", &["a"])), // no-op: already present
            Update::insert(fact("r", &["c"])),
            Update::delete(fact("r", &["c"])), // cancels the previous insert
            Update::delete(fact("p", &["a"])), // supersedes the no-op insert
        ]);
        let (mut added, removed) = tx.net_effect(&edb);
        added.sort();
        assert_eq!(added, vec![fact("q", &["b"])]);
        assert_eq!(removed, vec![fact("p", &["a"])]);
    }

    #[test]
    fn transaction_apply_undo_round_trip() {
        let mut edb = FactSet::new();
        edb.insert(&fact("p", &["a"]));
        let tx = Transaction::new(vec![
            Update::delete(fact("p", &["a"])),
            Update::insert(fact("q", &["b"])),
            Update::insert(fact("p", &["a"])), // re-inserts what we deleted
        ]);
        let snapshot: Vec<Fact> = {
            let mut v: Vec<Fact> = edb.iter().collect();
            v.sort();
            v
        };
        let effective = tx.apply(&mut edb);
        assert_eq!(effective.len(), 3);
        assert!(edb.contains(&fact("q", &["b"])));
        Transaction::undo(&effective, &mut edb);
        let mut after: Vec<Fact> = edb.iter().collect();
        after.sort();
        assert_eq!(snapshot, after);
    }
}
