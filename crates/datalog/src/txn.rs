//! The concurrent commit pipeline: optimistic transactions over MVCC
//! snapshots with first-committer-wins conflict detection.
//!
//! PR 1 made reads snapshot-isolated; this module does the same for
//! writers. A [`TxnBuilder`] (from [`Database::begin`] or
//! [`CommitQueue::begin`]) stages updates against a pinned [`Snapshot`]
//! and accumulates the [`ReadFootprint`] its guarded-update check
//! touched: per relation, either a set of key fingerprints (the bound
//! argument positions the check actually probed) or a whole-relation
//! access when a read is genuinely unbounded. All expensive work —
//! integrity checking, delta enumeration, model queries — happens
//! against the snapshot, outside any lock, so writers over disjoint
//! relations — and disjoint *keys of the same relation* — proceed
//! concurrently. Only the admission decision and the (cheap, Def. 1)
//! application of the net delta serialize behind the [`CommitQueue`]'s
//! mutex.
//!
//! Admission is first-committer-wins at key granularity: a transaction
//! that began at version `v` is admitted iff no transaction committed
//! after `v` wrote a tuple matching one of the candidate's key
//! fingerprints (or any tuple of a relation it read unbounded). A
//! conflicting candidate is rejected with a typed
//! [`CommitError::Conflict`] naming the relations and the granularity
//! that refused it, so callers can re-begin against a fresh snapshot
//! and retry; [`CommitQueue::conflict_stats`] counts refusals at each
//! granularity. This is sound for the paper's incremental checking
//! because Bry/Decker/Manthey's method makes a check a function of
//! (snapshot state restricted to the tuples the read patterns cover,
//! net delta): if no admitted writer touched those tuples since `v`,
//! re-running the check at commit time would read the very same tuples
//! and reach the very same verdict — which is exactly what
//! `tests/prop_commit_serializability` replays sequentially and
//! asserts. Fingerprint collisions only ever produce spurious
//! conflicts (a safe retry), never admissions.
//!
//! The queue also owns the **lifetime of the canonical model**: it keeps
//! a [`MaintainedModel`] that each admitted commit's net effect flips
//! forward (the paper's induced-update view, Def. 4, as maintenance), so
//! post-commit snapshots reuse the maintained model instead of paying a
//! full rematerialization. Schema/rule updates
//! ([`CommitQueue::update_schema`]) and maintenance bail-outs fall back
//! to rematerialization; every commit receipt records which path the
//! model took ([`ModelPath`]), and `tests/prop_model_maintenance`
//! proves the maintained model bit-identical to a from-scratch
//! recomputation after every admitted commit.

use crate::database::{ApplyError, Database, Snapshot};
use crate::footprint::{ConflictGranularity, ReadFootprint, ReadPattern};
use crate::maintain::MaintainedModel;
use crate::model::Model;
use crate::update::{Transaction, Update};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::sync::Arc;
use uniform_logic::{Fact, Sym};
use uniform_obs::{Counter, Obs};

/// A transaction under construction: updates staged against a pinned
/// snapshot, plus the key-fingerprint read footprint recorded while
/// checking them.
#[derive(Clone)]
pub struct TxnBuilder {
    snapshot: Snapshot,
    updates: Vec<Update>,
    reads: ReadFootprint,
}

impl TxnBuilder {
    pub(crate) fn new(snapshot: Snapshot) -> TxnBuilder {
        TxnBuilder {
            snapshot,
            updates: Vec::new(),
            reads: ReadFootprint::default(),
        }
    }

    /// The pinned snapshot every staged update and every check runs
    /// against.
    pub fn snapshot(&self) -> &Snapshot {
        &self.snapshot
    }

    /// The database version this transaction began at.
    pub fn begin_version(&self) -> u64 {
        self.snapshot.version()
    }

    /// Stage an update. A staged write implies a read of its own tuple
    /// (Def. 1 effectiveness is a membership test of one ground fact) —
    /// a *key-level* read, never a whole-relation one, so blind
    /// appenders to disjoint keys of the same relation do not conflict
    /// each other.
    pub fn stage(&mut self, update: Update) -> &mut TxnBuilder {
        self.reads.record_tuple(update.fact.pred, &update.fact.args);
        self.updates.push(update);
        self
    }

    /// Stage an insertion.
    pub fn insert(&mut self, fact: Fact) -> &mut TxnBuilder {
        self.stage(Update::insert(fact))
    }

    /// Stage a deletion.
    pub fn delete(&mut self, fact: Fact) -> &mut TxnBuilder {
        self.stage(Update::delete(fact))
    }

    /// Record that checking this transaction read `pred` *unbounded*:
    /// any later write into `pred` conflicts. Prefer
    /// [`TxnBuilder::record_read_patterns`] when binding information is
    /// available.
    pub fn record_read(&mut self, pred: Sym) -> &mut TxnBuilder {
        self.reads.record_whole(pred);
        self
    }

    /// Record a batch of unbounded reads (deliberate widening, e.g. the
    /// constraint-closure footprint of an auto-repair decision).
    pub fn record_reads(&mut self, preds: impl IntoIterator<Item = Sym>) -> &mut TxnBuilder {
        for pred in preds {
            self.reads.record_whole(pred);
        }
        self
    }

    /// Record one binding-pattern read: key-level when the pattern pins
    /// at least one argument position, unbounded otherwise.
    pub fn record_read_pattern(&mut self, pattern: &ReadPattern) -> &mut TxnBuilder {
        self.reads.record_pattern(pattern);
        self
    }

    /// Record a batch of binding-pattern reads (e.g. a `CheckReport`'s
    /// `read_patterns`).
    pub fn record_read_patterns<'p>(
        &mut self,
        patterns: impl IntoIterator<Item = &'p ReadPattern>,
    ) -> &mut TxnBuilder {
        for p in patterns {
            self.reads.record_pattern(p);
        }
        self
    }

    /// The staged updates, in staging order.
    pub fn updates(&self) -> &[Update] {
        &self.updates
    }

    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }

    /// The staged updates as a [`Transaction`].
    pub fn transaction(&self) -> Transaction {
        Transaction::new(self.updates.clone())
    }

    /// Relations this transaction writes.
    pub fn write_set(&self) -> BTreeSet<Sym> {
        self.updates.iter().map(|u| u.fact.pred).collect()
    }

    /// Relations this transaction's checks read (a superset of the
    /// write set once updates are staged), at relation granularity.
    pub fn read_set(&self) -> BTreeSet<Sym> {
        self.reads.relations().collect()
    }

    /// The full key-fingerprint read footprint.
    pub fn read_footprint(&self) -> &ReadFootprint {
        &self.reads
    }

    /// The net effect of the staged updates on the pinned snapshot
    /// (see [`Transaction::net_effect`]).
    pub fn net_effect(&self) -> (Vec<Fact>, Vec<Fact>) {
        self.transaction().net_effect(self.snapshot.facts())
    }

    /// Validate staged arities against the snapshot's schema (including
    /// arities introduced by earlier staged updates) — the same typed
    /// error the commit queue would raise at admission time, but
    /// catchable before submission.
    pub fn validate_arities(&self) -> Result<(), ApplyError> {
        crate::database::validate_transaction_arities(
            |pred| self.snapshot.arity_of(pred),
            &self.updates,
        )
    }
}

impl fmt::Debug for TxnBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TxnBuilder")
            .field("begin_version", &self.begin_version())
            .field("updates", &self.updates)
            .field("reads", &self.reads)
            .finish()
    }
}

/// Why a commit was refused. `Conflict` and `SnapshotTooOld` are
/// retriable by re-beginning against a fresh snapshot; `Apply` is a
/// caller error (arity misuse) that no retry will fix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CommitError {
    /// Another transaction committed first and wrote into this one's
    /// read footprint (first-committer-wins). `relations` is sorted by
    /// name; `committed_version` is the earliest conflicting commit;
    /// `granularity` reports whether an unbounded relation read or a
    /// key fingerprint caught the overlap.
    Conflict {
        relations: Vec<Sym>,
        committed_version: u64,
        granularity: ConflictGranularity,
    },
    /// The transaction began before the queue's conflict-log horizon, so
    /// admission can no longer be decided. Re-begin and retry.
    SnapshotTooOld { begin_version: u64, horizon: u64 },
    /// An update misused a predicate's arity. Nothing was applied.
    Apply(ApplyError),
}

impl fmt::Display for CommitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommitError::Conflict {
                relations,
                committed_version,
                granularity,
            } => {
                let how = match granularity {
                    ConflictGranularity::Relation => "relation-level",
                    ConflictGranularity::Key => "key-level",
                };
                write!(
                    f,
                    "commit conflict ({how}): relation(s) {} written by commit {} after this transaction began",
                    relations
                        .iter()
                        .map(|s| s.as_str())
                        .collect::<Vec<_>>()
                        .join(", "),
                    committed_version
                )
            }
            CommitError::SnapshotTooOld {
                begin_version,
                horizon,
            } => write!(
                f,
                "snapshot too old: began at version {begin_version}, conflict log starts at {horizon}"
            ),
            CommitError::Apply(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CommitError {}

impl From<ApplyError> for CommitError {
    fn from(e: ApplyError) -> CommitError {
        CommitError::Apply(e)
    }
}

/// How the canonical model behind post-commit snapshots is produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ModelPath {
    /// The queue's maintained model absorbed the commit's net effect
    /// incrementally; [`Database::snapshot`] reuses it without
    /// rematerializing (cost proportional to the induced update, the
    /// paper's Def. 4 view of maintenance).
    Maintained,
    /// The next snapshot must rematerialize the model from scratch:
    /// maintenance is disabled, a schema/rule update reset it, or
    /// maintenance bailed out on a broken counting invariant.
    Rematerialized,
}

/// Running counters of the queue's model-maintenance behavior, for
/// tests, benches and operators (see [`CommitQueue::maintenance`]).
///
/// This struct is a *view*: the authoritative storage is the queue's
/// `uniform-obs` registry counters (`maintain.*`), and
/// [`CommitQueue::maintenance`] snapshots them under the queue mutex —
/// the same lock every bump holds — so the fields are mutually
/// consistent at a single point in time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MaintenanceCounters {
    /// Effective commits absorbed incrementally by the maintained model.
    pub maintained: u64,
    /// Effective commits that left the next snapshot to rematerialize.
    pub rematerialized: u64,
    /// Maintenance bail-outs: a counting invariant broke and the
    /// maintained model was dropped (a subset of `rematerialized`).
    pub bailouts: u64,
    /// Schema/rule updates that reset the maintained model.
    pub schema_resets: u64,
    /// Constraint-only schema updates: the conflict log was still reset
    /// (pinned integrity checks are invalid under new constraints) but
    /// the maintained model survived — constraints never affect the
    /// canonical model.
    pub constraint_only_updates: u64,
}

impl fmt::Display for MaintenanceCounters {
    /// Renders with the registry's dotted metric names, one
    /// `name=value` pair per counter.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "maintain.commits.maintained={} maintain.commits.rematerialized={} \
             maintain.bailouts={} maintain.schema_resets={} \
             maintain.constraint_only_updates={}",
            self.maintained,
            self.rematerialized,
            self.bailouts,
            self.schema_resets,
            self.constraint_only_updates
        )
    }
}

/// Proof of an admitted commit.
#[derive(Clone, Debug)]
pub struct CommitReceipt {
    /// The database version after this commit.
    pub version: u64,
    /// The database's fact revision after this commit — the post-state
    /// half of the key a commit-invalidated certain-answer cache
    /// advances its entries to (see `uniform::ConcurrentDatabase`).
    pub fact_rev: u64,
    /// The updates that actually changed the store (Def. 1 effective
    /// subset, in staging order).
    pub effective: Vec<Update>,
    /// How snapshots of the post-commit state get their model. For a
    /// Def. 1 no-op commit this reports the queue's standing marker —
    /// nothing was invalidated.
    pub model_path: ModelPath,
}

impl CommitReceipt {
    /// Did the commit change the database at all?
    pub fn changed(&self) -> bool {
        !self.effective.is_empty()
    }
}

/// One committed transaction's write footprint — the *effective*
/// tuples it changed, per relation — kept for conflict detection
/// against still-open transactions (their key fingerprints are matched
/// against these tuples).
#[derive(Clone, Debug)]
struct CommitRecord {
    version: u64,
    writes: BTreeMap<Sym, Vec<Box<[Sym]>>>,
}

/// Running counters of the queue's conflict-detection behavior, by
/// granularity (see [`CommitQueue::conflict_stats`]).
///
/// Like [`MaintenanceCounters`], a *view* over the queue's registry
/// counters (`txn.*`), snapshotted under the queue mutex so
/// cross-counter invariants (e.g. `admitted + conflicts == attempts`)
/// hold within one returned value.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConflictStats {
    /// Commits admitted by the freshness scan.
    pub admitted: u64,
    /// Commits refused because an unbounded (whole-relation) read
    /// overlapped a later write.
    pub relation_conflicts: u64,
    /// Commits refused because a key fingerprint matched a written
    /// tuple.
    pub key_conflicts: u64,
    /// Commit attempts whose read footprint carried at least one
    /// whole-relation access — the fallback-to-relation-granularity
    /// count (unbounded check reads, deliberate auto-repair widening,
    /// or a per-relation key overflow).
    pub whole_relation_fallbacks: u64,
}

impl fmt::Display for ConflictStats {
    /// Renders with the registry's dotted metric names, one
    /// `name=value` pair per counter.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "txn.commits.admitted={} txn.conflicts.relation={} txn.conflicts.key={} \
             txn.conflicts.whole_relation_fallbacks={}",
            self.admitted,
            self.relation_conflicts,
            self.key_conflicts,
            self.whole_relation_fallbacks
        )
    }
}

/// Registry-backed counter handles behind the queue's stats surfaces.
/// Every bump happens while the queue mutex is held, so locking the
/// queue and reading all handles yields a consistent point-in-time
/// snapshot even though each handle is individually relaxed-atomic.
struct QueueMetrics {
    admitted: Counter,
    relation_conflicts: Counter,
    key_conflicts: Counter,
    whole_relation_fallbacks: Counter,
    maintained: Counter,
    rematerialized: Counter,
    bailouts: Counter,
    schema_resets: Counter,
    constraint_only_updates: Counter,
}

impl QueueMetrics {
    fn register(obs: &Obs) -> QueueMetrics {
        QueueMetrics {
            admitted: obs.counter("txn.commits.admitted"),
            relation_conflicts: obs.counter("txn.conflicts.relation"),
            key_conflicts: obs.counter("txn.conflicts.key"),
            whole_relation_fallbacks: obs.counter("txn.conflicts.whole_relation_fallbacks"),
            maintained: obs.counter("maintain.commits.maintained"),
            rematerialized: obs.counter("maintain.commits.rematerialized"),
            bailouts: obs.counter("maintain.bailouts"),
            schema_resets: obs.counter("maintain.schema_resets"),
            constraint_only_updates: obs.counter("maintain.constraint_only_updates"),
        }
    }
}

struct QueueState {
    db: Database,
    log: VecDeque<CommitRecord>,
    /// Begin-versions older than this can no longer be conflict-checked
    /// (their overlapping commit records were pruned).
    horizon: u64,
    /// The incrementally maintained canonical model, built lazily on the
    /// first admitted commit and flipped forward by every later one.
    /// `None` until then, after a schema reset, or after a bail-out.
    maintained: Option<MaintainedModel>,
    /// The standing [`ModelPath`] marker: how the *next* snapshot of the
    /// current state gets its model.
    last_path: ModelPath,
}

/// The serialization point of the commit pipeline. Shares one
/// [`Database`] among any number of writers: `begin` pins a snapshot,
/// `commit` admits with first-committer-wins conflict detection.
///
/// Wrap it in an `Arc` to share across threads; everything except the
/// admission critical section runs lock-free on snapshots.
pub struct CommitQueue {
    state: Mutex<QueueState>,
    log_capacity: usize,
    /// Maintain the canonical model incrementally across commits. When
    /// off, every effective commit invalidates the cached model and the
    /// next snapshot rematerializes (the pre-maintenance behavior; the
    /// `b3_postcommit_snapshot` baseline).
    maintain: bool,
    /// The observability domain this queue reports into (a private
    /// `NullClock` one unless injected via [`CommitQueue::with_obs`]).
    obs: Arc<Obs>,
    metrics: QueueMetrics,
}

/// Commit records retained for conflict detection. A transaction must
/// begin and commit within this many commits of each other or be told
/// [`CommitError::SnapshotTooOld`].
const DEFAULT_LOG_CAPACITY: usize = 1024;

impl CommitQueue {
    pub fn new(db: Database) -> CommitQueue {
        CommitQueue::with_log_capacity(db, DEFAULT_LOG_CAPACITY)
    }

    pub fn with_log_capacity(db: Database, log_capacity: usize) -> CommitQueue {
        CommitQueue::with_log_capacity_and_obs(db, log_capacity, Arc::new(Obs::null()))
    }

    /// A queue reporting into an injected observability domain — the
    /// constructor `uniform::ConcurrentDatabase` uses so queue metrics
    /// land in the database-wide registry.
    pub fn with_obs(db: Database, obs: Arc<Obs>) -> CommitQueue {
        CommitQueue::with_log_capacity_and_obs(db, DEFAULT_LOG_CAPACITY, obs)
    }

    pub fn with_log_capacity_and_obs(
        db: Database,
        log_capacity: usize,
        obs: Arc<Obs>,
    ) -> CommitQueue {
        let horizon = db.version();
        let metrics = QueueMetrics::register(&obs);
        CommitQueue {
            state: Mutex::new(QueueState {
                db,
                log: VecDeque::new(),
                horizon,
                maintained: None,
                last_path: ModelPath::Rematerialized,
            }),
            log_capacity: log_capacity.max(1),
            maintain: true,
            obs,
            metrics,
        }
    }

    /// A queue with incremental model maintenance disabled: every
    /// effective commit leaves the next snapshot to rematerialize.
    pub fn without_maintenance(db: Database) -> CommitQueue {
        CommitQueue {
            maintain: false,
            ..CommitQueue::new(db)
        }
    }

    /// [`CommitQueue::without_maintenance`] reporting into an injected
    /// observability domain (see [`CommitQueue::with_obs`]).
    pub fn without_maintenance_with_obs(db: Database, obs: Arc<Obs>) -> CommitQueue {
        CommitQueue {
            maintain: false,
            ..CommitQueue::with_obs(db, obs)
        }
    }

    /// The observability domain this queue reports into.
    pub fn obs(&self) -> &Arc<Obs> {
        &self.obs
    }

    /// Pin a snapshot and open a transaction against it.
    pub fn begin(&self) -> TxnBuilder {
        TxnBuilder::new(self.snapshot())
    }

    /// A snapshot of the current committed state.
    pub fn snapshot(&self) -> Snapshot {
        self.state.lock().db.snapshot()
    }

    /// The current committed version.
    pub fn version(&self) -> u64 {
        self.state.lock().db.version()
    }

    /// Run `f` against the live database under the queue lock (reads
    /// only — mutation goes through [`CommitQueue::commit`]).
    pub fn with_db<R>(&self, f: impl FnOnce(&Database) -> R) -> R {
        f(&self.state.lock().db)
    }

    /// Tear down the queue and recover the database.
    pub fn into_inner(self) -> Database {
        self.state.into_inner().db
    }

    /// The shared first-committer-wins scan: `Err` if a snapshot pinned
    /// at `begin` can no longer be trusted for the `reads` footprint —
    /// either a later commit wrote a tuple the footprint covers
    /// (`Conflict`) or the log no longer reaches back that far
    /// (`SnapshotTooOld`). Key-level reads match written tuples by
    /// fingerprint projection; unbounded reads match any write to the
    /// relation.
    fn freshness_in(
        state: &QueueState,
        begin: u64,
        reads: &ReadFootprint,
    ) -> Result<(), CommitError> {
        if begin < state.horizon {
            return Err(CommitError::SnapshotTooOld {
                begin_version: begin,
                horizon: state.horizon,
            });
        }
        let mut conflicting: BTreeSet<Sym> = BTreeSet::new();
        let mut first_winner = None;
        let mut granularity = ConflictGranularity::Key;
        for record in state.log.iter().filter(|r| r.version > begin) {
            for (&pred, tuples) in &record.writes {
                let hit = tuples
                    .iter()
                    .find_map(|t| reads.conflicts_with_write(pred, t));
                if let Some(g) = hit {
                    if first_winner.is_none() {
                        first_winner = Some(record.version);
                    }
                    if g == ConflictGranularity::Relation {
                        granularity = ConflictGranularity::Relation;
                    }
                    conflicting.insert(pred);
                }
            }
        }
        if let Some(committed_version) = first_winner {
            let mut relations: Vec<Sym> = conflicting.into_iter().collect();
            relations.sort_by_key(|s| s.as_str());
            return Err(CommitError::Conflict {
                relations,
                committed_version,
                granularity,
            });
        }
        Ok(())
    }

    /// Is `txn`'s snapshot still authoritative for its read set — i.e.
    /// would it be admitted right now as far as conflicts go? Callers
    /// use this to distinguish a *final* integrity rejection (checked
    /// on a still-fresh snapshot) from a stale one worth re-checking.
    pub fn check_freshness(&self, txn: &TxnBuilder) -> Result<(), CommitError> {
        Self::freshness_in(&self.state.lock(), txn.begin_version(), &txn.reads)
    }

    /// Admit or refuse `txn` (first-committer-wins). On admission the
    /// staged updates are applied in staging order and the commit's
    /// *effective* write footprint is logged for later conflict checks
    /// (a Def. 1 no-op commit changes nothing, so it must not conflict
    /// anyone). On refusal the database is untouched.
    pub fn commit(&self, txn: &TxnBuilder) -> Result<CommitReceipt, CommitError> {
        let mut state = self.state.lock();
        {
            let _admit = self.obs.span("commit.admit");
            if txn.reads.has_unbounded() {
                self.metrics.whole_relation_fallbacks.incr();
            }
            if let Err(e) = Self::freshness_in(&state, txn.begin_version(), &txn.reads) {
                if let CommitError::Conflict { granularity, .. } = &e {
                    match granularity {
                        ConflictGranularity::Relation => self.metrics.relation_conflicts.incr(),
                        ConflictGranularity::Key => self.metrics.key_conflicts.incr(),
                    }
                }
                return Err(e);
            }
            self.metrics.admitted.incr();

            // Arity errors must leave the store untouched: validate the
            // whole transaction (including arities its own earlier updates
            // introduce) against the live schema before applying any of it.
            crate::database::validate_transaction_arities(
                |pred| state.db.arity_of(pred),
                &txn.updates,
            )
            .map_err(CommitError::Apply)?;
        }

        let effective = {
            let _apply = self.obs.span("commit.apply");
            // Build the maintained model from the pre-commit state the first
            // time an admitted commit arrives (or the first after a schema
            // reset / bail-out). This reuses the database's cached model when
            // one exists; from here on the queue owns the model's lifetime.
            if self.maintain && state.maintained.is_none() {
                let model = state.db.model();
                let st = &mut *state;
                st.maintained = Some(MaintainedModel::with_model(
                    st.db.facts().clone(),
                    st.db.rules().clone(),
                    model.facts().clone(),
                ));
            }

            let mut effective = Vec::new();
            for u in &txn.updates {
                if state.db.apply(u).expect("arities validated above") {
                    effective.push(u.clone());
                }
            }
            effective
        };

        let model_path = {
            let _maintain = self.obs.span("commit.maintain");
            if effective.is_empty() {
                // Def. 1 no-op: nothing was invalidated, the cached model
                // (and the maintained one) still describe the state exactly.
                state.last_path
            } else if self.maintain {
                // Flip the maintained model forward by the same update list
                // the store just applied: its EDB mirrors the database's
                // update for update, so the two stay bit-identical.
                let st = &mut *state;
                let healthy = {
                    let m = st.maintained.as_mut().expect("built above");
                    m.apply_transaction(&Transaction::new(txn.updates.to_vec()));
                    !m.is_poisoned()
                };
                if healthy {
                    let model = st.maintained.as_ref().expect("built above").model().clone();
                    st.db.install_model(Arc::new(Model::from_facts(model)));
                    self.metrics.maintained.incr();
                    ModelPath::Maintained
                } else {
                    st.maintained = None;
                    self.metrics.bailouts.incr();
                    self.metrics.rematerialized.incr();
                    ModelPath::Rematerialized
                }
            } else {
                self.metrics.rematerialized.incr();
                ModelPath::Rematerialized
            }
        };
        state.last_path = model_path;

        let version = state.db.version();
        if !effective.is_empty() {
            let mut writes: BTreeMap<Sym, Vec<Box<[Sym]>>> = BTreeMap::new();
            for u in &effective {
                writes
                    .entry(u.fact.pred)
                    .or_default()
                    .push(u.fact.args.as_slice().into());
            }
            state.log.push_back(CommitRecord { version, writes });
            while state.log.len() > self.log_capacity {
                let dropped = state.log.pop_front().expect("len > capacity >= 1");
                state.horizon = dropped.version;
            }
        }
        Ok(CommitReceipt {
            version,
            fact_rev: state.db.fact_rev(),
            effective,
            model_path,
        })
    }

    /// Run a schema mutation (rule or constraint changes) under the
    /// queue lock. When `f` mutated the database (its version moved) the
    /// conflict log is reset: every in-flight transaction began behind
    /// the new horizon and is refused with
    /// [`CommitError::SnapshotTooOld`], because a schema change
    /// invalidates any pinned check. Whether the *maintained model* is
    /// dropped depends on what moved: rule or fact changes cannot be
    /// absorbed (drop, next snapshot rematerializes), while a
    /// constraint-only change keeps the maintained model — constraints
    /// never contribute to the canonical model, only to admission
    /// verdicts. Fact updates belong in [`CommitQueue::commit`], not
    /// here.
    pub fn update_schema<R>(&self, f: impl FnOnce(&mut Database) -> R) -> R {
        let mut state = self.state.lock();
        let before = state.db.version();
        let before_facts = state.db.fact_rev();
        let before_rules = state.db.rule_rev();
        let out = f(&mut state.db);
        if state.db.version() != before {
            let constraint_only =
                state.db.fact_rev() == before_facts && state.db.rule_rev() == before_rules;
            if constraint_only {
                self.metrics.constraint_only_updates.incr();
            } else {
                state.maintained = None;
                state.last_path = ModelPath::Rematerialized;
                self.metrics.schema_resets.incr();
            }
            state.log.clear();
            state.horizon = state.db.version();
        }
        out
    }

    /// The standing path marker: how the next snapshot of the current
    /// state gets its model.
    pub fn model_path(&self) -> ModelPath {
        self.state.lock().last_path
    }

    /// Running model-maintenance counters — a point-in-time view over
    /// the registry's `maintain.*` counters, read under the queue mutex
    /// (the lock every bump holds) so the fields are mutually
    /// consistent.
    pub fn maintenance(&self) -> MaintenanceCounters {
        let _state = self.state.lock();
        MaintenanceCounters {
            maintained: self.metrics.maintained.get(),
            rematerialized: self.metrics.rematerialized.get(),
            bailouts: self.metrics.bailouts.get(),
            schema_resets: self.metrics.schema_resets.get(),
            constraint_only_updates: self.metrics.constraint_only_updates.get(),
        }
    }

    /// Running conflict-detection counters, by granularity: how many
    /// commits were admitted, refused by a whole-relation read, refused
    /// by a key fingerprint, and how many attempts fell back to
    /// relation granularity because some read was unbounded. A
    /// point-in-time view over the registry's `txn.*` counters, read
    /// under the queue mutex so cross-counter arithmetic (e.g.
    /// `admitted + refusals == attempts`) is exact.
    pub fn conflict_stats(&self) -> ConflictStats {
        let _state = self.state.lock();
        ConflictStats {
            admitted: self.metrics.admitted.get(),
            relation_conflicts: self.metrics.relation_conflicts.get(),
            key_conflicts: self.metrics.key_conflicts.get(),
            whole_relation_fallbacks: self.metrics.whole_relation_fallbacks.get(),
        }
    }

    /// Current EDB contents (sorted), for tests and tooling.
    pub fn facts_sorted(&self) -> Vec<Fact> {
        let mut out: Vec<Fact> = self.state.lock().db.facts().iter().collect();
        out.sort();
        out
    }
}

impl fmt::Debug for CommitQueue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = self.state.lock();
        f.debug_struct("CommitQueue")
            .field("version", &state.db.version())
            .field("log_len", &state.log.len())
            .field("horizon", &state.horizon)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fact(p: &str, args: &[&str]) -> Fact {
        Fact::parse_like(p, args)
    }

    fn queue(src: &str) -> CommitQueue {
        CommitQueue::new(Database::parse(src).unwrap())
    }

    #[test]
    fn disjoint_writers_both_commit() {
        let q = queue("seed_a(x). seed_b(y).");
        let mut t1 = q.begin();
        t1.insert(fact("a", &["1"]));
        let mut t2 = q.begin();
        t2.insert(fact("b", &["1"]));
        let r1 = q.commit(&t1).unwrap();
        let r2 = q.commit(&t2).unwrap();
        assert!(r1.changed() && r2.changed());
        assert!(r2.version > r1.version);
        assert!(q
            .with_db(|db| db.facts().contains(&fact("a", &["1"]))
                && db.facts().contains(&fact("b", &["1"]))));
    }

    #[test]
    fn write_write_conflict_first_committer_wins() {
        // Both transactions touch the *same tuple*: the second one's
        // staged read (Def. 1 membership) is invalidated by the first
        // one's write, at key granularity.
        let q = queue("");
        let mut t1 = q.begin();
        t1.insert(fact("acct", &["k", "v1"]));
        let mut t2 = q.begin();
        t2.delete(fact("acct", &["k", "v1"]));
        let r1 = q.commit(&t1).unwrap();
        let err = q.commit(&t2).unwrap_err();
        match err {
            CommitError::Conflict {
                relations,
                committed_version,
                granularity,
            } => {
                assert_eq!(relations, vec![Sym::new("acct")]);
                assert_eq!(committed_version, r1.version);
                assert_eq!(granularity, ConflictGranularity::Key);
            }
            other => panic!("expected conflict, got {other:?}"),
        }
        assert_eq!(q.conflict_stats().key_conflicts, 1);
        // Loser retries against a fresh snapshot and succeeds.
        let mut t3 = q.begin();
        t3.delete(fact("acct", &["k", "v1"]));
        assert!(q.commit(&t3).unwrap().changed());
    }

    #[test]
    fn blind_appenders_to_disjoint_keys_of_one_relation_both_commit() {
        // Regression for the pre-fingerprint `stage()`: staging a write
        // used to widen the read set with the whole predicate, so two
        // blind appenders to the same hot relation always conflicted.
        // With key-level staged reads they are admitted concurrently.
        let q = queue("");
        let mut t1 = q.begin();
        t1.insert(fact("events", &["k1", "v1"]));
        let mut t2 = q.begin();
        t2.insert(fact("events", &["k2", "v2"]));
        let r1 = q.commit(&t1).unwrap();
        let r2 = q.commit(&t2).expect("disjoint keys must not conflict");
        assert!(r1.changed() && r2.changed());
        assert!(r2.version > r1.version);
        let stats = q.conflict_stats();
        assert_eq!(stats.admitted, 2);
        assert_eq!(stats.key_conflicts, 0);
        assert_eq!(stats.relation_conflicts, 0);
        assert_eq!(
            stats.whole_relation_fallbacks, 0,
            "blind appends must not fall back to relation granularity"
        );
        assert!(
            q.with_db(|db| db.facts().contains(&fact("events", &["k1", "v1"]))
                && db.facts().contains(&fact("events", &["k2", "v2"])))
        );
    }

    #[test]
    fn unbounded_read_still_conflicts_with_any_write() {
        // A whole-relation read (no binding information) keeps the old
        // relation-granularity behavior — the sound fallback.
        let q = queue("");
        let mut t1 = q.begin();
        t1.insert(fact("log", &["e1"]));
        t1.record_read(Sym::new("events"));
        let mut t2 = q.begin();
        t2.insert(fact("events", &["k9", "v9"]));
        q.commit(&t2).unwrap();
        let err = q.commit(&t1).unwrap_err();
        assert!(
            matches!(
                err,
                CommitError::Conflict {
                    granularity: ConflictGranularity::Relation,
                    ..
                }
            ),
            "{err:?}"
        );
        let stats = q.conflict_stats();
        assert_eq!(stats.relation_conflicts, 1);
        assert_eq!(stats.whole_relation_fallbacks, 1);
    }

    #[test]
    fn read_write_conflict_detected() {
        let q = queue("watched(a).");
        // t1 only *reads* `watched` (its check depended on it) and
        // writes `log`.
        let mut t1 = q.begin();
        t1.insert(fact("log", &["e1"]));
        t1.record_read(Sym::new("watched"));
        // t2 deletes from `watched` and commits first.
        let mut t2 = q.begin();
        t2.delete(fact("watched", &["a"]));
        q.commit(&t2).unwrap();
        let err = q.commit(&t1).unwrap_err();
        assert!(
            matches!(err, CommitError::Conflict { ref relations, .. }
                if relations == &vec![Sym::new("watched")]),
            "{err:?}"
        );
    }

    #[test]
    fn blind_disjoint_writes_after_other_commits_admit() {
        let q = queue("");
        let t_old = {
            let mut t = q.begin();
            t.insert(fact("mine", &["1"]));
            t
        };
        // Ten other commits to unrelated relations in between.
        for i in 0..10 {
            let mut t = q.begin();
            t.insert(fact("theirs", &[&format!("{i}")]));
            q.commit(&t).unwrap();
        }
        assert!(q.commit(&t_old).is_ok(), "disjoint writers never block");
    }

    #[test]
    fn noop_commit_is_admitted_and_changes_nothing() {
        let q = queue("p(a).");
        let mut t = q.begin();
        t.insert(fact("p", &["a"]));
        let v0 = q.version();
        let r = q.commit(&t).unwrap();
        assert!(!r.changed());
        assert_eq!(q.version(), v0, "Def. 1 no-op: no version bump");
    }

    #[test]
    fn snapshot_too_old_when_log_pruned() {
        let q = CommitQueue::with_log_capacity(Database::new(), 2);
        let stale = q.begin();
        for i in 0..5 {
            let mut t = q.begin();
            t.insert(fact("x", &[&format!("{i}")]));
            q.commit(&t).unwrap();
        }
        // `stale` doesn't even touch `x`, but the log no longer reaches
        // back to its begin version, so admission must refuse.
        let mut stale = stale;
        stale.insert(fact("y", &["1"]));
        let err = q.commit(&stale).unwrap_err();
        assert!(matches!(err, CommitError::SnapshotTooOld { .. }), "{err:?}");
    }

    #[test]
    fn arity_misuse_is_typed_and_atomic() {
        let q = queue("p(a).");
        let mut t = q.begin();
        t.insert(fact("q", &["1"]));
        t.insert(fact("p", &["a", "b"])); // wrong arity
        let err = q.commit(&t).unwrap_err();
        assert!(matches!(
            err,
            CommitError::Apply(ApplyError::ArityMismatch { .. })
        ));
        assert!(
            !q.with_db(|db| db.facts().contains(&fact("q", &["1"]))),
            "nothing from the failed transaction may be applied"
        );
        // And the builder-side validation catches it before submission.
        assert!(t.validate_arities().is_err());
    }

    #[test]
    fn intra_transaction_arity_mismatch_refused_up_front() {
        // A fresh predicate's arity is fixed by the transaction's own
        // first update; a later mismatch must be refused atomically,
        // never half-applied.
        let q = queue("");
        let mut t = q.begin();
        t.insert(fact("fresh", &["a", "b"]));
        t.insert(fact("fresh", &["c"]));
        assert!(t.validate_arities().is_err());
        let err = q.commit(&t).unwrap_err();
        assert!(matches!(
            err,
            CommitError::Apply(ApplyError::ArityMismatch { .. })
        ));
        assert_eq!(q.with_db(|db| db.facts().len()), 0, "nothing applied");
    }

    #[test]
    fn noop_commits_do_not_conflict_anyone() {
        let q = queue("s(a).");
        let t0 = {
            let mut t = q.begin();
            t.insert(fact("log", &["e"]));
            t.record_read(Sym::new("s"));
            t
        };
        // An effective write to r, then a Def. 1 no-op "write" to s.
        let mut c1 = q.begin();
        c1.insert(fact("r", &["1"]));
        q.commit(&c1).unwrap();
        let mut c2 = q.begin();
        c2.insert(fact("s", &["a"]));
        q.commit(&c2).unwrap();
        // t0 reads s, and s is bit-identical to its snapshot: admitted.
        q.commit(&t0).expect("no-op writes must not win conflicts");
    }

    #[test]
    fn staged_updates_see_snapshot_net_effect() {
        let q = queue("p(a).");
        let mut t = q.begin();
        t.insert(fact("p", &["a"])); // no-op vs snapshot
        t.insert(fact("p", &["b"]));
        t.delete(fact("p", &["b"])); // cancels
        t.delete(fact("p", &["a"]));
        let (added, removed) = t.net_effect();
        assert!(added.is_empty());
        assert_eq!(removed, vec![fact("p", &["a"])]);
        assert_eq!(t.write_set().len(), 1);
        assert!(t.read_set().contains(&Sym::new("p")));
    }

    fn sorted_model(snapshot: &Snapshot) -> Vec<String> {
        let mut out: Vec<String> = snapshot.model().iter().map(|f| f.to_string()).collect();
        out.sort();
        out
    }

    fn sorted_fresh(snapshot: &Snapshot) -> Vec<String> {
        let fresh = crate::model::Model::compute(snapshot.facts(), snapshot.rules());
        let mut out: Vec<String> = fresh.iter().map(|f| f.to_string()).collect();
        out.sort();
        out
    }

    #[test]
    fn commits_maintain_the_model_incrementally() {
        let q = queue("b(X) :- a(X). a(seed).");
        let mut t = q.begin();
        t.insert(fact("a", &["x"]));
        let r = q.commit(&t).unwrap();
        assert_eq!(r.model_path, ModelPath::Maintained);
        let snap = q.snapshot();
        assert!(snap.holds(&fact("b", &["x"])), "induced fact maintained");
        assert_eq!(sorted_model(&snap), sorted_fresh(&snap));
        // Deletions flip back through the same path.
        let mut t = q.begin();
        t.delete(fact("a", &["x"]));
        let r = q.commit(&t).unwrap();
        assert_eq!(r.model_path, ModelPath::Maintained);
        let snap = q.snapshot();
        assert!(!snap.holds(&fact("b", &["x"])));
        assert_eq!(sorted_model(&snap), sorted_fresh(&snap));
        assert_eq!(q.maintenance().maintained, 2);
        assert_eq!(q.maintenance().rematerialized, 0);
    }

    #[test]
    fn without_maintenance_every_commit_rematerializes() {
        let q = CommitQueue::without_maintenance(Database::parse("b(X) :- a(X).").unwrap());
        let mut t = q.begin();
        t.insert(fact("a", &["x"]));
        let r = q.commit(&t).unwrap();
        assert_eq!(r.model_path, ModelPath::Rematerialized);
        assert_eq!(q.model_path(), ModelPath::Rematerialized);
        // The model is still correct — just recomputed on demand.
        let snap = q.snapshot();
        assert!(snap.holds(&fact("b", &["x"])));
        assert_eq!(q.maintenance().maintained, 0);
        assert_eq!(q.maintenance().rematerialized, 1);
    }

    #[test]
    fn noop_commit_keeps_the_standing_path() {
        let q = queue("p(a).");
        let mut t = q.begin();
        t.insert(fact("p", &["b"]));
        assert_eq!(q.commit(&t).unwrap().model_path, ModelPath::Maintained);
        let mut noop = q.begin();
        noop.insert(fact("p", &["b"]));
        let r = q.commit(&noop).unwrap();
        assert!(!r.changed());
        assert_eq!(r.model_path, ModelPath::Maintained);
        assert_eq!(q.maintenance().maintained, 1, "no-ops maintain nothing");
    }

    #[test]
    fn schema_update_resets_maintenance_and_fences_inflight_txns() {
        let q = queue("b(X) :- a(X). a(seed).");
        let mut warm = q.begin();
        warm.insert(fact("a", &["x"]));
        q.commit(&warm).unwrap();
        assert_eq!(q.model_path(), ModelPath::Maintained);

        // A transaction in flight across the schema change.
        let mut inflight = q.begin();
        inflight.insert(fact("a", &["y"]));

        q.update_schema(|db| {
            let mut rules: Vec<uniform_logic::Rule> = db.rules().rules().to_vec();
            rules.push(uniform_logic::parse_rule("c(X) :- b(X).").unwrap());
            db.set_rules(crate::program::RuleSet::new(rules).unwrap());
        });
        assert_eq!(q.model_path(), ModelPath::Rematerialized);
        assert_eq!(q.maintenance().schema_resets, 1);
        // The pinned check predates the schema: refused, retriably.
        let err = q.commit(&inflight).unwrap_err();
        assert!(matches!(err, CommitError::SnapshotTooOld { .. }), "{err:?}");
        // The rematerialized snapshot reflects the new rule…
        let snap = q.snapshot();
        assert!(snap.holds(&fact("c", &["x"])));
        assert_eq!(sorted_model(&snap), sorted_fresh(&snap));
        // …and the next effective commit rebuilds maintenance.
        let mut t = q.begin();
        t.insert(fact("a", &["y"]));
        let r = q.commit(&t).unwrap();
        assert_eq!(r.model_path, ModelPath::Maintained);
        let snap = q.snapshot();
        assert!(snap.holds(&fact("c", &["y"])));
        assert_eq!(sorted_model(&snap), sorted_fresh(&snap));
    }

    #[test]
    fn constraint_only_schema_update_keeps_the_maintained_model() {
        let q = queue("b(X) :- a(X). a(seed).");
        let mut warm = q.begin();
        warm.insert(fact("a", &["x"]));
        q.commit(&warm).unwrap();
        assert_eq!(q.model_path(), ModelPath::Maintained);

        // In-flight across the constraint change: still fenced (its
        // pinned integrity verdict predates the new constraint set).
        let mut inflight = q.begin();
        inflight.insert(fact("a", &["y"]));

        q.update_schema(|db| {
            db.add_constraint(uniform_logic::Constraint::new(
                "fresh",
                uniform_logic::normalize(
                    &uniform_logic::parse_formula("forall X: never(X) -> false").unwrap(),
                )
                .unwrap(),
            ));
        });
        // The maintained model survived: constraints never affect it.
        assert_eq!(q.model_path(), ModelPath::Maintained);
        assert_eq!(q.maintenance().schema_resets, 0);
        assert_eq!(q.maintenance().constraint_only_updates, 1);
        let err = q.commit(&inflight).unwrap_err();
        assert!(matches!(err, CommitError::SnapshotTooOld { .. }), "{err:?}");
        // The next commit keeps maintaining the same model instance.
        let mut t = q.begin();
        t.insert(fact("a", &["y"]));
        let r = q.commit(&t).unwrap();
        assert_eq!(r.model_path, ModelPath::Maintained);
        let snap = q.snapshot();
        assert!(snap.holds(&fact("b", &["y"])));
        assert_eq!(sorted_model(&snap), sorted_fresh(&snap));
        assert_eq!(q.maintenance().maintained, 2);
    }

    #[test]
    fn readonly_schema_closure_resets_nothing() {
        let q = queue("p(a).");
        let mut t = q.begin();
        t.insert(fact("p", &["b"]));
        q.commit(&t).unwrap();
        let n = q.update_schema(|db| db.facts().len());
        assert_eq!(n, 2);
        assert_eq!(q.maintenance().schema_resets, 0);
        assert_eq!(q.model_path(), ModelPath::Maintained);
    }

    #[test]
    fn concurrent_commits_from_threads_serialize() {
        let q = std::sync::Arc::new(queue(""));
        std::thread::scope(|scope| {
            for w in 0..4 {
                let q = q.clone();
                scope.spawn(move || {
                    for i in 0..25 {
                        // Each writer owns its relation: no conflicts.
                        let mut t = q.begin();
                        t.insert(fact(&format!("rel{w}"), &[&format!("v{i}")]));
                        q.commit(&t).unwrap();
                    }
                });
            }
        });
        assert_eq!(q.with_db(|db| db.facts().len()), 100);
    }
}
