//! A persistent (path-copying) hash trie from tuples to page slots.
//!
//! `SlotMap` is the router of the chunked fact store
//! ([`crate::store`]): it maps every tuple a relation has ever held —
//! live or tombstoned — to the page and offset of its slot. The trie is
//! built from `Arc`-shared nodes, so cloning a map is one refcount bump
//! and an insert or remove copies only the O(log n) nodes on the path
//! to the touched leaf. That is what keeps a whole-`Relation` clone
//! O(#pages) and a commit-time mutation O(delta): snapshot holders keep
//! the old root, the writer re-links a handful of fresh nodes.
//!
//! Keys are hashed with [`DefaultHasher`], whose SipHash keys are fixed
//! (not per-process randomized), and no iteration order is ever exposed
//! — lookups, inserts and removes are the entire API — so the trie
//! cannot leak hash-dependent order into user-visible output (the
//! determinism-digest discipline of `tests/determinism.rs`).

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use uniform_logic::Sym;

/// Location of a tuple inside a chunked relation: the page ordinal in
/// the relation's page table and the slot offset within that page.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct SlotRef {
    pub page: u32,
    pub offset: u16,
}

const BITS: u32 = 4;
const FANOUT: usize = 1 << BITS; // 16-way branching
const MAX_DEPTH: u32 = 64 / BITS; // past this, leaves are pure collision buckets
const LEAF_MAX: usize = 8;

#[derive(Clone, Debug)]
enum Node {
    /// Bucket of `(hash, tuple, slot)`; order is never observed.
    Leaf(Vec<(u64, Box<[Sym]>, SlotRef)>),
    Branch(Box<[Option<Arc<Node>>; FANOUT]>),
}

fn hash_tuple(key: &[Sym]) -> u64 {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    h.finish()
}

fn branch_index(hash: u64, depth: u32) -> usize {
    ((hash >> (depth * BITS)) & (FANOUT as u64 - 1)) as usize
}

/// Persistent tuple → [`SlotRef`] map with O(1) clone.
#[derive(Clone, Debug, Default)]
pub(crate) struct SlotMap {
    root: Option<Arc<Node>>,
    len: usize,
}

impl SlotMap {
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn get(&self, key: &[Sym]) -> Option<SlotRef> {
        let hash = hash_tuple(key);
        let mut node = self.root.as_deref()?;
        let mut depth = 0;
        loop {
            match node {
                Node::Leaf(entries) => {
                    return entries
                        .iter()
                        .find(|(h, k, _)| *h == hash && **k == *key)
                        .map(|&(_, _, slot)| slot);
                }
                Node::Branch(children) => {
                    node = children[branch_index(hash, depth)].as_deref()?;
                    depth += 1;
                }
            }
        }
    }

    /// Insert or replace; returns the previous slot if the key was
    /// present. Copies only the path from the root to the touched leaf.
    pub fn insert(&mut self, key: &[Sym], slot: SlotRef) -> Option<SlotRef> {
        let hash = hash_tuple(key);
        let root = self
            .root
            .get_or_insert_with(|| Arc::new(Node::Leaf(Vec::new())));
        let prev = insert_rec(root, 0, hash, key, slot);
        if prev.is_none() {
            self.len += 1;
        }
        prev
    }

    /// Remove; returns the slot the key mapped to, if any.
    pub fn remove(&mut self, key: &[Sym]) -> Option<SlotRef> {
        let hash = hash_tuple(key);
        let root = self.root.as_mut()?;
        let prev = remove_rec(root, 0, hash, key);
        if prev.is_some() {
            self.len -= 1;
        }
        prev
    }
}

fn insert_rec(
    node: &mut Arc<Node>,
    depth: u32,
    hash: u64,
    key: &[Sym],
    slot: SlotRef,
) -> Option<SlotRef> {
    let n = Arc::make_mut(node);
    match n {
        Node::Leaf(entries) => {
            if let Some(e) = entries
                .iter_mut()
                .find(|(h, k, _)| *h == hash && **k == *key)
            {
                return Some(std::mem::replace(&mut e.2, slot));
            }
            entries.push((hash, key.into(), slot));
            if entries.len() > LEAF_MAX && depth < MAX_DEPTH {
                let drained = std::mem::take(entries);
                let mut children: [Option<Arc<Node>>; FANOUT] = std::array::from_fn(|_| None);
                for entry in drained {
                    let idx = branch_index(entry.0, depth);
                    let child =
                        children[idx].get_or_insert_with(|| Arc::new(Node::Leaf(Vec::new())));
                    match Arc::get_mut(child).expect("freshly built child") {
                        Node::Leaf(bucket) => bucket.push(entry),
                        Node::Branch(_) => unreachable!("split builds leaves only"),
                    }
                }
                *n = Node::Branch(Box::new(children));
            }
            None
        }
        Node::Branch(children) => {
            let child = children[branch_index(hash, depth)]
                .get_or_insert_with(|| Arc::new(Node::Leaf(Vec::new())));
            insert_rec(child, depth + 1, hash, key, slot)
        }
    }
}

fn remove_rec(node: &mut Arc<Node>, depth: u32, hash: u64, key: &[Sym]) -> Option<SlotRef> {
    // Probe before copying: a miss must not clone the path.
    match &**node {
        Node::Leaf(entries) => {
            let at = entries
                .iter()
                .position(|(h, k, _)| *h == hash && **k == *key)?;
            match Arc::make_mut(node) {
                Node::Leaf(entries) => Some(entries.swap_remove(at).2),
                Node::Branch(_) => unreachable!("node kind is stable across make_mut"),
            }
        }
        Node::Branch(_) => {
            let idx = branch_index(hash, depth);
            // Check the child exists without cloning this branch first.
            match &**node {
                Node::Branch(children) if children[idx].is_some() => {}
                _ => return None,
            }
            match Arc::make_mut(node) {
                Node::Branch(children) => {
                    let child = children[idx].as_mut().expect("checked above");
                    remove_rec(child, depth + 1, hash, key)
                }
                Node::Leaf(_) => unreachable!("node kind is stable across make_mut"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(parts: &[&str]) -> Box<[Sym]> {
        parts.iter().map(|s| Sym::new(s)).collect()
    }

    fn slot(page: u32, offset: u16) -> SlotRef {
        SlotRef { page, offset }
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m = SlotMap::default();
        for i in 0..500u32 {
            let k = key(&[&format!("a{i}"), &format!("b{}", i % 7)]);
            assert_eq!(m.insert(&k, slot(i, 0)), None);
        }
        assert_eq!(m.len(), 500);
        for i in 0..500u32 {
            let k = key(&[&format!("a{i}"), &format!("b{}", i % 7)]);
            assert_eq!(m.get(&k), Some(slot(i, 0)));
        }
        assert_eq!(m.get(&key(&["zzz", "b0"])), None);
        for i in 0..250u32 {
            let k = key(&[&format!("a{i}"), &format!("b{}", i % 7)]);
            assert_eq!(m.remove(&k), Some(slot(i, 0)));
            assert_eq!(m.remove(&k), None, "double remove");
        }
        assert_eq!(m.len(), 250);
        for i in 250..500u32 {
            let k = key(&[&format!("a{i}"), &format!("b{}", i % 7)]);
            assert_eq!(m.get(&k), Some(slot(i, 0)));
        }
    }

    #[test]
    fn insert_replaces_and_reports_previous() {
        let mut m = SlotMap::default();
        let k = key(&["x"]);
        assert_eq!(m.insert(&k, slot(0, 3)), None);
        assert_eq!(m.insert(&k, slot(1, 4)), Some(slot(0, 3)));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(&k), Some(slot(1, 4)));
    }

    #[test]
    fn clones_are_independent_and_share_structure() {
        let mut a = SlotMap::default();
        for i in 0..200u32 {
            a.insert(&key(&[&format!("k{i}")]), slot(0, i as u16));
        }
        let b = a.clone();
        // Mutate the original; the clone's view is stable.
        a.remove(&key(&["k0"]));
        a.insert(&key(&["k1"]), slot(9, 9));
        a.insert(&key(&["fresh"]), slot(7, 7));
        assert_eq!(b.get(&key(&["k0"])), Some(slot(0, 0)));
        assert_eq!(b.get(&key(&["k1"])), Some(slot(0, 1)));
        assert_eq!(b.get(&key(&["fresh"])), None);
        assert_eq!(b.len(), 200);
        assert_eq!(a.len(), 200);
    }
}
