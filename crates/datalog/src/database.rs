//! The deductive database `D = (F, R, I)` (§2): explicit facts, stratified
//! rules, and normalized integrity constraints, with a cached canonical
//! model.
//!
//! The database is `Send + Sync`: the model cache sits behind a lock and
//! every shared component (rules, constraints, relations) is `Arc`ed.
//! [`Database::snapshot`] hands out a [`Snapshot`] — an immutable,
//! `Send + Sync` read handle whose construction clones no tuple data
//! (O(#relations), see [`crate::store::FactSet`]) and whose answers stay
//! stable while writers keep committing to the originating database.

use crate::eval::satisfies_closed;
use crate::model::Model;
use crate::program::RuleSet;
use crate::store::FactSet;
use crate::txn::TxnBuilder;
use crate::update::Update;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;
use uniform_logic::{normalize, parse_program, Constraint, Fact, LogicError, ParseError, Rq, Sym};

/// Why [`Database::apply`] refused to touch the store. Arity misuse is a
/// caller error distinct from a constraint rejection (which never reaches
/// this layer — guarded updates are checked in `uniform-integrity` /
/// `uniform-core` before `apply` is called) and from a Def. 1 no-op
/// (which is `Ok(false)`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ApplyError {
    /// The update uses a predicate with a different arity than the rest
    /// of the database (facts, rule heads/bodies, constraint literals).
    ArityMismatch {
        pred: Sym,
        expected: usize,
        got: usize,
    },
}

impl std::fmt::Display for ApplyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApplyError::ArityMismatch {
                pred,
                expected,
                got,
            } => write!(
                f,
                "predicate {pred} used with arity {got} but the database uses arity {expected}"
            ),
        }
    }
}

impl std::error::Error for ApplyError {}

/// The arity `pred` is used with anywhere in `(facts, rules,
/// constraints)`; `None` for unknown predicates. Single source of truth
/// behind [`Database::arity_of`] and [`Snapshot::arity_of`].
fn arity_in(
    facts: &FactSet,
    rules: &RuleSet,
    constraints: &[Constraint],
    pred: Sym,
) -> Option<usize> {
    if let Some(rel) = facts.relation(pred) {
        return Some(rel.arity());
    }
    for r in rules.rules() {
        if r.head.pred == pred {
            return Some(r.head.args.len());
        }
        for l in &r.body {
            if l.atom.pred == pred {
                return Some(l.atom.args.len());
            }
        }
    }
    for c in constraints {
        for occ in c.rq.literals() {
            if occ.literal.atom.pred == pred {
                return Some(occ.literal.atom.args.len());
            }
        }
    }
    None
}

/// Validate a whole transaction's arities against a schema lookup,
/// *including* arities introduced by earlier updates in the same
/// transaction: `[+fresh(a,b), +fresh(c)]` must be refused up front,
/// not panic halfway through application. Every pre-apply validation
/// path (façade, [`crate::txn::TxnBuilder`], [`crate::txn::CommitQueue`])
/// goes through here so the rules cannot drift apart.
pub fn validate_transaction_arities<'a>(
    arity_of: impl Fn(Sym) -> Option<usize>,
    updates: impl IntoIterator<Item = &'a Update>,
) -> Result<(), ApplyError> {
    let mut introduced: HashMap<Sym, usize> = HashMap::new();
    for u in updates {
        let expected = introduced
            .get(&u.fact.pred)
            .copied()
            .or_else(|| arity_of(u.fact.pred));
        match expected {
            Some(a) if a != u.fact.args.len() => {
                return Err(ApplyError::ArityMismatch {
                    pred: u.fact.pred,
                    expected: a,
                    got: u.fact.args.len(),
                });
            }
            Some(_) => {}
            None => {
                introduced.insert(u.fact.pred, u.fact.args.len());
            }
        }
    }
    Ok(())
}

/// Check that every predicate is used with a single arity across facts,
/// rules and constraints — mismatches must surface as errors at the
/// parse boundary, not as store invariant violations later.
fn validate_arities(
    facts: &[Fact],
    rules: &RuleSet,
    constraints: &[Constraint],
) -> Result<(), LogicError> {
    let mut seen: HashMap<Sym, (usize, String)> = HashMap::new();
    let mut record = |pred: Sym, arity: usize, at: String| -> Result<(), LogicError> {
        match seen.get(&pred) {
            Some((prev, first)) if *prev != arity => Err(LogicError::Parse(ParseError {
                line: 1,
                col: 1,
                message: format!(
                    "predicate {pred} used with arity {arity} in {at} but with arity {prev} in {first}"
                ),
            })),
            Some(_) => Ok(()),
            None => {
                seen.insert(pred, (arity, at));
                Ok(())
            }
        }
    };
    for f in facts {
        record(f.pred, f.args.len(), format!("fact {f}"))?;
    }
    for r in rules.rules() {
        record(r.head.pred, r.head.args.len(), format!("rule {r}"))?;
        for l in &r.body {
            record(l.atom.pred, l.atom.args.len(), format!("rule {r}"))?;
        }
    }
    for c in constraints {
        for occ in c.rq.literals() {
            record(
                occ.literal.atom.pred,
                occ.literal.atom.args.len(),
                format!("constraint {}", c.name),
            )?;
        }
    }
    Ok(())
}

/// Source of process-unique database identities (see [`Database::db_id`]).
static NEXT_DB_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

fn fresh_db_id() -> u64 {
    NEXT_DB_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

/// A deductive database: facts `F`, rules `R`, constraints `I`.
pub struct Database {
    edb: FactSet,
    rules: Arc<RuleSet>,
    constraints: Arc<Vec<Constraint>>,
    model: RwLock<Option<Arc<Model>>>,
    /// Process-unique identity, never shared between two instances —
    /// even clones get a fresh one, because clones evolve (and bump
    /// their revisions) independently, so `(db_id, rule_rev)` globally
    /// identifies one rule set. Prepared-query plans key on that pair.
    db_id: u64,
    /// Monotonic state version: bumped on every effective mutation (fact
    /// or schema). Snapshots pin it; the commit pipeline's first-
    /// committer-wins conflict detection compares against it.
    version: u64,
    /// Component revisions: which *kind* of state moved. `version` is
    /// their sum in spirit; the commit pipeline uses the split to decide
    /// what a schema mutation actually invalidated (constraints never
    /// affect the canonical model, so a constraint-only change must not
    /// drop a maintained model) and to revalidate optimistic
    /// out-of-lock work (rule satisfiability searches).
    fact_rev: u64,
    rule_rev: u64,
    constraint_rev: u64,
}

impl Default for Database {
    fn default() -> Self {
        Database::new()
    }
}

impl Clone for Database {
    fn clone(&self) -> Database {
        Database {
            edb: self.edb.clone(),
            rules: self.rules.clone(),
            constraints: self.constraints.clone(),
            model: RwLock::new(self.model.read().clone()),
            // Fresh identity: the clone's revisions advance on their
            // own from here, so sharing the id would let two different
            // rule sets collide on one (db_id, rule_rev) plan key.
            db_id: fresh_db_id(),
            version: self.version,
            fact_rev: self.fact_rev,
            rule_rev: self.rule_rev,
            constraint_rev: self.constraint_rev,
        }
    }
}

impl Database {
    pub fn new() -> Database {
        Database {
            edb: FactSet::new(),
            rules: Arc::new(RuleSet::empty()),
            constraints: Arc::new(Vec::new()),
            model: RwLock::new(None),
            db_id: fresh_db_id(),
            version: 0,
            fact_rev: 0,
            rule_rev: 0,
            constraint_rev: 0,
        }
    }

    /// Build from parts.
    pub fn with(edb: FactSet, rules: RuleSet, constraints: Vec<Constraint>) -> Database {
        Database {
            edb,
            rules: Arc::new(rules),
            constraints: Arc::new(constraints),
            model: RwLock::new(None),
            db_id: fresh_db_id(),
            version: 0,
            fact_rev: 0,
            rule_rev: 0,
            constraint_rev: 0,
        }
    }

    /// Parse a full program: facts, rules and constraints. Constraints are
    /// normalized to restricted-quantification form; anonymous ones are
    /// named `ic1`, `ic2`, … in source order. Every predicate must be
    /// used with one arity throughout; mismatches are parse errors.
    pub fn parse(src: &str) -> Result<Database, LogicError> {
        let prog = parse_program(src)?;
        let rules = RuleSet::new(prog.rules).map_err(|e| {
            LogicError::Rule(uniform_logic::RuleError {
                var: uniform_logic::Sym::new("_"),
                rule: e.to_string(),
            })
        })?;
        let mut constraints = Vec::new();
        for (i, (name, f)) in prog.constraints.iter().enumerate() {
            let rq = normalize(f)?;
            let name = name.clone().unwrap_or_else(|| format!("ic{}", i + 1));
            constraints.push(Constraint::new(name, rq));
        }
        validate_arities(&prog.facts, &rules, &constraints)?;
        Ok(Database::with(
            FactSet::from_facts(prog.facts),
            rules,
            constraints,
        ))
    }

    /// The arity `pred` is used with anywhere in this database (facts,
    /// rule heads or bodies, constraint literals); `None` for unknown
    /// predicates.
    pub fn arity_of(&self, pred: Sym) -> Option<usize> {
        arity_in(&self.edb, &self.rules, &self.constraints, pred)
    }

    pub fn facts(&self) -> &FactSet {
        &self.edb
    }

    pub fn rules(&self) -> &RuleSet {
        &self.rules
    }

    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    pub fn constraint(&self, name: &str) -> Option<&Constraint> {
        self.constraints.iter().find(|c| c.name == name)
    }

    /// Replace the constraint set (satisfiability checking before doing
    /// this is the subject of §4).
    pub fn set_constraints(&mut self, constraints: Vec<Constraint>) {
        self.constraints = Arc::new(constraints);
        self.version += 1;
        self.constraint_rev += 1;
    }

    pub fn add_constraint(&mut self, c: Constraint) {
        Arc::make_mut(&mut self.constraints).push(c);
        self.version += 1;
        self.constraint_rev += 1;
    }

    /// Replace the rule set; invalidates the cached model.
    pub fn set_rules(&mut self, rules: RuleSet) {
        self.rules = Arc::new(rules);
        *self.model.get_mut() = None;
        self.version += 1;
        self.rule_rev += 1;
    }

    /// The monotonic state version: distinct whenever the database state
    /// (facts or schema) is distinct. [`Snapshot`]s pin the version they
    /// were taken at; the commit pipeline ([`crate::txn`]) uses it for
    /// first-committer-wins conflict detection.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// This instance's process-unique identity. Never equal for two
    /// `Database` values — clones included — so `(db_id, rule_rev)`
    /// identifies one rule set globally; prepared-query plans are
    /// keyed by the pair (a plan built against one database is never
    /// served against another, whatever their revision counters say).
    pub fn db_id(&self) -> u64 {
        self.db_id
    }

    /// Revision of the fact base alone (bumped on every effective fact
    /// mutation, never on schema changes).
    pub fn fact_rev(&self) -> u64 {
        self.fact_rev
    }

    /// Revision of the rule set alone.
    pub fn rule_rev(&self) -> u64 {
        self.rule_rev
    }

    /// Revision of the constraint set alone.
    pub fn constraint_rev(&self) -> u64 {
        self.constraint_rev
    }

    /// Apply an update to the fact base (no integrity checking here — the
    /// guarded path lives in `uniform-integrity`/`uniform-core`).
    /// `Ok(true)` if the database changed, `Ok(false)` for a Def. 1
    /// no-op, and a typed [`ApplyError`] — not a silent `false` or a
    /// store panic — when the update misuses a predicate's arity.
    /// Effective updates invalidate the cached model.
    pub fn apply(&mut self, update: &Update) -> Result<bool, ApplyError> {
        if let Some(expected) = self.arity_of(update.fact.pred) {
            if expected != update.fact.args.len() {
                return Err(ApplyError::ArityMismatch {
                    pred: update.fact.pred,
                    expected,
                    got: update.fact.args.len(),
                });
            }
        }
        let changed = update.apply(&mut self.edb);
        if changed {
            *self.model.get_mut() = None;
            self.version += 1;
            self.fact_rev += 1;
        }
        Ok(changed)
    }

    /// Direct fact insertion (convenience for loading). Panics on arity
    /// misuse — use [`Database::apply`] for a typed error.
    pub fn insert_fact(&mut self, fact: &Fact) -> bool {
        let changed = self.edb.insert(fact);
        if changed {
            *self.model.get_mut() = None;
            self.version += 1;
            self.fact_rev += 1;
        }
        changed
    }

    /// Install an externally produced canonical model into the cache.
    /// Crate-internal: the commit queue's maintained model is the
    /// canonical model of the just-committed state (see
    /// [`crate::txn::CommitQueue`]), so installing it lets the next
    /// [`Database::snapshot`] skip rematerialization entirely.
    pub(crate) fn install_model(&mut self, model: Arc<Model>) {
        *self.model.get_mut() = Some(model);
    }

    /// The canonical model (cached until the next mutation). Concurrent
    /// callers share one materialization: the first to take the write
    /// lock computes, everyone else reuses the `Arc`.
    pub fn model(&self) -> Arc<Model> {
        if let Some(model) = self.model.read().as_ref() {
            return model.clone();
        }
        let mut slot = self.model.write();
        if slot.is_none() {
            *slot = Some(Arc::new(Model::compute(&self.edb, &self.rules)));
        }
        slot.as_ref().expect("just computed").clone()
    }

    /// An immutable, `Send + Sync` read handle on the current state:
    /// facts, rules, constraints and the canonical model, all behind
    /// `Arc`s. Construction clones no tuple data — O(#relations) plus a
    /// model materialization if none was cached — and the handle's
    /// answers are unaffected by later commits to `self`.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            edb: self.edb.clone(),
            rules: self.rules.clone(),
            constraints: self.constraints.clone(),
            model: self.model(),
            db_id: self.db_id,
            version: self.version,
            fact_rev: self.fact_rev,
            rule_rev: self.rule_rev,
            constraint_rev: self.constraint_rev,
        }
    }

    /// Open a transaction: a [`TxnBuilder`] staging updates against a
    /// snapshot of the current state. Commit it through a
    /// [`crate::txn::CommitQueue`] (multi-writer, conflict-detected) or
    /// a single-owner guarded path such as `UniformDatabase::commit`.
    pub fn begin(&self) -> TxnBuilder {
        TxnBuilder::new(self.snapshot())
    }

    /// Truth of a ground atom in the canonical model.
    pub fn holds(&self, fact: &Fact) -> bool {
        self.model().contains(fact)
    }

    /// Evaluate a closed RQ formula in the canonical model.
    pub fn satisfies(&self, rq: &Rq) -> bool {
        satisfies_closed(self.model().as_ref(), rq)
    }

    /// Names of constraints violated in the current state (full check —
    /// the expensive operation integrity maintenance exists to avoid).
    pub fn violated_constraints(&self) -> Vec<String> {
        let model = self.model();
        self.constraints
            .iter()
            .filter(|c| !satisfies_closed(model.as_ref(), &c.rq))
            .map(|c| c.name.clone())
            .collect()
    }

    /// Do all constraints hold in the current state?
    pub fn is_consistent(&self) -> bool {
        self.violated_constraints().is_empty()
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("facts", &self.edb.len())
            .field("rules", &self.rules.len())
            .field("constraints", &self.constraints.len())
            .finish()
    }
}

/// An immutable read view of one database state.
///
/// Cheap to take (no tuple data is cloned), cheap to clone, `Send +
/// Sync`, and stable: answers reflect the state at snapshot time no
/// matter how many transactions commit afterwards. This is the handle
/// concurrent readers evaluate constraints and queries against while a
/// writer keeps the authoritative [`Database`] moving.
#[derive(Clone)]
pub struct Snapshot {
    edb: FactSet,
    rules: Arc<RuleSet>,
    constraints: Arc<Vec<Constraint>>,
    model: Arc<Model>,
    db_id: u64,
    version: u64,
    fact_rev: u64,
    rule_rev: u64,
    constraint_rev: u64,
}

impl Snapshot {
    /// Explicit facts at snapshot time.
    pub fn facts(&self) -> &FactSet {
        &self.edb
    }

    /// The originating database's [`Database::db_id`].
    pub fn db_id(&self) -> u64 {
        self.db_id
    }

    /// The originating database's [`Database::version`] at snapshot time.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The originating database's [`Database::fact_rev`] at snapshot
    /// time. Together with `rule_rev` and `constraint_rev` it pins the
    /// exact semantic state a certain-answer cache entry was computed
    /// against (`version` also counts no-op schema bumps, which cannot
    /// change answers).
    pub fn fact_rev(&self) -> u64 {
        self.fact_rev
    }

    /// The originating database's [`Database::rule_rev`] at snapshot
    /// time. Prepared-query plans are keyed by this revision: a plan
    /// built under one rule revision is never served against another.
    pub fn rule_rev(&self) -> u64 {
        self.rule_rev
    }

    /// The originating database's [`Database::constraint_rev`] at
    /// snapshot time (certain answers depend on the constraint set).
    pub fn constraint_rev(&self) -> u64 {
        self.constraint_rev
    }

    /// The arity `pred` is used with anywhere in the snapshotted state;
    /// `None` for unknown predicates (see [`Database::arity_of`]).
    pub fn arity_of(&self, pred: Sym) -> Option<usize> {
        arity_in(&self.edb, &self.rules, &self.constraints, pred)
    }

    pub fn rules(&self) -> &RuleSet {
        &self.rules
    }

    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// The canonical model at snapshot time.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// The canonical model as a shared handle.
    pub fn model_arc(&self) -> Arc<Model> {
        self.model.clone()
    }

    /// Truth of a ground atom in the snapshot's canonical model.
    pub fn holds(&self, fact: &Fact) -> bool {
        self.model.contains(fact)
    }

    /// Evaluate a closed RQ formula in the snapshot's canonical model.
    pub fn satisfies(&self, rq: &Rq) -> bool {
        satisfies_closed(self.model.as_ref(), rq)
    }

    /// Names of constraints violated at snapshot time.
    pub fn violated_constraints(&self) -> Vec<String> {
        self.constraints
            .iter()
            .filter(|c| !satisfies_closed(self.model.as_ref(), &c.rq))
            .map(|c| c.name.clone())
            .collect()
    }

    pub fn is_consistent(&self) -> bool {
        self.violated_constraints().is_empty()
    }
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("facts", &self.edb.len())
            .field("model", &self.model.len())
            .field("rules", &self.rules.len())
            .field("constraints", &self.constraints.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniform_logic::parse_fact;

    const UNIVERSITY: &str = "
        % §3.2 running example
        student(jack).
        enrolled(X, cs) :- student(X).
        constraint cdb: forall X: student(X) & enrolled(X, cs) -> attends(X, ddb).
    ";

    #[test]
    fn parse_and_query() {
        let db = Database::parse(UNIVERSITY).unwrap();
        assert_eq!(db.facts().len(), 1);
        assert_eq!(db.rules().len(), 1);
        assert_eq!(db.constraints().len(), 1);
        assert!(db.holds(&parse_fact("enrolled(jack, cs).").unwrap()));
        assert!(!db.holds(&parse_fact("attends(jack, ddb).").unwrap()));
        assert_eq!(db.violated_constraints(), vec!["cdb".to_string()]);
    }

    #[test]
    fn updates_invalidate_model() {
        let mut db = Database::parse(UNIVERSITY).unwrap();
        assert!(!db.is_consistent());
        db.apply(&Update::insert(Fact::parse_like(
            "attends",
            &["jack", "ddb"],
        )))
        .unwrap();
        assert!(db.is_consistent());
        db.apply(&Update::delete(Fact::parse_like(
            "attends",
            &["jack", "ddb"],
        )))
        .unwrap();
        assert!(!db.is_consistent());
    }

    #[test]
    fn apply_distinguishes_noops_effects_and_arity_errors() {
        let mut db = Database::parse(UNIVERSITY).unwrap();
        let v0 = db.version();
        // Effective insertion: Ok(true), version moves.
        assert_eq!(
            db.apply(&Update::insert(Fact::parse_like("student", &["jill"]))),
            Ok(true)
        );
        assert!(db.version() > v0);
        // Def. 1 no-op: Ok(false), version unchanged.
        let v1 = db.version();
        assert_eq!(
            db.apply(&Update::insert(Fact::parse_like("student", &["jill"]))),
            Ok(false)
        );
        assert_eq!(db.version(), v1);
        // Arity misuse: typed error, nothing applied, version unchanged.
        let err = db
            .apply(&Update::insert(Fact::parse_like("student", &["a", "b"])))
            .unwrap_err();
        assert_eq!(
            err,
            ApplyError::ArityMismatch {
                pred: Sym::new("student"),
                expected: 1,
                got: 2,
            }
        );
        assert!(err.to_string().contains("arity"), "{err}");
        assert_eq!(db.version(), v1);
        // Deletions with the wrong arity are caught too, including for
        // predicates only known through rules or constraints.
        assert!(db
            .apply(&Update::delete(Fact::parse_like("enrolled", &["jack"])))
            .is_err());
        // Unknown predicates are unconstrained.
        assert_eq!(
            db.apply(&Update::insert(Fact::parse_like("fresh", &["a", "b"]))),
            Ok(true)
        );
    }

    #[test]
    fn anonymous_constraints_get_names() {
        let db =
            Database::parse("constraint: exists X: p(X). constraint: exists X: q(X).").unwrap();
        assert_eq!(db.constraints()[0].name, "ic1");
        assert_eq!(db.constraints()[1].name, "ic2");
        assert!(db.constraint("ic2").is_some());
    }

    #[test]
    fn unstratified_program_rejected() {
        let err = Database::parse("p(X) :- base(X), not q(X). q(X) :- base(X), not p(X).");
        assert!(err.is_err());
    }

    #[test]
    fn non_domain_independent_constraint_rejected() {
        assert!(Database::parse("constraint: forall X: p(X).").is_err());
    }

    #[test]
    fn arity_mismatches_rejected_at_parse() {
        // Fact vs fact.
        let err = Database::parse("p(a). p(a, b).").unwrap_err();
        assert!(err.to_string().contains("arity"), "{err}");
        // Fact vs rule body.
        assert!(Database::parse("r(a). s(X) :- r(X, Y).").is_err());
        // Rule head vs fact.
        assert!(Database::parse("q(X, Y) :- r(X, Y). q(a).").is_err());
        // Constraint literal vs fact.
        assert!(Database::parse("p(a). constraint c: forall X, Y: p(X, Y) -> false.").is_err());
        // Consistent arities parse fine, including zero-arity.
        assert!(Database::parse("flag. p(a). q(X) :- p(X), flag.").is_ok());
    }

    #[test]
    fn database_model_and_snapshot_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Database>();
        assert_send_sync::<Model>();
        assert_send_sync::<Snapshot>();
        assert_send_sync::<FactSet>();
    }

    #[test]
    fn snapshot_answers_survive_later_commits() {
        let mut db = Database::parse(UNIVERSITY).unwrap();
        let before = db.snapshot();
        assert!(before.holds(&parse_fact("enrolled(jack, cs).").unwrap()));
        assert_eq!(before.violated_constraints(), vec!["cdb".to_string()]);

        db.apply(&Update::insert(Fact::parse_like(
            "attends",
            &["jack", "ddb"],
        )))
        .unwrap();
        db.apply(&Update::insert(Fact::parse_like("student", &["jill"])))
            .unwrap();
        db.apply(&Update::insert(Fact::parse_like(
            "attends",
            &["jill", "ddb"],
        )))
        .unwrap();
        let after = db.snapshot();

        // The live database moved on…
        assert!(db.is_consistent());
        assert!(after.holds(&parse_fact("enrolled(jill, cs).").unwrap()));
        // …but the old snapshot still answers from its own state.
        assert!(!before.holds(&parse_fact("attends(jack, ddb).").unwrap()));
        assert!(!before.holds(&parse_fact("student(jill).").unwrap()));
        assert_eq!(before.violated_constraints(), vec!["cdb".to_string()]);
        assert_eq!(before.facts().len(), 1);
    }

    #[test]
    fn snapshots_are_queryable_from_other_threads() {
        let db = Database::parse(UNIVERSITY).unwrap();
        let snap = db.snapshot();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let snap = snap.clone();
                std::thread::spawn(move || {
                    assert!(snap.holds(&parse_fact("enrolled(jack, cs).").unwrap()));
                    snap.violated_constraints().len()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 1);
        }
    }

    #[test]
    fn arity_of_consults_all_sources() {
        let db =
            Database::parse("p(a). q(X, Y) :- r(X, Y). constraint c: forall X: s(X) -> false.")
                .unwrap();
        assert_eq!(db.arity_of(Sym::new("p")), Some(1));
        assert_eq!(db.arity_of(Sym::new("q")), Some(2));
        assert_eq!(db.arity_of(Sym::new("r")), Some(2));
        assert_eq!(db.arity_of(Sym::new("s")), Some(1));
        assert_eq!(db.arity_of(Sym::new("ghost")), None);
    }
}
