//! Canonical-model materialization: stratified semi-naive evaluation.
//!
//! §2: "The semantics of integrity constraints — as of queries in general
//! — are defined according to a canonical interpretation in which the true
//! atoms are exactly those that are explicit in F or derivable from F and
//! R", with R stratified in the sense of Apt–Blair–Walker. This module
//! computes that interpretation bottom-up, stratum by stratum, with
//! semi-naive differentiation inside each stratum.

use crate::cq::solve_conjunction;
use crate::interp::Interp;
use crate::par::par_map;
use crate::program::RuleSet;
use crate::store::FactSet;
use std::collections::HashSet;
use uniform_logic::{Fact, Literal, Rule, Subst, Sym};

/// A materialized canonical model. Wraps a [`FactSet`] holding explicit
/// and derived facts together.
#[derive(Clone, Debug, Default)]
pub struct Model {
    facts: FactSet,
}

impl Model {
    /// Compute the canonical model of `edb` under `rules`.
    pub fn compute(edb: &FactSet, rules: &RuleSet) -> Model {
        Self::compute_restricted(edb, rules, None)
    }

    /// Wrap an already-materialized canonical model. The caller asserts
    /// that `facts` *is* the canonical model of some `(edb, rules)` pair
    /// — this is how the commit pipeline installs the incrementally
    /// maintained model ([`crate::maintain::MaintainedModel`], whose
    /// contents are property-tested against [`Model::compute`]) without
    /// paying a rematerialization.
    pub fn from_facts(facts: FactSet) -> Model {
        Model { facts }
    }

    /// Compute the canonical model restricted to rules whose head is in
    /// `only` (when given). Used by the goal-directed overlay engine to
    /// avoid materializing unrelated predicates: restricting to the
    /// predicates reachable from a goal is sound because derivations only
    /// ever consult reachable predicates.
    pub fn compute_restricted(edb: &FactSet, rules: &RuleSet, only: Option<&[Sym]>) -> Model {
        let mut facts = edb.clone();
        let graph = rules.graph();
        let height = graph.height();
        let relevant = |rule: &Rule| only.is_none_or(|set| set.contains(&rule.head.pred));

        for stratum in 0..height {
            // Rules of this stratum (by head predicate).
            let layer: Vec<&Rule> = rules
                .rules()
                .iter()
                .filter(|r| graph.stratum(r.head.pred) == stratum && relevant(r))
                .collect();
            if layer.is_empty() {
                continue;
            }

            // Naive first round: derive from everything present. Rules of
            // a stratum are independent given the fixed pre-round state,
            // so the batch fans out across threads; merging per-rule
            // results in rule order keeps fact-insertion order identical
            // to a sequential run (iteration order is load-bearing, see
            // `store`).
            let mut delta: Vec<Fact> = Vec::new();
            let mut delta_set: HashSet<Fact> = HashSet::new();
            let facts_ref = &facts;
            let per_rule: Vec<Vec<Fact>> = par_map(&layer, |rule| {
                // Dedup within the rule (a fact derivable through many
                // bindings is emitted once); the merge below dedups
                // across rules.
                let mut out = Vec::new();
                let mut seen: HashSet<Fact> = HashSet::new();
                derive_all(facts_ref, rule, &mut |f| {
                    if !facts_ref.contains(&f) && seen.insert(f.clone()) {
                        out.push(f);
                    }
                });
                out
            });
            for f in per_rule.into_iter().flatten() {
                if delta_set.insert(f.clone()) {
                    delta.push(f);
                }
            }
            for f in &delta {
                facts.insert(f);
            }

            // Semi-naive rounds: each new round only fires rules through a
            // body literal matching a delta fact of the previous round.
            // Same fan-out shape: every rule processes the whole delta
            // against the fixed pre-round state, results merge in rule
            // order.
            while !delta.is_empty() {
                let mut next: Vec<Fact> = Vec::new();
                let mut next_set: HashSet<Fact> = HashSet::new();
                let facts_ref = &facts;
                let delta_ref = &delta;
                let per_rule: Vec<Vec<Fact>> = par_map(&layer, |rule| {
                    let mut out = Vec::new();
                    let mut seen: HashSet<Fact> = HashSet::new();
                    for (pos, lit) in rule.body.iter().enumerate() {
                        if !lit.positive {
                            continue;
                        }
                        // Only differentiate on literals of this stratum's
                        // IDB predicates: lower-stratum and EDB relations
                        // cannot have grown during this stratum.
                        if graph.stratum(lit.atom.pred) != stratum || !graph.is_idb(lit.atom.pred) {
                            continue;
                        }
                        for d in delta_ref {
                            derive_through(facts_ref, rule, pos, d, &mut |f| {
                                if !facts_ref.contains(&f) && seen.insert(f.clone()) {
                                    out.push(f);
                                }
                            });
                        }
                    }
                    out
                });
                for f in per_rule.into_iter().flatten() {
                    if next_set.insert(f.clone()) {
                        next.push(f);
                    }
                }
                for f in &next {
                    facts.insert(f);
                }
                delta = next;
            }
        }
        Model { facts }
    }

    pub fn facts(&self) -> &FactSet {
        &self.facts
    }

    pub fn len(&self) -> usize {
        self.facts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    pub fn contains(&self, fact: &Fact) -> bool {
        self.facts.contains(fact)
    }

    pub fn iter(&self) -> impl Iterator<Item = Fact> + '_ {
        self.facts.iter()
    }

    /// Facts present in `self` but not in `other` — the positive half of
    /// an induced-update diff.
    pub fn difference(&self, other: &Model) -> Vec<Fact> {
        self.iter().filter(|f| !other.contains(f)).collect()
    }
}

impl Interp for Model {
    fn holds(&self, fact: &Fact) -> bool {
        self.facts.contains(fact)
    }

    fn scan(
        &self,
        pred: Sym,
        pattern: &[Option<Sym>],
        each: &mut dyn FnMut(&[Sym]) -> bool,
    ) -> bool {
        self.facts.scan(pred, pattern, each)
    }
}

/// Fire `rule` in `interp`, emitting every (possibly already known) head
/// fact.
fn derive_all(interp: &dyn Interp, rule: &Rule, emit: &mut dyn FnMut(Fact)) {
    let mut subst = Subst::new();
    solve_conjunction(interp, &rule.body, &mut subst, &mut |s| {
        if let Some(f) = s.ground_atom(&rule.head) {
            emit(f);
        }
        true
    });
}

/// Fire `rule` with body literal `pos` bound to the delta fact `d` and the
/// remaining literals evaluated in `interp`.
fn derive_through(
    interp: &dyn Interp,
    rule: &Rule,
    pos: usize,
    d: &Fact,
    emit: &mut dyn FnMut(Fact),
) {
    let lit = &rule.body[pos];
    let Some(mut subst) = uniform_logic::match_atom(&lit.atom, d) else {
        return;
    };
    let rest: Vec<Literal> = rule.body_without(pos);
    solve_conjunction(interp, &rest, &mut subst, &mut |s| {
        if let Some(f) = s.ground_atom(&rule.head) {
            emit(f);
        }
        true
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniform_logic::{parse_fact, parse_rule};

    fn edb(facts: &[&str]) -> FactSet {
        FactSet::from_facts(facts.iter().map(|f| parse_fact(f).unwrap()))
    }

    fn rules(srcs: &[&str]) -> RuleSet {
        RuleSet::new(srcs.iter().map(|s| parse_rule(s).unwrap()).collect()).unwrap()
    }

    #[test]
    fn flat_rule_derivation() {
        let m = Model::compute(
            &edb(&["leads(ann, sales)."]),
            &rules(&["member(X,Y) :- leads(X,Y)."]),
        );
        assert!(m.contains(&parse_fact("member(ann, sales).").unwrap()));
        assert!(m.contains(&parse_fact("leads(ann, sales).").unwrap()));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn transitive_closure_linear() {
        let m = Model::compute(
            &edb(&["edge(a,b).", "edge(b,c).", "edge(c,d)."]),
            &rules(&["tc(X,Y) :- edge(X,Y).", "tc(X,Z) :- tc(X,Y), edge(Y,Z)."]),
        );
        for (x, y) in [("a", "b"), ("a", "c"), ("a", "d"), ("b", "d"), ("c", "d")] {
            assert!(
                m.contains(&Fact::parse_like("tc", &[x, y])),
                "missing tc({x},{y})"
            );
        }
        assert_eq!(m.iter().filter(|f| f.pred == Sym::new("tc")).count(), 6);
    }

    #[test]
    fn transitive_closure_nonlinear() {
        let m = Model::compute(
            &edb(&["edge(a,b).", "edge(b,c).", "edge(c,a)."]),
            &rules(&["tc(X,Y) :- edge(X,Y).", "tc(X,Z) :- tc(X,Y), tc(Y,Z)."]),
        );
        // Cycle: everything reaches everything.
        assert_eq!(m.iter().filter(|f| f.pred == Sym::new("tc")).count(), 9);
    }

    #[test]
    fn stratified_negation() {
        let m = Model::compute(
            &edb(&["node(a).", "node(b).", "node(c).", "edge(a,b)."]),
            &rules(&[
                "reach(X,Y) :- edge(X,Y).",
                "reach(X,Z) :- reach(X,Y), edge(Y,Z).",
                "unreach(X,Y) :- node(X), node(Y), not reach(X,Y).",
            ]),
        );
        assert!(m.contains(&Fact::parse_like("unreach", &["b", "a"])));
        assert!(m.contains(&Fact::parse_like("unreach", &["a", "c"])));
        assert!(!m.contains(&Fact::parse_like("unreach", &["a", "b"])));
        // a cannot reach a (no self loop).
        assert!(m.contains(&Fact::parse_like("unreach", &["a", "a"])));
    }

    #[test]
    fn mutual_recursion_even_odd() {
        let m = Model::compute(
            &edb(&["zero(n0).", "succ(n0,n1).", "succ(n1,n2).", "succ(n2,n3)."]),
            &rules(&[
                "even(X) :- zero(X).",
                "even(X) :- succ(Y,X), odd(Y).",
                "odd(X) :- succ(Y,X), even(Y).",
            ]),
        );
        assert!(m.contains(&Fact::parse_like("even", &["n0"])));
        assert!(m.contains(&Fact::parse_like("odd", &["n1"])));
        assert!(m.contains(&Fact::parse_like("even", &["n2"])));
        assert!(m.contains(&Fact::parse_like("odd", &["n3"])));
        assert!(!m.contains(&Fact::parse_like("odd", &["n0"])));
        assert!(!m.contains(&Fact::parse_like("even", &["n1"])));
    }

    #[test]
    fn idb_predicates_can_have_edb_facts() {
        let m = Model::compute(
            &edb(&["member(bob, hr).", "leads(ann, sales)."]),
            &rules(&["member(X,Y) :- leads(X,Y)."]),
        );
        assert!(m.contains(&Fact::parse_like("member", &["bob", "hr"])));
        assert!(m.contains(&Fact::parse_like("member", &["ann", "sales"])));
    }

    #[test]
    fn restricted_computation_skips_unreachable_heads() {
        let m = Model::compute_restricted(
            &edb(&["p(a).", "q(a)."]),
            &rules(&["r(X) :- p(X).", "s(X) :- q(X)."]),
            Some(&[Sym::new("r")]),
        );
        assert!(m.contains(&Fact::parse_like("r", &["a"])));
        assert!(!m.contains(&Fact::parse_like("s", &["a"])));
    }

    #[test]
    fn difference_detects_induced_changes() {
        let rules = rules(&["member(X,Y) :- leads(X,Y)."]);
        let before = Model::compute(&edb(&[]), &rules);
        let after = Model::compute(&edb(&["leads(c, b)."]), &rules);
        let mut diff: Vec<String> = after
            .difference(&before)
            .iter()
            .map(|f| f.to_string())
            .collect();
        diff.sort();
        assert_eq!(diff, vec!["leads(c,b)", "member(c,b)"]);
    }

    #[test]
    fn same_generation() {
        let m = Model::compute(
            &edb(&[
                "parent(a, b).",
                "parent(a, c).",
                "parent(b, d).",
                "parent(c, e).",
            ]),
            &rules(&[
                "sg(X,X) :- person(X).",
                "person(X) :- parent(X, Y).",
                "person(Y) :- parent(X, Y).",
                "sg(X,Y) :- parent(PX, X), sg(PX, PY), parent(PY, Y).",
            ]),
        );
        assert!(m.contains(&Fact::parse_like("sg", &["b", "c"])));
        assert!(m.contains(&Fact::parse_like("sg", &["d", "e"])));
        assert!(!m.contains(&Fact::parse_like("sg", &["b", "e"])));
    }
}
