//! Key-fingerprint read footprints for sub-relation conflict detection.
//!
//! PR 2's commit pipeline detected conflicts over *relation-level*
//! read/write sets: any write into a relation a transaction read
//! refused that transaction, so a single hot relation serialized every
//! writer. But the paper's checking method is delta-driven — a check's
//! verdict depends on the tuples its simplified instances actually
//! probed, which are pinned down by the constants in those instances.
//! This module narrows the read set accordingly: a read is either
//! [`RelAccess::Whole`] (genuinely unbounded — any later write
//! conflicts) or a set of [`KeyFp`] *key fingerprints*, each the hash
//! of the bound argument positions of one access pattern. A committed
//! write conflicts with a key-level read only when the written tuple's
//! projection onto the read's bound positions matches the fingerprint
//! — so writers appending disjoint keys to the same relation admit
//! concurrently (`b6_hot_relation` measures exactly this).
//!
//! Fingerprints compare by hash, so a collision can only produce a
//! *spurious* conflict (the loser retries against a fresh snapshot —
//! safe), never a missed one: soundness of admission does not depend
//! on the hash. Hashing uses [`DefaultHasher`], whose keys are fixed
//! per build, and nothing here exposes an iteration order that could
//! leak hash-dependence into user-visible output.

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, BTreeSet};
use std::hash::{Hash, Hasher};
use uniform_logic::Sym;

/// One access pattern of an integrity check: the predicate it probed
/// and, per argument position, the constant that position was bound to
/// (`None` = unbounded). The integrity checker derives these from the
/// constants of its simplified instances (see
/// `uniform_integrity::CheckReport::read_patterns`); the commit
/// pipeline records them via `TxnBuilder::record_read_patterns`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReadPattern {
    pub pred: Sym,
    pub args: Vec<Option<Sym>>,
}

impl ReadPattern {
    /// A fully unbounded pattern (reads the whole relation).
    pub fn whole(pred: Sym, arity: usize) -> ReadPattern {
        ReadPattern {
            pred,
            args: vec![None; arity],
        }
    }

    /// Is any argument position bound?
    pub fn is_bounded(&self) -> bool {
        self.args.iter().any(|a| a.is_some())
    }
}

/// Fingerprint of a bounded access: a bitmask of the bound argument
/// positions plus a hash of the bound constants in position order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct KeyFp {
    mask: u32,
    hash: u64,
}

impl KeyFp {
    /// Fingerprint of a binding pattern; `None` when no position is
    /// bound or the arity exceeds the 32-position mask (both mean the
    /// access must be recorded as [`RelAccess::Whole`]).
    pub fn of_pattern(args: &[Option<Sym>]) -> Option<KeyFp> {
        let mut mask = 0u32;
        let mut h = DefaultHasher::new();
        for (i, a) in args.iter().enumerate() {
            if let Some(c) = a {
                if i >= 32 {
                    return None;
                }
                mask |= 1 << i;
                i.hash(&mut h);
                c.hash(&mut h);
            }
        }
        (mask != 0).then(|| KeyFp {
            mask,
            hash: h.finish(),
        })
    }

    /// Fingerprint of a ground tuple (every position bound) — what a
    /// staged write reads under Def. 1's effectiveness membership test.
    pub fn of_tuple(args: &[Sym]) -> Option<KeyFp> {
        if args.is_empty() || args.len() > 32 {
            return None;
        }
        let mut mask = 0u32;
        let mut h = DefaultHasher::new();
        for (i, c) in args.iter().enumerate() {
            mask |= 1 << i;
            i.hash(&mut h);
            c.hash(&mut h);
        }
        Some(KeyFp {
            mask,
            hash: h.finish(),
        })
    }

    /// Does a written ground tuple fall under this key? Projects the
    /// tuple onto the key's bound positions and compares fingerprints.
    pub fn covers(&self, tuple: &[Sym]) -> bool {
        let mut h = DefaultHasher::new();
        for (i, c) in tuple.iter().enumerate() {
            if i < 32 && self.mask & (1 << i) != 0 {
                i.hash(&mut h);
                c.hash(&mut h);
            }
        }
        h.finish() == self.hash
    }
}

/// Which granularity refused a conflicting commit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConflictGranularity {
    /// An unbounded ([`RelAccess::Whole`]) read overlapped a write.
    Relation,
    /// A key fingerprint matched a written tuple.
    Key,
}

/// One relation's entry in a read footprint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RelAccess {
    /// Unbounded: the verdict depended on the relation as a whole; any
    /// later write into it conflicts.
    Whole,
    /// Bounded: only writes whose tuples match one of these key
    /// fingerprints conflict.
    Keys(BTreeSet<KeyFp>),
}

/// Distinct key fingerprints a relation may accumulate before its
/// entry widens to [`RelAccess::Whole`] (bounding both memory and the
/// per-write conflict scan).
const MAX_KEYS_PER_RELATION: usize = 64;

/// The read footprint of a transaction: per relation, an unbounded
/// access or a set of key fingerprints. Merging is monotonic — `Whole`
/// absorbs keys, and overflowing `MAX_KEYS_PER_RELATION` widens to
/// `Whole` (sound: widening can only add conflicts, never hide one).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReadFootprint {
    map: BTreeMap<Sym, RelAccess>,
    /// Relations whose key set overflowed [`MAX_KEYS_PER_RELATION`]: an
    /// explicit sticky latch, consulted before every key-level record,
    /// so the widening to `Whole` can never be reverted — not even by a
    /// code path that rebuilds or replaces the relation's entry. Kept
    /// separate from `map` so overflow-widening stays distinguishable
    /// from a deliberate [`ReadFootprint::record_whole`]
    /// (`ConflictStats::whole_relation_fallbacks` counts the former).
    widened: BTreeSet<Sym>,
}

impl ReadFootprint {
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Relations read, in `Sym` order.
    pub fn relations(&self) -> impl Iterator<Item = Sym> + '_ {
        self.map.keys().copied()
    }

    pub fn get(&self, pred: Sym) -> Option<&RelAccess> {
        self.map.get(&pred)
    }

    /// Does any relation carry an unbounded (`Whole`) access?
    pub fn has_unbounded(&self) -> bool {
        self.map.values().any(|a| matches!(a, RelAccess::Whole))
    }

    /// Record an unbounded read of `pred`.
    pub fn record_whole(&mut self, pred: Sym) {
        self.map.insert(pred, RelAccess::Whole);
    }

    /// Record a key-level read of `pred`. Once the relation's key set
    /// has overflowed, every further key-level read stays a
    /// whole-relation one (the latch, not the entry, is authoritative).
    pub fn record_key(&mut self, pred: Sym, fp: KeyFp) {
        if self.widened.contains(&pred) {
            self.map.insert(pred, RelAccess::Whole);
            return;
        }
        let entry = self
            .map
            .entry(pred)
            .or_insert_with(|| RelAccess::Keys(BTreeSet::new()));
        if let RelAccess::Keys(keys) = entry {
            keys.insert(fp);
            if keys.len() > MAX_KEYS_PER_RELATION {
                *entry = RelAccess::Whole;
                self.widened.insert(pred);
            }
        }
    }

    /// Did `pred` widen to an unbounded read by key overflow (as
    /// opposed to a deliberate [`ReadFootprint::record_whole`])?
    pub fn overflowed(&self, pred: Sym) -> bool {
        self.widened.contains(&pred)
    }

    /// Record a binding-pattern read: key-level when the pattern pins
    /// at least one position, unbounded otherwise.
    pub fn record_pattern(&mut self, pattern: &ReadPattern) {
        match KeyFp::of_pattern(&pattern.args) {
            Some(fp) => self.record_key(pattern.pred, fp),
            None => self.record_whole(pattern.pred),
        }
    }

    /// Record the read a staged write implies: Def. 1 effectiveness is
    /// a membership test of one ground tuple — a key-level read, never
    /// a whole-relation one.
    pub fn record_tuple(&mut self, pred: Sym, args: &[Sym]) {
        match KeyFp::of_tuple(args) {
            Some(fp) => self.record_key(pred, fp),
            None => self.record_whole(pred),
        }
    }

    /// Would a committed write of `tuple` into `pred` invalidate this
    /// footprint, and at which granularity?
    pub fn conflicts_with_write(&self, pred: Sym, tuple: &[Sym]) -> Option<ConflictGranularity> {
        match self.map.get(&pred)? {
            RelAccess::Whole => Some(ConflictGranularity::Relation),
            RelAccess::Keys(keys) => keys
                .iter()
                .any(|fp| fp.covers(tuple))
                .then_some(ConflictGranularity::Key),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn syms(parts: &[&str]) -> Vec<Sym> {
        parts.iter().map(|s| Sym::new(s)).collect()
    }

    #[test]
    fn tuple_fingerprints_cover_exactly_their_tuple_modulo_hash() {
        let fp = KeyFp::of_tuple(&syms(&["k1", "v1"])).unwrap();
        assert!(fp.covers(&syms(&["k1", "v1"])));
        assert!(!fp.covers(&syms(&["k1", "v2"])));
        assert!(!fp.covers(&syms(&["k2", "v1"])));
    }

    #[test]
    fn pattern_fingerprints_project_bound_positions() {
        // Bound first position only: covers any tuple with that key.
        let fp = KeyFp::of_pattern(&[Some(Sym::new("k1")), None]).unwrap();
        assert!(fp.covers(&syms(&["k1", "v1"])));
        assert!(fp.covers(&syms(&["k1", "v2"])));
        assert!(!fp.covers(&syms(&["k2", "v1"])));
        // An all-unbound pattern has no key.
        assert_eq!(KeyFp::of_pattern(&[None, None]), None);
        // Zero-arity tuples have no key either (the relation is the key).
        assert_eq!(KeyFp::of_tuple(&[]), None);
    }

    #[test]
    fn footprint_conflicts_at_the_right_granularity() {
        let p = Sym::new("p");
        let q = Sym::new("q");
        let mut fp = ReadFootprint::default();
        fp.record_tuple(p, &syms(&["a", "1"]));
        fp.record_whole(q);
        assert_eq!(
            fp.conflicts_with_write(p, &syms(&["a", "1"])),
            Some(ConflictGranularity::Key)
        );
        assert_eq!(fp.conflicts_with_write(p, &syms(&["b", "1"])), None);
        assert_eq!(
            fp.conflicts_with_write(q, &syms(&["anything"])),
            Some(ConflictGranularity::Relation)
        );
        assert_eq!(fp.conflicts_with_write(Sym::new("r"), &syms(&["x"])), None);
        assert!(fp.has_unbounded());
    }

    #[test]
    fn whole_absorbs_keys_and_overflow_widens() {
        let p = Sym::new("p");
        let mut fp = ReadFootprint::default();
        fp.record_whole(p);
        fp.record_tuple(p, &syms(&["a"]));
        assert!(matches!(fp.get(p), Some(RelAccess::Whole)));

        let mut fp = ReadFootprint::default();
        for i in 0..(MAX_KEYS_PER_RELATION + 1) {
            fp.record_tuple(p, &syms(&[&format!("k{i}")]));
        }
        assert!(
            matches!(fp.get(p), Some(RelAccess::Whole)),
            "past the cap the entry widens to a whole-relation read"
        );
        assert_eq!(
            fp.conflicts_with_write(p, &syms(&["never-recorded"])),
            Some(ConflictGranularity::Relation)
        );
    }

    #[test]
    fn overflow_widening_latches_and_never_reverts() {
        let p = Sym::new("p");
        let q = Sym::new("q");
        let mut fp = ReadFootprint::default();
        for i in 0..(MAX_KEYS_PER_RELATION + 1) {
            fp.record_tuple(p, &syms(&[&format!("k{i}")]));
        }
        assert!(fp.overflowed(p), "the overflow sets the latch");
        assert!(fp.has_unbounded());

        // Any further key-level read of the latched relation stays a
        // whole-relation read — it must never rebuild a `Keys` entry
        // that would hide the earlier unbounded dependence.
        fp.record_tuple(p, &syms(&["later"]));
        assert!(matches!(fp.get(p), Some(RelAccess::Whole)));
        assert_eq!(
            fp.conflicts_with_write(p, &syms(&["unrelated"])),
            Some(ConflictGranularity::Relation),
            "latched relations conflict at relation granularity"
        );

        // A deliberate whole-relation read is *not* an overflow: the
        // latch keeps the two distinguishable for ConflictStats.
        fp.record_whole(q);
        assert!(!fp.overflowed(q));
        assert!(fp.overflowed(p));
    }
}
