//! A hash-striped, evaluate-once concurrent memo.
//!
//! One `Mutex<HashMap>` would serialize every probe of a parallel
//! evaluation loop; striping by key hash lets probes of *different*
//! keys proceed on different locks, while probes of the *same* key meet
//! on one stripe and then on that key's `OnceLock` slot — exactly one
//! prober computes, racers block on the slot, and the evaluate-once
//! guarantee holds regardless of scheduling. Shared by the overlay
//! engine's ground-goal memo ([`crate::topdown::OverlayEngine`]) and
//! the delta engine's pattern memo (`uniform-integrity`).

use parking_lot::Mutex;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, OnceLock};

/// Number of lock stripes: enough to make same-stripe collisions rare
/// for the handful of worker threads a checker fans out.
const STRIPES: usize = 16;

pub struct StripedMemo<K, V> {
    stripes: Vec<Mutex<HashMap<K, Arc<OnceLock<V>>>>>,
}

impl<K: Hash + Eq + Clone, V> StripedMemo<K, V> {
    pub fn new() -> StripedMemo<K, V> {
        StripedMemo {
            stripes: (0..STRIPES).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    /// The memo slot for `key`, creating it if absent. Only the slot's
    /// stripe is locked, and only for the probe; computation happens
    /// outside every stripe lock, on the returned `OnceLock`.
    pub fn slot(&self, key: &K) -> Arc<OnceLock<V>> {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        let stripe = &self.stripes[hasher.finish() as usize % STRIPES];
        let mut memo = stripe.lock();
        match memo.get(key) {
            Some(slot) => slot.clone(),
            None => {
                let slot = Arc::new(OnceLock::new());
                memo.insert(key.clone(), slot.clone());
                slot
            }
        }
    }
}

impl<K: Hash + Eq + Clone, V> Default for StripedMemo<K, V> {
    fn default() -> Self {
        StripedMemo::new()
    }
}
