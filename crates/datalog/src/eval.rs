//! Evaluation of restricted-quantification formulas over an
//! interpretation.
//!
//! This is the evaluator behind `evaluate` (queries against the current
//! database) and — composed with the overlay engine — behind `new`
//! (queries against the simulated updated database, §3.3.2). Restricted
//! quantification is what makes it domain independent: a `∀`/`∃` only
//! enumerates the solutions of its range conjunction, never the whole
//! domain.

use crate::cq::solve_conjunction;
use crate::interp::Interp;
use uniform_logic::{Literal, Rq, Subst};

/// Does `interp ⊨ rq·subst`? All free variables of `rq` must be bound by
/// `subst`; quantified variables are bound by range enumeration.
///
/// # Panics
/// On literals that are not ground when reached. Constraints validated by
/// [`uniform_logic::normalize()`] (closed + range-restricted) never trigger
/// this.
pub fn satisfies(interp: &dyn Interp, rq: &Rq, subst: &mut Subst) -> bool {
    match rq {
        Rq::True => true,
        Rq::False => false,
        Rq::Lit(l) => {
            let atom = subst.apply_atom(&l.atom);
            let fact = atom.to_fact().unwrap_or_else(|| {
                panic!("literal {atom} not ground during evaluation (unrestricted variable?)")
            });
            interp.holds(&fact) == l.positive
        }
        Rq::And(gs) => gs.iter().all(|g| satisfies(interp, g, subst)),
        Rq::Or(gs) => gs.iter().any(|g| satisfies(interp, g, subst)),
        Rq::Forall { range, body, .. } => {
            let lits: Vec<Literal> = range.iter().map(|a| a.clone().pos()).collect();
            // Completed enumeration == no counterexample found.
            solve_conjunction(interp, &lits, subst, &mut |s| satisfies(interp, body, s))
        }
        Rq::Exists { range, body, .. } => {
            let lits: Vec<Literal> = range.iter().map(|a| a.clone().pos()).collect();
            // Aborted enumeration == witness found.
            !solve_conjunction(interp, &lits, subst, &mut |s| !satisfies(interp, body, s))
        }
    }
}

/// Evaluate a closed formula.
pub fn satisfies_closed(interp: &dyn Interp, rq: &Rq) -> bool {
    satisfies(interp, rq, &mut Subst::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::FactSet;
    use uniform_logic::{normalize, parse_fact, parse_formula, Fact, Sym, Term};

    fn db(facts: &[&str]) -> FactSet {
        FactSet::from_facts(facts.iter().map(|f| parse_fact(f).unwrap()))
    }

    fn rq(src: &str) -> Rq {
        normalize(&parse_formula(src).unwrap()).unwrap()
    }

    #[test]
    fn ground_literals() {
        let fs = db(&["p(a)."]);
        assert!(satisfies_closed(&fs, &rq("p(a)")));
        assert!(!satisfies_closed(&fs, &rq("p(b)")));
        assert!(satisfies_closed(&fs, &rq("~p(b)")));
    }

    #[test]
    fn universal_with_range() {
        let fs = db(&["student(jack).", "enrolled(jack, cs)."]);
        assert!(satisfies_closed(
            &fs,
            &rq("forall X: student(X) -> enrolled(X, cs)")
        ));
        let fs2 = db(&["student(jack).", "student(jill).", "enrolled(jack, cs)."]);
        assert!(!satisfies_closed(
            &fs2,
            &rq("forall X: student(X) -> enrolled(X, cs)")
        ));
    }

    #[test]
    fn existential_with_range() {
        let fs = db(&["employee(a)."]);
        assert!(satisfies_closed(&fs, &rq("exists X: employee(X)")));
        assert!(!satisfies_closed(&db(&[]), &rq("exists X: employee(X)")));
    }

    #[test]
    fn nested_quantifiers_paper_c1() {
        // §5 constraint (1): every employee is member of some department.
        let c = rq("forall X: employee(X) -> (exists Y: department(Y) & member(X,Y))");
        let ok = db(&["employee(a).", "department(b).", "member(a,b)."]);
        assert!(satisfies_closed(&ok, &c));
        let missing_dept = db(&["employee(a).", "member(a,b)."]);
        assert!(!satisfies_closed(&missing_dept, &c));
        let empty = db(&[]);
        assert!(satisfies_closed(&empty, &c), "universal holds vacuously");
    }

    #[test]
    fn negative_body_literal() {
        let c = rq("forall X: subordinate(X, X) -> false");
        assert!(satisfies_closed(&db(&[]), &c));
        assert!(!satisfies_closed(&db(&["subordinate(a,a)."]), &c));
        assert!(satisfies_closed(&db(&["subordinate(a,b)."]), &c));
    }

    #[test]
    fn free_variables_from_outer_subst() {
        let fs = db(&["enrolled(jack, cs).", "attends(jack, ddb)."]);
        // Open instance: enrolled(X, cs) -> attends(X, ddb) with X bound
        // externally, as happens when evaluating simplified instances.
        let c = rq("forall X: enrolled(X, cs) -> attends(X, ddb)");
        // Strip the quantifier by binding X via the range; instead check
        // the closed form both ways.
        assert!(satisfies_closed(&fs, &c));
        let mut s = Subst::new();
        s.bind(Sym::new("V"), Term::from_name("jack"));
        let open = Rq::Lit(uniform_logic::Atom::parse_like("attends", &["V", "ddb"]).pos());
        assert!(satisfies(&fs, &open, &mut s));
    }

    #[test]
    fn conjunction_and_disjunction() {
        let fs = db(&["p(a).", "q(b)."]);
        assert!(satisfies_closed(&fs, &rq("p(a) & q(b)")));
        assert!(!satisfies_closed(&fs, &rq("p(a) & q(a)")));
        assert!(satisfies_closed(&fs, &rq("p(x) | q(b)")));
    }

    #[test]
    fn forall_nested_under_exists() {
        // There is a department all of whose members lead it.
        let c = rq("exists Y: department(Y) & (forall X: member(X,Y) -> leads(X,Y))");
        let ok = db(&["department(d).", "member(a,d).", "leads(a,d)."]);
        assert!(satisfies_closed(&ok, &c));
        let no = db(&["department(d).", "member(a,d)."]);
        assert!(!satisfies_closed(&no, &c));
        // Vacuous inner forall: department with no members qualifies.
        let vac = db(&["department(d)."]);
        assert!(satisfies_closed(&vac, &c));
    }

    #[test]
    fn agreement_with_naive_semantics() {
        use uniform_logic::semantics::{eval_closed, FiniteInterp};
        let sources = [
            "forall X: employee(X) -> (exists Y: department(Y) & member(X,Y))",
            "forall X, Y: member(X,Y) -> (forall Z: leads(Z,Y) -> subordinate(X,Z))",
            "exists X: employee(X)",
            "forall X: ~subordinate(X,X)",
        ];
        let dbs: Vec<FactSet> = vec![
            db(&[]),
            db(&["employee(a)."]),
            db(&["employee(a).", "department(b).", "member(a,b)."]),
            db(&["member(a,b).", "leads(c,b).", "subordinate(a,c)."]),
            db(&["member(a,b).", "leads(c,b)."]),
            db(&["subordinate(a,a)."]),
        ];
        for src in sources {
            let f = parse_formula(src).unwrap();
            let r = rq(src);
            for fs in &dbs {
                let facts: Vec<Fact> = fs.iter().collect();
                let naive = FiniteInterp::from_facts(facts);
                assert_eq!(
                    satisfies_closed(fs, &r),
                    eval_closed(&f, &naive),
                    "mismatch for {src} on {naive:?}"
                );
            }
        }
    }
}
