//! B4: repair-engine latency and violation-policy commit throughput.
//!
//! Two measurements over the `violation_mix` workload (four constraint
//! classes, violation-heavy streams):
//!
//! * `repair_latency` — one full minimal-repair enumeration
//!   (`RepairEngine::repairs`) per iteration, at increasing raw-churn
//!   levels (more churn → more simultaneous violations → deeper
//!   enforcement).
//! * `commit_mix` — processing one violation-heavy stream through a
//!   [`ConcurrentDatabase`] under each [`ViolationPolicy`]: `reject`
//!   (violations refused — the baseline cost of saying no), `explain`
//!   (refused plus a minimal-repair diagnostic) and `auto_repair`
//!   (repair delta folded in and committed). The per-transaction gap
//!   between `reject` and `auto_repair` is the price of
//!   inconsistency-tolerant writes.
//!
//! [`ConcurrentDatabase`]: uniform::ConcurrentDatabase
//! [`ViolationPolicy`]: uniform::ViolationPolicy

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::{Duration, Instant};
use uniform::workload;
use uniform::{ConcurrentDatabase, RepairEngine, UniformOptions, ViolationPolicy};
use uniform_bench::{obs_footer, shared_obs};

const CHURN: &[usize] = &[2, 4, 6];

fn bench_repair_latency(c: &mut Criterion) {
    let obs = shared_obs();
    let mut group = c.benchmark_group("b4_repair_latency");
    for &churn in CHURN {
        group.bench_with_input(BenchmarkId::new("repairs", churn), &churn, |b, &churn| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for i in 0..iters {
                    let db = workload::violation_state(churn, i);
                    let engine = RepairEngine::new(
                        db.facts().clone(),
                        db.rules().clone(),
                        db.constraints().to_vec(),
                    )
                    .with_obs(obs.clone());
                    let t0 = Instant::now();
                    let out = engine.repairs();
                    total += t0.elapsed();
                    assert!(out.is_ok(), "violation_mix states are repairable");
                }
                total
            });
        });
    }
    group.finish();
    obs_footer("b4_repair_latency", &obs.report());
}

fn bench_policy_throughput(c: &mut Criterion) {
    let obs = shared_obs();
    let mut group = c.benchmark_group("b4_policy_throughput");
    group.sample_size(10);
    const PER_WRITER: usize = 16;
    for (label, policy) in [
        ("reject", ViolationPolicy::Reject),
        ("explain", ViolationPolicy::Explain),
        ("auto_repair", ViolationPolicy::AutoRepair),
    ] {
        group.bench_with_input(
            BenchmarkId::new(label, PER_WRITER),
            &policy,
            |b, &policy| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for i in 0..iters {
                        let db = ConcurrentDatabase::from_database_with_obs(
                            workload::violation_mix_db(i),
                            UniformOptions {
                                violation_policy: policy,
                                ..UniformOptions::default()
                            },
                            obs.clone(),
                        );
                        let stream = workload::violation_mix_stream(0, PER_WRITER, i);
                        let t0 = Instant::now();
                        let mut admitted = 0usize;
                        for tx in &stream {
                            if db.commit_transaction(tx).is_ok() {
                                admitted += 1;
                            }
                        }
                        total += t0.elapsed();
                        if policy == ViolationPolicy::AutoRepair {
                            // Every transaction lands (repaired if need
                            // be) and the state stays consistent.
                            assert!(db.with_database(|d| d.is_consistent()));
                            assert!(admitted >= stream.len() / 2);
                        }
                    }
                    total
                });
            },
        );
    }
    group.finish();
    obs_footer("b4_policy_throughput", &obs.report());
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_repair_latency, bench_policy_throughput
}
criterion_main!(benches);
