//! E1 — §6: "the time saved by the reduction techniques of the integrity
//! maintenance method is significant as soon as base relations contain a
//! few dozen of tuples."
//!
//! Simplified-instance checking (two-phase method) vs. full constraint
//! re-evaluation, sweeping the base-relation size. The expected shape:
//! two-phase time is flat in |relation|, full re-check grows linearly,
//! with the crossover well below 100 tuples.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uniform_integrity::{full_recheck, Checker};
use uniform_workload as workload;

fn bench_e1(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_reduction");
    for &n in &[4usize, 16, 64, 256, 1024, 4096] {
        let db = workload::university(n, 0);
        db.model(); // warm the materialized current state
        let checker = Checker::new(&db);
        let tx = workload::university_good_tx(0);

        group.bench_with_input(BenchmarkId::new("two_phase", n), &n, |b, _| {
            b.iter(|| {
                let rep = checker.check(&tx);
                assert!(rep.satisfied);
                rep.stats.instances_evaluated
            })
        });
        group.bench_with_input(BenchmarkId::new("full_recheck", n), &n, |b, _| {
            b.iter(|| {
                let rep = full_recheck(&db, &tx);
                assert!(rep.satisfied);
                rep.stats.instances_evaluated
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_e1
}
criterion_main!(benches);
