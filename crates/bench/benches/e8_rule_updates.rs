//! E8 — §3.2: "Rule Updates can be treated like conditional Updates."
//!
//! Adding or removing a deduction rule is checked incrementally: the
//! potential-update closure is seeded with the rule's head, so only
//! constraints relevant to what the rule can derive are compiled and
//! evaluated. The baseline is what a system without the method must do —
//! re-evaluate the *whole* constraint set on the candidate state.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uniform_datalog::Database;
use uniform_integrity::{RuleUpdate, RuleUpdateChecker};
use uniform_logic::parse_rule;
use uniform_workload as workload;

fn full_recheck(db: &Database, update: &RuleUpdate) -> bool {
    match update.rules_after(db.rules()).expect("stratified") {
        None => true,
        Some(rules) => {
            let mut candidate = db.clone();
            candidate.set_rules(rules);
            candidate.violated_constraints().is_empty()
        }
    }
}

fn bench_e8(c: &mut Criterion) {
    let update = RuleUpdate::Add(parse_rule("loud(X) :- speaker(X).").unwrap());

    // Sweep the EDB size at a fixed number of irrelevant constraints.
    let mut group = c.benchmark_group("e8_edb_sweep");
    for &n in &[64usize, 256, 1024, 4096] {
        let db = workload::rule_update_workload(n, 8, 8, 0);
        db.model(); // warm the cached current model, as in steady state
        group.bench_with_input(BenchmarkId::new("incremental", n), &n, |b, _| {
            let checker = RuleUpdateChecker::new(&db);
            b.iter(|| {
                let report = checker.check(&update).unwrap();
                assert!(report.satisfied);
                report.stats.instances_evaluated
            })
        });
        group.bench_with_input(BenchmarkId::new("full_recheck", n), &n, |b, _| {
            b.iter(|| assert!(full_recheck(&db, &update)))
        });
    }
    group.finish();

    // Sweep the number of irrelevant constraints at a fixed EDB.
    let mut group = c.benchmark_group("e8_constraint_sweep");
    for &k in &[1usize, 4, 16, 64] {
        let db = workload::rule_update_workload(512, k, 8, 0);
        db.model();
        group.bench_with_input(BenchmarkId::new("incremental", k), &k, |b, _| {
            let checker = RuleUpdateChecker::new(&db);
            b.iter(|| assert!(checker.check(&update).unwrap().satisfied))
        });
        group.bench_with_input(BenchmarkId::new("full_recheck", k), &k, |b, _| {
            b.iter(|| assert!(full_recheck(&db, &update)))
        });
    }
    group.finish();

    // Rule removal, same shape: the head seeds a deletion closure.
    let mut group = c.benchmark_group("e8_removal");
    for &n in &[256usize, 1024] {
        let mut db = workload::rule_update_workload(n, 8, 8, 0);
        db.set_rules(
            uniform_datalog::RuleSet::new(vec![parse_rule("loud(X) :- speaker(X).").unwrap()])
                .unwrap(),
        );
        db.model();
        let removal = RuleUpdate::Remove(parse_rule("loud(X) :- speaker(X).").unwrap());
        group.bench_with_input(BenchmarkId::new("incremental", n), &n, |b, _| {
            let checker = RuleUpdateChecker::new(&db);
            b.iter(|| assert!(checker.check(&removal).unwrap().satisfied))
        });
        group.bench_with_input(BenchmarkId::new("full_recheck", n), &n, |b, _| {
            b.iter(|| assert!(full_recheck(&db, &removal)))
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_e8
);
criterion_main!(benches);
