//! E6 — §4 points 1–3 and §6: the satisfiability checker on the
//! theorem-proving benchmark set, with ablations:
//!
//! * `default` — full method (restriction-driven instantiation, reuse
//!   alternatives, update-driven violated-check);
//! * `paper` — as published (no domain-enumeration alternative);
//! * `full_check` — ablation of §4 point 3: every constraint re-checked
//!   at every level instead of only those relevant to the most recent
//!   insertions;
//! * the tableaux baseline (fresh constants only) is exercised on the
//!   problems it terminates on — its *incompleteness* is shown in the
//!   `experiments` binary instead, where it fails to find finite models.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uniform_satisfiability::problems;
use uniform_satisfiability::SatOptions;

fn bench_e6(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_satisfiability");
    group.sample_size(10);
    let profiles: Vec<(&str, SatOptions)> = vec![
        ("default", SatOptions::default()),
        ("paper", SatOptions::paper()),
        (
            "full_check_ablation",
            SatOptions {
                incremental_checking: false,
                ..SatOptions::default()
            },
        ),
    ];
    for p in problems::suite() {
        // The axiom of infinity burns the whole budget by design; skip it
        // in timing runs (it is covered in the experiments binary).
        if p.name == "axiom-of-infinity" {
            continue;
        }
        for (profile, opts) in &profiles {
            group.bench_with_input(BenchmarkId::new(*profile, p.name), &p, |b, problem| {
                b.iter(|| {
                    let rep = problem.checker_with(opts.clone()).check();
                    rep.stats.enforcement_steps
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_e6);
criterion_main!(benches);
