//! E7 — §3.3.1: potential-update computation. Subsumption keeps the set
//! finite on recursive rules and small on long derivation chains; the
//! whole phase runs without any fact access, so its cost is the
//! compile-time price of the method.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uniform_datalog::RuleSet;
use uniform_integrity::potential_updates;
use uniform_logic::{parse_literal, parse_rule, Rule};

fn chain_rules(k: usize) -> RuleSet {
    let mut rules: Vec<Rule> = Vec::with_capacity(k);
    for i in 0..k {
        rules.push(parse_rule(&format!("lvl{}(X) :- lvl{i}(X).", i + 1)).unwrap());
    }
    RuleSet::new(rules).unwrap()
}

fn recursive_rules() -> RuleSet {
    RuleSet::new(vec![
        parse_rule("tc(X,Y) :- edge(X,Y).").unwrap(),
        parse_rule("tc(X,Z) :- tc(X,Y), tc(Y,Z).").unwrap(),
        parse_rule("sg(X,X) :- person(X).").unwrap(),
        parse_rule("sg(X,Y) :- parent(PX,X), sg(PX,PY), parent(PY,Y).").unwrap(),
    ])
    .unwrap()
}

fn bench_e7(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_potential");

    for &k in &[4usize, 16, 64, 256] {
        let rules = chain_rules(k);
        let seed = parse_literal("lvl0(a)").unwrap();
        group.bench_with_input(BenchmarkId::new("chain", k), &k, |b, &k| {
            b.iter(|| {
                let p = potential_updates(&rules, &seed, 100_000);
                assert!(!p.truncated);
                assert_eq!(p.literals.len(), k + 1);
                p.steps
            })
        });
    }

    let rules = recursive_rules();
    for seed_src in ["edge(a,b)", "not edge(a,b)", "parent(a,b)"] {
        let seed = parse_literal(seed_src).unwrap();
        group.bench_with_input(BenchmarkId::new("recursive", seed_src), &seed, |b, seed| {
            b.iter(|| {
                let p = potential_updates(&rules, seed, 100_000);
                assert!(!p.truncated, "subsumption must terminate the closure");
                p.literals.len()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_e7
}
criterion_main!(benches);
