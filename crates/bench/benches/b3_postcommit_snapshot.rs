//! B3: post-commit snapshot latency — maintained vs rematerialized.
//!
//! One [`CommitQueue`] per mode over the deductive-university workload
//! at increasing sizes `n`. Each iteration commits one small (2-update)
//! transaction and then times **only** `snapshot()`:
//!
//! * `maintained` — the default pipeline. The maintained model absorbed
//!   the commit's net effect at commit time, so the snapshot just
//!   Arc-clones relation handles: latency should stay flat as `n`
//!   grows (cost proportional to the induced update, per the paper's
//!   central claim, not to the database).
//! * `rematerialized` — `CommitQueue::without_maintenance`, the
//!   pre-maintenance behavior: every post-commit snapshot pays a full
//!   canonical-model rematerialization and scales with `n`.
//!
//! Single-core numbers are meaningful here (the comparison is
//! algorithmic, not a parallel-speedup claim); see ROADMAP for the
//! multicore re-run note.
//!
//! [`CommitQueue`]: uniform::CommitQueue

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::{Duration, Instant};
use uniform::workload;
use uniform::{CommitQueue, Fact};
use uniform_bench::{obs_footer, shared_obs};

const SIZES: &[usize] = &[64, 256, 1024];

fn bench_postcommit_snapshot(c: &mut Criterion) {
    let obs = shared_obs();
    let mut group = c.benchmark_group("b3_postcommit_snapshot");
    group.sample_size(10);
    for &n in SIZES {
        for maintained in [true, false] {
            let label = if maintained {
                "maintained"
            } else {
                "rematerialized"
            };
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, &n| {
                b.iter_custom(|iters| {
                    let db = workload::deductive_university(n, 42);
                    let queue = if maintained {
                        CommitQueue::with_obs(db, obs.clone())
                    } else {
                        CommitQueue::without_maintenance_with_obs(db, obs.clone())
                    };
                    let mut total = Duration::ZERO;
                    for i in 0..iters {
                        // A small-delta commit: one new student and their
                        // attendance (the rule induces one enrolled fact).
                        let name = format!("b{i}");
                        let mut t = queue.begin();
                        t.insert(Fact::parse_like("student", &[&name]));
                        t.insert(Fact::parse_like("attends", &[&name, "ddb"]));
                        queue.commit(&t).unwrap();

                        let t0 = Instant::now();
                        let snap = queue.snapshot();
                        total += t0.elapsed();

                        assert!(snap.holds(&Fact::parse_like("enrolled", &[&name, "cs"])));
                    }
                    total
                });
            });
        }
    }
    group.finish();
    obs_footer("b3_postcommit_snapshot", &obs.report());
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_postcommit_snapshot
}
criterion_main!(benches);
