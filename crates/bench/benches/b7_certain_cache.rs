//! B7: the commit-invalidated shared certain-answer cache
//! (`uniform::certain_cache`) on a violation-stable read-heavy stream.
//!
//! The serving shape this cache exists for: a committed state with
//! standing violations (`workload::violation_state`) answered at
//! `Consistency::Certain` by many short-lived sessions — dashboards,
//! request handlers — while writers keep appending to relations no
//! constraint reaches. Four tiers over the same hot-query list:
//!
//! * `cold` — a fresh database (empty cache) per iteration: the first
//!   `Certain` read pays the repair enumeration, the rest of the list
//!   reuses it through the shared cache;
//! * `warm` — one database, a fresh session per read: every row set
//!   comes straight from the cache;
//! * `warm_with_noise_commits` — the violation-stable write stream:
//!   each iteration lands a guarded commit *outside* every cached
//!   closure, which carries the entries forward instead of dropping
//!   them, then reads through fresh sessions;
//! * `latest` — the same stream at `Consistency::Latest`, the cost
//!   floor warm `Certain` serving is measured against.
//!
//! The container is single-core, so the *assertions* are on cache
//! counters, not timings: warm hits must skip repair enumeration
//! entirely (`repair_misses` frozen after priming), and the noise
//! stream must carry forward, never invalidate.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::{Duration, Instant};
use uniform::workload;
use uniform::{
    ConcurrentDatabase, Consistency, Fact, Params, PreparedQuery, UniformOptions, Update,
};
use uniform_bench::obs_footer;

/// Raw violation churn in the committed state (standing violations the
/// repair enumeration actually works on).
const CHURN: usize = 4;

/// Each tier gets its own obs domain (the `from_database` default):
/// cache counters live in the metrics registry keyed by name, so
/// sharing one domain across the fresh-database-per-iteration tiers
/// would accumulate counts across databases and break the per-database
/// cache assertions below.
fn violated_db(seed: u64) -> ConcurrentDatabase {
    ConcurrentDatabase::from_database(
        workload::violation_state(CHURN, seed),
        UniformOptions::default(),
    )
}

fn prepare_all(db: &ConcurrentDatabase) -> Vec<PreparedQuery> {
    workload::violation_read_queries()
        .iter()
        .map(|q| db.prepare(q).expect("hot query prepares"))
        .collect()
}

/// One read pass: every hot query at `consistency`, each through its
/// own fresh session (the shared-cache serving shape).
fn read_pass(db: &ConcurrentDatabase, prepared: &[PreparedQuery], consistency: Consistency) {
    for q in prepared {
        let rows = db
            .session()
            .execute(q, &Params::new(), consistency)
            .expect("hot query executes");
        std::hint::black_box(rows.len());
    }
}

fn bench_certain_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("b7_certain_cache");
    group.sample_size(10);

    group.bench_function("cold", |b| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for i in 0..iters {
                let db = violated_db(i);
                let prepared = prepare_all(&db);
                let t0 = Instant::now();
                read_pass(&db, &prepared, Consistency::Certain);
                total += t0.elapsed();
                let stats = db.certain_cache_stats();
                assert_eq!(
                    stats.repair_misses, 1,
                    "a cold pass enumerates repairs exactly once: {stats}"
                );
                assert_eq!(stats.hits, 0, "cold row sets all install fresh: {stats}");
            }
            total
        });
    });

    // One long-lived database for the warm and latest tiers: its obs
    // domain survives to the end of the run and feeds the footer.
    let warm_db = violated_db(7);

    group.bench_function("warm", |b| {
        let db = &warm_db;
        let prepared = prepare_all(db);
        read_pass(db, &prepared, Consistency::Certain); // prime
        let primed = db.certain_cache_stats();
        assert_eq!(primed.repair_misses, 1, "{primed}");
        b.iter(|| read_pass(db, &prepared, Consistency::Certain));
        let stats = db.certain_cache_stats();
        // The headline property: warm `Certain` hits skip the repair
        // enumeration — and even the row computation — entirely.
        assert_eq!(
            stats.repair_misses, primed.repair_misses,
            "warm hits must never re-enumerate repairs: {stats}"
        );
        assert_eq!(
            stats.misses, primed.misses,
            "warm hits must never recompute a row set: {stats}"
        );
        assert!(stats.hits > primed.hits, "{stats}");
    });

    group.bench_function("warm_with_noise_commits", |b| {
        b.iter_custom(|iters| {
            let db = violated_db(13);
            let prepared = prepare_all(&db);
            read_pass(&db, &prepared, Consistency::Certain); // prime
            let primed = db.certain_cache_stats();
            let mut total = Duration::ZERO;
            for i in 0..iters {
                // `audit` is outside every constraint's closure and
                // every hot query: the admitted commit must carry the
                // cache forward, not drop it.
                let audit = Update::insert(Fact::parse_like("audit", &[&format!("n{i}")]));
                db.commit_updates_with_retry(&[audit], 4)
                    .expect("noise append admits");
                let t0 = Instant::now();
                read_pass(&db, &prepared, Consistency::Certain);
                total += t0.elapsed();
            }
            let stats = db.certain_cache_stats();
            assert_eq!(
                stats.repair_misses, primed.repair_misses,
                "carried-forward entries keep serving without re-enumeration: {stats}"
            );
            assert_eq!(
                stats.misses, primed.misses,
                "no row set was recomputed across the noise stream: {stats}"
            );
            assert_eq!(
                stats.carried_forward, iters,
                "every noise commit carries the cache forward: {stats}"
            );
            assert_eq!(stats.invalidated, 0, "{stats}");
            total
        });
    });

    group.bench_function("latest", |b| {
        let prepared = prepare_all(&warm_db);
        b.iter(|| read_pass(&warm_db, &prepared, Consistency::Latest));
    });

    group.finish();
    obs_footer("b7_certain_cache", &warm_db.obs_report());
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_certain_cache
}
criterion_main!(benches);
