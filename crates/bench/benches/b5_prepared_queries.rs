//! B5: one-shot vs prepared vs cached read-path latency.
//!
//! Three tiers over the same hot-query lists, violation-free
//! (`deductive_university`) and violation-heavy (`violation_state`)
//! states, at both consistency levels:
//!
//! * `one_shot` — the legacy serving shape: every call re-parses,
//!   re-plans and (for `Certain`) re-enumerates repairs
//!   (`UniformDatabase::solutions` / `consistent_answer`, which are now
//!   shims doing exactly that through the new path);
//! * `cached` — `ConcurrentDatabase::solutions` /
//!   `consistent_answer`: parse and plan amortized by the shared
//!   sharded plan cache, but a fresh session (fresh snapshot) per
//!   call;
//! * `prepared` — the full prepared shape: `PreparedQuery` + pinned
//!   `Session` reused across calls, so execution is all that remains.
//!
//! Since the shared certain-answer cache landed
//! (`uniform::certain_cache`, measured on its own in
//! `b7_certain_cache`), fresh sessions over one database share the
//! `Certain` repair enumeration too — only the one-shot tier's fresh
//! database per iteration still pays it per pass.
//!
//! The `one_shot / prepared` ratio is the headline number the README
//! reports: what hot-query serving stops paying per request.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::{Duration, Instant};
use uniform::workload;
use uniform::{ConcurrentDatabase, Consistency, Params, UniformDatabase, UniformOptions};
use uniform_bench::{obs_footer, shared_obs};

const UNIVERSITY_SIZES: &[usize] = &[32, 128];

fn university(n: usize) -> uniform::Database {
    workload::deductive_university(n, 11)
}

fn bench_latest(c: &mut Criterion) {
    let obs = shared_obs();
    let mut group = c.benchmark_group("b5_latest");
    let queries = workload::university_read_queries();

    for &n in UNIVERSITY_SIZES {
        group.bench_with_input(BenchmarkId::new("one_shot", n), &n, |b, &n| {
            let db = UniformDatabase::parse_tolerant(&uniform::datalog::to_program_source(
                &university(n),
            ))
            .unwrap();
            b.iter(|| {
                let mut answers = 0usize;
                for q in queries {
                    answers += db.solutions(q).unwrap().len();
                }
                assert!(answers > 0);
                answers
            });
        });

        group.bench_with_input(BenchmarkId::new("cached", n), &n, |b, &n| {
            let db = ConcurrentDatabase::from_database_with_obs(
                university(n),
                UniformOptions::default(),
                obs.clone(),
            );
            b.iter(|| {
                let mut answers = 0usize;
                for q in queries {
                    answers += db.solutions(q).unwrap().len();
                }
                assert!(answers > 0);
                answers
            });
        });

        group.bench_with_input(BenchmarkId::new("prepared", n), &n, |b, &n| {
            let db = ConcurrentDatabase::from_database_with_obs(
                university(n),
                UniformOptions::default(),
                obs.clone(),
            );
            let prepared: Vec<_> = queries.iter().map(|q| db.prepare(q).unwrap()).collect();
            let session = db.session();
            b.iter(|| {
                let mut answers = 0usize;
                for q in &prepared {
                    answers += session
                        .execute(q, &Params::new(), Consistency::Latest)
                        .unwrap()
                        .len();
                }
                assert!(answers > 0);
                answers
            });
        });
    }

    group.finish();
    obs_footer("b5_latest", &obs.report());
}

fn bench_certain(c: &mut Criterion) {
    let obs = shared_obs();
    let mut group = c.benchmark_group("b5_certain");
    group.sample_size(10);
    // Violation-free and violation-heavy committed states.
    for (label, churn) in [("clean", 0usize), ("violated", 4usize)] {
        let queries = workload::violation_read_queries();

        group.bench_with_input(BenchmarkId::new("one_shot", label), &churn, |b, &churn| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for i in 0..iters {
                    let db = ConcurrentDatabase::from_database_with_obs(
                        workload::violation_state(churn, i),
                        UniformOptions::default(),
                        obs.clone(),
                    );
                    let t0 = Instant::now();
                    for q in queries {
                        // Defeat the plan cache: fresh prepare each
                        // call, fresh session — with the fresh
                        // database per iteration above, the first
                        // `Certain` read also pays the repair
                        // enumeration, the legacy one-shot cost.
                        let prepared = uniform::PreparedQuery::prepare(q).unwrap();
                        let _ = db
                            .session()
                            .execute(&prepared, &Params::new(), Consistency::Certain)
                            .unwrap();
                    }
                    total += t0.elapsed();
                }
                total
            });
        });

        group.bench_with_input(BenchmarkId::new("prepared", label), &churn, |b, &churn| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for i in 0..iters {
                    let db = ConcurrentDatabase::from_database_with_obs(
                        workload::violation_state(churn, i),
                        UniformOptions::default(),
                        obs.clone(),
                    );
                    let prepared: Vec<_> = queries.iter().map(|q| db.prepare(q).unwrap()).collect();
                    let session = db.session();
                    let t0 = Instant::now();
                    for q in &prepared {
                        let _ = session
                            .execute(q, &Params::new(), Consistency::Certain)
                            .unwrap();
                    }
                    total += t0.elapsed();
                }
                total
            });
        });
    }
    group.finish();
    obs_footer("b5_certain", &obs.report());
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_latest, bench_certain
}
criterion_main!(benches);
