//! B6: one hot relation, many writers — conflict granularity + COW cost.
//!
//! Every writer appends a *disjoint key* to the same pre-grown
//! `ledger` relation, all pinned to the same snapshot version — the
//! worst case for relation-level conflict detection (any commit
//! invalidates every concurrent reader of `ledger`) and the case
//! key-level fingerprints exist for. Two modes per round:
//!
//! * `key` — the default pipeline: staged writes record key-level
//!   reads, so all `WRITERS` commits of a round admit with zero
//!   conflicts;
//! * `relation` — each transaction additionally records a
//!   whole-relation read of `ledger` (`TxnBuilder::record_read`),
//!   reproducing the pre-chunking pipeline: the first committer wins
//!   and every other writer of the round conflicts and retries.
//!
//! The harness also reads the database's scoped [`FactSet::cow_stats`]
//! around the committing phase: with the chunked store a commit clones
//! only the pages it touches, so per-commit cloned bytes stay near the
//! page size while the relation is ~`BASE_ROWS` tuples — the asserted
//! bound is a tenth of the full-relation clone cost. The counters are
//! per relation family (PR 7), so concurrent benches and tests in the
//! same process cannot inflate this delta. Deterministic: batches
//! begin against one version and commit in writer order, so
//! admitted/conflicted counts are exact, not scheduling-dependent.
//!
//! [`FactSet::cow_stats`]: uniform::datalog::FactSet::cow_stats

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::{Duration, Instant};
use uniform::logic::Sym;
use uniform::workload;
use uniform::{ConcurrentDatabase, Fact, TxnError, UniformOptions, Update};
use uniform_bench::{obs_footer, shared_obs};

const WRITERS: usize = 8;
const ROUNDS: usize = 8;
const BASE_ROWS: usize = 20_000;
/// Distinct staged keys in the widened-writer phase: past the
/// per-relation key-fingerprint cap (64), so the footprint latches to a
/// whole-relation read.
const WIDE_APPENDS: usize = 80;

/// One contention round: all writers begin at the same version, each
/// stages one disjoint-key append, then the batch commits in writer
/// order. Returns `(admitted, conflicted)` for the batch; conflicted
/// writers land their append through the retry path before the round
/// ends so both modes grow the relation identically.
fn run_round(db: &ConcurrentDatabase, round: usize, relation_level: bool) -> (usize, usize) {
    let txns: Vec<_> = (0..WRITERS)
        .map(|w| {
            let tx = workload::hot_relation_append(w, round);
            let mut txn = db.begin();
            for u in &tx.updates {
                txn.stage(u.clone());
            }
            if relation_level {
                txn.record_read(Sym::new("ledger"));
            }
            (tx, txn)
        })
        .collect();
    let (mut admitted, mut conflicted) = (0usize, 0usize);
    for (tx, txn) in &txns {
        match db.commit(txn) {
            Ok(_) => admitted += 1,
            Err(TxnError::Conflict { .. }) => {
                conflicted += 1;
                db.commit_updates_with_retry(&tx.updates, 8)
                    .expect("retry from a fresh snapshot lands the append");
            }
            Err(e) => panic!("hot-relation append refused: {e}"),
        }
    }
    (admitted, conflicted)
}

fn bench_hot_relation(c: &mut Criterion) {
    let obs = shared_obs();
    let mut group = c.benchmark_group("b6_hot_relation");
    group.sample_size(10);
    for &relation_level in &[false, true] {
        let mode = if relation_level { "relation" } else { "key" };
        group.throughput(Throughput::Elements((WRITERS * ROUNDS) as u64));
        group.bench_with_input(
            BenchmarkId::new("granularity", mode),
            &relation_level,
            |b, &relation_level| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let base = workload::hot_relation_db(BASE_ROWS, 42);
                        let full_clone_bytes = BASE_ROWS as u64 * 36; // ~approx_bytes per 2-ary tuple
                        let db = ConcurrentDatabase::from_database_with_obs(
                            base,
                            UniformOptions::default(),
                            obs.clone(),
                        );
                        let before = db.with_database(|d| d.facts().cow_stats());
                        // Conflict counters live in the shared obs
                        // registry now, so they accumulate across the
                        // per-iteration databases above — assert on
                        // deltas, not absolute values.
                        let conflicts_before = db.conflict_stats();
                        let t0 = Instant::now();
                        let (mut admitted, mut conflicted) = (0usize, 0usize);
                        for round in 0..ROUNDS {
                            let (a, r) = run_round(&db, round, relation_level);
                            admitted += a;
                            conflicted += r;
                        }
                        total += t0.elapsed();
                        let cloned = db.with_database(|d| d.facts().cow_stats()).bytes_cloned
                            - before.bytes_cloned;
                        let commits = (admitted + conflicted) as u64; // every append lands
                        if relation_level {
                            // First committer wins each round; everyone
                            // else is invalidated by relation overlap.
                            assert_eq!(admitted, ROUNDS);
                            assert_eq!(conflicted, ROUNDS * (WRITERS - 1));
                        } else {
                            // Disjoint keys: nobody invalidates anybody.
                            assert_eq!(admitted, ROUNDS * WRITERS);
                            assert_eq!(conflicted, 0);
                            let stats = db.conflict_stats();
                            assert_eq!(
                                stats.whole_relation_fallbacks,
                                conflicts_before.whole_relation_fallbacks
                            );
                            assert_eq!(
                                stats.key_conflicts + stats.relation_conflicts,
                                conflicts_before.key_conflicts
                                    + conflicts_before.relation_conflicts
                            );
                        }
                        assert!(
                            cloned / commits < full_clone_bytes / 10,
                            "per-commit COW cost must track the touched pages, not the \
                             {BASE_ROWS}-tuple relation: {} bytes/commit",
                            cloned / commits
                        );
                        assert_eq!(
                            db.with_database(|d| d.facts().len()),
                            BASE_ROWS + 1 + WRITERS * ROUNDS
                        );
                        if !relation_level {
                            // A widened writer: staging past the
                            // per-relation key cap latches its read
                            // footprint to a whole-relation access, and
                            // the commit pipeline must surface that as
                            // a whole_relation_fallback even though no
                            // explicit record_read was issued.
                            let before = db.conflict_stats().whole_relation_fallbacks;
                            let mut wide = db.begin();
                            for i in 0..WIDE_APPENDS {
                                wide.stage(Update::insert(Fact::parse_like(
                                    "ledger",
                                    &[&format!("wide{i}"), &format!("wv{i}")],
                                )));
                            }
                            db.commit(&wide).expect("widened append admits unopposed");
                            let after = db.conflict_stats().whole_relation_fallbacks;
                            assert_eq!(
                                after,
                                before + 1,
                                "the key-overflow latch must count as a fallback"
                            );
                        }
                    }
                    total
                });
            },
        );
    }
    group.finish();
    obs_footer("b6_hot_relation", &obs.report());
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_hot_relation
}
criterion_main!(benches);
