//! E9 — §6: "evaluation can fully benefit from query optimization
//! techniques" / "optimization methods for general formulas seem to be
//! desirable."
//!
//! Two ablations of the evaluation phase:
//!
//! * **goal-directed vs. materialize-everything** on recursive rules —
//!   the magic-sets rewrite derives only goal-relevant facts, the full
//!   canonical model derives the quadratic closure;
//! * **general-formula optimizer on/off** — reordering a disjunction so
//!   the cheap ground disjunct short-circuits the expensive existential
//!   join.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uniform_datalog::{answer_goal_magic, Model, Transaction, Update};
use uniform_integrity::{CheckOptions, Checker};
use uniform_logic::{parse_literal, Atom};
use uniform_workload as workload;

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_goal_directed");
    for &n in &[32usize, 128, 512] {
        let db = workload::tc_chain(n, 0);
        let goal = Atom::parse_like("tc", &["n0", "V"]);
        group.bench_with_input(BenchmarkId::new("magic", n), &n, |b, &n| {
            b.iter(|| {
                let r = answer_goal_magic(db.facts(), db.rules(), &goal).unwrap();
                assert_eq!(r.answers.len(), n - 1);
                r.derived_facts
            })
        });
        group.bench_with_input(BenchmarkId::new("materialize", n), &n, |b, &n| {
            b.iter(|| {
                let model = Model::compute(db.facts(), db.rules());
                let hits = model
                    .iter()
                    .filter(|f| f.pred == uniform_logic::Sym::new("tc"))
                    .filter(|f| f.args[0] == uniform_logic::Sym::new("n0"))
                    .count();
                assert_eq!(hits, n - 1);
                model.len()
            })
        });
    }
    group.finish();
}

fn bench_optimizer(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_formula_optimizer");
    let tx = Transaction::single(Update::from_literal(&parse_literal("p(a0)").unwrap()).unwrap());
    for &n in &[64usize, 256, 1024, 4096] {
        let db = workload::optimizer_workload(n, 0);
        db.model();
        group.bench_with_input(BenchmarkId::new("as_written", n), &n, |b, _| {
            let checker = Checker::new(&db);
            b.iter(|| assert!(checker.check(&tx).satisfied))
        });
        group.bench_with_input(BenchmarkId::new("optimized", n), &n, |b, _| {
            let checker = Checker::with_options(
                &db,
                CheckOptions {
                    optimize_instances: true,
                    ..CheckOptions::default()
                },
            );
            b.iter(|| assert!(checker.check(&tx).satisfied))
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_engines, bench_optimizer
);
criterion_main!(benches);
