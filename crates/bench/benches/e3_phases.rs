//! E3 — §3.2 drawback 1 of interleaved methods: "all induced updates are
//! computed, even those for which no constraint is relevant. This is for
//! example the case with an update p(a,b) in presence of the deduction
//! rule r(X) ← q(X,Y) ∧ p(Y,Z) if the predicate r does not occur
//! positively in any constraint. The overhead is considerable if there
//! are a lot of q(X,a)-facts."
//!
//! Exactly that workload. Expected shape: two-phase flat in the number
//! of q-facts (no update constraint has an r trigger), interleaved
//! linear.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uniform_integrity::{interleaved_check, Checker};
use uniform_workload as workload;

fn bench_e3(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_phases");
    for &q in &[16usize, 64, 256, 1024, 8192] {
        let (db, tx) = workload::irrelevant_induction(q, 0);
        db.model();
        let checker = Checker::new(&db);

        group.bench_with_input(BenchmarkId::new("two_phase", q), &q, |b, _| {
            b.iter(|| {
                let rep = checker.check(&tx);
                assert!(rep.satisfied);
            })
        });
        group.bench_with_input(BenchmarkId::new("interleaved", q), &q, |b, _| {
            b.iter(|| {
                let rep = interleaved_check(&db, &tx);
                assert!(rep.satisfied);
                assert_eq!(rep.stats.delta.answers, q + 1);
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_e3
}
criterion_main!(benches);
