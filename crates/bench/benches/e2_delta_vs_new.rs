//! E2 — §3.2 on Lloyd–Topor 86: "Instead of evaluating expressions of
//! the form ¬delta(U,L) ∨ new(U,s(C)), they evaluate formulas
//! corresponding to ¬new(U,L) ∨ new(U,s(C)) … The resulting loss in
//! efficiency is often considerable."
//!
//! Workload: the nonground trigger `r(X)` is affected by the update but
//! none of its `n` instances actually changes. `delta` enumerates 0
//! instances, `new` enumerates all `n`. Expected shape: two-phase flat,
//! Lloyd–Topor linear in `n`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uniform_integrity::{lloyd_topor_check, Checker};
use uniform_workload as workload;

fn bench_e2(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_delta_vs_new");
    for &n in &[8usize, 32, 128, 512, 2048] {
        let (db, tx) = workload::unchanged_rule_instances(n, 0);
        db.model();
        let checker = Checker::new(&db);

        group.bench_with_input(BenchmarkId::new("delta_guarded", n), &n, |b, _| {
            b.iter(|| {
                let rep = checker.check(&tx);
                assert!(rep.satisfied);
                assert_eq!(rep.stats.instances_evaluated, 0);
            })
        });
        group.bench_with_input(
            BenchmarkId::new("new_guarded_lloyd_topor", n),
            &n,
            |b, _| {
                b.iter(|| {
                    let rep = lloyd_topor_check(&db, &tx);
                    assert!(rep.satisfied);
                    assert_eq!(rep.stats.delta.answers, n);
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_e2
}
criterion_main!(benches);
