//! B1: concurrent snapshot-query scaling.
//!
//! One writer-side database, one [`Snapshot`] per reader thread (cloning
//! a snapshot is a handful of refcount bumps). Each thread runs a fixed
//! batch of point queries and constraint evaluations against its
//! snapshot; the benchmark reports the wall time of the whole fan-out at
//! 1/2/4/8 threads. With snapshots sharing immutable state lock-free,
//! aggregate throughput should scale with cores (on a single-core
//! container the times simply stay flat at T× the single-thread batch).
//!
//! [`Snapshot`]: uniform::datalog::Snapshot

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::{Duration, Instant};
use uniform::logic::Fact;
use uniform::workload;
use uniform::{ConcurrentDatabase, Consistency, Params, UniformOptions};
use uniform_bench::{obs_footer, shared_obs};

const STUDENTS: usize = 10_000;
const QUERIES_PER_THREAD: usize = 2_000;

fn bench_snapshot_scaling(c: &mut Criterion) {
    let db = workload::university(STUDENTS, 0);
    let snapshot = db.snapshot();
    // Pre-intern the query facts: the benchmark measures snapshot reads,
    // not the symbol interner.
    let present: Vec<Fact> = (0..STUDENTS)
        .map(|i| Fact::parse_like("enrolled", &[&format!("s{i}"), "cs"]))
        .collect();
    let absent: Vec<Fact> = (0..STUDENTS)
        .map(|i| Fact::parse_like("enrolled", &[&format!("s{i}"), "law"]))
        .collect();

    let mut group = c.benchmark_group("b1_snapshot_scaling");
    group.sample_size(10);
    for &threads in &[1usize, 2, 4, 8] {
        group.throughput(Throughput::Elements((threads * QUERIES_PER_THREAD) as u64));
        group.bench_with_input(
            BenchmarkId::new("readers", threads),
            &threads,
            |b, &threads| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let t0 = Instant::now();
                        std::thread::scope(|scope| {
                            for t in 0..threads {
                                let snap = snapshot.clone();
                                let (present, absent) = (&present, &absent);
                                scope.spawn(move || {
                                    let mut hits = 0usize;
                                    for i in 0..QUERIES_PER_THREAD {
                                        let k = (i * 7919 + t * 104_729) % STUDENTS;
                                        if snap.holds(&present[k]) {
                                            hits += 1;
                                        }
                                        if snap.holds(&absent[k]) {
                                            hits += 1;
                                        }
                                    }
                                    assert_eq!(hits, QUERIES_PER_THREAD);
                                });
                            }
                        });
                        total += t0.elapsed();
                    }
                    total
                });
            },
        );
    }
    group.finish();

    // Raw `Snapshot::holds` reads are deliberately uninstrumented (the
    // zero-overhead claim this bench exists to protect), so the footer
    // replays a slice of the point queries through the instrumented
    // query layer over the same state. No-op unless `UNIFORM_OBS=1`.
    if uniform_bench::obs_enabled() {
        let obs = shared_obs();
        let cdb = ConcurrentDatabase::from_database_with_obs(
            db.clone(),
            UniformOptions::default(),
            obs.clone(),
        );
        let session = cdb.session();
        let query = cdb
            .prepare_with_params("enrolled(S, C)", &["S", "C"])
            .unwrap();
        let mut hits = 0usize;
        for i in 0..256 {
            let k = (i * 7919) % STUDENTS;
            let params = Params::new().bind("S", format!("s{k}")).bind("C", "cs");
            hits += session
                .execute(&query, &params, Consistency::Latest)
                .unwrap()
                .len();
        }
        assert!(hits > 0);
        obs_footer("b1_snapshot_scaling", &cdb.obs_report());
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_snapshot_scaling
}
criterion_main!(benches);
