//! A1 (ablation, beyond the paper) — incremental maintenance of the
//! materialized model vs. recomputation per update.
//!
//! The paper's checkers never materialize the updated state (the
//! overlay engine simulates it); a resident deductive database that
//! *does* keep its canonical model materialized wants the counting
//! algorithm instead of recomputing after every accepted update. This
//! ablation quantifies that choice on the org workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uniform_datalog::{MaintainedModel, Model, Update};
use uniform_logic::Fact;
use uniform_workload as workload;

/// An accepted-update stream: hire/fire subordinates in existing
/// departments (keeps the workload consistent and the churn derived).
fn stream(n_depts: usize, count: usize) -> Vec<Update> {
    (0..count)
        .map(|i| {
            let d = i % n_depts;
            let f = Fact::parse_like("subordinate", &[&format!("x{i}"), &format!("m{d}")]);
            if i % 2 == 0 {
                Update::insert(f)
            } else {
                Update::delete(Fact::parse_like(
                    "subordinate",
                    &[&format!("x{}", i - 1), &format!("m{d}")],
                ))
            }
        })
        .collect()
}

fn bench_a1(c: &mut Criterion) {
    let mut group = c.benchmark_group("a1_maintenance");
    const UPDATES: usize = 64;
    for &n in &[8usize, 32, 128] {
        let db = workload::org(n, 8, 0);
        let updates = stream(n, UPDATES);

        group.bench_with_input(BenchmarkId::new("maintained", n), &n, |b, _| {
            b.iter(|| {
                let mut m = MaintainedModel::new(db.facts().clone(), db.rules().clone());
                let mut flips = 0usize;
                for u in &updates {
                    flips += m.apply(u).len();
                }
                (m.model().len(), flips)
            })
        });

        group.bench_with_input(BenchmarkId::new("recompute", n), &n, |b, _| {
            b.iter(|| {
                let mut edb = db.facts().clone();
                let mut size = 0usize;
                for u in &updates {
                    u.apply(&mut edb);
                    size = Model::compute(&edb, db.rules()).len();
                }
                size
            })
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_a1
);
criterion_main!(benches);
