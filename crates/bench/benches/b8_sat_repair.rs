//! B8: SAT-backed repair vs the bounded enforcement search.
//!
//! The `violation_dense` workload stacks `n` independent violations of
//! a two-constraint chain, so the unique minimal repair deletes all `n`
//! facts at once — the worst case for the goal-directed search (~3ⁿ
//! enforcement nodes before it can prove minimality) and the best case
//! for the clause encoding (unit propagation settles everything).
//! Three measurements at growing violation counts:
//!
//! * `search` — `RepairBackend::Search` under a fixed branch budget.
//!   The search explores ~5·2ⁿ nodes here, so past the crossover
//!   (`n ≳ 15` at the default 100k-node budget) it *refuses* with
//!   `BudgetExhausted`; the bench records the refusal latency and
//!   asserts the refusal itself — this is the cliff the SAT backend
//!   removes.
//! * `sat` — `RepairBackend::Sat` on the same states: answers every
//!   size, asserts the unique `n`-deletion repair comes back covered.
//! * `preferred` — weighted MaxSAT (`RepairEngine::preferred_repair`)
//!   with a preference order protecting `noise` and pricing `q`
//!   inserts above `p` deletes.
//!
//! [`RepairEngine`]: uniform::RepairEngine

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use std::time::{Duration, Instant};
use uniform::workload;
use uniform::{Obs, RepairBackend, RepairEngine, RepairError, RepairOptions, RepairPreferences};
use uniform_bench::{obs_footer, shared_obs};

/// Violation counts per backend. The search assert flips from success
/// to refusal at its crossover; SAT keeps going.
const SEARCH_SIZES: &[usize] = &[8, 12, 16, 20];
const SAT_SIZES: &[usize] = &[8, 12, 16, 20, 24];

/// The sizes where the search still fits its branch budget.
const SEARCH_OK: usize = 12;

/// Enough for the n-deletion repair at every benched size.
fn options(backend: RepairBackend) -> RepairOptions {
    RepairOptions {
        max_changes: 24,
        backend,
        ..RepairOptions::default()
    }
}

fn engine(n: usize, seed: u64, backend: RepairBackend, obs: &Arc<Obs>) -> RepairEngine {
    let db = workload::violation_dense_db(n, seed);
    RepairEngine::new(
        db.facts().clone(),
        db.rules().clone(),
        db.constraints().to_vec(),
    )
    .with_options(options(backend))
    .with_obs(obs.clone())
}

fn bench_backends(c: &mut Criterion) {
    let obs = shared_obs();
    let mut group = c.benchmark_group("b8_sat_repair");
    for &n in SEARCH_SIZES {
        group.bench_with_input(BenchmarkId::new("search", n), &n, |b, &n| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for i in 0..iters {
                    let eng = engine(n, i, RepairBackend::Search, &obs);
                    let t0 = Instant::now();
                    let out = eng.repairs();
                    total += t0.elapsed();
                    match out {
                        Ok(report) => {
                            assert!(n <= SEARCH_OK, "past the crossover the search must refuse");
                            assert_eq!(report.repairs[0].len(), n);
                        }
                        Err(RepairError::BudgetExhausted { .. }) => {
                            assert!(n > SEARCH_OK, "small states fit the branch budget");
                        }
                        Err(e) => panic!("unexpected refusal: {e}"),
                    }
                }
                total
            });
        });
    }
    for &n in SAT_SIZES {
        group.bench_with_input(BenchmarkId::new("sat", n), &n, |b, &n| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for i in 0..iters {
                    let eng = engine(n, i, RepairBackend::Sat, &obs);
                    let t0 = Instant::now();
                    let out = eng.repairs();
                    total += t0.elapsed();
                    let report = out.expect("the SAT backend answers every benched size");
                    assert_eq!(report.repairs.len(), 1, "the minimal repair is unique");
                    assert_eq!(report.repairs[0].len(), n);
                    assert!(report.covers_all_minimal_repairs());
                }
                total
            });
        });
    }
    for &n in SAT_SIZES {
        group.bench_with_input(BenchmarkId::new("preferred", n), &n, |b, &n| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for i in 0..iters {
                    let eng = engine(n, i, RepairBackend::Sat, &obs);
                    let prefs = RepairPreferences::new()
                        .protect("noise")
                        .weight("p", 1)
                        .weight("q", 3);
                    let t0 = Instant::now();
                    let out = eng.preferred_repair(&prefs);
                    total += t0.elapsed();
                    let best = out.expect("a preferred repair exists at every benched size");
                    assert_eq!(best.repair.len(), n);
                    assert_eq!(best.cost, n as u64, "n unit-weight p deletions");
                }
                total
            });
        });
    }
    group.finish();
    obs_footer("b8_sat_repair", &obs.report());
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_backends
}
criterion_main!(benches);
