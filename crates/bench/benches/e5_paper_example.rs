//! E5 — §5: the worked example. Refuting the original constraint set and
//! finding the finite model of the repaired one, with the paper's search
//! order.

use criterion::{criterion_group, criterion_main, Criterion};
use uniform_satisfiability::problems::{paper_example, paper_example_repaired};
use uniform_satisfiability::{SatOptions, SatOutcome};

fn bench_e5(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_paper_example");

    let original = paper_example();
    group.bench_function("refute_original", |b| {
        b.iter(|| {
            let rep = original.checker().check();
            assert_eq!(rep.outcome, SatOutcome::Unsatisfiable);
            rep.stats.enforcement_steps
        })
    });
    group.bench_function("refute_original_paper_options", |b| {
        b.iter(|| {
            let rep = original.checker_with(SatOptions::paper()).check();
            assert_eq!(rep.outcome, SatOutcome::Unsatisfiable);
        })
    });

    let repaired = paper_example_repaired();
    group.bench_function("model_repaired", |b| {
        b.iter(|| {
            let rep = repaired.checker().check();
            assert!(rep.outcome.is_satisfiable());
            rep.stats.assertions
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_e5
}
criterion_main!(benches);
