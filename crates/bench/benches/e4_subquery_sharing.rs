//! E4 — §3.2 drawback 2: "evaluating all simplified instances
//! independently of each other prevents from applying certain
//! optimizations that a global evaluation would permit. Especially the
//! detection of redundant subqueries…" (the student/enrolled/attends
//! example).
//!
//! A transaction of k new students produces, per student, one instance
//! via the explicit `student` trigger and an identical one via the
//! induced `enrolled` trigger. Shared (global) evaluation recognizes the
//! duplicates; independent evaluation pays twice.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uniform_integrity::{CheckOptions, Checker};
use uniform_workload as workload;

fn bench_e4(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_subquery_sharing");
    const COURSES: usize = 24;
    let db = workload::shared_subquery_university(256, COURSES, 0);
    db.model();
    let shared = Checker::new(&db);
    let unshared = Checker::with_options(
        &db,
        CheckOptions {
            share_evaluations: false,
            ..CheckOptions::default()
        },
    );

    for &k in &[1usize, 4, 16, 64] {
        let tx = workload::shared_subquery_tx(k, COURSES);
        group.bench_with_input(BenchmarkId::new("global_shared", k), &k, |b, _| {
            b.iter(|| {
                let rep = shared.check(&tx);
                assert!(rep.satisfied);
                assert!(rep.stats.subquery_memo_hits > 0);
            })
        });
        group.bench_with_input(BenchmarkId::new("independent", k), &k, |b, _| {
            b.iter(|| {
                let rep = unshared.check(&tx);
                assert!(rep.satisfied);
                assert_eq!(rep.stats.subquery_memo_hits, 0);
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_e4
}
criterion_main!(benches);
