//! B2: multi-writer commit throughput through the MVCC pipeline.
//!
//! One shared [`ConcurrentDatabase`]; each writer thread pushes its
//! slice of the commit-mix workload (mostly disjoint-relation private
//! transactions, some contended shared ones, some integrity-rejected
//! ones) through begin → snapshot-check → first-committer-wins
//! admission, retrying on conflicts. The benchmark reports wall time of
//! the whole fan-out at 1/2/4/8 writers over a fixed total transaction
//! count: with checks running on snapshots outside the queue lock,
//! aggregate throughput should scale with cores (on a single-core
//! container the times stay flat).
//!
//! [`ConcurrentDatabase`]: uniform::ConcurrentDatabase

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::{Duration, Instant};
use uniform::workload;
use uniform::{ConcurrentDatabase, TxnError, UniformOptions};
use uniform_bench::{obs_footer, obs_json_smoke, shared_obs};

const TOTAL_TXNS: usize = 256;
const MAX_ATTEMPTS: usize = 64;

fn bench_commit_throughput(c: &mut Criterion) {
    let obs = shared_obs();
    let mut group = c.benchmark_group("b2_commit_throughput");
    group.sample_size(10);
    for &writers in &[1usize, 2, 4, 8] {
        let per_writer = TOTAL_TXNS / writers;
        group.throughput(Throughput::Elements((writers * per_writer) as u64));
        group.bench_with_input(
            BenchmarkId::new("writers", writers),
            &writers,
            |b, &writers| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let (base, streams) = workload::commit_mix(writers, per_writer, 42);
                        let db = ConcurrentDatabase::from_database_with_obs(
                            base,
                            UniformOptions::default(),
                            obs.clone(),
                        );
                        let t0 = Instant::now();
                        std::thread::scope(|scope| {
                            for stream in &streams {
                                let db = db.clone();
                                scope.spawn(move || {
                                    let mut committed = 0usize;
                                    for tx in stream {
                                        match db
                                            .commit_updates_with_retry(&tx.updates, MAX_ATTEMPTS)
                                        {
                                            Ok(_) => committed += 1,
                                            Err(TxnError::Rejected(_)) => {}
                                            Err(e) => panic!("commit failed: {e}"),
                                        }
                                    }
                                    assert!(committed > 0);
                                });
                            }
                        });
                        total += t0.elapsed();
                        assert!(db.with_database(|d| d.is_consistent()));
                    }
                    total
                });
            },
        );
    }
    group.finish();

    // End-of-run footer plus the CI JSON smoke (both no-ops unless
    // `UNIFORM_OBS=1`). The shared registry has accumulated every bench
    // iteration; one last small database gives `obs_report()` a live
    // handle to sample the COW/cache gauges from.
    if uniform_bench::obs_enabled() {
        let (base, streams) = workload::commit_mix(1, 8, 42);
        let db = ConcurrentDatabase::from_database_with_obs(
            base,
            UniformOptions::default(),
            obs.clone(),
        );
        for tx in &streams[0] {
            let _ = db.commit_updates_with_retry(&tx.updates, MAX_ATTEMPTS);
        }
        let report = db.obs_report();
        obs_footer("b2_commit_throughput", &report);
        obs_json_smoke(
            "b2_commit_throughput",
            &report,
            &[
                "txn.commits.admitted",
                "txn.conflicts.relation",
                "txn.conflicts.key",
                "maintain.commits.maintained",
                "commit.latency",
                "store.cow.bytes_cloned",
                "cache.certain.invalidated",
            ],
        );
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_commit_throughput
}
criterion_main!(benches);
