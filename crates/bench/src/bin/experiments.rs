//! Regenerate every experiment table of EXPERIMENTS.md in one run:
//!
//! ```sh
//! cargo run --release -p uniform-bench --bin experiments
//! ```
//!
//! Unlike the Criterion benches (high-precision timing of single
//! operations), this binary prints the *shape* tables that correspond to
//! the paper's claims: who wins, by what factor, where crossovers fall,
//! and the search-statistics comparisons for the satisfiability part.

use std::time::{Duration, Instant};
use uniform_integrity::{
    full_recheck, interleaved_check, lloyd_topor_check, CheckOptions, Checker,
};
use uniform_satisfiability::{problems, SatOptions, SatOutcome};
use uniform_workload as workload;

fn median(mut xs: Vec<Duration>) -> Duration {
    xs.sort();
    xs[xs.len() / 2]
}

fn time<R>(reps: usize, mut f: impl FnMut() -> R) -> Duration {
    // Warm-up.
    f();
    median(
        (0..reps)
            .map(|_| {
                let t0 = Instant::now();
                f();
                t0.elapsed()
            })
            .collect(),
    )
}

fn us(d: Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1e6)
}

fn e1() {
    println!("## E1 — simplified instances vs. full re-check (µs per accepted 3-fact tx)\n");
    println!("| |student| | two-phase | full re-check | ratio |");
    println!("|---|---|---|---|");
    for &n in &[4usize, 16, 64, 256, 1024, 4096] {
        let db = workload::university(n, 0);
        db.model();
        let checker = Checker::new(&db);
        let tx = workload::university_good_tx(0);
        let t_two = time(9, || assert!(checker.check(&tx).satisfied));
        let t_full = time(9, || assert!(full_recheck(&db, &tx).satisfied));
        println!(
            "| {n} | {} | {} | {:.1}x |",
            us(t_two),
            us(t_full),
            t_full.as_secs_f64() / t_two.as_secs_f64()
        );
    }
    println!();
}

fn e2() {
    println!("## E2 — delta-guarded vs. new-guarded (Lloyd–Topor) triggers (µs)\n");
    println!("| unchanged r-instances | delta (ours) | new (LT) | LT instance evals | ratio |");
    println!("|---|---|---|---|---|");
    for &n in &[8usize, 32, 128, 512, 2048] {
        let (db, tx) = workload::unchanged_rule_instances(n, 0);
        db.model();
        let checker = Checker::new(&db);
        let t_delta = time(9, || assert!(checker.check(&tx).satisfied));
        let lt_evals = lloyd_topor_check(&db, &tx).stats.instances_evaluated;
        let t_lt = time(9, || assert!(lloyd_topor_check(&db, &tx).satisfied));
        println!(
            "| {n} | {} | {} | {lt_evals} | {:.1}x |",
            us(t_delta),
            us(t_lt),
            t_lt.as_secs_f64() / t_delta.as_secs_f64()
        );
    }
    println!();
}

fn e3() {
    println!("## E3 — two-phase vs. interleaved on irrelevant induced updates (µs)\n");
    println!("| q-facts | two-phase | interleaved | induced updates computed | ratio |");
    println!("|---|---|---|---|---|");
    for &q in &[16usize, 64, 256, 1024, 8192] {
        let (db, tx) = workload::irrelevant_induction(q, 0);
        db.model();
        let checker = Checker::new(&db);
        let t_two = time(9, || assert!(checker.check(&tx).satisfied));
        let induced = interleaved_check(&db, &tx).stats.delta.answers;
        let t_inter = time(9, || assert!(interleaved_check(&db, &tx).satisfied));
        println!(
            "| {q} | {} | {} | {induced} | {:.1}x |",
            us(t_two),
            us(t_inter),
            t_inter.as_secs_f64() / t_two.as_secs_f64()
        );
    }
    println!();
}

fn e4() {
    println!("## E4 — global (shared) vs. independent instance evaluation (µs)\n");
    println!("| tx size (students) | shared | independent | subquery memo hits | ratio |");
    println!("|---|---|---|---|---|");
    const COURSES: usize = 24;
    let db = workload::shared_subquery_university(256, COURSES, 0);
    db.model();
    let shared = Checker::new(&db);
    let unshared = Checker::with_options(
        &db,
        CheckOptions {
            share_evaluations: false,
            ..CheckOptions::default()
        },
    );
    for &k in &[1usize, 4, 16, 64] {
        let tx = workload::shared_subquery_tx(k, COURSES);
        let rep_s = shared.check(&tx);
        let t_s = time(9, || assert!(shared.check(&tx).satisfied));
        let t_u = time(9, || assert!(unshared.check(&tx).satisfied));
        println!(
            "| {k} | {} | {} | {} | {:.2}x |",
            us(t_s),
            us(t_u),
            rep_s.stats.subquery_memo_hits,
            t_u.as_secs_f64() / t_s.as_secs_f64()
        );
    }
    println!();
}

fn e5() {
    println!("## E5 — the §5 worked example\n");
    println!("| variant | outcome | steps | assertions | undo events | max level | time (µs) |");
    println!("|---|---|---|---|---|---|---|");
    for (name, p) in [
        ("original (unsat)", problems::paper_example()),
        ("repaired (sat)", problems::paper_example_repaired()),
    ] {
        let rep = p.checker().check();
        let t = time(9, || p.checker().check());
        let outcome = match rep.outcome {
            SatOutcome::Satisfiable { .. } => "sat",
            SatOutcome::Unsatisfiable => "unsat",
            SatOutcome::Unknown { .. } => "unknown",
        };
        println!(
            "| {name} | {outcome} | {} | {} | {} | {} | {} |",
            rep.stats.enforcement_steps,
            rep.stats.assertions,
            rep.stats.undo_events,
            rep.stats.max_level,
            us(t)
        );
    }
    println!();
}

fn e6() {
    println!("## E6 — satisfiability suite across method variants\n");
    println!("(times in µs; `-` = Unknown / diverged within budget)\n");
    println!("| problem | expected | default (steps) | default | paper opts | full-check ablation | tableaux |");
    println!("|---|---|---|---|---|---|---|");
    for p in problems::suite() {
        let expected = match p.expected {
            problems::Expectation::Satisfiable => "sat",
            problems::Expectation::Unsatisfiable => "unsat",
            problems::Expectation::Infinite => "unknown",
        };
        let def = p.checker().check();
        let t_def = time(3, || p.checker().check());
        let t_paper = time(3, || p.checker_with(SatOptions::paper()).check());
        let t_ablation = time(3, || {
            p.checker_with(SatOptions {
                incremental_checking: false,
                ..SatOptions::default()
            })
            .check()
        });
        let tableaux = p.checker_with(SatOptions::tableaux()).check();
        let show = |o: &SatOutcome| match o {
            SatOutcome::Satisfiable { .. } => "sat",
            SatOutcome::Unsatisfiable => "unsat",
            SatOutcome::Unknown { .. } => "-",
        };
        println!(
            "| {} | {} | {} | {} | {} | {} | {} |",
            p.name,
            expected,
            def.stats.enforcement_steps,
            us(t_def),
            us(t_paper),
            us(t_ablation),
            show(&tableaux.outcome),
        );
    }
    println!();
    e6b();
}

/// §4 point 2: classical tableaux (fresh constants only) is incomplete
/// for finite satisfiability — it diverges on problems whose finite
/// models require constant reuse.
fn e6b() {
    use uniform_datalog::RuleSet;
    use uniform_logic::{normalize, parse_formula, Constraint};
    use uniform_satisfiability::SatChecker;

    println!("### E6b — finite-satisfiability completeness (the reuse extension)\n");
    println!("| existential strategy | outcome | fresh constants used |");
    println!("|---|---|---|");
    let constraints: Vec<Constraint> = [
        "exists X: p(X)",
        "forall X: p(X) -> (exists Y: p(Y) & r(X,Y))",
    ]
    .iter()
    .enumerate()
    .map(|(i, s)| {
        Constraint::new(
            format!("f{i}"),
            normalize(&parse_formula(s).unwrap()).unwrap(),
        )
    })
    .collect();
    for (name, opts) in [
        (
            "reuse + fresh (ours/paper §4)",
            SatOptions {
                max_fresh_constants: 6,
                ..SatOptions::default()
            },
        ),
        (
            "fresh only (classical tableaux)",
            SatOptions {
                max_fresh_constants: 6,
                ..SatOptions::tableaux()
            },
        ),
    ] {
        let rep = SatChecker::new(RuleSet::empty(), constraints.clone())
            .with_options(opts)
            .check();
        let outcome = match rep.outcome {
            SatOutcome::Satisfiable { ref model, .. } => format!("sat ({} facts)", model.len()),
            SatOutcome::Unsatisfiable => "unsat".into(),
            SatOutcome::Unknown { .. } => "diverges (budget exhausted)".into(),
        };
        println!("| {name} | {outcome} | {} |", rep.stats.fresh_constants);
    }
    println!();
}

fn e7() {
    use uniform_datalog::RuleSet;
    use uniform_integrity::potential_updates;
    use uniform_logic::{parse_literal, parse_rule};

    println!("## E7 — potential-update computation (compile phase, no fact access)\n");
    println!("| rule set | seed | potential updates | worklist steps | time (µs) |");
    println!("|---|---|---|---|---|");

    for &k in &[4usize, 16, 64, 256] {
        let rules: Vec<_> = (0..k)
            .map(|i| parse_rule(&format!("lvl{}(X) :- lvl{i}(X).", i + 1)).unwrap())
            .collect();
        let rules = RuleSet::new(rules).unwrap();
        let seed = parse_literal("lvl0(a)").unwrap();
        let p = potential_updates(&rules, &seed, 100_000);
        let t = time(9, || potential_updates(&rules, &seed, 100_000));
        println!(
            "| chain of {k} | lvl0(a) | {} | {} | {} |",
            p.literals.len(),
            p.steps,
            us(t)
        );
    }

    let rules = RuleSet::new(vec![
        parse_rule("tc(X,Y) :- edge(X,Y).").unwrap(),
        parse_rule("tc(X,Z) :- tc(X,Y), tc(Y,Z).").unwrap(),
        parse_rule("sg(X,X) :- person(X).").unwrap(),
        parse_rule("sg(X,Y) :- parent(PX,X), sg(PX,PY), parent(PY,Y).").unwrap(),
    ])
    .unwrap();
    for seed_src in ["edge(a,b)", "not edge(a,b)", "parent(a,b)", "person(a)"] {
        let seed = parse_literal(seed_src).unwrap();
        let p = potential_updates(&rules, &seed, 100_000);
        assert!(!p.truncated);
        let t = time(9, || potential_updates(&rules, &seed, 100_000));
        println!(
            "| tc + same-generation | {seed_src} | {} | {} | {} |",
            p.literals.len(),
            p.steps,
            us(t)
        );
    }
    println!();
}

fn e8() {
    use uniform_datalog::Database;
    use uniform_integrity::{RuleUpdate, RuleUpdateChecker};
    use uniform_logic::parse_rule;

    println!("## E8 — rule updates as conditional updates (incremental vs. full re-check, µs)\n");

    fn full_recheck_rule(db: &Database, update: &RuleUpdate) -> bool {
        match update.rules_after(db.rules()).expect("stratified") {
            None => true,
            Some(rules) => {
                let mut candidate = db.clone();
                candidate.set_rules(rules);
                candidate.violated_constraints().is_empty()
            }
        }
    }

    let update = RuleUpdate::Add(parse_rule("loud(X) :- speaker(X).").unwrap());

    println!(
        "| |assign| (8 constraints) | incremental | full re-check | relevant constraints | ratio |"
    );
    println!("|---|---|---|---|---|");
    for &n in &[64usize, 256, 1024, 4096] {
        let db = workload::rule_update_workload(n, 8, 8, 0);
        db.model();
        let checker = RuleUpdateChecker::new(&db);
        let rep = checker.check(&update).unwrap();
        let t_inc = time(9, || assert!(checker.check(&update).unwrap().satisfied));
        let t_full = time(9, || assert!(full_recheck_rule(&db, &update)));
        println!(
            "| {n} | {} | {} | {} of 9 | {:.1}x |",
            us(t_inc),
            us(t_full),
            rep.stats.update_constraints,
            t_full.as_secs_f64() / t_inc.as_secs_f64()
        );
    }

    println!();
    println!("| irrelevant constraints (|assign| = 512) | incremental | full re-check | ratio |");
    println!("|---|---|---|---|");
    for &k in &[1usize, 4, 16, 64] {
        let db = workload::rule_update_workload(512, k, 8, 0);
        db.model();
        let checker = RuleUpdateChecker::new(&db);
        let t_inc = time(9, || assert!(checker.check(&update).unwrap().satisfied));
        let t_full = time(9, || assert!(full_recheck_rule(&db, &update)));
        println!(
            "| {k} | {} | {} | {:.1}x |",
            us(t_inc),
            us(t_full),
            t_full.as_secs_f64() / t_inc.as_secs_f64()
        );
    }
    println!();
}

fn e9() {
    use uniform_datalog::{answer_goal_magic, Model, Transaction, Update};
    use uniform_logic::{parse_literal, Atom, Sym};

    println!("## E9 — evaluation-phase optimizations (§6 future work, µs)\n");

    println!("### E9a — goal-directed (magic sets) vs. materialize-everything on tc chains\n");
    println!("| chain length | magic | materialize | magic derived | full model derived | ratio |");
    println!("|---|---|---|---|---|---|");
    for &n in &[32usize, 128, 512] {
        let db = workload::tc_chain(n, 0);
        let goal = Atom::parse_like("tc", &["n0", "V"]);
        let magic_derived = answer_goal_magic(db.facts(), db.rules(), &goal)
            .unwrap()
            .derived_facts;
        let full_derived = Model::compute(db.facts(), db.rules()).len() - db.facts().len();
        let t_magic = time(9, || {
            answer_goal_magic(db.facts(), db.rules(), &goal)
                .unwrap()
                .answers
                .len()
        });
        let t_full = time(9, || {
            Model::compute(db.facts(), db.rules())
                .iter()
                .filter(|f| f.pred == Sym::new("tc"))
                .count()
        });
        println!(
            "| {n} | {} | {} | {magic_derived} | {full_derived} | {:.1}x |",
            us(t_magic),
            us(t_full),
            t_full.as_secs_f64() / t_magic.as_secs_f64()
        );
    }

    println!();
    println!("### E9b — general-formula optimizer on update-constraint instances\n");
    println!("| |big| | as written | optimized | reorderings | ratio |");
    println!("|---|---|---|---|---|");
    let tx = Transaction::single(Update::from_literal(&parse_literal("p(a0)").unwrap()).unwrap());
    for &n in &[64usize, 256, 1024, 4096] {
        let db = workload::optimizer_workload(n, 0);
        db.model();
        let plain = Checker::new(&db);
        let tuned = Checker::with_options(
            &db,
            CheckOptions {
                optimize_instances: true,
                ..CheckOptions::default()
            },
        );
        let rep = tuned.check(&tx);
        let t_plain = time(9, || assert!(plain.check(&tx).satisfied));
        let t_tuned = time(9, || assert!(tuned.check(&tx).satisfied));
        println!(
            "| {n} | {} | {} | {} | {:.1}x |",
            us(t_plain),
            us(t_tuned),
            rep.stats.plan_reordered,
            t_plain.as_secs_f64() / t_tuned.as_secs_f64()
        );
    }
    println!();
}

fn main() {
    println!("# uniform — experiment tables (regenerated)\n");
    println!(
        "host: {} | rustc: {} | profile: release\n",
        std::env::consts::ARCH,
        option_env!("RUSTC_VERSION").unwrap_or("see rustc --version")
    );
    e1();
    e2();
    e3();
    e4();
    e5();
    e6();
    e7();
    e8();
    e9();
    println!("done.");
}
