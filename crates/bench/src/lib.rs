//! Shared helpers for the uniform benchmark harness.
//!
//! The b-series benches thread one [`Obs`] domain through every
//! pipeline object they build and end with [`obs_footer`]: one sorted
//! [`ObsReport`] block instead of six ad-hoc `Debug` dumps. Both the
//! footer and the [`obs_json_smoke`] export are gated on
//! `UNIFORM_OBS=1`, so default bench output (and the measured path's
//! timing behaviour) is unchanged.

use std::sync::Arc;
use uniform::{Obs, ObsReport, OBS_ENV};

/// Whether observability output was requested for this bench run.
pub fn obs_enabled() -> bool {
    std::env::var(OBS_ENV).as_deref() == Ok("1")
}

/// One obs domain for a whole bench target, shared across every
/// database/queue/engine the bench constructs so the end-of-run footer
/// aggregates all of them. Wall-clock timing only under `UNIFORM_OBS=1`
/// ([`Obs::from_env`]); otherwise the `NullClock` keeps span/histogram
/// timing zero-cost.
pub fn shared_obs() -> Arc<Obs> {
    Obs::shared_from_env()
}

/// Print the end-of-run observability footer, if requested.
///
/// Takes a prepared [`ObsReport`] rather than the `Obs` handle so
/// callers with a live database can use `db.obs_report()` (which also
/// samples the COW/cache-size gauges) and callers without one can pass
/// `obs.report()`.
pub fn obs_footer(bench: &str, report: &ObsReport) {
    if !obs_enabled() {
        return;
    }
    println!("\n-- {bench}: obs report --");
    print!("{report}");
}

/// CI smoke for the machine-readable export: render the report as
/// JSON, parse it back, and require the metric names the dashboards
/// key on. Panics (failing the bench run) on any mismatch.
pub fn obs_json_smoke(bench: &str, report: &ObsReport, required: &[&str]) {
    if !obs_enabled() {
        return;
    }
    let json = report.to_json();
    let parsed = ObsReport::parse_json(&json)
        .unwrap_or_else(|e| panic!("{bench}: obs JSON export failed to parse: {e}"));
    assert_eq!(
        &parsed,
        &report.clone().sorted(),
        "{bench}: obs JSON round-trip diverged from the in-process report"
    );
    for name in required {
        assert!(
            parsed.counter(name).is_some() || parsed.histogram(name).is_some(),
            "{bench}: required metric `{name}` missing from obs JSON export"
        );
    }
    println!(
        "{bench}: obs json smoke ok ({} counters, {} histograms, {} bytes)",
        parsed.counters.len(),
        parsed.histograms.len(),
        json.len()
    );
    println!("{json}");
}
