//! Shared helpers for the uniform benchmark harness live in the bench targets themselves.
