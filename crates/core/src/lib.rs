//! # uniform
//!
//! The *uniform approach to constraint satisfaction and constraint
//! satisfiability in deductive databases* (Bry, Decker & Manthey, EDBT
//! 1988) as a library: one façade type, [`UniformDatabase`], that guards
//!
//! * **fact updates** with the two-phase integrity-maintenance method
//!   (simplified instances of constraints relevant to the update and its
//!   potential consequences — never a full re-check), and
//! * **constraint and rule updates** with the finite-satisfiability
//!   checker (model generation by constraint enforcement) — detecting
//!   schema changes that no database state could ever satisfy *before*
//!   they are admitted.
//!
//! ```
//! use uniform::UniformDatabase;
//!
//! let mut db = UniformDatabase::parse("
//!     member(X, Y) :- leads(X, Y).
//!     constraint led: forall X: department(X) ->
//!         (exists Y: employee(Y) & leads(Y, X)).
//!     employee(ann).
//!     department(sales).
//!     leads(ann, sales).
//! ").unwrap();
//!
//! // Guarded updates: this one removes the only leader of sales.
//! let err = db.try_delete("leads(ann, sales)").unwrap_err();
//! println!("rejected: {err}");
//! assert!(db.query("member(ann, sales)").unwrap());
//!
//! // Guarded constraint updates: this one is unsatisfiable together
//! // with `led` — every department needs a leader, yet leaders are
//! // forbidden.
//! let err = db
//!     .try_add_constraint("nobody", "forall X, Y: leads(X, Y) -> false")
//!     .unwrap_err();
//! println!("rejected: {err}");
//! ```

pub mod certain_cache;
pub mod concurrent;
pub mod facade;
pub mod query;

pub use certain_cache::CertainCacheStats;
pub use concurrent::{CommitOutcome, ConcurrentDatabase, TxnError};
pub use facade::{UniformDatabase, UniformError, UniformOptions};
pub use query::{
    Consistency, Params, PlanCacheStats, PreparedQuery, QueryError, Row, Rows, Session, Value,
};

// Re-export the full stack for advanced use.
pub use uniform_analyze as analyze;
pub use uniform_datalog as datalog;
pub use uniform_integrity as integrity;
pub use uniform_logic as logic;
// The unified observability layer: metrics registry, structured spans
// and latency histograms shared by the whole commit/query/repair
// pipeline (see the README's "Observability" section).
pub use uniform_obs as obs;
pub use uniform_repair as repair;
pub use uniform_satisfiability as satisfiability;
// Seeded synthetic workload generators, so examples and downstream
// benchmarks need only the façade crate.
pub use uniform_workload as workload;

pub use uniform_analyze::{
    AnalyzeError, AnalyzeOptions, AnalyzedProgram, Analyzer, Code as AnalyzeCode, Diagnostic,
    SatAnalysis, SatClass, Severity,
};
pub use uniform_datalog::{
    ApplyError, CommitError, CommitQueue, CommitReceipt, ConflictGranularity, ConflictStats,
    Database, FactSet, MaintenanceCounters, Model, ModelPath, ReadPattern, Snapshot, Transaction,
    TxnBuilder, Update,
};
pub use uniform_integrity::{
    CheckOptions, CheckReport, Checker, ConditionalUpdate, RuleUpdate, RuleUpdateChecker, Violation,
};
pub use uniform_logic::{Constraint, Fact, Formula, Literal, Rq, Rule};
pub use uniform_obs::{
    Clock, Counter, Gauge, Hist, HistogramSnapshot, MetricsRegistry, NullClock, Obs, ObsReport,
    SpanEvent, SpanRecorder, WallClock, OBS_ENV,
};
pub use uniform_repair::{
    PreferredRepair, RepairBackend, RepairChooser, RepairEngine, RepairError, RepairOptions,
    RepairPreferences, RepairReport, RepairSet, ViolationPolicy,
};
pub use uniform_satisfiability::{SatChecker, SatOptions, SatOutcome, SatReport};
