//! The database-level, commit-invalidated certain-answer cache.
//!
//! PR 5 left "shared commit-invalidated certain-answer cache" as a
//! follow-up: every [`crate::Session`] enumerated the minimal repairs
//! of its pinned snapshot from scratch, so a read-heavy stream of
//! `Certain` queries over a slowly-moving (or violation-stable)
//! database re-ran the bounded enforcement search per session. This
//! module promotes that per-session cache to one owned by the
//! database handle (alongside the `CommitQueue` in the shared state
//! behind [`crate::ConcurrentDatabase`]): repair lists and certain-answer row
//! sets keyed by the exact semantic state they were computed against —
//! `(db_id, fact_rev, rule_rev, constraint_rev)` — plus, for row sets,
//! the query fingerprint. Every session pinned to that state, present
//! or future, shares the entries.
//!
//! **Invalidation is delta-driven, not wholesale.** Each admitted
//! commit intersects its effective write footprint with the *verdict
//! closure* of the cached repair list
//! ([`uniform_repair::RepairEngine::report_closure`]): the relations
//! the violation set — and hence the minimal repairs — can depend on,
//! recorded as whole-relation reads in the PR 6
//! [`ReadFootprint`] machinery. A commit writing only outside that
//! closure *carries the entries forward* to the post-commit revisions
//! instead of dropping them (the paper's delta-driven stance applied
//! to CQA: an update irrelevant to every constraint cannot change any
//! repair). Row sets carry an additional closure — the query's own
//! reachable relations — checked the same way. Schema updates and
//! `AutoRepair` commits invalidate wholesale: their effect is the
//! widened constraint closure, which the cached verdicts always
//! intersect.
//!
//! Advance ordering is version-fenced rather than lock-coupled: the
//! post-commit hook runs outside the queue lock, so two hooks can
//! race. An entry set valid at version `v` only carries forward under
//! a receipt for version `v + 1` (same database, same schema
//! revisions); any other receipt clears the cache. Losing a
//! carry-forward opportunity to that fence is a cache miss, never an
//! unsound hit — hits still require an exact state-key match.

use crate::query::Rows;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use uniform_datalog::{ReadFootprint, Snapshot, Update};
use uniform_logic::Sym;
use uniform_repair::RepairSet;

/// Row-set entries kept per state (bounded LRU; repair lists are one
/// per state by construction).
const MAX_ROW_ENTRIES: usize = 256;

/// The exact semantic state a cache entry was computed against.
/// `fact_rev`/`rule_rev`/`constraint_rev` pin the answers; `version`
/// fences the advance ordering (see the module docs); `db_id` keeps
/// two databases that agree on every counter apart.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct StateKey {
    pub db_id: u64,
    pub version: u64,
    pub fact_rev: u64,
    pub rule_rev: u64,
    pub constraint_rev: u64,
}

impl StateKey {
    pub fn of(snapshot: &Snapshot) -> StateKey {
        StateKey {
            db_id: snapshot.db_id(),
            version: snapshot.version(),
            fact_rev: snapshot.fact_rev(),
            rule_rev: snapshot.rule_rev(),
            constraint_rev: snapshot.constraint_rev(),
        }
    }

    /// Do `self`'s entries semantically apply to `other`? Everything
    /// but `version` must match — `version` also counts no-op schema
    /// bumps, which cannot change answers.
    fn serves(&self, other: &StateKey) -> bool {
        self.db_id == other.db_id
            && self.fact_rev == other.fact_rev
            && self.rule_rev == other.rule_rev
            && self.constraint_rev == other.constraint_rev
    }
}

/// Running totals of a [`crate::ConcurrentDatabase`]'s shared
/// certain-answer cache (see
/// [`crate::ConcurrentDatabase::certain_cache_stats`]). All counters
/// are monotonic; `entries` is the current row-set population.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CertainCacheStats {
    /// `Certain` executes whose row set was served from the cache.
    pub hits: u64,
    /// `Certain` executes that computed (and installed) a fresh row set.
    pub misses: u64,
    /// Repair enumerations served from the cache (no enforcement search).
    pub repair_hits: u64,
    /// Repair enumerations that ran the bounded search.
    pub repair_misses: u64,
    /// Admitted commits whose write footprint missed every cached
    /// closure: entries re-keyed to the new revisions, not dropped.
    pub carried_forward: u64,
    /// Commits and schema updates that dropped cached entries.
    pub invalidated: u64,
    /// Certain-answer row sets currently cached.
    pub entries: usize,
}

/// The cached repair list of one state, with the closure that guards
/// its carry-forward.
struct RepairsEntry {
    repairs: Arc<Vec<RepairSet>>,
    closure: ReadFootprint,
}

/// One cached certain-answer row set.
struct RowsEntry {
    rows: Rows,
    closure: ReadFootprint,
    used: u64,
}

#[derive(Default)]
struct Inner {
    /// The state every held entry is valid for (`None` = empty cache).
    key: Option<StateKey>,
    repairs: Option<RepairsEntry>,
    rows: HashMap<String, RowsEntry>,
    /// LRU clock for `rows`.
    clock: u64,
}

impl Inner {
    fn is_empty(&self) -> bool {
        self.repairs.is_none() && self.rows.is_empty()
    }

    fn clear(&mut self) {
        self.key = None;
        self.repairs = None;
        self.rows.clear();
    }

    /// Prepare `key` for an install: adopt it if the cache is empty,
    /// keep it if it already matches, displace an older state's
    /// entries, and refuse (returning `false`) when the cache already
    /// holds a newer state — a session pinned behind the head must not
    /// clobber the entries live readers are hitting.
    fn adopt(&mut self, key: StateKey) -> bool {
        match self.key {
            None => {
                self.key = Some(key);
                true
            }
            Some(k) if k.serves(&key) => true,
            Some(k) if k.db_id != key.db_id || k.version < key.version => {
                self.clear();
                self.key = Some(key);
                true
            }
            Some(_) => false,
        }
    }
}

/// See the module docs. Owned by the shared state behind
/// [`crate::ConcurrentDatabase`]; sessions reach it through their
/// database handle.
pub(crate) struct CertainCache {
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    repair_hits: AtomicU64,
    repair_misses: AtomicU64,
    carried_forward: AtomicU64,
    invalidated: AtomicU64,
}

impl CertainCache {
    pub fn new() -> CertainCache {
        CertainCache {
            inner: Mutex::new(Inner::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            repair_hits: AtomicU64::new(0),
            repair_misses: AtomicU64::new(0),
            carried_forward: AtomicU64::new(0),
            invalidated: AtomicU64::new(0),
        }
    }

    /// The cached repair list for `key`, if the cache holds that exact
    /// semantic state. Counts a repair hit; the caller counts the miss
    /// when it falls through to the engine (see
    /// [`CertainCache::install_repairs`]).
    pub fn lookup_repairs(&self, key: &StateKey) -> Option<Arc<Vec<RepairSet>>> {
        let inner = self.inner.lock();
        let entry = match (&inner.key, &inner.repairs) {
            (Some(k), Some(entry)) if k.serves(key) => entry,
            _ => return None,
        };
        self.repair_hits.fetch_add(1, Ordering::Relaxed);
        Some(entry.repairs.clone())
    }

    /// Install a freshly enumerated repair list for `key`, guarded by
    /// its verdict closure (relations, recorded whole — the repair
    /// search surveys them without any key to pin). Counts the repair
    /// miss that led here. No-op when the cache already serves a newer
    /// state.
    pub fn install_repairs(&self, key: StateKey, repairs: Arc<Vec<RepairSet>>, closure: &[Sym]) {
        self.repair_misses.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock();
        if !inner.adopt(key) {
            return;
        }
        let mut fp = ReadFootprint::default();
        for &pred in closure {
            fp.record_whole(pred);
        }
        inner.repairs = Some(RepairsEntry {
            repairs,
            closure: fp,
        });
    }

    /// The cached certain-answer row set for `(key, fingerprint)`.
    pub fn lookup_rows(&self, key: &StateKey, fingerprint: &str) -> Option<Rows> {
        let mut inner = self.inner.lock();
        if !inner.key.as_ref().is_some_and(|k| k.serves(key)) {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        inner.clock += 1;
        let clock = inner.clock;
        match inner.rows.get_mut(fingerprint) {
            Some(entry) => {
                entry.used = clock;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.rows.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Install a certain-answer row set, guarded by the union of the
    /// query's reachable relations and the constraint closure (the
    /// rows depend on the repairs too). Bounded: past
    /// [`MAX_ROW_ENTRIES`] the least-recently-used entry is evicted.
    pub fn install_rows(&self, key: StateKey, fingerprint: String, rows: Rows, closure: &[Sym]) {
        let mut inner = self.inner.lock();
        if !inner.adopt(key) {
            return;
        }
        let mut fp = ReadFootprint::default();
        for &pred in closure {
            fp.record_whole(pred);
        }
        inner.clock += 1;
        let used = inner.clock;
        inner.rows.insert(
            fingerprint,
            RowsEntry {
                rows,
                closure: fp,
                used,
            },
        );
        if inner.rows.len() > MAX_ROW_ENTRIES {
            if let Some(lru) = inner
                .rows
                .iter()
                .min_by_key(|(_, e)| e.used)
                .map(|(k, _)| k.clone())
            {
                inner.rows.remove(&lru);
            }
        }
    }

    /// The post-commit advance hook: re-key entries whose closures the
    /// commit's effective writes missed, drop the rest. `new_key` is
    /// the post-commit state; `effective` its Def. 1 effective updates.
    pub fn advance_commit(&self, new_key: StateKey, effective: &[Update]) {
        let mut inner = self.inner.lock();
        let Some(key) = inner.key else {
            return; // empty cache: nothing to advance or drop
        };
        if key.serves(&new_key) {
            return; // Def. 1 no-op commit: entries stay as they are
        }
        // The version fence: only the immediate successor of the cached
        // state (same database, same schema revisions) may carry
        // entries forward. Out-of-order hooks and foreign states clear.
        let successor = key.db_id == new_key.db_id
            && key.version + 1 == new_key.version
            && key.rule_rev == new_key.rule_rev
            && key.constraint_rev == new_key.constraint_rev;
        if !successor {
            if !inner.is_empty() {
                self.invalidated.fetch_add(1, Ordering::Relaxed);
            }
            inner.clear();
            return;
        }
        let conflicts = |fp: &ReadFootprint| {
            effective
                .iter()
                .any(|u| fp.conflicts_with_write(u.fact.pred, &u.fact.args).is_some())
        };
        // The repair list guards everything: certain rows are
        // intersections over it, so once the repairs are stale, every
        // row set is too.
        if inner
            .repairs
            .as_ref()
            .is_some_and(|entry| conflicts(&entry.closure))
        {
            self.invalidated.fetch_add(1, Ordering::Relaxed);
            inner.clear();
            return;
        }
        inner.rows.retain(|_, entry| !conflicts(&entry.closure));
        inner.key = Some(new_key);
        if inner.is_empty() {
            inner.key = None;
        } else {
            self.carried_forward.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Wholesale invalidation: schema updates and `AutoRepair` commits,
    /// whose effect is the widened constraint closure — which every
    /// cached verdict intersects by construction.
    pub fn invalidate_all(&self) {
        let mut inner = self.inner.lock();
        if !inner.is_empty() {
            self.invalidated.fetch_add(1, Ordering::Relaxed);
        }
        inner.clear();
    }

    pub fn stats(&self) -> CertainCacheStats {
        CertainCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            repair_hits: self.repair_hits.load(Ordering::Relaxed),
            repair_misses: self.repair_misses.load(Ordering::Relaxed),
            carried_forward: self.carried_forward.load(Ordering::Relaxed),
            invalidated: self.invalidated.load(Ordering::Relaxed),
            entries: self.inner.lock().rows.len(),
        }
    }
}
