//! The database-level, commit-invalidated certain-answer cache.
//!
//! PR 5 left "shared commit-invalidated certain-answer cache" as a
//! follow-up: every [`crate::Session`] enumerated the minimal repairs
//! of its pinned snapshot from scratch, so a read-heavy stream of
//! `Certain` queries over a slowly-moving (or violation-stable)
//! database re-ran the bounded enforcement search per session. This
//! module promotes that per-session cache to one owned by the
//! database handle (alongside the `CommitQueue` in the shared state
//! behind [`crate::ConcurrentDatabase`]): repair lists and certain-answer row
//! sets keyed by the exact semantic state they were computed against —
//! `(db_id, fact_rev, rule_rev, constraint_rev)` — plus, for row sets,
//! the query fingerprint. Every session pinned to that state, present
//! or future, shares the entries.
//!
//! **Invalidation is delta-driven, not wholesale.** Each admitted
//! commit intersects its effective write footprint with the *verdict
//! closure* of the cached repair list
//! ([`uniform_repair::RepairEngine::report_closure`]): the relations
//! the violation set — and hence the minimal repairs — can depend on,
//! recorded as whole-relation reads in the PR 6
//! [`ReadFootprint`] machinery. A commit writing only outside that
//! closure *carries the entries forward* to the post-commit revisions
//! instead of dropping them (the paper's delta-driven stance applied
//! to CQA: an update irrelevant to every constraint cannot change any
//! repair). Row sets carry an additional closure — the query's own
//! reachable relations — checked the same way. Schema updates and
//! `AutoRepair` commits invalidate wholesale: their effect is the
//! widened constraint closure, which the cached verdicts always
//! intersect.
//!
//! Entries live in a small ring of per-state **generations** (LRU over
//! `GENERATION_SLOTS` state keys): a long-pinned old session and the
//! head-state readers each populate their own slot instead of evicting
//! each other every pass — the PR 7 follow-up single-state thrash.
//!
//! Advance ordering is version-fenced rather than lock-coupled: the
//! post-commit hook runs outside the queue lock, so two hooks can
//! race. A generation valid at version `v` only carries forward under
//! a receipt for version `v + 1` (same database, same schema
//! revisions); any other receipt drops that generation. Losing a
//! carry-forward opportunity to that fence is a cache miss, never an
//! unsound hit — hits still require an exact state-key match.

use crate::query::Rows;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use uniform_datalog::{ReadFootprint, Snapshot, Update};
use uniform_logic::Sym;
use uniform_obs::{Counter, Obs};
use uniform_repair::RepairSet;

/// Row-set entries kept per generation (bounded LRU; repair lists are
/// one per state by construction).
const MAX_ROW_ENTRIES: usize = 256;

/// Distinct semantic states cached at once (LRU over generations). One
/// slot per state reintroduces the PR 7 follow-up thrash: a long-pinned
/// old session alternating with head-state readers would evict the hot
/// entries every pass. Two slots break that cycle; a couple more absorb
/// several pinned readers cheaply.
const GENERATION_SLOTS: usize = 4;

/// The exact semantic state a cache entry was computed against.
/// `fact_rev`/`rule_rev`/`constraint_rev` pin the answers; `version`
/// fences the advance ordering (see the module docs); `db_id` keeps
/// two databases that agree on every counter apart.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct StateKey {
    pub db_id: u64,
    pub version: u64,
    pub fact_rev: u64,
    pub rule_rev: u64,
    pub constraint_rev: u64,
}

impl StateKey {
    pub fn of(snapshot: &Snapshot) -> StateKey {
        StateKey {
            db_id: snapshot.db_id(),
            version: snapshot.version(),
            fact_rev: snapshot.fact_rev(),
            rule_rev: snapshot.rule_rev(),
            constraint_rev: snapshot.constraint_rev(),
        }
    }

    /// Do `self`'s entries semantically apply to `other`? Everything
    /// but `version` must match — `version` also counts no-op schema
    /// bumps, which cannot change answers.
    fn serves(&self, other: &StateKey) -> bool {
        self.db_id == other.db_id
            && self.fact_rev == other.fact_rev
            && self.rule_rev == other.rule_rev
            && self.constraint_rev == other.constraint_rev
    }
}

/// Running totals of a [`crate::ConcurrentDatabase`]'s shared
/// certain-answer cache (see
/// [`crate::ConcurrentDatabase::certain_cache_stats`]). All counters
/// are monotonic; `entries` is the current row-set population.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CertainCacheStats {
    /// `Certain` executes whose row set was served from the cache.
    pub hits: u64,
    /// `Certain` executes that computed (and installed) a fresh row set.
    pub misses: u64,
    /// Repair enumerations served from the cache (no enforcement search).
    pub repair_hits: u64,
    /// Repair enumerations that ran the bounded search.
    pub repair_misses: u64,
    /// Admitted commits whose write footprint missed every cached
    /// closure: entries re-keyed to the new revisions, not dropped.
    pub carried_forward: u64,
    /// Commits and schema updates that dropped cached entries.
    pub invalidated: u64,
    /// Certain-answer row sets currently cached.
    pub entries: usize,
}

/// The cached repair list of one state, with the closure that guards
/// its carry-forward.
struct RepairsEntry {
    repairs: Arc<Vec<RepairSet>>,
    closure: ReadFootprint,
}

/// One cached certain-answer row set.
struct RowsEntry {
    rows: Rows,
    closure: ReadFootprint,
    used: u64,
}

/// All entries of one semantic state: its repair list and its
/// certain-answer row sets.
struct Generation {
    key: StateKey,
    repairs: Option<RepairsEntry>,
    rows: HashMap<String, RowsEntry>,
    /// LRU stamp of the generation itself (bumped on every hit and
    /// install against it).
    used: u64,
}

impl Generation {
    fn is_empty(&self) -> bool {
        self.repairs.is_none() && self.rows.is_empty()
    }
}

#[derive(Default)]
struct Inner {
    /// At most [`GENERATION_SLOTS`] generations, one per semantic
    /// state, evicted least-recently-used. A session pinned behind the
    /// head populates its own generation instead of displacing the
    /// entries live readers are hitting — and vice versa.
    gens: Vec<Generation>,
    /// LRU clock, shared by generations and their row entries.
    clock: u64,
}

impl Inner {
    fn is_empty(&self) -> bool {
        self.gens.iter().all(Generation::is_empty)
    }

    fn clear(&mut self) {
        self.gens.clear();
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// The generation serving `key`, if cached.
    fn find(&self, key: &StateKey) -> Option<usize> {
        self.gens.iter().position(|g| g.key.serves(key))
    }

    /// The generation to install `key`'s entries into, creating it (and
    /// evicting the least-recently-used generation at capacity) when
    /// the state is not yet cached.
    fn adopt(&mut self, key: StateKey) -> &mut Generation {
        let idx = match self.find(&key) {
            Some(i) => i,
            None => {
                if self.gens.len() >= GENERATION_SLOTS {
                    if let Some(lru) = self
                        .gens
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, g)| g.used)
                        .map(|(i, _)| i)
                    {
                        self.gens.swap_remove(lru);
                    }
                }
                self.gens.push(Generation {
                    key,
                    repairs: None,
                    rows: HashMap::new(),
                    used: 0,
                });
                self.gens.len() - 1
            }
        };
        let stamp = self.tick();
        let gen = &mut self.gens[idx];
        gen.used = stamp;
        gen
    }
}

/// See the module docs. Owned by the shared state behind
/// [`crate::ConcurrentDatabase`]; sessions reach it through their
/// database handle.
pub(crate) struct CertainCache {
    inner: Mutex<Inner>,
    /// Registry-backed counters (`cache.certain.*`). Every bump happens
    /// while `inner` is held, so [`CertainCache::stats`] — which locks
    /// `inner` before reading them — observes a point-in-time
    /// consistent snapshot: `hits + misses` equals the lookups that
    /// completed before the snapshot, never a torn in-between.
    hits: Counter,
    misses: Counter,
    repair_hits: Counter,
    repair_misses: Counter,
    carried_forward: Counter,
    invalidated: Counter,
}

impl CertainCache {
    pub fn new(obs: &Obs) -> CertainCache {
        CertainCache {
            inner: Mutex::new(Inner::default()),
            hits: obs.counter("cache.certain.hits"),
            misses: obs.counter("cache.certain.misses"),
            repair_hits: obs.counter("cache.certain.repair_hits"),
            repair_misses: obs.counter("cache.certain.repair_misses"),
            carried_forward: obs.counter("cache.certain.carried_forward"),
            invalidated: obs.counter("cache.certain.invalidated"),
        }
    }

    /// The cached repair list for `key`, if the cache holds that exact
    /// semantic state. Counts a repair hit; the caller counts the miss
    /// when it falls through to the engine (see
    /// [`CertainCache::install_repairs`]).
    pub fn lookup_repairs(&self, key: &StateKey) -> Option<Arc<Vec<RepairSet>>> {
        let mut inner = self.inner.lock();
        let i = inner.find(key)?;
        let stamp = inner.tick();
        let gen = &mut inner.gens[i];
        gen.used = stamp;
        let repairs = gen.repairs.as_ref()?.repairs.clone();
        self.repair_hits.incr();
        Some(repairs)
    }

    /// Install a freshly enumerated repair list for `key`, guarded by
    /// its verdict closure (relations, recorded whole — the repair
    /// search surveys them without any key to pin). Counts the repair
    /// miss that led here. Lands in `key`'s own generation, so a
    /// session pinned behind the head never displaces the entries live
    /// readers are hitting.
    pub fn install_repairs(&self, key: StateKey, repairs: Arc<Vec<RepairSet>>, closure: &[Sym]) {
        let mut fp = ReadFootprint::default();
        for &pred in closure {
            fp.record_whole(pred);
        }
        let mut inner = self.inner.lock();
        // Counted under the lock (not before taking it) so the miss and
        // the install land in the same snapshot window.
        self.repair_misses.incr();
        inner.adopt(key).repairs = Some(RepairsEntry {
            repairs,
            closure: fp,
        });
    }

    /// The cached certain-answer row set for `(key, fingerprint)`.
    pub fn lookup_rows(&self, key: &StateKey, fingerprint: &str) -> Option<Rows> {
        let mut inner = self.inner.lock();
        let Some(i) = inner.find(key) else {
            self.misses.incr();
            return None;
        };
        let stamp = inner.tick();
        let gen = &mut inner.gens[i];
        gen.used = stamp;
        match gen.rows.get_mut(fingerprint) {
            Some(entry) => {
                entry.used = stamp;
                self.hits.incr();
                Some(entry.rows.clone())
            }
            None => {
                self.misses.incr();
                None
            }
        }
    }

    /// Install a certain-answer row set, guarded by the union of the
    /// query's reachable relations and the constraint closure (the
    /// rows depend on the repairs too). Bounded: past
    /// [`MAX_ROW_ENTRIES`] the least-recently-used entry is evicted.
    pub fn install_rows(&self, key: StateKey, fingerprint: String, rows: Rows, closure: &[Sym]) {
        let mut fp = ReadFootprint::default();
        for &pred in closure {
            fp.record_whole(pred);
        }
        let mut inner = self.inner.lock();
        let gen = inner.adopt(key);
        let used = gen.used;
        gen.rows.insert(
            fingerprint,
            RowsEntry {
                rows,
                closure: fp,
                used,
            },
        );
        if gen.rows.len() > MAX_ROW_ENTRIES {
            if let Some(lru) = gen
                .rows
                .iter()
                .min_by_key(|(_, e)| e.used)
                .map(|(k, _)| k.clone())
            {
                gen.rows.remove(&lru);
            }
        }
    }

    /// The post-commit advance hook: re-key entries whose closures the
    /// commit's effective writes missed, drop the rest. `new_key` is
    /// the post-commit state; `effective` its Def. 1 effective updates.
    pub fn advance_commit(&self, new_key: StateKey, effective: &[Update]) {
        let mut inner = self.inner.lock();
        if inner.gens.is_empty() {
            return; // empty cache: nothing to advance or drop
        }
        let conflicts = |fp: &ReadFootprint| {
            effective
                .iter()
                .any(|u| fp.conflicts_with_write(u.fact.pred, &u.fact.args).is_some())
        };
        let mut dropped = false;
        let mut carried = false;
        let mut survivors: Vec<Generation> = Vec::new();
        for mut gen in std::mem::take(&mut inner.gens) {
            if gen.key.serves(&new_key) {
                // Def. 1 no-op commit relative to this generation: its
                // entries stay as they are.
                survivors.push(gen);
                continue;
            }
            // The version fence: only the immediate predecessor of the
            // committed state (same database, same schema revisions)
            // may carry entries forward. A generation the head has
            // moved past by more than one version — or of a foreign
            // database — drops; pinned sessions behind the head simply
            // repopulate their own slot on the next miss.
            let successor = gen.key.db_id == new_key.db_id
                && gen.key.version + 1 == new_key.version
                && gen.key.rule_rev == new_key.rule_rev
                && gen.key.constraint_rev == new_key.constraint_rev;
            if !successor {
                dropped |= !gen.is_empty();
                continue;
            }
            // The repair list guards everything: certain rows are
            // intersections over it, so once the repairs are stale,
            // every row set of the generation is too.
            if gen
                .repairs
                .as_ref()
                .is_some_and(|entry| conflicts(&entry.closure))
            {
                dropped = true;
                continue;
            }
            gen.rows.retain(|_, entry| !conflicts(&entry.closure));
            if gen.is_empty() {
                continue;
            }
            gen.key = new_key;
            carried = true;
            survivors.push(gen);
        }
        // A carried-forward predecessor can collide with a generation
        // already populated under the new state (the hook runs outside
        // the queue lock): merge rather than hold two slots on one key.
        let mut merged: Vec<Generation> = Vec::new();
        for gen in survivors {
            match merged.iter_mut().find(|m| m.key.serves(&gen.key)) {
                Some(m) => {
                    if m.repairs.is_none() {
                        m.repairs = gen.repairs;
                    }
                    for (fp, entry) in gen.rows {
                        m.rows.entry(fp).or_insert(entry);
                    }
                    m.used = m.used.max(gen.used);
                }
                None => merged.push(gen),
            }
        }
        inner.gens = merged;
        if dropped {
            self.invalidated.incr();
        }
        if carried {
            self.carried_forward.incr();
        }
    }

    /// Wholesale invalidation: schema updates and `AutoRepair` commits,
    /// whose effect is the widened constraint closure — which every
    /// cached verdict intersects by construction.
    pub fn invalidate_all(&self) {
        let mut inner = self.inner.lock();
        if !inner.is_empty() {
            self.invalidated.incr();
        }
        inner.clear();
    }

    /// A point-in-time consistent snapshot: the lock is taken first and
    /// held across every counter read, and all bumps happen under the
    /// same lock, so the totals and `entries` describe one moment.
    pub fn stats(&self) -> CertainCacheStats {
        let inner = self.inner.lock();
        CertainCacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            repair_hits: self.repair_hits.get(),
            repair_misses: self.repair_misses.get(),
            carried_forward: self.carried_forward.get(),
            invalidated: self.invalidated.get(),
            entries: inner.gens.iter().map(|g| g.rows.len()).sum(),
        }
    }
}

impl fmt::Display for CertainCacheStats {
    /// Renders through the registry naming (`cache.certain.*`), so logs
    /// and [`uniform_obs::ObsReport`] agree on what each figure is.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cache.certain.hits={} cache.certain.misses={} \
             cache.certain.repair_hits={} cache.certain.repair_misses={} \
             cache.certain.carried_forward={} cache.certain.invalidated={} \
             cache.certain.entries={}",
            self.hits,
            self.misses,
            self.repair_hits,
            self.repair_misses,
            self.carried_forward,
            self.invalidated,
            self.entries
        )
    }
}
