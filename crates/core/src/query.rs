//! The unified typed read path: prepared queries, sessions, and typed
//! result sets.
//!
//! The paper treats constraint *satisfaction* (ordinary answering) and
//! constraint *satisfiability* (what could hold) with one evaluation
//! core; CAvSAT (Dixit & Kolaitis, see `PAPERS.md`) unifies ordinary
//! and *consistent* query answering the same way. This module gives the
//! serving surface that shape: one entry point,
//! [`Session::execute`], through which every read flows —
//!
//! * a [`PreparedQuery`] is parsed and planned **once** (join order via
//!   the cost-based [`Planner`], goal-directed
//!   magic rewrites via [`uniform_datalog::magic`]) and is `Arc`-shared,
//!   reusable across snapshots, threads and even databases; plans are
//!   keyed by the originating database's *identity and rule revision*
//!   and transparently rebuilt when a rule update lands (or the query
//!   is executed against a different database) — a stale or foreign
//!   plan is never served;
//! * a [`Session`] pins one [`Snapshot`], so any number of executes see
//!   one immutable state while writers keep committing;
//! * [`Params`] bind a query's declared parameters by name — the same
//!   prepared plan serves `enrolled(X, $course)` for every course;
//! * every execute names its [`Consistency`] level: `Latest` answers
//!   against the snapshot's canonical model, `Certain` answers with the
//!   repair-aware certain semantics (true in **every** minimal repair),
//!   both through the same prepared plan;
//! * results come back as [`Rows`] — a typed result set with a named
//!   column schema, owned [`Value`]s and a deterministic order —
//!   instead of the historical `Vec<Vec<(Sym, Sym)>>`.
//!
//! ```
//! use uniform::{Consistency, Params, PreparedQuery, UniformDatabase};
//!
//! let db = UniformDatabase::parse("
//!     enrolled(X, cs) :- student(X).
//!     student(jack). student(jill).
//! ").unwrap();
//!
//! let q = PreparedQuery::prepare_with_params("enrolled(X, C)", &["C"]).unwrap();
//! let session = db.session();
//! let rows = session
//!     .execute(&q, &Params::new().bind("C", "cs"), Consistency::Latest)
//!     .unwrap();
//! assert_eq!(rows.len(), 2);
//! assert_eq!(rows.iter().next().unwrap().get("X").unwrap().as_str(), "jack");
//! ```

use parking_lot::{Mutex, RwLock};
use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use uniform_datalog::{
    answer_prepared, magic_rewrite, satisfies, solve_planned, MagicProgram, Planner, Snapshot,
};
use uniform_logic::{
    match_atom, normalize, normalize_open, parse_formula, parse_query, Atom, Literal, ParseError,
    Rq, Subst, Sym, Term,
};
use uniform_obs::{Counter, Obs};
use uniform_repair::{RepairEngine, RepairError, RepairOptions, RepairSet};

// ---------------------------------------------------------------------------
// Values, params, consistency
// ---------------------------------------------------------------------------

/// An owned constant in a query answer or parameter binding. Backed by
/// the interned [`Sym`] table, so values are `Copy` and comparisons are
/// pointer-cheap.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Value(Sym);

impl Value {
    /// Intern (or reuse) a constant.
    pub fn new(s: &str) -> Value {
        Value(Sym::new(s))
    }

    /// The underlying interned symbol.
    pub fn sym(self) -> Sym {
        self.0
    }

    /// The constant's text.
    pub fn as_str(self) -> &'static str {
        self.0.as_str()
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::new(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::new(&s)
    }
}

impl From<Sym> for Value {
    fn from(s: Sym) -> Value {
        Value(s)
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Value) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Value) -> std::cmp::Ordering {
        self.as_str().cmp(other.as_str())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

/// Named parameter bindings for one [`Session::execute`] call. Built
/// fluently:
///
/// ```
/// use uniform::Params;
/// let params = Params::new().bind("C", "cs").bind("S", "jack");
/// assert_eq!(params.get("C").unwrap().as_str(), "cs");
/// ```
#[derive(Clone, Debug, Default)]
pub struct Params {
    bound: BTreeMap<Sym, Value>,
}

impl Params {
    /// No bindings (queries without declared parameters).
    pub fn new() -> Params {
        Params::default()
    }

    /// Bind `name` to `value` (builder style).
    pub fn bind(mut self, name: &str, value: impl Into<Value>) -> Params {
        self.set(name, value);
        self
    }

    /// Bind `name` to `value` in place.
    pub fn set(&mut self, name: &str, value: impl Into<Value>) {
        self.bound.insert(Sym::new(name), value.into());
    }

    /// The binding of `name`, if any.
    pub fn get(&self, name: &str) -> Option<Value> {
        self.bound.get(&Sym::new(name)).copied()
    }

    /// All bindings in name order.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, Value)> + '_ {
        self.bound.iter().map(|(&k, &v)| (k, v))
    }

    pub fn len(&self) -> usize {
        self.bound.len()
    }

    pub fn is_empty(&self) -> bool {
        self.bound.is_empty()
    }

    fn subst(&self) -> Subst {
        let mut s = Subst::new();
        for (name, value) in self.iter() {
            s.bind(name, Term::Const(value.sym()));
        }
        s
    }
}

/// The consistency level of one execute — the unification this module
/// exists for: ordinary and repair-aware answering through one entry
/// point and one prepared plan.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Consistency {
    /// Answers true in the snapshot's canonical model (ordinary query
    /// answering; assumes nothing about constraint satisfaction).
    #[default]
    Latest,
    /// Certain answers: true in **every** subset-minimal repair of the
    /// snapshot (Arenas–Bertossi–Chomicki semantics). On a consistent
    /// snapshot this coincides with `Latest`. Bounded by the session's
    /// [`RepairOptions`]; refusals surface as [`QueryError::Budget`].
    Certain,
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// The one error type of the typed read path. Shims map it into
/// [`crate::UniformError`] (and, where transactional context calls for
/// it, [`crate::TxnError`]) at the crate boundary.
#[derive(Debug)]
pub enum QueryError {
    /// The query source does not parse.
    Parse(ParseError),
    /// The formula parses but does not normalize to restricted
    /// quantification (free variables, non-restrictable quantifiers —
    /// the domain-independence conditions). Kept structured so the
    /// façade shims can map it onto the historical
    /// `UniformError::Language(LogicError::Normalize(..))`.
    Normalize(uniform_logic::NormalizeError),
    /// The query parses but cannot be planned: a free variable that is
    /// neither a column nor a declared parameter, a parameter that
    /// never occurs, …
    Plan { reason: String },
    /// A declared parameter was not bound at execute time.
    UnboundParam(Sym),
    /// A parameter was bound that the query never declared.
    UnknownParam(Sym),
    /// The `Certain` path's repair enumeration refused within its
    /// budgets (or proved the state unrepairable) — see [`RepairError`].
    Budget(RepairError),
    /// A fenced session outlived a schema change: rules or constraints
    /// moved since the snapshot was pinned, so its answers would
    /// predate the current schema. Re-open the session.
    SnapshotTooOld { pinned: u64, current: u64 },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Parse(e) => write!(f, "{e}"),
            QueryError::Normalize(e) => write!(f, "{e}"),
            QueryError::Plan { reason } => write!(f, "cannot plan query: {reason}"),
            QueryError::UnboundParam(name) => write!(f, "parameter {name} is not bound"),
            QueryError::UnknownParam(name) => {
                write!(f, "parameter {name} is not declared by the query")
            }
            QueryError::Budget(e) => write!(f, "{e}"),
            QueryError::SnapshotTooOld { pinned, current } => write!(
                f,
                "session snapshot (version {pinned}) predates a schema change (version {current})"
            ),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<ParseError> for QueryError {
    fn from(e: ParseError) -> QueryError {
        QueryError::Parse(e)
    }
}

// ---------------------------------------------------------------------------
// Typed result sets
// ---------------------------------------------------------------------------

/// One answer of a query: the values of the result columns, in schema
/// order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Row {
    columns: Arc<[Sym]>,
    values: Vec<Value>,
}

impl Row {
    /// The column schema (shared with the owning [`Rows`]).
    pub fn columns(&self) -> &[Sym] {
        &self.columns
    }

    /// Value of the column named `name`.
    pub fn get(&self, name: &str) -> Option<Value> {
        let name = Sym::new(name);
        self.columns
            .iter()
            .position(|&c| c == name)
            .map(|i| self.values[i])
    }

    /// Value at column position `i`.
    pub fn value(&self, i: usize) -> Option<Value> {
        self.values.get(i).copied()
    }

    /// All `(column, value)` pairs in schema order.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, Value)> + '_ {
        self.columns
            .iter()
            .copied()
            .zip(self.values.iter().copied())
    }

    /// The values alone, in schema order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (c, v)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}={v}")?;
        }
        Ok(())
    }
}

/// A typed result set: a named column schema plus zero or more [`Row`]s
/// in a deterministic order (sorted by rendered values, column by
/// column — independent of join order, thread count and process, and
/// digested by `tests/determinism.rs`).
///
/// Boolean queries (prepared formulas) report zero columns and either
/// zero rows (`false`) or one empty row (`true`); see [`Rows::is_true`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rows {
    columns: Arc<[Sym]>,
    rows: Vec<Row>,
}

impl Rows {
    fn from_rows(columns: Arc<[Sym]>, mut rows: Vec<Row>) -> Rows {
        rows.sort_by(|a, b| {
            a.values
                .iter()
                .map(|v| v.as_str())
                .cmp(b.values.iter().map(|v| v.as_str()))
        });
        rows.dedup();
        Rows { columns, rows }
    }

    fn boolean(truth: bool) -> Rows {
        let columns: Arc<[Sym]> = Arc::from(Vec::new());
        let rows = if truth {
            vec![Row {
                columns: columns.clone(),
                values: Vec::new(),
            }]
        } else {
            Vec::new()
        };
        Rows { columns, rows }
    }

    /// The column schema, in query first-occurrence order (declared
    /// parameters are bound inputs, not columns).
    pub fn columns(&self) -> &[Sym] {
        &self.columns
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Boolean reading: did the query have at least one answer? For
    /// prepared formulas this is *the* result.
    pub fn is_true(&self) -> bool {
        !self.rows.is_empty()
    }

    /// Row at position `i` (rows are in the deterministic order).
    pub fn get(&self, i: usize) -> Option<&Row> {
        self.rows.get(i)
    }

    pub fn iter(&self) -> std::slice::Iter<'_, Row> {
        self.rows.iter()
    }

    /// The legacy binding shape (`Vec` of `(variable, constant)` pairs
    /// per answer) the pre-session façade methods used to return; the
    /// shims go through this.
    pub fn bindings(&self) -> Vec<Vec<(Sym, Sym)>> {
        self.rows
            .iter()
            .map(|r| r.iter().map(|(c, v)| (c, v.sym())).collect())
            .collect()
    }
}

impl<'a> IntoIterator for &'a Rows {
    type Item = &'a Row;
    type IntoIter = std::slice::Iter<'a, Row>;
    fn into_iter(self) -> Self::IntoIter {
        self.rows.iter()
    }
}

impl IntoIterator for Rows {
    type Item = Row;
    type IntoIter = std::vec::IntoIter<Row>;
    fn into_iter(self) -> Self::IntoIter {
        self.rows.into_iter()
    }
}

impl std::ops::Index<usize> for Rows {
    type Output = Row;
    fn index(&self, i: usize) -> &Row {
        &self.rows[i]
    }
}

impl fmt::Display for Rows {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.columns.is_empty() {
            return write!(f, "{}", self.is_true());
        }
        write!(f, "[")?;
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{row}")?;
        }
        write!(f, "]")
    }
}

// ---------------------------------------------------------------------------
// Prepared queries
// ---------------------------------------------------------------------------

/// How the query text parsed.
enum Kind {
    /// A conjunctive query — a list of literals, answered by
    /// enumeration.
    Conjunctive { literals: Vec<Literal> },
    /// A general (restricted-quantification) formula — answered by a
    /// truth value.
    Formula { rq: Rq },
}

/// A per-rule-revision execution plan.
struct Plan {
    kind: PlanKind,
}

enum PlanKind {
    Conjunctive {
        /// Static dispatch order over the query's literals (see
        /// [`uniform_datalog::Planner::plan_conjunction`]).
        order: Vec<usize>,
        /// A goal-directed magic rewrite for recursion-reaching
        /// single-literal goals: the `Certain` path answers each repair
        /// candidate through it instead of materializing the candidate's
        /// full canonical model.
        magic: Option<Arc<MagicProgram>>,
    },
    Formula {
        /// The formula after cost-based optimization (reordering and
        /// simplification preserve semantics; see
        /// [`uniform_datalog::Planner`]).
        optimized: Rq,
    },
}

/// A plan-store key: the originating database's identity and its rule
/// revision at plan time.
type PlanKey = (u64, u64);

struct PreparedInner {
    source: String,
    kind: Kind,
    params: Vec<Sym>,
    columns: Arc<[Sym]>,
    /// Plans keyed by `(db_id, rule_rev)` — the database identity they
    /// were built against *and* its rule revision — bounded at
    /// [`PLAN_SLOTS`] with least-recently-*used* eviction (each hit
    /// stamps its entry from `plan_clock`, so a hot plan survives any
    /// amount of churn by other keys; insertion-order eviction would
    /// evict it first). One prepared query used against several
    /// databases (or a session pinned to an older revision) plans into
    /// its own slot; another database's plan — whose magic program
    /// bakes in that database's rules — is never served, whatever the
    /// revision counters say.
    plans: RwLock<Vec<(PlanKey, Arc<Plan>, AtomicU64)>>,
    /// Monotonic use counter feeding the plan entries' LRU stamps.
    plan_clock: AtomicU64,
    plan_hits: AtomicU64,
    plan_misses: AtomicU64,
}

/// How many rule revisions' plans one prepared query keeps around
/// (long-lived sessions pinned to an older revision re-plan into their
/// own slot instead of thrashing the hot one).
const PLAN_SLOTS: usize = 4;

/// A query parsed and planned once, executable any number of times —
/// across snapshots, sessions, threads and consistency levels. Cheap to
/// clone (`Arc`-shared); the per-revision plan cache inside is shared
/// by all clones, so a query prepared through
/// [`crate::ConcurrentDatabase::prepare`] amortizes planning across
/// every caller.
#[derive(Clone)]
pub struct PreparedQuery {
    inner: Arc<PreparedInner>,
}

impl PreparedQuery {
    /// Prepare a conjunctive query, e.g. `"member(X, Y), not leads(X, Y)"`.
    /// Every variable becomes a result column.
    pub fn prepare(src: &str) -> Result<PreparedQuery, QueryError> {
        PreparedQuery::prepare_with_params(src, &[])
    }

    /// Prepare a conjunctive query with declared parameters: the named
    /// variables are bound per execute via [`Params`] and excluded from
    /// the result columns. Each parameter must occur in the query.
    pub fn prepare_with_params(src: &str, params: &[&str]) -> Result<PreparedQuery, QueryError> {
        let literals = parse_query(src)?;
        let mut vars: Vec<Sym> = Vec::new();
        for l in &literals {
            for v in l.vars() {
                if !vars.contains(&v) {
                    vars.push(v);
                }
            }
        }
        let params = declared_params(params, &vars)?;
        let columns: Vec<Sym> = vars.into_iter().filter(|v| !params.contains(v)).collect();
        Ok(PreparedQuery::from_kind(
            src,
            Kind::Conjunctive { literals },
            params,
            columns,
        ))
    }

    /// Prepare a closed formula, e.g.
    /// `"forall X: department(X) -> (exists Y: leads(Y, X))"`. Executing
    /// yields a boolean result set (see [`Rows::is_true`]).
    pub fn prepare_formula(src: &str) -> Result<PreparedQuery, QueryError> {
        PreparedQuery::prepare_formula_with_params(src, &[])
    }

    /// Prepare a formula whose free variables are exactly the declared
    /// parameters — the prepared form of point queries like
    /// `"attends(S, ddb)"` with `S` bound per execute.
    pub fn prepare_formula_with_params(
        src: &str,
        params: &[&str],
    ) -> Result<PreparedQuery, QueryError> {
        let formula = parse_formula(src)?;
        let free = formula.free_vars();
        let params = declared_params(params, &free)?;
        let rq = if params.is_empty() {
            normalize(&formula)
        } else {
            normalize_open(&formula)
        }
        .map_err(QueryError::Normalize)?;
        if let Some(stray) = rq.free_vars().iter().find(|v| !params.contains(v)) {
            return Err(QueryError::Plan {
                reason: format!("free variable {stray} is not a declared parameter"),
            });
        }
        Ok(PreparedQuery::from_kind(
            src,
            Kind::Formula { rq },
            params,
            Vec::new(),
        ))
    }

    fn from_kind(src: &str, kind: Kind, params: Vec<Sym>, columns: Vec<Sym>) -> PreparedQuery {
        PreparedQuery {
            inner: Arc::new(PreparedInner {
                source: src.to_string(),
                kind,
                params,
                columns: Arc::from(columns),
                plans: RwLock::new(Vec::new()),
                plan_clock: AtomicU64::new(0),
                plan_hits: AtomicU64::new(0),
                plan_misses: AtomicU64::new(0),
            }),
        }
    }

    /// The query text as prepared.
    pub fn source(&self) -> &str {
        &self.inner.source
    }

    /// The result columns, in first-occurrence order.
    pub fn columns(&self) -> &[Sym] {
        &self.inner.columns
    }

    /// The declared parameters.
    pub fn params(&self) -> &[Sym] {
        &self.inner.params
    }

    /// Is this a formula (boolean) query?
    pub fn is_formula(&self) -> bool {
        matches!(self.inner.kind, Kind::Formula { .. })
    }

    /// `(hits, misses)` of this query's per-revision plan cache: a miss
    /// is a (re)planning — the first execute, or the first execute
    /// after a rule update invalidated the previous plan.
    pub fn plan_counters(&self) -> (u64, u64) {
        (
            self.inner.plan_hits.load(Ordering::Relaxed),
            self.inner.plan_misses.load(Ordering::Relaxed),
        )
    }

    /// The plan for `snapshot`'s `(db_id, rule_rev)`, building (and
    /// caching) it on first use. Identity- and revision-checked: a plan
    /// built against another database, or under another rule set, is
    /// never returned.
    fn plan_for(&self, snapshot: &Snapshot) -> Arc<Plan> {
        let key = (snapshot.db_id(), snapshot.rule_rev());
        let stamp = || self.inner.plan_clock.fetch_add(1, Ordering::Relaxed) + 1;
        {
            let plans = self.inner.plans.read();
            if let Some((_, plan, used)) = plans.iter().find(|(k, _, _)| *k == key) {
                // LRU bookkeeping under the read lock: stamps are
                // atomic, so hits never serialize on the write lock.
                used.store(stamp(), Ordering::Relaxed);
                self.inner.plan_hits.fetch_add(1, Ordering::Relaxed);
                return plan.clone();
            }
        }
        self.inner.plan_misses.fetch_add(1, Ordering::Relaxed);
        let plan = Arc::new(self.build_plan(snapshot));
        let mut plans = self.inner.plans.write();
        if let Some((_, existing, used)) = plans.iter().find(|(k, _, _)| *k == key) {
            used.store(stamp(), Ordering::Relaxed);
            return existing.clone(); // lost a benign race; reuse theirs
        }
        plans.push((key, plan.clone(), AtomicU64::new(stamp())));
        if plans.len() > PLAN_SLOTS {
            if let Some(lru) = plans
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, _, used))| used.load(Ordering::Relaxed))
                .map(|(i, _)| i)
            {
                plans.swap_remove(lru);
            }
        }
        plan
    }

    fn build_plan(&self, snapshot: &Snapshot) -> Plan {
        let bound: HashSet<Sym> = self.inner.params.iter().copied().collect();
        let planner = Planner::new(snapshot.model());
        let kind = match &self.inner.kind {
            Kind::Conjunctive { literals } => PlanKind::Conjunctive {
                order: planner.plan_conjunction(literals, &bound).order,
                magic: self.magic_plan(snapshot, literals),
            },
            Kind::Formula { rq } => PlanKind::Formula {
                optimized: planner.optimize(rq),
            },
        };
        Plan { kind }
    }

    /// A magic rewrite is worth carrying exactly when the goal's
    /// predicate reaches recursion: the overlay engine then falls back
    /// to materializing a candidate state's *full* canonical model,
    /// while the rewrite derives only goal-relevant facts. The rewrite
    /// depends on the binding *shape* (constants and parameters), not
    /// the constants themselves, so one program serves every execute.
    fn magic_plan(&self, snapshot: &Snapshot, literals: &[Literal]) -> Option<Arc<MagicProgram>> {
        let [lit] = literals else { return None };
        if !lit.positive {
            return None;
        }
        let graph = snapshot.rules().graph();
        if !graph.is_idb(lit.atom.pred) || !graph.reaches_recursion(lit.atom.pred) {
            return None;
        }
        let params: HashSet<Sym> = self.inner.params.iter().copied().collect();
        let shape = Atom::new(
            lit.atom.pred,
            lit.atom
                .args
                .iter()
                .map(|&t| match t {
                    Term::Const(c) => Term::Const(c),
                    Term::Var(v) if params.contains(&v) => Term::Const(Sym::new("_pq_shape")),
                    Term::Var(v) => Term::Var(v),
                })
                .collect(),
        );
        // Negation-reaching subprograms fall back to the overlay path.
        magic_rewrite(snapshot.rules(), &shape).ok().map(Arc::new)
    }
}

impl fmt::Debug for PreparedQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PreparedQuery")
            .field("source", &self.inner.source)
            .field("columns", &self.inner.columns)
            .field("params", &self.inner.params)
            .finish()
    }
}

/// Validate declared parameter names against the query's variables.
fn declared_params(params: &[&str], vars: &[Sym]) -> Result<Vec<Sym>, QueryError> {
    let mut out = Vec::with_capacity(params.len());
    for &p in params {
        let name = Sym::new(p);
        if !vars.contains(&name) {
            return Err(QueryError::Plan {
                reason: format!("declared parameter {name} does not occur in the query"),
            });
        }
        if !out.contains(&name) {
            out.push(name);
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Sessions
// ---------------------------------------------------------------------------

/// A read session: one pinned [`Snapshot`], any number of executes.
///
/// Sessions are cheap (the snapshot clone copies no tuple data), are
/// `Send + Sync`, and keep serving stable answers while writers commit
/// to the originating database. Session-local caches amortize work that
/// is per-*state* rather than per-query: the `Certain` path enumerates
/// the snapshot's minimal repairs once and intersects every subsequent
/// certain-answer query over the same list.
pub struct Session {
    snapshot: Snapshot,
    repair: RepairOptions,
    /// The minimal repairs of this snapshot, memoized per session (the
    /// fast path — no shared-cache lock on repeat `Certain` executes).
    repairs: RwLock<Option<Arc<Vec<RepairSet>>>>,
    /// For sessions opened through a [`crate::ConcurrentDatabase`]
    /// handle: the owning database's shared state — the commit-
    /// invalidated certain-answer cache (see [`crate::certain_cache`])
    /// and, when `fenced`, the schema-revision mirrors to revalidate
    /// against (see [`QueryError::SnapshotTooOld`]).
    shared: Option<Arc<crate::concurrent::Shared>>,
    /// Refuse executes once a schema change lands after the pin.
    fenced: bool,
}

impl Session {
    pub(crate) fn new(snapshot: Snapshot, repair: RepairOptions) -> Session {
        Session {
            snapshot,
            repair,
            repairs: RwLock::new(None),
            shared: None,
            fenced: false,
        }
    }

    pub(crate) fn shared(
        snapshot: Snapshot,
        repair: RepairOptions,
        shared: Arc<crate::concurrent::Shared>,
        fenced: bool,
    ) -> Session {
        Session {
            snapshot,
            repair,
            repairs: RwLock::new(None),
            shared: Some(shared),
            fenced,
        }
    }

    /// The pinned snapshot.
    pub fn snapshot(&self) -> &Snapshot {
        &self.snapshot
    }

    /// The database version this session reads at.
    pub fn version(&self) -> u64 {
        self.snapshot.version()
    }

    /// Execute a prepared query at the given consistency level.
    ///
    /// * Declared parameters must all be bound
    ///   ([`QueryError::UnboundParam`]); undeclared bindings are
    ///   refused ([`QueryError::UnknownParam`]).
    /// * The plan is fetched (or built) for the snapshot's rule
    ///   revision — never a stale one.
    /// * `Certain` enumerates this snapshot's minimal repairs on first
    ///   use and serves the intersection semantics through the same
    ///   prepared plan; budget refusals are [`QueryError::Budget`].
    pub fn execute(
        &self,
        query: &PreparedQuery,
        params: &Params,
        consistency: Consistency,
    ) -> Result<Rows, QueryError> {
        for &declared in query.params() {
            if params.get(declared.as_str()).is_none() {
                return Err(QueryError::UnboundParam(declared));
            }
        }
        for (name, _) in params.iter() {
            if !query.params().contains(&name) {
                return Err(QueryError::UnknownParam(name));
            }
        }
        if self.fenced {
            if let Some(shared) = &self.shared {
                let (rule_rev, constraint_rev, version) = shared.schema_revs();
                if rule_rev != self.snapshot.rule_rev()
                    || constraint_rev != self.snapshot.constraint_rev()
                {
                    return Err(QueryError::SnapshotTooOld {
                        pinned: self.snapshot.version(),
                        current: version,
                    });
                }
            }
        }

        // One root span per execute, tagged with the consistency level;
        // the close tag is overridden by the outcome path — `eval`,
        // `cache_hit` (served from the shared certain-answer cache), or
        // `repair` (the repair enumeration actually ran). The repair
        // engine's own `repair.run` span nests under this one. Kept to a
        // single span (no per-phase children) so the hot read path pays
        // one ring push; under a `NullClock` no timer is read at all.
        let path = Cell::new("eval");
        let mut span = self.shared.as_ref().map(|shared| {
            let m = shared.query_metrics();
            let (tag, counter, hist) = match consistency {
                Consistency::Latest => ("latest", &m.executes_latest, &m.latency_latest),
                Consistency::Certain => ("certain", &m.executes_certain, &m.latency_certain),
            };
            counter.incr();
            shared
                .obs()
                .span_timed("query.execute", Some(tag), hist.clone())
        });

        let plan = query.plan_for(&self.snapshot);
        let init = params.subst();
        let result = match (&query.inner.kind, &plan.kind) {
            (Kind::Conjunctive { literals }, PlanKind::Conjunctive { order, magic }) => {
                match consistency {
                    Consistency::Latest => Ok(self.latest_rows(query, literals, order, &init)),
                    Consistency::Certain => {
                        self.cached_certain(query, params, literals, &path, |s| {
                            s.certain_rows(query, literals, magic, &init, &path)
                        })
                    }
                }
            }
            (Kind::Formula { .. }, PlanKind::Formula { optimized }) => match consistency {
                Consistency::Latest => Ok(Rows::boolean(satisfies(
                    self.snapshot.model(),
                    optimized,
                    &mut init.clone(),
                ))),
                Consistency::Certain => {
                    let preds: Vec<Literal> = optimized
                        .literals()
                        .iter()
                        .map(|occ| occ.literal.clone())
                        .collect();
                    self.cached_certain(query, params, &preds, &path, |s| {
                        let repairs =
                            s.certain_repairs_scoped(preds.iter().map(|l| l.atom.pred), &path)?;
                        Ok(Rows::boolean(uniform_repair::certainly_satisfies_bound(
                            s.snapshot.facts(),
                            s.snapshot.rules(),
                            &repairs,
                            optimized,
                            &init,
                        )))
                    })
                }
            },
            _ => unreachable!("plan kind always matches query kind"),
        };
        if let Some(span) = span.as_mut() {
            span.set_path(path.get());
        }
        result
    }

    /// The shared-cache wrapper around a `Certain` evaluation: sessions
    /// opened through a [`crate::ConcurrentDatabase`] serve the row set
    /// from the database-level cache when one is pinned to the same
    /// `(db_id, fact_rev, rule_rev, constraint_rev)` state, and install
    /// a freshly computed one (guarded by the query's closure unioned
    /// with the constraint closure — the carry-forward guard) on a
    /// miss. Plain sessions just compute.
    fn cached_certain(
        &self,
        query: &PreparedQuery,
        params: &Params,
        literals: &[Literal],
        path: &Cell<&'static str>,
        compute: impl FnOnce(&Session) -> Result<Rows, QueryError>,
    ) -> Result<Rows, QueryError> {
        let Some(shared) = &self.shared else {
            return compute(self);
        };
        let key = crate::certain_cache::StateKey::of(&self.snapshot);
        let fingerprint = Self::fingerprint(query, params);
        if let Some(rows) = shared.certain().lookup_rows(&key, &fingerprint) {
            path.set("cache_hit");
            return Ok(rows);
        }
        let rows = compute(self)?;
        let closure = self.certain_row_closure(literals);
        shared
            .certain()
            .install_rows(key, fingerprint, rows.clone(), &closure);
        Ok(rows)
    }

    /// The cache identity of one `Certain` evaluation under one state:
    /// query kind + declared params + source, then the bound parameter
    /// values in name order ([`Params`] iterates sorted).
    fn fingerprint(query: &PreparedQuery, params: &Params) -> String {
        use fmt::Write as _;
        let mut fp = String::new();
        let kind = if query.is_formula() { "rq" } else { "cq" };
        let _ = write!(fp, "{kind}\u{1}{}", query.inner.source);
        for (name, value) in params.iter() {
            let _ = write!(fp, "\u{1}{name}={value}");
        }
        fp
    }

    /// Everything a cached `Certain` row set can depend on: the query's
    /// own literals closed downward through rule bodies (its answers
    /// read those relations even when the repairs are unaffected),
    /// unioned with the constraint closure (its answers are
    /// intersections over the minimal repairs).
    fn certain_row_closure(&self, literals: &[Literal]) -> Vec<Sym> {
        let graph = self.snapshot.rules().graph();
        let mut closure: BTreeSet<Sym> = BTreeSet::new();
        for lit in literals {
            closure.extend(graph.reachable(lit.atom.pred));
        }
        // The constraint part is a pure function of the schema: sessions
        // over a `ConcurrentDatabase` take it precomputed from the shared
        // static analysis instead of re-walking the dependency graph per
        // install (`tests/prop_analyze.rs` holds the two bit-identical).
        match &self.shared {
            Some(shared) => {
                let analyzed = shared.analyzed_for_snapshot(&self.snapshot);
                closure.extend(analyzed.closure_union().iter().copied());
            }
            None => {
                for c in self.snapshot.constraints() {
                    for occ in c.rq.literals() {
                        closure.extend(graph.reachable(occ.literal.atom.pred));
                    }
                }
            }
        }
        closure.into_iter().collect()
    }

    /// `Latest`: enumerate over the snapshot's canonical model in the
    /// planned join order.
    fn latest_rows(
        &self,
        query: &PreparedQuery,
        literals: &[Literal],
        order: &[usize],
        init: &Subst,
    ) -> Rows {
        let columns = query.inner.columns.clone();
        let mut rows = Vec::new();
        solve_planned(
            self.snapshot.model(),
            literals,
            order,
            &mut init.clone(),
            &mut |s| {
                rows.push(row_of(&columns, |v| s.walk(Term::Var(v))));
                true
            },
        );
        Rows::from_rows(columns, rows)
    }

    /// `Certain`: intersect answers over every minimal repair. Single
    /// recursion-reaching goals go through the prepared magic program
    /// per repair candidate; everything else through overlay
    /// simulation ([`uniform_repair::certain_answers_bound`]).
    fn certain_rows(
        &self,
        query: &PreparedQuery,
        literals: &[Literal],
        magic: &Option<Arc<MagicProgram>>,
        init: &Subst,
        path: &Cell<&'static str>,
    ) -> Result<Rows, QueryError> {
        let repairs = self.certain_repairs_scoped(literals.iter().map(|l| l.atom.pred), path)?;
        let columns = query.inner.columns.clone();
        if let Some(mp) = magic {
            // Same intersection semantics as the overlay path — one
            // shared implementation; only the per-repair answer
            // enumeration differs (goal-directed magic over the
            // repaired EDB instead of overlay simulation).
            let goal = init.apply_atom(&literals[0].atom);
            let rows = uniform_repair::intersect_over_repairs(&repairs, |repair| {
                let repaired = repair.apply_to(self.snapshot.facts());
                let mut answers: BTreeMap<Vec<&'static str>, Row> = BTreeMap::new();
                for fact in answer_prepared(&repaired, mp, &goal).answers {
                    let Some(s) = match_atom(&goal, &fact) else {
                        continue;
                    };
                    let row = row_of(&columns, |v| s.walk(Term::Var(v)));
                    answers.insert(row.values.iter().map(|v| v.as_str()).collect(), row);
                }
                answers
            });
            return Ok(Rows::from_rows(columns, rows));
        }
        let bindings = uniform_repair::certain_answers_bound(
            self.snapshot.facts(),
            self.snapshot.rules(),
            &repairs,
            literals,
            init,
            &columns,
        );
        let rows = bindings
            .into_iter()
            .map(|binding| {
                row_of(&columns, |v| {
                    binding
                        .iter()
                        .find(|(var, _)| *var == v)
                        .map(|&(_, c)| Term::Const(c))
                        .unwrap_or(Term::Var(v))
                })
            })
            .collect();
        Ok(Rows::from_rows(columns, rows))
    }

    /// The snapshot's minimal repairs: the session-local memo first,
    /// then — for sessions opened through a
    /// [`crate::ConcurrentDatabase`] — the shared certain-answer cache
    /// (any session pinned to the same semantic state reuses one
    /// enumeration), and only then the bounded repair search, whose
    /// result is installed shared under its verdict closure.
    fn certain_repairs(
        &self,
        path: &Cell<&'static str>,
    ) -> Result<Arc<Vec<RepairSet>>, QueryError> {
        if let Some(repairs) = self.repairs.read().as_ref() {
            return Ok(repairs.clone());
        }
        let key = self
            .shared
            .as_ref()
            .map(|_| crate::certain_cache::StateKey::of(&self.snapshot));
        if let (Some(shared), Some(key)) = (&self.shared, &key) {
            if let Some(repairs) = shared.certain().lookup_repairs(key) {
                return Ok(self.memoize_repairs(repairs));
            }
        }
        // The enumeration actually runs: record it in the execute
        // span's close path, and hand the engine the database's obs so
        // its `repair.run` span and `repair.*` counters nest here.
        path.set("repair");
        let mut engine = RepairEngine::for_snapshot(&self.snapshot).with_options(self.repair);
        if let Some(shared) = &self.shared {
            engine = engine.with_obs(shared.obs().clone());
        }
        let report = engine
            .repairs_covering_all_minimal()
            .map_err(QueryError::Budget)?;
        let repairs = Arc::new(report.repairs);
        if let (Some(shared), Some(key)) = (&self.shared, key) {
            // The closure this entry may be carried forward under: the
            // static (constraint) part comes precomputed from the shared
            // analysis, the repair-op predicates are per-report — together
            // exactly `RepairEngine::report_closure`, without re-walking
            // the dependency graph per state.
            let analyzed = shared.analyzed_for_snapshot(&self.snapshot);
            let mut closure: BTreeSet<Sym> = analyzed.closure_union().iter().copied().collect();
            for repair in repairs.iter() {
                for op in repair.ops() {
                    closure.insert(op.fact.pred);
                }
            }
            let closure: Vec<Sym> = closure.into_iter().collect();
            shared
                .certain()
                .install_repairs(key, repairs.clone(), &closure);
        }
        Ok(self.memoize_repairs(repairs))
    }

    /// [`Session::certain_repairs`], with the refusal scoped to the
    /// affected closure: when the enumeration was cut short
    /// (`BudgetExhausted`) but the query reads only relations disjoint
    /// from every violated constraint's closure, its answers agree
    /// across all minimal repairs — found or clipped — and across the
    /// unrepaired state, so the singleton empty repair serves them
    /// soundly. The substitute is *not* memoized or installed shared:
    /// it is correct only for queries outside the closure, while the
    /// memo and cache are state-scoped.
    fn certain_repairs_scoped(
        &self,
        preds: impl IntoIterator<Item = Sym>,
        path: &Cell<&'static str>,
    ) -> Result<Arc<Vec<RepairSet>>, QueryError> {
        match self.certain_repairs(path) {
            Err(err @ QueryError::Budget(RepairError::BudgetExhausted { .. })) => {
                let engine = RepairEngine::for_snapshot(&self.snapshot).with_options(self.repair);
                if engine.reads_outside_affected(preds) {
                    Ok(Arc::new(vec![RepairSet::empty()]))
                } else {
                    Err(err)
                }
            }
            outcome => outcome,
        }
    }

    /// Publish `repairs` into the session-local memo (first writer
    /// wins, so concurrent executes agree on one list).
    fn memoize_repairs(&self, repairs: Arc<Vec<RepairSet>>) -> Arc<Vec<RepairSet>> {
        let mut slot = self.repairs.write();
        if let Some(existing) = slot.as_ref() {
            return existing.clone();
        }
        *slot = Some(repairs.clone());
        repairs
    }
}

impl fmt::Debug for Session {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Session")
            .field("version", &self.snapshot.version())
            .field("shared", &self.shared.is_some())
            .field("fenced", &self.fenced)
            .finish()
    }
}

/// Resolve every column through `walk`; columns of a safe query are
/// always bound by the time an answer is emitted.
fn row_of(columns: &Arc<[Sym]>, walk: impl Fn(Sym) -> Term) -> Row {
    let values = columns
        .iter()
        .map(|&c| match walk(c) {
            Term::Const(v) => Value(v),
            Term::Var(_) => unreachable!("column {c} unbound in an answer (unsafe query?)"),
        })
        .collect();
    Row {
        columns: columns.clone(),
        values,
    }
}

// ---------------------------------------------------------------------------
// The shared prepared-plan cache
// ---------------------------------------------------------------------------

/// Running totals of a [`crate::ConcurrentDatabase`]'s prepared-plan
/// cache (see [`crate::ConcurrentDatabase::plan_cache_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups served from the cache (no re-parse, shared plans).
    pub hits: u64,
    /// Lookups that parsed and inserted a fresh prepared query.
    pub misses: u64,
    /// Prepared queries currently cached.
    pub entries: usize,
}

const CACHE_SHARDS: usize = 16;

/// Prepared queries one shard keeps (the whole cache holds at most
/// `CACHE_SHARDS * SHARD_CAP`); past the cap the least-recently-used
/// entry of that shard is evicted.
const SHARD_CAP: usize = 64;

/// One shard of the prepared-query cache: entries carry an LRU stamp
/// from the shard-local `clock` (everything already runs under the
/// shard mutex, so plain `u64`s suffice).
#[derive(Default)]
struct Shard {
    map: HashMap<String, (PreparedQuery, u64)>,
    clock: u64,
}

/// A sharded source → [`PreparedQuery`] cache, bounded by genuine LRU
/// eviction ([`SHARD_CAP`] entries per shard; a hit refreshes its
/// entry's stamp, so hot queries survive any amount of churn by
/// distinct keys). Keys carry the query kind and declared parameters,
/// so `"p(X)"` as a conjunctive query and as a formula never collide.
/// Entries stay valid across rule updates — parsing is
/// schema-independent; the *plans* inside each entry are revision-keyed
/// and rebuilt on demand (see [`PreparedQuery`]).
pub(crate) struct PlanCache {
    shards: Vec<Mutex<Shard>>,
    /// Registry-backed (`cache.plan.*`); bumped only while the owning
    /// shard's mutex is held, so per-shard reads are consistent.
    hits: Counter,
    misses: Counter,
}

impl PlanCache {
    pub(crate) fn new(obs: &Obs) -> PlanCache {
        PlanCache {
            shards: (0..CACHE_SHARDS)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            hits: obs.counter("cache.plan.hits"),
            misses: obs.counter("cache.plan.misses"),
        }
    }

    pub(crate) fn get_or_prepare(
        &self,
        kind: &str,
        src: &str,
        params: &[&str],
        build: impl FnOnce() -> Result<PreparedQuery, QueryError>,
    ) -> Result<PreparedQuery, QueryError> {
        let key = format!("{kind}\u{1}{}\u{1}{src}", params.join(","));
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        let shard = &self.shards[(hasher.finish() as usize) % CACHE_SHARDS];
        let mut shard = shard.lock();
        shard.clock += 1;
        let clock = shard.clock;
        if let Some((query, used)) = shard.map.get_mut(&key) {
            *used = clock;
            self.hits.incr();
            return Ok(query.clone());
        }
        self.misses.incr();
        let query = build()?;
        shard.map.insert(key, (query.clone(), clock));
        if shard.map.len() > SHARD_CAP {
            if let Some(lru) = shard
                .map
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| k.clone())
            {
                shard.map.remove(&lru);
            }
        }
        Ok(query)
    }

    /// Totals as of this call. Hit/miss bumps happen under the shard
    /// locks; `entries` sums the shards one lock at a time, so across
    /// shards the snapshot is per-shard (not globally) atomic.
    pub(crate) fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            entries: self.shards.iter().map(|s| s.lock().map.len()).sum(),
        }
    }
}

impl fmt::Display for PlanCacheStats {
    /// Renders through the registry naming (`cache.plan.*`), matching
    /// the [`uniform_obs::ObsReport`] counter names.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cache.plan.hits={} cache.plan.misses={} cache.plan.entries={}",
            self.hits, self.misses, self.entries
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UniformDatabase;

    const ORG: &str = "
        member(X, Y) :- leads(X, Y).
        constraint led: forall X: department(X) -> (exists Y: employee(Y) & leads(Y, X)).
        employee(ann).
        department(sales).
        leads(ann, sales).
    ";

    #[test]
    fn prepared_conjunctive_query_round_trips() {
        let db = UniformDatabase::parse(ORG).unwrap();
        let q = PreparedQuery::prepare("member(X, Y)").unwrap();
        assert_eq!(q.columns(), &[Sym::new("X"), Sym::new("Y")]);
        let session = db.session();
        let rows = session
            .execute(&q, &Params::new(), Consistency::Latest)
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("X").unwrap().as_str(), "ann");
        assert_eq!(rows[0].get("Y").unwrap().as_str(), "sales");
        assert_eq!(rows[0].value(0).unwrap(), Value::new("ann"));
        assert_eq!(rows.to_string(), "[X=ann, Y=sales]");
    }

    #[test]
    fn params_bind_and_validate() {
        let db = UniformDatabase::parse(ORG).unwrap();
        let q = PreparedQuery::prepare_with_params("leads(X, D)", &["D"]).unwrap();
        assert_eq!(q.columns(), &[Sym::new("X")]);
        assert_eq!(q.params(), &[Sym::new("D")]);
        let session = db.session();
        let rows = session
            .execute(&q, &Params::new().bind("D", "sales"), Consistency::Latest)
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("X").unwrap().as_str(), "ann");
        // Unbound and unknown parameters are typed errors.
        let err = session
            .execute(&q, &Params::new(), Consistency::Latest)
            .unwrap_err();
        assert!(matches!(err, QueryError::UnboundParam(_)), "{err}");
        let err = session
            .execute(
                &q,
                &Params::new().bind("D", "sales").bind("Z", "x"),
                Consistency::Latest,
            )
            .unwrap_err();
        assert!(matches!(err, QueryError::UnknownParam(_)), "{err}");
        // Declaring a parameter that never occurs is a plan error.
        let err = PreparedQuery::prepare_with_params("leads(X, D)", &["Q"]).unwrap_err();
        assert!(matches!(err, QueryError::Plan { .. }), "{err}");
    }

    #[test]
    fn formula_queries_are_boolean_row_sets() {
        let db = UniformDatabase::parse(ORG).unwrap();
        let session = db.session();
        let yes = PreparedQuery::prepare_formula("exists X: member(ann, X)").unwrap();
        let no = PreparedQuery::prepare_formula("member(ann, hr)").unwrap();
        assert!(yes.is_formula());
        let rows = session
            .execute(&yes, &Params::new(), Consistency::Latest)
            .unwrap();
        assert!(rows.is_true());
        assert_eq!(rows.len(), 1);
        assert!(rows.columns().is_empty());
        assert!(!session
            .execute(&no, &Params::new(), Consistency::Latest)
            .unwrap()
            .is_true());
        // Parameterized point query.
        let point = PreparedQuery::prepare_formula_with_params("member(W, sales)", &["W"]).unwrap();
        assert!(session
            .execute(&point, &Params::new().bind("W", "ann"), Consistency::Latest)
            .unwrap()
            .is_true());
        // A free variable that is not a parameter fails normalization,
        // structured (the façade maps it onto the historical
        // `UniformError::Language(LogicError::Normalize(..))`).
        let err = PreparedQuery::prepare_formula("member(W, sales)").unwrap_err();
        assert!(matches!(err, QueryError::Normalize(_)), "{err}");
        assert!(matches!(
            crate::UniformError::from(err),
            crate::UniformError::Language(uniform_logic::LogicError::Normalize(_))
        ));
    }

    #[test]
    fn certain_and_latest_agree_on_consistent_states() {
        let db = UniformDatabase::parse(ORG).unwrap();
        let q = PreparedQuery::prepare("member(X, Y)").unwrap();
        let session = db.session();
        let latest = session
            .execute(&q, &Params::new(), Consistency::Latest)
            .unwrap();
        let certain = session
            .execute(&q, &Params::new(), Consistency::Certain)
            .unwrap();
        assert_eq!(latest, certain);
    }

    #[test]
    fn certain_drops_uncertain_answers() {
        let db = UniformDatabase::parse_tolerant(
            "p(a). p(b). q(b). constraint c: forall X: p(X) -> q(X).",
        )
        .unwrap();
        let session = db.session();
        let q = PreparedQuery::prepare("p(X)").unwrap();
        let latest = session
            .execute(&q, &Params::new(), Consistency::Latest)
            .unwrap();
        assert_eq!(latest.len(), 2);
        let certain = session
            .execute(&q, &Params::new(), Consistency::Certain)
            .unwrap();
        assert_eq!(certain.len(), 1);
        assert_eq!(certain[0].get("X").unwrap().as_str(), "b");
    }

    #[test]
    fn recursive_goals_use_the_prepared_magic_program() {
        let db = UniformDatabase::parse_tolerant(
            "
            tc(X, Y) :- edge(X, Y).
            tc(X, Z) :- edge(X, Y), tc(Y, Z).
            edge(a, b). edge(b, c). marked(c). marked(zz).
            constraint m: forall X: marked(X) -> hub(X).
        ",
        )
        .unwrap();
        let q = PreparedQuery::prepare_with_params("tc(S, X)", &["S"]).unwrap();
        let session = db.session();
        // The plan carries a magic program (recursion-reaching goal)…
        let plan = q.plan_for(session.snapshot());
        match &plan.kind {
            PlanKind::Conjunctive { magic, .. } => assert!(magic.is_some()),
            PlanKind::Formula { .. } => unreachable!(),
        }
        // …and both consistency levels answer through the prepared path.
        let params = Params::new().bind("S", "a");
        let latest = session.execute(&q, &params, Consistency::Latest).unwrap();
        let certain = session.execute(&q, &params, Consistency::Certain).unwrap();
        assert_eq!(latest.len(), 2, "{latest}");
        assert_eq!(latest, certain, "tc is untouched by the repairs");
    }

    #[test]
    fn rows_order_is_deterministic_and_sorted() {
        let db = UniformDatabase::parse("edge(c, d). edge(a, b). edge(b, c).").unwrap();
        let q = PreparedQuery::prepare("edge(X, Y)").unwrap();
        let rows = db
            .session()
            .execute(&q, &Params::new(), Consistency::Latest)
            .unwrap();
        let xs: Vec<&str> = rows.iter().map(|r| r.get("X").unwrap().as_str()).collect();
        assert_eq!(xs, vec!["a", "b", "c"]);
    }

    #[test]
    fn sessions_pin_their_snapshot() {
        let mut db = UniformDatabase::parse(ORG).unwrap();
        let q = PreparedQuery::prepare("employee(X)").unwrap();
        let session = db.session();
        db.try_update_all(&["employee(bob)", "department(hr)", "leads(bob, hr)"])
            .unwrap();
        // The old session still answers from its pinned state…
        assert_eq!(
            session
                .execute(&q, &Params::new(), Consistency::Latest)
                .unwrap()
                .len(),
            1
        );
        // …a fresh one observes the commit — through the same plan.
        assert_eq!(
            db.session()
                .execute(&q, &Params::new(), Consistency::Latest)
                .unwrap()
                .len(),
            2
        );
        let (hits, misses) = q.plan_counters();
        assert_eq!((hits, misses), (1, 1), "one plan, reused across sessions");
    }

    #[test]
    fn plans_are_rebuilt_after_rule_updates() {
        let mut db = UniformDatabase::parse(ORG).unwrap();
        let q = PreparedQuery::prepare("member(X, Y)").unwrap();
        assert_eq!(
            db.session()
                .execute(&q, &Params::new(), Consistency::Latest)
                .unwrap()
                .len(),
            1
        );
        db.try_add_rule("member(X, ann_club) :- employee(X).")
            .unwrap();
        // The rule revision moved: the stale plan is not served.
        let rows = db
            .session()
            .execute(&q, &Params::new(), Consistency::Latest)
            .unwrap();
        assert_eq!(rows.len(), 2, "{rows}");
        let (_, misses) = q.plan_counters();
        assert_eq!(misses, 2, "re-planned once after the rule update");
    }

    /// Regression: plans are keyed by `(db_id, rule_rev)`, not rule
    /// revision alone. Two databases can agree on every revision
    /// counter while holding different rules — a shared prepared query
    /// must plan per database, or a magic program with the first
    /// database's rules baked in silently answers for the second.
    #[test]
    fn plans_never_cross_databases_with_equal_revisions() {
        let db1 = UniformDatabase::parse_tolerant(
            "
            tc(X, Y) :- edge(X, Y).
            tc(X, Z) :- edge(X, Y), tc(Y, Z).
            edge(a, b). edge(b, c).
            constraint m: forall X: marked(X) -> hub(X).
            marked(q).
        ",
        )
        .unwrap();
        let db2 = UniformDatabase::parse_tolerant(
            "
            tc(X, Y) :- link(X, Y).
            tc(X, Z) :- link(X, Y), tc(Y, Z).
            link(a, z).
            constraint m: forall X: marked(X) -> hub(X).
            marked(q).
        ",
        )
        .unwrap();
        assert_eq!(
            db1.database().rule_rev(),
            db2.database().rule_rev(),
            "the collision precondition: equal revision counters"
        );
        let q = PreparedQuery::prepare_with_params("tc(S, X)", &["S"]).unwrap();
        let params = Params::new().bind("S", "a");
        for (db, expect) in [(&db1, vec!["b", "c"]), (&db2, vec!["z"])] {
            let session = db.session();
            for level in [Consistency::Latest, Consistency::Certain] {
                let rows = session.execute(&q, &params, level).unwrap();
                let got: Vec<&str> = rows.iter().map(|r| r.get("X").unwrap().as_str()).collect();
                assert_eq!(got, expect, "{level:?}");
            }
        }
        let (_, misses) = q.plan_counters();
        assert_eq!(misses, 2, "one plan per database identity");
    }

    #[test]
    fn plan_slots_evict_least_recently_used_not_oldest() {
        // Regression: the plan store used to claim "bounded: old keys
        // are evicted" but evicted in *insertion* order, so a hot
        // database's plan died to churn by other databases even while
        // being hit constantly. Six databases churn one PreparedQuery's
        // PLAN_SLOTS=4 store; the hot one is re-hit between insertions
        // and must never re-plan.
        let dbs: Vec<UniformDatabase> = (0..6)
            .map(|_| UniformDatabase::parse("employee(ann).").unwrap())
            .collect();
        let q = PreparedQuery::prepare("employee(X)").unwrap();
        let run = |db: &UniformDatabase| {
            db.session()
                .execute(&q, &Params::new(), Consistency::Latest)
                .unwrap()
        };
        run(&dbs[0]); // the hot database plans first
        for cold in &dbs[1..] {
            run(cold); // one plan per database identity
            run(&dbs[0]); // ...with the hot plan re-hit in between
        }
        run(&dbs[0]);
        let (hits, misses) = q.plan_counters();
        assert_eq!(misses, 6, "one plan per database, hot never re-planned");
        assert_eq!(hits, 6, "every hot re-execute was served cached");
    }

    #[test]
    fn budget_refusals_are_typed() {
        let db = UniformDatabase::parse_tolerant("p(a). constraint c: forall X: p(X) -> q(X).")
            .unwrap()
            .with_options(crate::UniformOptions {
                repair: RepairOptions {
                    max_branches: 1,
                    ..RepairOptions::default()
                },
                ..crate::UniformOptions::default()
            });
        let q = PreparedQuery::prepare("p(X)").unwrap();
        let err = db
            .session()
            .execute(&q, &Params::new(), Consistency::Certain)
            .unwrap_err();
        assert!(matches!(err, QueryError::Budget(_)), "{err}");
    }

    #[test]
    fn budget_refusals_scope_to_the_affected_closure() {
        // The size-5 repair {+q(a), -t1..-t4} is clipped by the default
        // fact budget of 4, so queries touching the violated closure
        // refuse — but z is disjoint from every constraint's closure
        // and its certain answers must still be served.
        let db = UniformDatabase::parse_tolerant(
            "
            p(a). t1(a). t2(a). t3(a). t4(a). z(a).
            constraint c: forall X: p(X) -> q(X).
            constraint d1: forall X: q(X) & t1(X) -> false.
            constraint d2: forall X: q(X) & t2(X) -> false.
            constraint d3: forall X: q(X) & t3(X) -> false.
            constraint d4: forall X: q(X) & t4(X) -> false.
        ",
        )
        .unwrap();
        let session = db.session();

        let inside = PreparedQuery::prepare("t1(X)").unwrap();
        let err = session
            .execute(&inside, &Params::new(), Consistency::Certain)
            .unwrap_err();
        assert!(matches!(err, QueryError::Budget(_)), "{err}");

        let outside = PreparedQuery::prepare("z(X)").unwrap();
        let rows = session
            .execute(&outside, &Params::new(), Consistency::Certain)
            .unwrap();
        assert_eq!(rows.len(), 1, "z(a) is certain under a clipped budget");

        // The formula path gets the same scoping.
        let holds = PreparedQuery::prepare_formula("exists X: z(X)").unwrap();
        let rows = session
            .execute(&holds, &Params::new(), Consistency::Certain)
            .unwrap();
        assert!(rows.is_true());
    }

    #[test]
    fn parse_errors_are_typed() {
        assert!(matches!(
            PreparedQuery::prepare("p(X"),
            Err(QueryError::Parse(_))
        ));
        assert!(matches!(
            PreparedQuery::prepare_formula("forall X:"),
            Err(QueryError::Parse(_))
        ));
    }
}
