//! The high-level façade: a deductive database whose every mutation is
//! guarded by the appropriate checker of the paper.

use crate::query::{Consistency, Params, PreparedQuery, QueryError, Session};
use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;
use uniform_analyze::{AnalyzeError, AnalyzeOptions, AnalyzedProgram, Analyzer, SatClass};
use uniform_datalog::{Database, Model, RuleSet, Transaction, TxnBuilder, Update};
use uniform_integrity::{
    CheckOptions, CheckReport, Checker, ConditionalUpdate, RuleUpdate, RuleUpdateChecker,
};
use uniform_logic::{
    normalize, parse_fact, parse_formula, parse_literal, parse_rule, Constraint, Fact, LogicError,
    Rule, Sym,
};
use uniform_repair::{RepairEngine, RepairError, RepairOptions, RepairSet, ViolationPolicy};
use uniform_satisfiability::{SatChecker, SatOptions, SatOutcome, SatReport};

/// Configuration of the façade.
#[derive(Clone, Debug)]
pub struct UniformOptions {
    /// Options for update checking.
    pub check: CheckOptions,
    /// Options for satisfiability checking of schema changes.
    pub sat: SatOptions,
    /// Skip the satisfiability check when adding constraints/rules
    /// (current-state checking still applies).
    pub skip_satisfiability: bool,
    /// Maintain the canonical model incrementally through the concurrent
    /// commit pipeline (see [`crate::ConcurrentDatabase`]): each admitted
    /// commit's net effect flips the queue's maintained model forward, so
    /// post-commit snapshots never rematerialize. Disable to reproduce
    /// the invalidate-on-commit behavior (every post-commit snapshot
    /// recomputes the model from scratch).
    pub maintain_model: bool,
    /// Cost bounds for the repair engine behind
    /// [`UniformDatabase::consistent_answer`] / `minimal_repairs` and
    /// the `Explain`/`AutoRepair` violation policies.
    pub repair: RepairOptions,
    /// What the concurrent commit pipeline does when a transaction's
    /// integrity check fails (see [`ViolationPolicy`]); overridable
    /// per commit via [`crate::ConcurrentDatabase::commit_with_policy`].
    pub violation_policy: ViolationPolicy,
}

impl Default for UniformOptions {
    fn default() -> UniformOptions {
        UniformOptions {
            check: CheckOptions::default(),
            sat: SatOptions::default(),
            skip_satisfiability: false,
            maintain_model: true,
            repair: RepairOptions::default(),
            violation_policy: ViolationPolicy::Reject,
        }
    }
}

/// Everything that can go wrong when talking to a [`UniformDatabase`].
#[derive(Debug)]
pub enum UniformError {
    /// Parse / normalization / rule-safety error.
    Language(LogicError),
    /// The rule set stopped being stratifiable.
    Stratification(String),
    /// A fact update would violate constraints; the report lists them.
    UpdateRejected(Box<CheckReport>),
    /// The program's initial facts violate its constraints.
    InitialViolation(Vec<String>),
    /// A new constraint or rule makes the schema unsatisfiable (or the
    /// checker could not find a model within its budget).
    Unsatisfiable(Box<SatReport>),
    /// The static analyzer refused the schema: at least one
    /// error-severity diagnostic (stable `UAxxxx` codes — an
    /// unsatisfiable constraint *set* above all, UA0301). Distinct from
    /// [`UniformError::CurrentlyViolated`]: a violated-but-satisfiable
    /// constraint is repairable, an analyzer-refused one admits no
    /// state at all, whatever the facts.
    Analyze(AnalyzeError),
    /// The new constraint is satisfiable but violated by the current
    /// database; `repair` carries the smallest minimal repair of the
    /// would-be state (insertions *and* deletions, found by the
    /// [`RepairEngine`] — the same engine behind `minimal_repairs` and
    /// the `Explain`/`AutoRepair` policies), when one exists within the
    /// configured budgets.
    CurrentlyViolated {
        constraint: String,
        repair: Option<RepairSet>,
    },
    /// The repair engine could not produce a repair set (budget
    /// exhausted, or the state is unrepairable).
    Repair(RepairError),
    /// The typed read path refused (see [`QueryError`]); parse and
    /// repair-budget refusals are mapped onto the older
    /// [`UniformError::Language`] / [`UniformError::Repair`] variants
    /// instead, so this carries only the genuinely new cases.
    Query(QueryError),
}

impl fmt::Display for UniformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UniformError::Language(e) => write!(f, "{e}"),
            UniformError::Stratification(e) => write!(f, "{e}"),
            UniformError::UpdateRejected(report) => {
                write!(f, "update rejected; violated: ")?;
                for (i, v) in report.violations.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", v.constraint)?;
                    if let Some(culprit) = &v.culprit {
                        write!(f, " (via {culprit})")?;
                    }
                }
                Ok(())
            }
            UniformError::InitialViolation(names) => {
                write!(f, "initial facts violate constraints: {}", names.join(", "))
            }
            UniformError::Unsatisfiable(report) => match &report.outcome {
                SatOutcome::Unsatisfiable => write!(
                    f,
                    "constraints and rules are unsatisfiable: no database state could ever satisfy them"
                ),
                SatOutcome::Unknown { reason } => {
                    write!(f, "satisfiability could not be established: {reason}")
                }
                SatOutcome::Satisfiable { .. } => write!(f, "internal: satisfiable reported as error"),
            },
            UniformError::Analyze(e) => write!(f, "{e}"),
            UniformError::CurrentlyViolated { constraint, repair } => {
                write!(f, "constraint {constraint} is violated by the current database")?;
                if let Some(repair) = repair {
                    write!(f, "; applying {repair} would enforce it")?;
                }
                Ok(())
            }
            UniformError::Repair(e) => write!(f, "{e}"),
            UniformError::Query(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for UniformError {}

impl From<LogicError> for UniformError {
    fn from(e: LogicError) -> Self {
        UniformError::Language(e)
    }
}

impl From<uniform_logic::ParseError> for UniformError {
    fn from(e: uniform_logic::ParseError) -> Self {
        UniformError::Language(LogicError::Parse(e))
    }
}

impl From<AnalyzeError> for UniformError {
    fn from(e: AnalyzeError) -> Self {
        UniformError::Analyze(e)
    }
}

/// The schema-satisfiability gate shared by [`UniformDatabase`] and
/// [`crate::ConcurrentDatabase`]: classify the candidate constraint set
/// against `rules` with the analyzer in gate mode (one bounded search —
/// the cost of the pre-analyzer `SatChecker` call). A proven-impossible
/// set is refused with the typed [`AnalyzeError`] (UA0301); an
/// exhausted search keeps the legacy [`UniformError::Unsatisfiable`]
/// refusal, whose report carries the search's reason and stats.
pub(crate) fn refuse_unsatisfiable_candidate(
    rules: &RuleSet,
    candidate: Vec<Constraint>,
    sat: &SatOptions,
) -> Result<(), UniformError> {
    let analyzed = Analyzer::new(rules.clone(), candidate)
        .with_options(AnalyzeOptions::gate(sat.clone()))
        .analyze();
    match analyzed.set_class() {
        SatClass::Unsatisfiable => {
            Err(UniformError::Analyze(analyzed.refusal().expect(
                "an unsatisfiable set always carries an error diagnostic",
            )))
        }
        SatClass::Unknown => {
            let report = analyzed
                .sat()
                .set_report
                .clone()
                .expect("unknown class comes from the set search");
            Err(UniformError::Unsatisfiable(Box::new(report)))
        }
        SatClass::Tautological | SatClass::Contingent => Ok(()),
    }
}

/// The shim mapping: the typed read path's [`QueryError`] folded into
/// the façade's error taxonomy. Parse errors and repair-budget
/// refusals keep their historical variants (callers match on them);
/// everything genuinely new rides in [`UniformError::Query`].
impl From<QueryError> for UniformError {
    fn from(e: QueryError) -> Self {
        match e {
            QueryError::Parse(e) => UniformError::Language(LogicError::Parse(e)),
            QueryError::Normalize(e) => UniformError::Language(LogicError::Normalize(e)),
            QueryError::Budget(e) => UniformError::Repair(e),
            other => UniformError::Query(other),
        }
    }
}

/// The guarded rule-update protocol shared by the single-owner façade
/// and the concurrent pipeline ([`crate::ConcurrentDatabase`], which
/// runs it under the commit-queue lock): compile the update
/// (stratification), check schema satisfiability with the candidate
/// rule set, evaluate the incremental integrity check, and only then
/// install. One implementation so the two paths cannot drift apart.
/// Returns whether the rule set actually changed.
pub(crate) fn guarded_rule_update(
    db: &mut Database,
    options: &UniformOptions,
    update: RuleUpdate,
) -> Result<bool, UniformError> {
    guarded_rule_update_presat(db, options, update, None)
}

/// Like [`guarded_rule_update`], but accepting a satisfiability verdict
/// computed *optimistically outside the caller's lock* for exactly this
/// update's candidate rule set and the database's current constraints.
/// The caller is responsible for revalidating that rules and
/// constraints have not moved since the verdict was computed (see
/// [`crate::ConcurrentDatabase::try_add_rule`]); with `None`, the
/// search runs here as before.
pub(crate) fn guarded_rule_update_presat(
    db: &mut Database,
    options: &UniformOptions,
    update: RuleUpdate,
    presat: Option<&SatReport>,
) -> Result<bool, UniformError> {
    let checker = RuleUpdateChecker::with_options(db, options.check);
    let compiled = checker
        .compile(&update)
        .map_err(|e| UniformError::Stratification(e.to_string()))?;
    let Some(rule_set) = compiled.rules_after.clone() else {
        return Ok(false); // no-op: rule already present / absent
    };

    if !options.skip_satisfiability {
        let computed;
        let report = match presat {
            Some(report) => report,
            None => {
                computed = SatChecker::new(rule_set.clone(), db.constraints().to_vec())
                    .with_options(options.sat.clone())
                    .check();
                &computed
            }
        };
        if !report.outcome.is_satisfiable() {
            // A *proven* unsatisfiable candidate schema is a static
            // refusal — the same UA0301 verdict the analyzer reaches —
            // while an exhausted search keeps the legacy report-carrying
            // error so callers can inspect the budget that ran out.
            return Err(match report.outcome {
                SatOutcome::Unsatisfiable => {
                    UniformError::Analyze(AnalyzeError::unsatisfiable_set(db.constraints().len()))
                }
                _ => UniformError::Unsatisfiable(Box::new(report.clone())),
            });
        }
    }

    let report = checker.evaluate(&compiled);
    if !report.satisfied {
        return Err(UniformError::UpdateRejected(Box::new(report)));
    }
    db.set_rules(rule_set);
    Ok(true)
}

/// One cached [`AnalyzedProgram`] keyed by `(rule_rev, constraint_rev)`
/// — the single-entry schema-analysis cache shared in shape by
/// [`UniformDatabase`] and [`crate::ConcurrentDatabase`].
pub(crate) type AnalyzedSlot = Mutex<Option<((u64, u64), Arc<AnalyzedProgram>)>>;

/// A deductive database with guarded updates — the paper's two methods
/// behind one API.
pub struct UniformDatabase {
    db: Database,
    options: UniformOptions,
    /// The cached static analysis of the registered program, keyed by
    /// `(rule_rev, constraint_rev)` — schema mutations change the key,
    /// so stale entries are simply never served (see
    /// [`UniformDatabase::analyze`]).
    analyzed: AnalyzedSlot,
}

impl UniformDatabase {
    /// An empty database.
    pub fn new() -> UniformDatabase {
        UniformDatabase {
            db: Database::new(),
            options: UniformOptions::default(),
            analyzed: Mutex::new(None),
        }
    }

    /// Parse a program (facts, rules, constraints). Fails if the initial
    /// facts violate the constraints — the integrity-maintenance method
    /// requires a consistent starting point.
    pub fn parse(src: &str) -> Result<UniformDatabase, UniformError> {
        let db = Database::parse(src)?;
        let violated = db.violated_constraints();
        if !violated.is_empty() {
            return Err(UniformError::InitialViolation(violated));
        }
        Ok(UniformDatabase {
            db,
            options: UniformOptions::default(),
            analyzed: Mutex::new(None),
        })
    }

    /// Parse a program *without* requiring the initial facts to satisfy
    /// the constraints — the entry point for inconsistency-tolerant
    /// serving. Guarded updates assume a consistent starting state (the
    /// incremental method's precondition), so on a tolerant database
    /// the intended operations are [`UniformDatabase::minimal_repairs`]
    /// and [`UniformDatabase::consistent_answer`]. To *write* the state
    /// back to consistency, apply a chosen repair explicitly (e.g.
    /// `minimal_repairs()?[0].to_transaction()` through the raw
    /// database) — note that [`ViolationPolicy::AutoRepair`] repairs
    /// only transactions whose own check fails, not pre-existing
    /// inconsistency that a non-violating commit leaves untouched.
    pub fn parse_tolerant(src: &str) -> Result<UniformDatabase, UniformError> {
        Ok(UniformDatabase {
            db: Database::parse(src)?,
            options: UniformOptions::default(),
            analyzed: Mutex::new(None),
        })
    }

    pub fn with_options(mut self, options: UniformOptions) -> UniformDatabase {
        self.options = options;
        self
    }

    fn repair_engine(&self) -> RepairEngine {
        RepairEngine::new(
            self.db.facts().clone(),
            self.db.rules().clone(),
            self.db.constraints().to_vec(),
        )
        .with_options(self.options.repair)
    }

    /// The subset-minimal repairs of the current state: smallest EDB
    /// insert/delete sets whose application satisfies every constraint.
    /// A consistent state reports the single empty repair. Bounded by
    /// [`UniformOptions::repair`].
    pub fn minimal_repairs(&self) -> Result<Vec<RepairSet>, UniformError> {
        Ok(self
            .repair_engine()
            .repairs()
            .map_err(UniformError::Repair)?
            .repairs)
    }

    /// Consistent (certain) answers of a conjunctive query: the answers
    /// true in **every** minimal repair of the current state, evaluated
    /// via overlay simulation — no repaired database is materialized.
    /// On a consistent database this coincides with
    /// [`UniformDatabase::solutions`]. A thin shim over the prepared
    /// read path ([`UniformDatabase::session`] at
    /// [`Consistency::Certain`]); prepare the query yourself to stop
    /// paying parse + plan per call.
    pub fn consistent_answer(&self, query: &str) -> Result<Vec<Vec<(Sym, Sym)>>, UniformError> {
        let prepared = PreparedQuery::prepare(query)?;
        Ok(self
            .session()
            .execute(&prepared, &Params::new(), Consistency::Certain)?
            .bindings())
    }

    /// Open a read session pinned to a snapshot of the current state —
    /// the entry point of the typed read path (see [`Session`] and
    /// [`PreparedQuery`]). Guarded updates through `self` keep
    /// committing; the session's answers stay put.
    pub fn session(&self) -> Session {
        Session::new(self.db.snapshot(), self.options.repair)
    }

    /// The underlying database (read-only).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The static analysis of the registered program (see
    /// [`uniform_analyze`]): lints with stable `UAxxxx` codes,
    /// per-constraint predicate closures, the dependency graph and
    /// read-pattern templates, plus the lazy UA03xx satisfiability
    /// classification. Cached keyed by `(rule_rev, constraint_rev)` —
    /// repeated calls between schema changes are free. Declared
    /// relations are sampled when the entry is built, so fact-dependent
    /// lints (UA0101 against relations, UA0201) reflect the relations
    /// existing at that moment; the closure/template/satisfiability
    /// artifacts depend only on the schema and are always exact.
    pub fn analyze(&self) -> Arc<AnalyzedProgram> {
        let key = (self.db.rule_rev(), self.db.constraint_rev());
        let mut cached = self.analyzed.lock();
        if let Some((k, analyzed)) = cached.as_ref() {
            if *k == key {
                return analyzed.clone();
            }
        }
        let analyzed = Arc::new(
            Analyzer::of_database(&self.db)
                .with_options(AnalyzeOptions {
                    sat: self.options.sat.clone(),
                    ..AnalyzeOptions::default()
                })
                .analyze(),
        );
        *cached = Some((key, analyzed.clone()));
        analyzed
    }

    /// Tear down the façade into its parts (used by
    /// [`crate::ConcurrentDatabase`] to move the database behind a
    /// shared commit queue).
    pub(crate) fn into_parts(self) -> (Database, UniformOptions) {
        (self.db, self.options)
    }

    pub fn facts(&self) -> impl Iterator<Item = Fact> + '_ {
        self.db.facts().iter()
    }

    pub fn constraints(&self) -> &[Constraint] {
        self.db.constraints()
    }

    pub fn model(&self) -> std::sync::Arc<Model> {
        self.db.model()
    }

    /// An immutable, `Send + Sync` read handle on the current state (see
    /// [`uniform_datalog::Snapshot`]): O(#relations) to take, stable
    /// answers while guarded updates keep committing to `self`. Hand one
    /// to each concurrent reader; take a fresh one to observe later
    /// commits.
    pub fn snapshot(&self) -> uniform_datalog::Snapshot {
        self.db.snapshot()
    }

    // ---- guarded fact updates -------------------------------------------

    /// Check a transaction without applying it.
    pub fn check(&self, tx: &Transaction) -> CheckReport {
        Checker::with_options(&self.db, self.options.check).check(tx)
    }

    /// Typed arity validation shared by every guarded fact-update path
    /// (delegates to the single datalog-level rule set, which also
    /// catches intra-transaction mismatches on fresh predicates).
    fn validate_arities(&self, tx: &Transaction) -> Result<(), UniformError> {
        uniform_datalog::database::validate_transaction_arities(
            |pred| self.db.arity_of(pred),
            &tx.updates,
        )
        .map_err(|e| {
            UniformError::Language(LogicError::Parse(uniform_logic::ParseError {
                line: 1,
                col: 1,
                message: e.to_string(),
            }))
        })
    }

    /// Apply a transaction iff it preserves integrity.
    pub fn try_apply(&mut self, tx: &Transaction) -> Result<CheckReport, UniformError> {
        self.validate_arities(tx)?;
        let report = self.check(tx);
        if report.satisfied {
            for u in &tx.updates {
                self.db.apply(u).expect("arities validated above");
            }
            Ok(report)
        } else {
            Err(UniformError::UpdateRejected(Box::new(report)))
        }
    }

    // ---- optimistic transactions ----------------------------------------

    /// Open a transaction: a [`TxnBuilder`] staging updates against a
    /// snapshot of the current state. Check-and-commit it later with
    /// [`UniformDatabase::commit`]; for multi-writer pipelines see
    /// [`crate::ConcurrentDatabase`].
    pub fn begin(&self) -> TxnBuilder {
        self.db.begin()
    }

    /// Commit a transaction opened with [`UniformDatabase::begin`],
    /// guarded by the integrity checker. When the database is unchanged
    /// since `begin` the check runs against the pinned snapshot (the
    /// concurrent pipeline's path); if this handle committed something
    /// in between, the transaction is transparently re-checked against
    /// the current state — with `&mut self` there are no other writers,
    /// so a conflict abort would be pure friction.
    pub fn commit(&mut self, txn: &TxnBuilder) -> Result<CheckReport, UniformError> {
        let tx = txn.transaction();
        self.validate_arities(&tx)?;
        if txn.begin_version() != self.db.version() {
            return self.try_apply(&tx);
        }
        let report =
            Checker::for_snapshot_with_options(txn.snapshot(), self.options.check).check(&tx);
        if report.satisfied {
            for u in &tx.updates {
                self.db.apply(u).expect("arities validated above");
            }
            Ok(report)
        } else {
            Err(UniformError::UpdateRejected(Box::new(report)))
        }
    }

    /// Insert one fact (parsed), guarded.
    pub fn try_insert(&mut self, fact: &str) -> Result<CheckReport, UniformError> {
        let f = parse_fact(fact)?;
        self.try_apply(&Transaction::single(Update::insert(f)))
    }

    /// Delete one fact (parsed), guarded.
    pub fn try_delete(&mut self, fact: &str) -> Result<CheckReport, UniformError> {
        let f = parse_fact(fact)?;
        self.try_apply(&Transaction::single(Update::delete(f)))
    }

    /// Apply a conditional update (BRY 87; §3.2), e.g.
    /// `"not enrolled(X, cs) where enrolled(X, cs), failed(X)"`: the
    /// condition is evaluated against the canonical model, the update
    /// pattern is instantiated per answer, and the resulting transaction
    /// is applied iff it preserves integrity.
    pub fn try_apply_where(&mut self, src: &str) -> Result<CheckReport, UniformError> {
        let cu = ConditionalUpdate::parse(src).map_err(UniformError::Language)?;
        let (report, tx) = {
            let checker = Checker::with_options(&self.db, self.options.check);
            let compiled = checker.compile_conditional(&cu);
            let tx = checker.expand_conditional(&cu);
            (checker.evaluate(&compiled, &tx), tx)
        };
        if report.satisfied {
            self.validate_arities(&tx)?;
            for u in &tx.updates {
                self.db.apply(u).expect("arities validated above");
            }
            Ok(report)
        } else {
            Err(UniformError::UpdateRejected(Box::new(report)))
        }
    }

    /// Apply a transaction given as `;`-free list of literal sources,
    /// e.g. `["student(jack)", "not enrolled(jack, cs)"]`.
    pub fn try_update_all(&mut self, literals: &[&str]) -> Result<CheckReport, UniformError> {
        let mut updates = Vec::with_capacity(literals.len());
        for l in literals {
            let lit = parse_literal(l)?;
            let upd = Update::from_literal(&lit).ok_or_else(|| {
                UniformError::Language(LogicError::Parse(uniform_logic::ParseError {
                    line: 1,
                    col: 1,
                    message: format!("update `{l}` is not ground"),
                }))
            })?;
            updates.push(upd);
        }
        self.try_apply(&Transaction::new(updates))
    }

    // ---- guarded schema updates ------------------------------------------

    /// Satisfiability of the current rules + constraints (+ an optional
    /// extra constraint).
    fn satisfiability_with(&self, extra: Option<&Constraint>) -> SatReport {
        let mut constraints = self.db.constraints().to_vec();
        if let Some(c) = extra {
            constraints.push(c.clone());
        }
        SatChecker::new(self.db.rules().clone(), constraints)
            .with_options(self.options.sat.clone())
            .check()
    }

    /// Check finite satisfiability of the current schema.
    pub fn check_satisfiability(&self) -> SatReport {
        self.satisfiability_with(None)
    }

    /// Add a constraint, guarded twice: first the schema-level
    /// satisfiability check (§4 — incompatible constraints are rejected
    /// no matter what the facts say, through the static analyzer's gate
    /// mode: a proven-impossible set is refused with the typed
    /// [`AnalyzeError`] and its UA0301 diagnostic), then the
    /// current-state check. When
    /// the current state violates the new constraint, the error carries
    /// the smallest minimal repair of the would-be state, computed by
    /// the [`RepairEngine`] — the same engine behind
    /// [`UniformDatabase::minimal_repairs`], so the suggestion never
    /// disagrees with the repair surface.
    pub fn try_add_constraint(&mut self, name: &str, formula: &str) -> Result<(), UniformError> {
        let f = parse_formula(formula)?;
        let rq = normalize(&f).map_err(LogicError::Normalize)?;
        let constraint = Constraint::new(name, rq);

        if !self.options.skip_satisfiability {
            let mut candidate = self.db.constraints().to_vec();
            candidate.push(constraint.clone());
            refuse_unsatisfiable_candidate(self.db.rules(), candidate, &self.options.sat)?;
        }

        if !self.db.satisfies(&constraint.rq) {
            let mut constraints = self.db.constraints().to_vec();
            constraints.push(constraint);
            let engine = RepairEngine::new(
                self.db.facts().clone(),
                self.db.rules().clone(),
                constraints,
            )
            .with_options(self.options.repair);
            let repair = engine.repairs().ok().map(|report| report.best().clone());
            return Err(UniformError::CurrentlyViolated {
                constraint: name.to_string(),
                repair,
            });
        }

        self.db.add_constraint(constraint);
        Ok(())
    }

    /// Add a rule, guarded three ways: stratification, schema
    /// satisfiability with the new rule, and the *incremental*
    /// integrity check of a rule update treated like a conditional
    /// update (§3.2) — only constraints relevant to literals the new
    /// rule can reach are evaluated, never the full constraint set.
    pub fn try_add_rule(&mut self, rule: &str) -> Result<(), UniformError> {
        let r: Rule = parse_rule(rule)?;
        self.apply_rule_update(RuleUpdate::Add(r)).map(|_| ())
    }

    /// Remove a constraint by name. Always safe (removing a constraint
    /// can only enlarge the set of acceptable states). Returns `false`
    /// if no constraint with that name exists.
    pub fn remove_constraint(&mut self, name: &str) -> bool {
        let before = self.db.constraints().len();
        let remaining: Vec<Constraint> = self
            .db
            .constraints()
            .iter()
            .filter(|c| c.name != name)
            .cloned()
            .collect();
        let removed = remaining.len() < before;
        if removed {
            self.db.set_constraints(remaining);
        }
        removed
    }

    /// Remove a rule (given in source syntax), guarded: dropping a rule
    /// removes derived facts, which can violate constraints with positive
    /// occurrences of the derived predicate. Checked incrementally like
    /// a conditional deletion of the rule's head (§3.2). Returns `false`
    /// if no such rule exists.
    pub fn try_remove_rule(&mut self, rule: &str) -> Result<bool, UniformError> {
        let target: Rule = parse_rule(rule)?;
        self.apply_rule_update(RuleUpdate::Remove(target))
    }

    /// Shared implementation of guarded rule addition/removal. Returns
    /// whether the rule set actually changed.
    fn apply_rule_update(&mut self, update: RuleUpdate) -> Result<bool, UniformError> {
        guarded_rule_update(&mut self.db, &self.options, update)
    }

    /// Serialize the database back to its surface syntax (round-trips
    /// through [`UniformDatabase::parse`]).
    pub fn to_program_source(&self) -> String {
        uniform_datalog::to_program_source(&self.db)
    }

    // ---- queries -----------------------------------------------------------

    /// Why is `fact` true? Renders a well-founded derivation tree
    /// (explicit facts, rule applications, absences justifying negative
    /// premises), or `None` when the fact is not in the canonical model.
    pub fn explain(&self, fact: &str) -> Result<Option<String>, UniformError> {
        let f = parse_fact(fact)?;
        let prov = uniform_datalog::Provenance::build(self.db.facts(), self.db.rules());
        Ok(prov.explain(&f).map(|d| d.to_string()))
    }

    /// Evaluate a closed formula against the canonical model — a shim
    /// over the prepared read path (parse + plan per call; prepare the
    /// formula yourself via [`PreparedQuery::prepare_formula`] for hot
    /// queries).
    pub fn query(&self, formula: &str) -> Result<bool, UniformError> {
        let prepared = PreparedQuery::prepare_formula(formula)?;
        Ok(self
            .session()
            .execute(&prepared, &Params::new(), Consistency::Latest)?
            .is_true())
    }

    /// Enumerate the answers of a conjunctive query, as bindings of its
    /// variables in first-occurrence order — a shim over the prepared
    /// read path.
    pub fn solutions(&self, query: &str) -> Result<Vec<Vec<(Sym, Sym)>>, UniformError> {
        let prepared = PreparedQuery::prepare(query)?;
        Ok(self
            .session()
            .execute(&prepared, &Params::new(), Consistency::Latest)?
            .bindings())
    }
}

impl Default for UniformDatabase {
    fn default() -> Self {
        UniformDatabase::new()
    }
}

impl fmt::Debug for UniformDatabase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "UniformDatabase({:?})", self.db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ORG: &str = "
        member(X, Y) :- leads(X, Y).
        constraint led: forall X: department(X) -> (exists Y: employee(Y) & leads(Y, X)).
        constraint emp_member: forall X: employee(X) -> (exists Y: member(X, Y)).
        employee(ann).
        department(sales).
        leads(ann, sales).
    ";

    #[test]
    fn parse_rejects_inconsistent_start() {
        let err = UniformDatabase::parse("p(a). constraint c: forall X: p(X) -> q(X).");
        assert!(
            matches!(err, Err(UniformError::InitialViolation(ref v)) if v == &vec!["c".to_string()])
        );
    }

    #[test]
    fn guarded_inserts_and_deletes() {
        let mut db = UniformDatabase::parse(ORG).unwrap();
        // Dangling department rejected.
        assert!(db.try_insert("department(hr).").is_err());
        // With a leader in the same transaction it goes through.
        db.try_update_all(&["department(hr)", "employee(bob)", "leads(bob, hr)"])
            .unwrap();
        assert!(db.query("member(bob, hr)").unwrap());
        // Removing ann's leadership would orphan sales.
        assert!(db.try_delete("leads(ann, sales)").is_err());
    }

    #[test]
    fn begin_commit_guards_like_try_apply() {
        let mut db = UniformDatabase::parse(ORG).unwrap();
        let mut txn = db.begin();
        txn.insert(Fact::parse_like("department", &["hr"]));
        txn.insert(Fact::parse_like("employee", &["bob"]));
        txn.insert(Fact::parse_like("leads", &["bob", "hr"]));
        let report = db.commit(&txn).unwrap();
        assert!(report.satisfied);
        assert!(db.query("member(bob, hr)").unwrap());

        // A transaction whose snapshot went stale (this handle committed
        // in between) is transparently re-checked against current state.
        let mut stale = db.begin();
        stale.insert(Fact::parse_like("department", &["ops"]));
        stale.insert(Fact::parse_like("employee", &["cal"]));
        stale.insert(Fact::parse_like("leads", &["cal", "ops"]));
        db.try_insert("veteran(v).").unwrap();
        assert!(db.commit(&stale).unwrap().satisfied);
        assert!(db.query("member(cal, ops)").unwrap());

        // Rejections carry the usual typed report.
        let mut bad = db.begin();
        bad.insert(Fact::parse_like("department", &["void"]));
        let err = db.commit(&bad).unwrap_err();
        assert!(matches!(err, UniformError::UpdateRejected(_)), "{err}");
        assert!(!db.query("department(void)").unwrap());
    }

    #[test]
    fn unsatisfiable_constraint_rejected_before_fact_check() {
        let mut db = UniformDatabase::parse(ORG).unwrap();
        // On its own, forbidding leaders is satisfiable (by databases
        // without departments), so it is rejected by the *state* check.
        // Once a department is required to exist, the combination has no
        // model at all and the satisfiability check fires first.
        db.try_add_constraint("some_dept", "exists X: department(X)")
            .unwrap();
        let err = db
            .try_add_constraint("nobody", "forall X, Y: leads(X, Y) -> false")
            .unwrap_err();
        // A *proven* impossible set is the analyzer's typed refusal,
        // with the stable UA0301 code — not the CurrentlyViolated (=
        // repairable) shape, and not the legacy Unsatisfiable (which
        // now only carries budget-exhausted searches).
        let UniformError::Analyze(e) = err else {
            panic!("expected analyzer refusal");
        };
        assert!(e
            .diagnostics
            .iter()
            .any(|d| d.code == uniform_analyze::Code::UnsatisfiableSet));
    }

    #[test]
    fn violated_but_satisfiable_constraint_suggests_repair() {
        let mut db = UniformDatabase::parse(ORG).unwrap();
        let err = db
            .try_add_constraint("audited", "forall X, Y: leads(X, Y) -> audited(X)")
            .unwrap_err();
        match err {
            UniformError::CurrentlyViolated { constraint, repair } => {
                assert_eq!(constraint, "audited");
                // The suggestion is the RepairEngine's smallest minimal
                // repair of the would-be state — here inserting the
                // missing audit record (deleting leads(ann, sales)
                // would cascade into `led` and `emp_member`).
                let repair = repair.expect("repair expected");
                assert_eq!(repair.to_string(), "{+audited(ann)}");
                assert_eq!(
                    repair.ops(),
                    &[Update::insert(Fact::parse_like("audited", &["ann"]))]
                );
            }
            other => panic!("unexpected {other}"),
        }
    }

    /// The pre-repair-engine `suggest_repair` (a satisfiability search
    /// seeded with the current facts) could disagree with
    /// `minimal_repairs`; the folded path cannot — the suggestion *is*
    /// a minimal repair of the would-be state.
    #[test]
    fn constraint_repair_suggestion_agrees_with_minimal_repairs() {
        let mut db = UniformDatabase::parse("p(a). p(b). q(b).").unwrap();
        let err = db
            .try_add_constraint("c", "forall X: p(X) -> q(X)")
            .unwrap_err();
        let UniformError::CurrentlyViolated { repair, .. } = err else {
            panic!("expected CurrentlyViolated");
        };
        let suggested = repair.expect("repairable state");
        // Independently enumerate the minimal repairs of the would-be
        // state (current facts + candidate constraint).
        let tolerant = UniformDatabase::parse_tolerant(
            "p(a). p(b). q(b). constraint c: forall X: p(X) -> q(X).",
        )
        .unwrap();
        let minimal = tolerant.minimal_repairs().unwrap();
        assert!(
            minimal.contains(&suggested),
            "suggestion {suggested} not among the minimal repairs {minimal:?}"
        );
        // And it is the smallest one (the engine's (size, name) order).
        assert_eq!(&suggested, &minimal[0]);
        // Applying it makes the constraint addition succeed.
        for op in suggested.ops() {
            if op.insert {
                db.try_insert(&format!("{}.", op.fact)).unwrap();
            } else {
                db.try_delete(&format!("{}.", op.fact)).unwrap();
            }
        }
        db.try_add_constraint("c", "forall X: p(X) -> q(X)")
            .unwrap();
    }

    #[test]
    fn satisfiable_and_satisfied_constraint_accepted() {
        let mut db = UniformDatabase::parse(ORG).unwrap();
        db.try_add_constraint("dom", "forall X, Y: leads(X, Y) -> employee(X)")
            .unwrap();
        assert_eq!(db.constraints().last().unwrap().name, "dom");
        // And it now guards updates.
        assert!(db.try_insert("leads(ghost, sales).").is_err());
    }

    #[test]
    fn rule_updates_guarded() {
        let mut db = UniformDatabase::parse(ORG).unwrap();
        // Unstratifiable addition rejected.
        assert!(db
            .try_add_rule("absent(X) :- employee(X), not absent(X).")
            .is_err());
        // A benign rule is accepted.
        db.try_add_rule("boss(X) :- leads(X, Y).").unwrap();
        assert!(db.query("boss(ann)").unwrap());
        // A rule that derives facts violating a constraint is rejected:
        // derive subordinate(ann, ann) violating a fresh constraint.
        db.try_add_constraint("noselfsub", "forall X: subordinate(X, X) -> false")
            .unwrap();
        let err = db.try_add_rule("subordinate(X, X) :- employee(X).");
        assert!(err.is_err(), "rule deriving violations must be rejected");
    }

    #[test]
    fn conditional_updates_guarded() {
        let mut db = UniformDatabase::parse(ORG).unwrap();
        db.try_update_all(&["employee(bob)", "department(hr)", "leads(bob, hr)"])
            .unwrap();
        // Mark every leader as a veteran: fine.
        let report = db.try_apply_where("veteran(X) where leads(X, Y)").unwrap();
        assert!(report.satisfied);
        assert!(db.query("veteran(ann)").unwrap());
        assert!(db.query("veteran(bob)").unwrap());
        // Fire every veteran: would orphan both departments.
        let err = db.try_apply_where("not leads(X, Y) where veteran(X), leads(X, Y)");
        assert!(err.is_err(), "conditional deletion must be guarded");
        assert!(
            db.query("leads(ann, sales)").unwrap(),
            "rejected update not applied"
        );
        // Empty expansion is a no-op.
        let report = db.try_apply_where("audit(X) where intern(X)").unwrap();
        assert!(report.satisfied);
    }

    #[test]
    fn conditional_update_parse_errors_surface() {
        let mut db = UniformDatabase::parse(ORG).unwrap();
        assert!(
            db.try_apply_where("veteran(X)").is_err(),
            "unbound pattern variable"
        );
        assert!(db.try_apply_where("veteran(X) where ???").is_err());
    }

    #[test]
    fn incremental_rule_update_reports_stats() {
        let mut db = UniformDatabase::parse(ORG).unwrap();
        // The incremental path rejects with an UpdateRejected report (not
        // the full-recheck InitialViolation), carrying the culprit.
        db.try_add_constraint("noselfsub", "forall X: subordinate(X, X) -> false")
            .unwrap();
        let err = db
            .try_add_rule("subordinate(X, X) :- employee(X).")
            .unwrap_err();
        match err {
            UniformError::UpdateRejected(report) => {
                assert_eq!(report.violations[0].constraint, "noselfsub");
                assert!(report.violations[0].culprit.is_some());
            }
            other => panic!("expected UpdateRejected, got {other}"),
        }
    }

    #[test]
    fn arity_mismatched_updates_rejected_politely() {
        let mut db = UniformDatabase::parse(ORG).unwrap();
        let err = db.try_insert("employee(x, y).").unwrap_err();
        assert!(err.to_string().contains("arity"), "{err}");
        let err = db.try_delete("leads(ann).").unwrap_err();
        assert!(err.to_string().contains("arity"), "{err}");
        // Fresh predicates are unconstrained…
        assert!(db.try_insert("brand_new(a, b, c).").is_ok());
        // …but one transaction cannot use a fresh predicate with two
        // different arities: refused up front, nothing applied.
        let err = db.try_update_all(&["fresh(a, b)", "fresh(c)"]).unwrap_err();
        assert!(err.to_string().contains("arity"), "{err}");
        assert!(db.database().facts().relation(Sym::new("fresh")).is_none());
    }

    #[test]
    fn explanations_render_derivations() {
        let db = UniformDatabase::parse(ORG).unwrap();
        let tree = db
            .explain("member(ann, sales)")
            .unwrap()
            .expect("derived fact");
        assert!(tree.contains("leads(ann,sales)"), "{tree}");
        assert!(tree.contains("[explicit]"), "{tree}");
        assert!(db.explain("member(ann, hr)").unwrap().is_none());
        let explicit = db.explain("employee(ann)").unwrap().unwrap();
        assert!(explicit.contains("[explicit]"));
    }

    #[test]
    fn queries_and_solutions() {
        let db = UniformDatabase::parse(ORG).unwrap();
        assert!(db.query("exists X: member(ann, X)").unwrap());
        assert!(!db.query("member(ann, hr)").unwrap());
        let sols = db.solutions("member(X, sales)").unwrap();
        assert_eq!(sols.len(), 1);
        assert_eq!(sols[0][0].1, Sym::new("ann"));
    }

    #[test]
    fn constraint_removal_is_unconditional() {
        let mut db = UniformDatabase::parse(ORG).unwrap();
        assert!(db.remove_constraint("led"));
        assert!(!db.remove_constraint("led"), "already gone");
        // With `led` gone, a dangling department is fine.
        db.try_insert("department(hr).").unwrap();
    }

    #[test]
    fn rule_removal_guarded_by_recheck() {
        let mut db = UniformDatabase::parse(ORG).unwrap();
        // Removing the member rule would strip ann's membership and
        // violate emp_member.
        let err = db
            .try_remove_rule("member(X, Y) :- leads(X, Y).")
            .unwrap_err();
        assert!(err.to_string().contains("emp_member"), "{err}");
        // Make the membership explicit first; then removal goes through.
        db.try_insert("member(ann, sales).").unwrap();
        assert!(db.try_remove_rule("member(X, Y) :- leads(X, Y).").unwrap());
        assert!(db.query("member(ann, sales)").unwrap());
        // Removing a rule that does not exist reports false.
        assert!(!db.try_remove_rule("ghost(X) :- leads(X, Y).").unwrap());
    }

    #[test]
    fn serialization_round_trip_through_facade() {
        let db = UniformDatabase::parse(ORG).unwrap();
        let printed = db.to_program_source();
        let db2 = UniformDatabase::parse(&printed).unwrap();
        assert_eq!(
            db.query("member(ann, sales)").unwrap(),
            db2.query("member(ann, sales)").unwrap()
        );
        assert_eq!(db.constraints().len(), db2.constraints().len());
    }

    #[test]
    fn tolerant_parse_serves_certain_answers() {
        // Inconsistent start: p(a) lacks q(a). The strict parser
        // refuses it; the tolerant one serves repairs and certain
        // answers instead.
        let src = "p(a). p(b). q(b). constraint c: forall X: p(X) -> q(X).";
        assert!(UniformDatabase::parse(src).is_err());
        let db = UniformDatabase::parse_tolerant(src).unwrap();
        let repairs = db.minimal_repairs().unwrap();
        assert_eq!(repairs.len(), 2, "{repairs:?}");
        let answers = db.consistent_answer("p(X)").unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0][0].1, Sym::new("b"));
        // Derived predicates answer consistently too.
        let db = UniformDatabase::parse_tolerant(
            "r(X) :- p(X). p(a). p(b). q(b). constraint c: forall X: p(X) -> q(X).",
        )
        .unwrap();
        let answers = db.consistent_answer("r(X)").unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0][0].1, Sym::new("b"));
    }

    #[test]
    fn consistent_answer_on_a_consistent_database_is_plain_answering() {
        let db = UniformDatabase::parse(ORG).unwrap();
        assert_eq!(db.minimal_repairs().unwrap().len(), 1);
        assert!(db.minimal_repairs().unwrap()[0].is_empty());
        assert_eq!(
            db.consistent_answer("member(X, sales)").unwrap(),
            db.solutions("member(X, sales)").unwrap()
        );
    }

    #[test]
    fn check_satisfiability_of_schema() {
        let db = UniformDatabase::parse(ORG).unwrap();
        assert!(db.check_satisfiability().outcome.is_satisfiable());
    }

    #[test]
    fn skip_satisfiability_option() {
        let mut db = UniformDatabase::parse("employee(a).")
            .unwrap()
            .with_options(UniformOptions {
                skip_satisfiability: true,
                ..UniformOptions::default()
            });
        // Without the sat check, an unsatisfiable pair can be added one at
        // a time (first is fine, second is caught by the current-state
        // check instead).
        db.try_add_constraint("must", "forall X: employee(X) -> good(X)")
            .map(|_| ())
            .unwrap_err(); // violated now, still rejected by state check
    }
}
