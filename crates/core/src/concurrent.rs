//! The multi-writer guarded-update pipeline: [`ConcurrentDatabase`].
//!
//! A cheaply clonable (`Arc`-shared) handle that any number of writer
//! threads commit through. Each transaction:
//!
//! 1. **begins** against a pinned MVCC snapshot
//!    ([`ConcurrentDatabase::begin`] → [`TxnBuilder`]);
//! 2. is **checked** by the paper's incremental integrity method
//!    *against that snapshot* — the expensive phase, running outside
//!    any lock, recording the binding-level read patterns the verdict
//!    depends on (`CheckReport::read_patterns`);
//! 3. is **submitted** to the shared
//!    [`CommitQueue`], which admits
//!    it with first-committer-wins conflict detection at key
//!    granularity: writers over disjoint relations — or disjoint keys
//!    of the *same* relation — commit without invalidating each other,
//!    while a transaction whose read patterns cover a later commit's
//!    written tuples is refused with a typed, retriable
//!    [`TxnError::Conflict`] naming the granularity that refused it.
//!
//! Admitted schedules are serializable: replaying the admitted
//! transactions sequentially in commit order reproduces the same EDB,
//! canonical model and (empty) violation lists — the property
//! `tests/prop_commit_serializability.rs` asserts over randomized
//! multi-writer schedules.

use crate::certain_cache::{CertainCache, CertainCacheStats, StateKey};
use crate::facade::{UniformDatabase, UniformError, UniformOptions};
use crate::query::{
    Consistency, Params, PlanCache, PlanCacheStats, PreparedQuery, QueryError, Session,
};
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use uniform_analyze::{AnalyzeOptions, AnalyzedProgram, Analyzer};
use uniform_datalog::txn::{
    CommitError, CommitQueue, CommitReceipt, ConflictStats, MaintenanceCounters, ModelPath,
};
use uniform_datalog::{ConflictGranularity, Database, Snapshot, Transaction, TxnBuilder, Update};
use uniform_integrity::{CheckReport, Checker, RuleUpdate};
use uniform_logic::{normalize, parse_formula, Constraint, LogicError, Sym};
use uniform_obs::{Counter, Gauge, Hist, Obs, ObsReport, SpanEvent};
use uniform_repair::{RepairEngine, RepairError, RepairSet, ViolationPolicy};
use uniform_satisfiability::SatChecker;

/// Why a guarded concurrent commit failed.
#[derive(Debug)]
pub enum TxnError {
    /// The transaction would violate integrity, checked on a snapshot
    /// that was still fresh for the check's read set at rejection time
    /// (stale rejections surface as [`TxnError::Conflict`] instead).
    /// Not retriable: the same updates against the same state fail the
    /// same way.
    Rejected(Box<CheckReport>),
    /// [`ViolationPolicy::Explain`]: rejected like [`TxnError::Rejected`],
    /// with the minimal repair of the would-be state attached — the
    /// delta the writer could fold in to make the transaction
    /// admissible. Not retriable.
    RejectedWithRepair {
        report: Box<CheckReport>,
        repair: Box<RepairSet>,
    },
    /// [`ViolationPolicy::Explain`] / [`ViolationPolicy::AutoRepair`]:
    /// the transaction violates integrity and the repair engine could
    /// not produce a repair within its budgets. Not retriable.
    RepairFailed {
        report: Box<CheckReport>,
        error: RepairError,
    },
    /// A first-committer won a tuple (or relation) this transaction
    /// depends on. `granularity` says what refused it: `Key` — a
    /// committed tuple matched one of this transaction's key-level
    /// read fingerprints; `Relation` — an unbounded read overlapped a
    /// written relation outright. Retriable: re-begin against a fresh
    /// snapshot.
    Conflict {
        relations: Vec<uniform_logic::Sym>,
        committed_version: u64,
        granularity: ConflictGranularity,
    },
    /// The transaction out-lived the commit queue's conflict log.
    /// Retriable: re-begin against a fresh snapshot.
    SnapshotTooOld { begin_version: u64, horizon: u64 },
    /// An update misuses a predicate's arity (typed, from
    /// [`uniform_datalog::ApplyError`]). Not retriable.
    Apply(uniform_datalog::ApplyError),
    /// `commit_with_retry` gave up; `last` is the final refusal.
    RetriesExhausted {
        attempts: usize,
        last: Box<TxnError>,
    },
}

impl TxnError {
    /// Would re-beginning against a fresh snapshot possibly succeed?
    pub fn is_retriable(&self) -> bool {
        matches!(
            self,
            TxnError::Conflict { .. } | TxnError::SnapshotTooOld { .. }
        )
    }

    fn from_commit(e: CommitError) -> TxnError {
        match e {
            CommitError::Conflict {
                relations,
                committed_version,
                granularity,
            } => TxnError::Conflict {
                relations,
                committed_version,
                granularity,
            },
            CommitError::SnapshotTooOld {
                begin_version,
                horizon,
            } => TxnError::SnapshotTooOld {
                begin_version,
                horizon,
            },
            CommitError::Apply(e) => TxnError::Apply(e),
        }
    }
}

impl fmt::Display for TxnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn violations(f: &mut fmt::Formatter<'_>, report: &CheckReport) -> fmt::Result {
            for (i, v) in report.violations.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", v.constraint)?;
                if let Some(culprit) = &v.culprit {
                    write!(f, " (via {culprit})")?;
                }
            }
            Ok(())
        }
        match self {
            TxnError::Rejected(report) => {
                write!(f, "transaction rejected; violated: ")?;
                violations(f, report)
            }
            TxnError::RejectedWithRepair { report, repair } => {
                write!(f, "transaction rejected; violated: ")?;
                violations(f, report)?;
                write!(f, "; minimal repair: {repair}")
            }
            TxnError::RepairFailed { report, error } => {
                write!(f, "transaction rejected; violated: ")?;
                violations(f, report)?;
                write!(f, "; no repair: {error}")
            }
            TxnError::Conflict {
                relations,
                committed_version,
                granularity,
            } => write!(
                f,
                "commit conflict ({}) on {} (first committer won at version {committed_version})",
                match granularity {
                    ConflictGranularity::Relation => "relation-level",
                    ConflictGranularity::Key => "key-level",
                },
                relations
                    .iter()
                    .map(|s| s.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            TxnError::SnapshotTooOld {
                begin_version,
                horizon,
            } => write!(
                f,
                "snapshot too old: began at version {begin_version}, conflict log starts at {horizon}"
            ),
            TxnError::Apply(e) => write!(f, "{e}"),
            TxnError::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts: {last}")
            }
        }
    }
}

impl std::error::Error for TxnError {}

/// An admitted guarded commit.
#[derive(Debug)]
pub struct CommitOutcome {
    /// The database version after the commit.
    pub version: u64,
    /// The integrity report of the snapshot-time check (satisfied).
    pub report: CheckReport,
    /// Conflict-retries spent before admission (0 on the direct path).
    pub retries: usize,
    /// The Def. 1 effective updates, in staging order.
    pub effective: Vec<Update>,
    /// How post-commit snapshots get their canonical model: maintained
    /// incrementally by the commit queue, or rematerialized from scratch
    /// (see [`ModelPath`]).
    pub model_path: ModelPath,
    /// The repair delta folded into this commit by
    /// [`ViolationPolicy::AutoRepair`] (`None` on the ordinary path).
    pub repair: Option<RepairSet>,
}

/// Pre-resolved registry handles for the core pipeline, looked up once
/// at construction so the hot read/commit paths never take the registry
/// lock (see [`uniform_obs::MetricsRegistry`]).
pub(crate) struct CoreMetrics {
    /// `query.executes.latest` / `query.executes.certain`.
    pub(crate) executes_latest: Counter,
    pub(crate) executes_certain: Counter,
    /// `query.latency.latest` / `query.latency.certain` (log₂-ns
    /// buckets; all recordings land in bucket 0 under a
    /// [`uniform_obs::NullClock`]).
    pub(crate) latency_latest: Hist,
    pub(crate) latency_certain: Hist,
    /// `commit.latency`, recorded by the root `commit` span.
    commit_latency: Hist,
    /// `store.cow.*` / `cache.*.entries` gauges, sampled point-in-time
    /// by [`ConcurrentDatabase::obs_report`] — not maintained live.
    cow_pages: Gauge,
    cow_tuples: Gauge,
    cow_bytes: Gauge,
    plan_entries: Gauge,
    certain_entries: Gauge,
    /// `analyze.cache.hits` / `analyze.cache.misses`, recorded by
    /// [`Shared::analyzed_for_snapshot`].
    analyze_hits: Counter,
    analyze_misses: Counter,
}

impl CoreMetrics {
    fn register(obs: &Obs) -> CoreMetrics {
        CoreMetrics {
            executes_latest: obs.counter("query.executes.latest"),
            executes_certain: obs.counter("query.executes.certain"),
            latency_latest: obs.histogram("query.latency.latest"),
            latency_certain: obs.histogram("query.latency.certain"),
            commit_latency: obs.histogram("commit.latency"),
            cow_pages: obs.gauge("store.cow.pages_cloned"),
            cow_tuples: obs.gauge("store.cow.tuples_cloned"),
            cow_bytes: obs.gauge("store.cow.bytes_cloned"),
            plan_entries: obs.gauge("cache.plan.entries"),
            certain_entries: obs.gauge("cache.certain.entries"),
            analyze_hits: obs.counter("analyze.cache.hits"),
            analyze_misses: obs.counter("analyze.cache.misses"),
        }
    }
}

pub(crate) struct Shared {
    queue: CommitQueue,
    options: UniformOptions,
    /// The database-wide observability domain (see [`uniform_obs`]):
    /// one registry + span ring shared by the commit queue, the plan
    /// and certain-answer caches, the query path and the repair engine,
    /// so [`ConcurrentDatabase::obs_report`] covers the whole pipeline.
    obs: Arc<Obs>,
    /// Hot-path registry handles, resolved once (see [`CoreMetrics`]).
    metrics: CoreMetrics,
    /// The sharded prepared-plan cache behind
    /// [`ConcurrentDatabase::prepare`]: source → [`PreparedQuery`],
    /// so hot queries stop paying parse + plan per request. Plans
    /// inside each entry are keyed by rule revision and rebuilt when a
    /// schema change lands (see [`crate::PreparedQuery`]).
    plans: PlanCache,
    /// Mirrors of the database's schema revisions (+ the version the
    /// last schema change committed at), published by
    /// [`ConcurrentDatabase::update_schema`] / `try_add_rule` right
    /// after the change lands. Fenced sessions read these instead of
    /// taking the queue lock per execute — the read path must not
    /// convoy behind committing writers. Commits never move schema
    /// revisions, so the mirrors only change under `update_schema`.
    rule_rev: AtomicU64,
    constraint_rev: AtomicU64,
    schema_version: AtomicU64,
    /// The shared certain-answer cache (see [`crate::certain_cache`]):
    /// repair lists and `Certain` row sets keyed by the exact semantic
    /// state — `(db_id, fact_rev, rule_rev, constraint_rev)` — shared
    /// across every session pinned to it, advanced delta-style after
    /// each admitted commit and invalidated wholesale by schema
    /// updates and `AutoRepair` commits.
    certain: CertainCache,
    /// The cached static analysis of the registered program (see
    /// [`ConcurrentDatabase::analyze`]): one entry keyed by
    /// `(rule_rev, constraint_rev)`. Schema changes move the key, so a
    /// stale entry is simply never served again; it is replaced on the
    /// next miss.
    analyzed: crate::facade::AnalyzedSlot,
}

impl Shared {
    /// Current schema revisions + the version of the last schema
    /// change, for fenced sessions (see [`crate::Session`] and
    /// [`crate::QueryError::SnapshotTooOld`]). Lock-free: a fence
    /// racing an in-flight schema change may read the pre-change
    /// revisions, which is indistinguishable from executing just
    /// before the change — the snapshot it serves predates it either
    /// way.
    pub(crate) fn schema_revs(&self) -> (u64, u64, u64) {
        (
            self.rule_rev.load(Ordering::Acquire),
            self.constraint_rev.load(Ordering::Acquire),
            self.schema_version.load(Ordering::Acquire),
        )
    }

    /// Re-publish the schema-revision mirrors after a schema mutation.
    fn publish_schema_revs(&self, rule_rev: u64, constraint_rev: u64, version: u64) {
        self.rule_rev.store(rule_rev, Ordering::Release);
        self.constraint_rev.store(constraint_rev, Ordering::Release);
        self.schema_version.store(version, Ordering::Release);
    }

    /// The shared certain-answer cache, for sessions opened through
    /// this handle (see [`crate::Session`]).
    pub(crate) fn certain(&self) -> &CertainCache {
        &self.certain
    }

    /// The database-wide observability domain.
    pub(crate) fn obs(&self) -> &Arc<Obs> {
        &self.obs
    }

    /// Pre-resolved handles for the query path (see [`CoreMetrics`]).
    pub(crate) fn query_metrics(&self) -> &CoreMetrics {
        &self.metrics
    }

    /// The static analysis of the schema as of `snapshot`, served from
    /// the shared single-entry cache when the snapshot's schema
    /// revisions match the cached key (`analyze.cache.hits`), rebuilt
    /// from the snapshot and cached otherwise (`analyze.cache.misses`).
    /// The satisfiability classification inside the returned program is
    /// lazy, so a cache miss costs lints + closures + templates only.
    pub(crate) fn analyzed_for_snapshot(&self, snapshot: &Snapshot) -> Arc<AnalyzedProgram> {
        let key = (snapshot.rule_rev(), snapshot.constraint_rev());
        let mut slot = self.analyzed.lock();
        if let Some((cached_key, analyzed)) = slot.as_ref() {
            if *cached_key == key {
                self.metrics.analyze_hits.incr();
                return analyzed.clone();
            }
        }
        self.metrics.analyze_misses.incr();
        let analyzed = Arc::new(
            Analyzer::of_snapshot(snapshot)
                .with_options(AnalyzeOptions {
                    sat: self.options.sat.clone(),
                    ..AnalyzeOptions::default()
                })
                .with_obs(self.obs.clone())
                .analyze(),
        );
        *slot = Some((key, analyzed.clone()));
        analyzed
    }
}

/// See the module docs.
#[derive(Clone)]
pub struct ConcurrentDatabase {
    shared: Arc<Shared>,
}

impl ConcurrentDatabase {
    /// Share a façade database among writers. Fails never; the façade's
    /// invariant (initial state consistent) carries over.
    pub fn new(db: UniformDatabase) -> ConcurrentDatabase {
        let (db, options) = db.into_parts();
        ConcurrentDatabase::from_database(db, options)
    }

    /// Share a bare [`Database`] with explicit options. The
    /// observability domain comes from the environment:
    /// [`uniform_obs::Obs::from_env`] — wall-clock timing when
    /// `UNIFORM_OBS=1`, the zero-cost [`uniform_obs::NullClock`]
    /// otherwise (counters and spans are recorded either way).
    pub fn from_database(db: Database, options: UniformOptions) -> ConcurrentDatabase {
        ConcurrentDatabase::from_database_with_obs(db, options, Arc::new(Obs::from_env()))
    }

    /// [`ConcurrentDatabase::from_database`] with an explicit
    /// observability domain — the deterministic-test entry point: an
    /// `Obs` built over a [`uniform_obs::NullClock`] keeps every
    /// counter, span and histogram a pure function of the operation
    /// sequence, independent of wall time and thread interleaving
    /// within one serialized schedule.
    pub fn from_database_with_obs(
        db: Database,
        options: UniformOptions,
        obs: Arc<Obs>,
    ) -> ConcurrentDatabase {
        let (rule_rev, constraint_rev, version) =
            (db.rule_rev(), db.constraint_rev(), db.version());
        let queue = if options.maintain_model {
            CommitQueue::with_obs(db, obs.clone())
        } else {
            CommitQueue::without_maintenance_with_obs(db, obs.clone())
        };
        let metrics = CoreMetrics::register(&obs);
        ConcurrentDatabase {
            shared: Arc::new(Shared {
                queue,
                options,
                plans: PlanCache::new(&obs),
                rule_rev: AtomicU64::new(rule_rev),
                constraint_rev: AtomicU64::new(constraint_rev),
                schema_version: AtomicU64::new(version),
                certain: CertainCache::new(&obs),
                analyzed: Mutex::new(None),
                metrics,
                obs,
            }),
        }
    }

    /// Parse a program and share it (see [`UniformDatabase::parse`]).
    pub fn parse(src: &str) -> Result<ConcurrentDatabase, UniformError> {
        Ok(ConcurrentDatabase::new(UniformDatabase::parse(src)?))
    }

    /// Pin a snapshot and open a transaction.
    pub fn begin(&self) -> TxnBuilder {
        self.shared.queue.begin()
    }

    /// A read snapshot of the latest committed state.
    pub fn snapshot(&self) -> Snapshot {
        self.shared.queue.snapshot()
    }

    /// The latest committed version.
    pub fn version(&self) -> u64 {
        self.shared.queue.version()
    }

    /// Run `f` on the live database under the queue lock (reads only).
    pub fn with_database<R>(&self, f: impl FnOnce(&Database) -> R) -> R {
        self.shared.queue.with_db(f)
    }

    /// Check `txn` against its pinned snapshot and, if integrity is
    /// preserved, submit it for first-committer-wins admission. The
    /// check runs entirely on the snapshot — concurrent callers only
    /// serialize on the final admission step. Violations are handled by
    /// the configured [`UniformOptions::violation_policy`]
    /// (`Reject` by default); see
    /// [`ConcurrentDatabase::commit_with_policy`] to override per
    /// commit.
    pub fn commit(&self, txn: &TxnBuilder) -> Result<CommitOutcome, TxnError> {
        self.commit_with_policy(txn, self.shared.options.violation_policy)
    }

    /// [`ConcurrentDatabase::commit`] with an explicit per-commit
    /// [`ViolationPolicy`]:
    ///
    /// * `Reject` — violating transactions fail with
    ///   [`TxnError::Rejected`] (the classical behavior);
    /// * `Explain` — they fail with [`TxnError::RejectedWithRepair`],
    ///   carrying the minimal repair of the would-be state as a
    ///   diagnostic;
    /// * `AutoRepair` — the minimal repair's delta is folded into the
    ///   transaction and the combination commits, fenced by the usual
    ///   conflict detection and flowing through incremental model
    ///   maintenance like any other commit; the outcome records the
    ///   applied repair in [`CommitOutcome::repair`].
    pub fn commit_with_policy(
        &self,
        txn: &TxnBuilder,
        policy: ViolationPolicy,
    ) -> Result<CommitOutcome, TxnError> {
        // The root commit span, tagged with the policy; the queue's
        // `commit.admit`/`commit.apply`/`commit.maintain` spans and the
        // repair engine's `repair.run` nest under it (same obs domain,
        // same thread). Its close feeds the `commit.latency` histogram.
        let _commit = self.shared.obs.span_timed(
            "commit",
            Some(match policy {
                ViolationPolicy::Reject => "reject",
                ViolationPolicy::Explain => "explain",
                ViolationPolicy::AutoRepair => "auto_repair",
            }),
            self.shared.metrics.commit_latency.clone(),
        );
        let mut txn = txn.clone();
        {
            let _stage = self.shared.obs.span("commit.stage");
            if let Err(e) = txn.validate_arities() {
                return Err(TxnError::Apply(e));
            }
        }
        let tx = txn.transaction();
        let report = {
            let _check = self.shared.obs.span("commit.check");
            Checker::for_snapshot_with_options(txn.snapshot(), self.shared.options.check).check(&tx)
        };
        // The admission decision needs every access pattern the verdict
        // read — and so does deciding whether a *rejection* is still
        // current. Patterns with bound constants become key-level
        // fingerprints; only genuinely unbounded scans pin the whole
        // relation.
        txn.record_read_patterns(&report.read_patterns);
        if !report.satisfied {
            // A rejection is only final if its snapshot is still fresh
            // for the read set; if a later commit wrote into it, the
            // verdict may be outdated — surface a retriable conflict so
            // the caller re-checks against a fresh snapshot.
            if let Err(e) = self.shared.queue.check_freshness(&txn) {
                return Err(TxnError::from_commit(e));
            }
            return match policy {
                ViolationPolicy::Reject => Err(TxnError::Rejected(Box::new(report))),
                ViolationPolicy::Explain => Err(match self.repair_for(&txn, &tx, report) {
                    Ok((report, repair)) => TxnError::RejectedWithRepair {
                        report,
                        repair: Box::new(repair),
                    },
                    Err(e) => e,
                }),
                ViolationPolicy::AutoRepair => self.commit_auto_repaired(txn, tx, report),
            };
        }
        match self.shared.queue.commit(&txn) {
            Ok(CommitReceipt {
                version,
                fact_rev,
                effective,
                model_path,
            }) => {
                // Delta-driven cache advance (outside the queue lock —
                // the version fence inside `advance_commit` keeps
                // racing, out-of-order hooks sound): entries whose
                // closures this commit's writes missed are carried
                // forward to the post-commit revisions.
                let _invalidate = self.shared.obs.span("commit.invalidate");
                self.shared.certain.advance_commit(
                    StateKey {
                        db_id: txn.snapshot().db_id(),
                        version,
                        fact_rev,
                        // Commits never move the schema revisions.
                        rule_rev: txn.snapshot().rule_rev(),
                        constraint_rev: txn.snapshot().constraint_rev(),
                    },
                    &effective,
                );
                Ok(CommitOutcome {
                    version,
                    report,
                    retries: 0,
                    effective,
                    model_path,
                    repair: None,
                })
            }
            Err(e) => Err(TxnError::from_commit(e)),
        }
    }

    /// The `AutoRepair` tail of [`ConcurrentDatabase::commit_with_policy`]:
    /// compute the minimal repair of the would-be state, fold its delta
    /// into the transaction, re-check the combination on the same
    /// snapshot (recomputing the read set), and submit. The repair
    /// *choice* depended on a full consistency determination, so the
    /// read set is widened to every relation any constraint can reach —
    /// a concurrent commit into any of them retriably conflicts this
    /// one instead of admitting a stale repair.
    fn commit_auto_repaired(
        &self,
        mut txn: TxnBuilder,
        tx: Transaction,
        report: CheckReport,
    ) -> Result<CommitOutcome, TxnError> {
        let (_, repair) = self.repair_for(&txn, &tx, report)?;
        for op in repair.ops() {
            txn.stage(op.clone());
        }
        let combined = txn.transaction();
        let combined_report = {
            let _check = self.shared.obs.span("commit.check");
            Checker::for_snapshot_with_options(txn.snapshot(), self.shared.options.check)
                .check(&combined)
        };
        if !combined_report.satisfied {
            debug_assert!(false, "repair delta failed to restore consistency");
            return Err(TxnError::Rejected(Box::new(combined_report)));
        }
        txn.record_read_patterns(&combined_report.read_patterns);
        // The closure reads are deliberately unbounded (whole-relation):
        // the repair choice surveyed those relations without any key to
        // pin, so any write into them must conflict. The closure itself
        // is a pure function of the schema, served precomputed from the
        // shared static analysis.
        txn.record_reads(
            self.shared
                .analyzed_for_snapshot(txn.snapshot())
                .closure_union()
                .to_vec(),
        );
        match self.shared.queue.commit(&txn) {
            Ok(CommitReceipt {
                version,
                fact_rev: _,
                effective,
                model_path,
            }) => {
                // An auto-repaired commit's effect is the widened
                // constraint closure (the repair choice surveyed every
                // relation any constraint can reach), which every
                // cached verdict intersects — invalidate wholesale.
                let _invalidate = self.shared.obs.span("commit.invalidate");
                self.shared.certain.invalidate_all();
                Ok(CommitOutcome {
                    version,
                    report: combined_report,
                    retries: 0,
                    effective,
                    model_path,
                    repair: Some(repair),
                })
            }
            Err(e) => Err(TxnError::from_commit(e)),
        }
    }

    /// The repair a violating transaction gets under `Explain` /
    /// `AutoRepair` (one implementation so the diagnostic and the
    /// applied delta cannot drift apart): run the bounded repair search
    /// on the would-be state, then pick deterministically — the
    /// smallest minimal repair that leaves the transaction's own net
    /// effect intact, because a repair that silently undoes the write
    /// it was asked to land (or advises "don't do that") would be
    /// minimal but useless. Only when every minimal repair touches the
    /// transaction's own facts does the overall best apply. Engine
    /// failures become the typed [`TxnError::RepairFailed`].
    #[allow(clippy::type_complexity)]
    fn repair_for(
        &self,
        txn: &TxnBuilder,
        tx: &Transaction,
        report: CheckReport,
    ) -> Result<(Box<CheckReport>, RepairSet), TxnError> {
        let _repair = self.shared.obs.span("commit.repair");
        let engine = RepairEngine::for_update(txn.snapshot(), tx)
            .with_options(self.shared.options.repair)
            .with_obs(self.shared.obs.clone());
        let repairs = match engine.repairs() {
            Ok(repairs) => repairs,
            Err(error) => {
                return Err(TxnError::RepairFailed {
                    report: Box::new(report),
                    error,
                })
            }
        };
        let (net_adds, net_dels) = tx.net_effect(txn.snapshot().facts());
        let own: BTreeSet<&uniform_logic::Fact> = net_adds.iter().chain(net_dels.iter()).collect();
        let repair = repairs
            .repairs
            .iter()
            .find(|r| r.ops().iter().all(|op| !own.contains(&op.fact)))
            .unwrap_or(repairs.best())
            .clone();
        Ok((Box::new(report), repair))
    }

    /// The subset-minimal repairs of the latest committed state (a
    /// consistent state reports the single empty repair), computed on a
    /// snapshot — writers keep committing meanwhile.
    pub fn minimal_repairs(&self) -> Result<Vec<RepairSet>, UniformError> {
        let engine = RepairEngine::for_snapshot(&self.snapshot())
            .with_options(self.shared.options.repair)
            .with_obs(self.shared.obs.clone());
        Ok(engine.repairs().map_err(UniformError::Repair)?.repairs)
    }

    /// Consistent (certain) answers of a conjunctive query against the
    /// latest committed state: a thin shim over the prepared read path —
    /// `prepare` (served from the shared plan cache) + a fresh
    /// [`Session`] at [`Consistency::Certain`]. The whole computation
    /// runs on a snapshot outside every lock; no repaired database is
    /// ever materialized.
    pub fn consistent_answer(&self, query: &str) -> Result<Vec<Vec<(Sym, Sym)>>, UniformError> {
        let prepared = self.prepare(query)?;
        Ok(self
            .session()
            .execute(&prepared, &Params::new(), Consistency::Certain)?
            .bindings())
    }

    // ---- the prepared read path -----------------------------------------

    /// Prepare a conjunctive query through the shared sharded plan
    /// cache: the first caller parses and plans, every later caller —
    /// on any thread — reuses the cached [`PreparedQuery`] (and its
    /// revision-keyed plans). See [`crate::PreparedQuery::prepare`].
    pub fn prepare(&self, src: &str) -> Result<PreparedQuery, QueryError> {
        self.shared
            .plans
            .get_or_prepare("cq", src, &[], || PreparedQuery::prepare(src))
    }

    /// [`ConcurrentDatabase::prepare`] with declared parameters (the
    /// cache key includes them).
    pub fn prepare_with_params(
        &self,
        src: &str,
        params: &[&str],
    ) -> Result<PreparedQuery, QueryError> {
        self.shared.plans.get_or_prepare("cq", src, params, || {
            PreparedQuery::prepare_with_params(src, params)
        })
    }

    /// Prepare a formula (boolean) query through the shared plan cache.
    pub fn prepare_formula(&self, src: &str) -> Result<PreparedQuery, QueryError> {
        self.shared
            .plans
            .get_or_prepare("rq", src, &[], || PreparedQuery::prepare_formula(src))
    }

    /// Open a read session pinned to the latest committed state. Any
    /// number of [`Session::execute`] calls see that one state while
    /// writers keep committing; take a fresh session to observe later
    /// commits.
    /// Sessions opened here share the database-level certain-answer
    /// cache: `Certain` reads pinned to the same `(db_id, fact_rev,
    /// rule_rev, constraint_rev)` state reuse one repair enumeration
    /// and cached row sets (see [`crate::certain_cache`]).
    pub fn session(&self) -> Session {
        Session::shared(
            self.snapshot(),
            self.shared.options.repair,
            self.shared.clone(),
            false,
        )
    }

    /// A *fenced* session: like [`ConcurrentDatabase::session`], but
    /// executes fail with [`QueryError::SnapshotTooOld`] once a schema
    /// change (rule or constraint revision) lands after the pin —
    /// mirroring how the commit pipeline fences in-flight transactions
    /// whose pinned verdicts predate the new schema. Use for long-lived
    /// sessions that must not serve answers across schema epochs.
    pub fn session_fenced(&self) -> Session {
        Session::shared(
            self.snapshot(),
            self.shared.options.repair,
            self.shared.clone(),
            true,
        )
    }

    /// Running totals of the shared prepared-plan cache.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.shared.plans.stats()
    }

    /// The database-wide observability domain: the metrics registry,
    /// span recorder and clock every pipeline stage of this handle
    /// reports into. Useful to share one domain across several
    /// databases, or to register application metrics alongside the
    /// built-in `txn.*`/`query.*`/`cache.*`/`repair.*` families.
    pub fn obs(&self) -> &Arc<Obs> {
        &self.shared.obs
    }

    /// The most recent structured span events (bounded ring; oldest
    /// evicted first — see [`uniform_obs::SpanRecorder`]). Each commit,
    /// query execute and repair run contributes a small span tree:
    /// `commit` (tagged by policy) over `commit.stage` / `commit.check`
    /// / `commit.admit` / `commit.apply` / `commit.maintain` /
    /// `commit.repair` / `commit.invalidate`; `query.execute` (tagged
    /// `latest`/`certain`, closed with its outcome path `eval` /
    /// `cache_hit` / `repair`); `repair.run` (tagged by backend).
    pub fn recent_events(&self) -> Vec<SpanEvent> {
        self.shared.obs.recent_events()
    }

    /// One deterministic report over every metric of this database's
    /// pipeline: counters and gauges sorted by name, histograms as
    /// log₂-ns bucket counts. Point-in-time gauges (`store.cow.*`,
    /// `cache.plan.entries`, `cache.certain.entries`) are sampled here,
    /// at report time. See [`uniform_obs::ObsReport`] for the Display
    /// and JSON renderings.
    pub fn obs_report(&self) -> ObsReport {
        let m = &self.shared.metrics;
        let cow = self.with_database(|d| d.facts().cow_stats());
        m.cow_pages.set(cow.pages_cloned);
        m.cow_tuples.set(cow.tuples_cloned);
        m.cow_bytes.set(cow.bytes_cloned);
        m.plan_entries.set(self.shared.plans.stats().entries as u64);
        m.certain_entries
            .set(self.shared.certain.stats().entries as u64);
        self.shared.obs.report()
    }

    /// Running totals of the shared certain-answer cache (hits,
    /// misses, carry-forwards, invalidations; see
    /// [`crate::CertainCacheStats`]).
    pub fn certain_cache_stats(&self) -> CertainCacheStats {
        self.shared.certain.stats()
    }

    /// Evaluate a closed formula against the latest committed state —
    /// a shim over the prepared path (cached parse + plan, fresh
    /// session, [`Consistency::Latest`]).
    pub fn query(&self, formula: &str) -> Result<bool, UniformError> {
        let prepared = self.prepare_formula(formula)?;
        Ok(self
            .session()
            .execute(&prepared, &Params::new(), Consistency::Latest)?
            .is_true())
    }

    /// Enumerate a conjunctive query's answers against the latest
    /// committed state — a shim over the prepared path.
    pub fn solutions(&self, query: &str) -> Result<Vec<Vec<(Sym, Sym)>>, UniformError> {
        let prepared = self.prepare(query)?;
        Ok(self
            .session()
            .execute(&prepared, &Params::new(), Consistency::Latest)?
            .bindings())
    }

    /// The standing model-path marker: how the next snapshot of the
    /// current state gets its canonical model.
    pub fn model_path(&self) -> ModelPath {
        self.shared.queue.model_path()
    }

    /// Running model-maintenance counters of the underlying queue.
    pub fn maintenance(&self) -> MaintenanceCounters {
        self.shared.queue.maintenance()
    }

    /// Running conflict-detection counters of the underlying queue:
    /// admitted commits, refusals by granularity (relation-level vs
    /// key-level), and how many submissions carried an unbounded read
    /// and thus fell back to whole-relation conflict detection.
    pub fn conflict_stats(&self) -> ConflictStats {
        self.shared.queue.conflict_stats()
    }

    /// Run a raw schema mutation under the queue lock (see
    /// [`CommitQueue::update_schema`]): the maintained model is reset
    /// and in-flight transactions are fenced with a retriable
    /// [`TxnError::SnapshotTooOld`]. Prefer the guarded
    /// [`ConcurrentDatabase::try_add_rule`] for rule additions.
    /// Fenced read sessions observe the change through the published
    /// revision mirrors (see [`ConcurrentDatabase::session_fenced`]).
    pub fn update_schema<R>(&self, f: impl FnOnce(&mut Database) -> R) -> R {
        let result = self.shared.queue.update_schema(|db| {
            let result = f(db);
            // Published while the queue lock still serializes schema
            // changes: racing updates must publish in revision order,
            // or the mirrors could stick at an older epoch and fenced
            // sessions would keep serving across it.
            self.shared
                .publish_schema_revs(db.rule_rev(), db.constraint_rev(), db.version());
            result
        });
        // A schema change moves the constraint closure itself; cached
        // repair verdicts cannot be carried across it. (Raw fact edits
        // through this entry point also land here — wholesale is the
        // only sound answer either way.)
        self.shared.certain.invalidate_all();
        result
    }

    /// Add a rule, guarded like [`UniformDatabase::try_add_rule`] (the
    /// same shared protocol: stratification, schema satisfiability,
    /// incremental integrity check), atomically with respect to
    /// concurrent writers. The expensive part — the finite-
    /// satisfiability search over the candidate rule set — runs
    /// *optimistically outside the queue lock* on a pinned snapshot, so
    /// writers are never stalled for the search's duration; before
    /// installation the rule and constraint revisions are revalidated
    /// under the lock, and if another schema change slipped in the
    /// search simply re-runs there (the pre-optimization behavior).
    /// Returns `false` when the rule was already present.
    pub fn try_add_rule(&self, rule: &str) -> Result<bool, UniformError> {
        let parsed: uniform_logic::Rule = uniform_logic::parse_rule(rule)?;
        let options = &self.shared.options;
        // Optimistic phase (no lock held): build the candidate rule set
        // from a snapshot and run the satisfiability search on it.
        let presat = if options.skip_satisfiability {
            None
        } else {
            let (snapshot, rule_rev, constraint_rev) = self
                .shared
                .queue
                .with_db(|db| (db.snapshot(), db.rule_rev(), db.constraint_rev()));
            let mut rules = snapshot.rules().rules().to_vec();
            if rules.contains(&parsed) {
                None // no-op addition: nothing to search for
            } else {
                rules.push(parsed.clone());
                match uniform_datalog::RuleSet::new(rules) {
                    // Unstratifiable: let the locked path report it.
                    Err(_) => None,
                    Ok(candidate) => {
                        let report = SatChecker::new(candidate, snapshot.constraints().to_vec())
                            .with_options(options.sat.clone())
                            .check();
                        Some((report, rule_rev, constraint_rev))
                    }
                }
            }
        };
        // Through `Self::update_schema`, so the fencing revision
        // mirrors are re-published after the rule lands.
        self.update_schema(|db| {
            // Revalidate: the verdict transfers only if neither rules
            // nor constraints moved since the snapshot.
            let presat = presat.as_ref().and_then(|(report, r0, c0)| {
                (db.rule_rev() == *r0 && db.constraint_rev() == *c0).then_some(report)
            });
            crate::facade::guarded_rule_update_presat(db, options, RuleUpdate::Add(parsed), presat)
        })
    }

    /// The cached static analysis of the registered program (see
    /// [`uniform_analyze`]): lints, per-constraint closures,
    /// read-pattern templates and — computed lazily on first demand —
    /// the §4 satisfiability classification. One entry keyed by
    /// `(rule_rev, constraint_rev)`: the first caller after a schema
    /// change rebuilds it, every later caller on any thread shares the
    /// same `Arc` (`analyze.cache.hits` / `analyze.cache.misses`).
    pub fn analyze(&self) -> Arc<AnalyzedProgram> {
        self.shared.analyzed_for_snapshot(&self.snapshot())
    }

    /// Add a constraint, guarded like
    /// [`UniformDatabase::try_add_constraint`] — the §4 gate refuses
    /// candidate sets proven unsatisfiable with a typed
    /// [`UniformError::Analyze`] (UA0301; no state could ever satisfy
    /// them), then the *current* state is checked and a
    /// violated-but-satisfiable constraint is refused with
    /// [`UniformError::CurrentlyViolated`] carrying a suggested repair —
    /// atomically with respect to concurrent writers. Like
    /// [`ConcurrentDatabase::try_add_rule`], the expensive
    /// satisfiability search runs *optimistically outside the queue
    /// lock* on a pinned snapshot; the schema revisions are revalidated
    /// under the lock and the search re-runs there if another schema
    /// change slipped in. Returns `false` when an identical constraint
    /// (same name and formula) is already registered.
    pub fn try_add_constraint(&self, name: &str, formula: &str) -> Result<bool, UniformError> {
        let f = parse_formula(formula)?;
        let rq = normalize(&f).map_err(LogicError::Normalize)?;
        let constraint = Constraint::new(name, rq);
        // `Constraint` carries no `PartialEq`; the `name: rq` rendering
        // is injective on normalized constraints and serves as identity.
        let rendered = constraint.to_string();
        let duplicate = |cs: &[Constraint]| cs.iter().any(|c| c.to_string() == rendered);
        let options = &self.shared.options;

        // Optimistic phase (no lock held): classify the candidate
        // constraint set on a pinned snapshot.
        let preverdict = if options.skip_satisfiability {
            None
        } else {
            let (snapshot, rule_rev, constraint_rev) = self
                .shared
                .queue
                .with_db(|db| (db.snapshot(), db.rule_rev(), db.constraint_rev()));
            if duplicate(snapshot.constraints()) {
                None // no-op addition: nothing to search for
            } else {
                let mut candidate = snapshot.constraints().to_vec();
                candidate.push(constraint.clone());
                let verdict = crate::facade::refuse_unsatisfiable_candidate(
                    snapshot.rules(),
                    candidate,
                    &options.sat,
                );
                Some((verdict, rule_rev, constraint_rev))
            }
        };

        // Through `Self::update_schema`, so the fencing revision
        // mirrors are re-published after the constraint lands.
        self.update_schema(|db| {
            if duplicate(db.constraints()) {
                return Ok(false);
            }
            // Revalidate: the verdict transfers only if neither rules
            // nor constraints moved since the snapshot.
            match preverdict {
                Some((verdict, r0, c0)) if db.rule_rev() == r0 && db.constraint_rev() == c0 => {
                    verdict?
                }
                _ if options.skip_satisfiability => {}
                _ => {
                    let mut candidate = db.constraints().to_vec();
                    candidate.push(constraint.clone());
                    crate::facade::refuse_unsatisfiable_candidate(
                        db.rules(),
                        candidate,
                        &options.sat,
                    )?;
                }
            }
            if !db.satisfies(&constraint.rq) {
                let mut constraints = db.constraints().to_vec();
                constraints.push(constraint.clone());
                let engine = RepairEngine::new(db.facts().clone(), db.rules().clone(), constraints)
                    .with_options(options.repair)
                    .with_obs(self.shared.obs.clone());
                let repair = engine.repairs().ok().map(|report| report.best().clone());
                return Err(UniformError::CurrentlyViolated {
                    constraint: name.to_string(),
                    repair,
                });
            }
            db.add_constraint(constraint);
            Ok(true)
        })
    }

    /// Commit `updates` as one transaction, re-beginning against a
    /// fresh snapshot after each conflict, up to `max_attempts` times.
    /// Integrity rejections are returned immediately (they are
    /// state-dependent, not race-dependent).
    pub fn commit_updates_with_retry(
        &self,
        updates: &[Update],
        max_attempts: usize,
    ) -> Result<CommitOutcome, TxnError> {
        let mut last: Option<TxnError> = None;
        for attempt in 0..max_attempts.max(1) {
            let mut txn = self.begin();
            for u in updates {
                txn.stage(u.clone());
            }
            match self.commit(&txn) {
                Ok(mut outcome) => {
                    outcome.retries = attempt;
                    return Ok(outcome);
                }
                Err(e) if e.is_retriable() => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(TxnError::RetriesExhausted {
            attempts: max_attempts.max(1),
            last: Box::new(last.expect("at least one attempt ran")),
        })
    }

    /// Commit a [`Transaction`] once (no retry), from a fresh snapshot.
    pub fn commit_transaction(&self, tx: &Transaction) -> Result<CommitOutcome, TxnError> {
        let mut txn = self.begin();
        for u in &tx.updates {
            txn.stage(u.clone());
        }
        self.commit(&txn)
    }
}

impl fmt::Debug for ConcurrentDatabase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ConcurrentDatabase({:?})", self.shared.queue)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniform_logic::Fact;

    const ORG: &str = "
        member(X, Y) :- leads(X, Y).
        constraint led: forall X: department(X) -> (exists Y: employee(Y) & leads(Y, X)).
        employee(ann).
        department(sales).
        leads(ann, sales).
    ";

    fn upd(insert: bool, p: &str, args: &[&str]) -> Update {
        let fact = Fact::parse_like(p, args);
        if insert {
            Update::insert(fact)
        } else {
            Update::delete(fact)
        }
    }

    #[test]
    fn guarded_commit_accepts_and_rejects() {
        let db = ConcurrentDatabase::parse(ORG).unwrap();
        // A full department with its leader: accepted.
        let mut good = db.begin();
        good.stage(upd(true, "department", &["hr"]));
        good.stage(upd(true, "employee", &["bob"]));
        good.stage(upd(true, "leads", &["bob", "hr"]));
        let outcome = db.commit(&good).unwrap();
        assert!(outcome.report.satisfied);
        assert_eq!(outcome.effective.len(), 3);
        // A dangling department: rejected with the violating constraint.
        let mut bad = db.begin();
        bad.stage(upd(true, "department", &["void"]));
        match db.commit(&bad).unwrap_err() {
            TxnError::Rejected(report) => {
                assert_eq!(report.violations[0].constraint, "led");
            }
            other => panic!("expected rejection, got {other}"),
        }
        assert!(db.with_database(|d| d.is_consistent()));
    }

    #[test]
    fn conflicting_writers_get_typed_conflicts_and_retries_succeed() {
        let db = ConcurrentDatabase::parse("seat(a).").unwrap();
        let mut t1 = db.begin();
        t1.stage(upd(false, "seat", &["a"]));
        let mut t2 = db.begin();
        t2.stage(upd(true, "seat", &["a"]));
        db.commit(&t1).unwrap();
        // t2 touches the tuple t1 just deleted: first committer wins,
        // and the refusal names the key granularity that caught it.
        let err = db.commit(&t2).unwrap_err();
        assert!(err.is_retriable(), "{err}");
        match &err {
            TxnError::Conflict {
                relations,
                granularity,
                ..
            } => {
                assert_eq!(relations.len(), 1);
                assert_eq!(relations[0].as_str(), "seat");
                assert_eq!(*granularity, ConflictGranularity::Key);
            }
            other => panic!("expected a conflict, got {other}"),
        }
        // The retry path re-begins and lands it.
        let outcome = db
            .commit_updates_with_retry(&[upd(true, "seat", &["a"])], 4)
            .unwrap();
        assert!(outcome.report.satisfied);
        assert!(db.with_database(|d| d.facts().contains(&Fact::parse_like("seat", &["a"]))));
        let stats = db.conflict_stats();
        assert_eq!(stats.key_conflicts, 1);
        assert_eq!(stats.relation_conflicts, 0);
    }

    #[test]
    fn writers_to_disjoint_keys_of_one_relation_admit_concurrently() {
        // The b6 scenario through the full facade: two writers append
        // different keys to the same hot relation from the same
        // snapshot version; neither invalidates the other.
        let db = ConcurrentDatabase::parse("seat(a).").unwrap();
        let mut t1 = db.begin();
        t1.stage(upd(false, "seat", &["a"]));
        let mut t2 = db.begin();
        t2.stage(upd(true, "seat", &["b"]));
        db.commit(&t1).unwrap();
        let outcome = db.commit(&t2).unwrap();
        assert!(outcome.report.satisfied);
        assert!(db.with_database(|d| d.facts().contains(&Fact::parse_like("seat", &["b"]))));
        let stats = db.conflict_stats();
        assert_eq!(stats.admitted, 2);
        assert_eq!(stats.key_conflicts + stats.relation_conflicts, 0);
        assert_eq!(
            stats.whole_relation_fallbacks, 0,
            "blind appends must stay key-bounded"
        );
    }

    #[test]
    fn rejections_are_not_retried() {
        let db = ConcurrentDatabase::parse("q(a). constraint c: forall X: p(X) -> q(X).").unwrap();
        let err = db
            .commit_updates_with_retry(&[upd(true, "p", &["zzz"])], 8)
            .unwrap_err();
        assert!(matches!(err, TxnError::Rejected(_)), "{err}");
    }

    #[test]
    fn snapshot_isolated_check_ignores_later_commits_to_unrelated_relations() {
        let db = ConcurrentDatabase::parse("q(a). constraint c: forall X: p(X) -> q(X).").unwrap();
        let mut t = db.begin();
        t.stage(upd(true, "p", &["a"]));
        // An unrelated commit lands in between.
        db.commit_updates_with_retry(&[upd(true, "noise", &["n1"])], 1)
            .unwrap();
        // The pinned check still admits: `noise` is outside its read set.
        let outcome = db.commit(&t).unwrap();
        assert!(outcome.report.satisfied);
    }

    #[test]
    fn dependent_read_conflicts_abort_stale_checks() {
        let db = ConcurrentDatabase::parse("q(a). constraint c: forall X: p(X) -> q(X).").unwrap();
        // t's admissibility depends on q(a) existing at its snapshot.
        let mut t = db.begin();
        t.stage(upd(true, "p", &["a"]));
        // Another writer deletes q(a) and commits first.
        db.commit_updates_with_retry(&[upd(false, "q", &["a"])], 1)
            .unwrap();
        let err = db.commit(&t).unwrap_err();
        match err {
            TxnError::Conflict { relations, .. } => {
                assert!(relations.iter().any(|s| s.as_str() == "q"), "{relations:?}");
            }
            other => panic!("stale check must conflict, got {other}"),
        }
        // And the retry correctly *rejects* now that q(a) is gone.
        let err = db
            .commit_updates_with_retry(&[upd(true, "p", &["a"])], 4)
            .unwrap_err();
        assert!(matches!(err, TxnError::Rejected(_)), "{err}");
        assert!(db.with_database(|d| d.is_consistent()));
    }

    #[test]
    fn stale_rejections_surface_as_retriable_conflicts() {
        let db = ConcurrentDatabase::parse("constraint c: forall X: p(X) -> q(X).").unwrap();
        // At t's snapshot q(a) is absent, so p(a) would be rejected…
        let mut t = db.begin();
        t.stage(upd(true, "p", &["a"]));
        // …but another writer commits q(a) first: the rejection verdict
        // is stale and must come back retriable, not final.
        db.commit_updates_with_retry(&[upd(true, "q", &["a"])], 1)
            .unwrap();
        let err = db.commit(&t).unwrap_err();
        assert!(
            err.is_retriable(),
            "stale rejection must be retriable: {err}"
        );
        // The retry path re-checks on a fresh snapshot and admits.
        let outcome = db
            .commit_updates_with_retry(&[upd(true, "p", &["a"])], 4)
            .unwrap();
        assert!(outcome.report.satisfied);
        assert!(db.with_database(|d| d.is_consistent()));
    }

    #[test]
    fn guarded_commits_maintain_the_model() {
        let db = ConcurrentDatabase::parse(ORG).unwrap();
        let outcome = db
            .commit_updates_with_retry(
                &[
                    upd(true, "department", &["hr"]),
                    upd(true, "employee", &["bob"]),
                    upd(true, "leads", &["bob", "hr"]),
                ],
                4,
            )
            .unwrap();
        assert_eq!(outcome.model_path, uniform_datalog::ModelPath::Maintained);
        assert_eq!(db.model_path(), uniform_datalog::ModelPath::Maintained);
        // The induced member(bob, hr) is in the maintained model.
        let snap = db.snapshot();
        assert!(snap.holds(&Fact::parse_like("member", &["bob", "hr"])));
        assert!(db.maintenance().maintained >= 1);

        // Disabling maintenance reproduces invalidate-on-commit.
        let plain = ConcurrentDatabase::from_database(
            UniformDatabase::parse(ORG).unwrap().into_parts().0,
            UniformOptions {
                maintain_model: false,
                ..UniformOptions::default()
            },
        );
        let outcome = plain
            .commit_updates_with_retry(
                &[
                    upd(true, "employee", &["zoe"]),
                    upd(true, "leads", &["zoe", "ops"]),
                    upd(true, "department", &["ops"]),
                ],
                4,
            )
            .unwrap();
        assert_eq!(
            outcome.model_path,
            uniform_datalog::ModelPath::Rematerialized
        );
    }

    #[test]
    fn rule_additions_are_guarded_and_reset_maintenance() {
        let db = ConcurrentDatabase::parse(ORG).unwrap();
        db.commit_updates_with_retry(&[upd(true, "veteran", &["ann"])], 1)
            .unwrap();
        assert_eq!(db.model_path(), uniform_datalog::ModelPath::Maintained);

        // An in-flight transaction is fenced by the schema change.
        let mut inflight = db.begin();
        inflight.stage(upd(true, "veteran", &["zed"]));

        assert!(db.try_add_rule("boss(X) :- leads(X, Y).").unwrap());
        assert_eq!(db.model_path(), uniform_datalog::ModelPath::Rematerialized);
        assert_eq!(db.maintenance().schema_resets, 1);
        let err = db.commit(&inflight).unwrap_err();
        assert!(
            matches!(err, TxnError::SnapshotTooOld { .. }),
            "schema change must fence pinned checks: {err}"
        );
        assert!(db.snapshot().holds(&Fact::parse_like("boss", &["ann"])));

        // Re-adding is a no-op; unstratifiable and violating rules are
        // refused without resetting anything further.
        assert!(!db.try_add_rule("boss(X) :- leads(X, Y).").unwrap());
        assert!(db
            .try_add_rule("absent(X) :- employee(X), not absent(X).")
            .is_err());
        assert_eq!(db.maintenance().schema_resets, 1);

        // Maintenance resumes on the next effective commit.
        let outcome = db
            .commit_updates_with_retry(&[upd(true, "veteran", &["zed"])], 4)
            .unwrap();
        assert_eq!(outcome.model_path, uniform_datalog::ModelPath::Maintained);
        assert!(db.snapshot().holds(&Fact::parse_like("boss", &["ann"])));
    }

    #[test]
    fn explain_policy_attaches_the_minimal_repair() {
        let db = ConcurrentDatabase::parse("q(a). constraint c: forall X: p(X) -> q(X).").unwrap();
        let mut t = db.begin();
        t.stage(upd(true, "p", &["b"]));
        let err = db
            .commit_with_policy(&t, uniform_repair::ViolationPolicy::Explain)
            .unwrap_err();
        match err {
            TxnError::RejectedWithRepair { report, repair } => {
                assert_eq!(report.violations[0].constraint, "c");
                // Two size-1 repairs exist ({-p(b)} and {+q(b)}); the
                // diagnostic prefers the one that keeps the writer's
                // own update intact.
                assert_eq!(repair.to_string(), "{+q(b)}");
            }
            other => panic!("expected RejectedWithRepair, got {other}"),
        }
        // Nothing was applied.
        assert!(!db.with_database(|d| d.facts().contains(&Fact::parse_like("p", &["b"]))));
    }

    #[test]
    fn auto_repair_folds_the_delta_into_the_commit() {
        let db = ConcurrentDatabase::parse("q(a). constraint c: forall X: p(X) -> q(X).").unwrap();
        let mut t = db.begin();
        t.stage(upd(true, "p", &["b"]));
        let outcome = db
            .commit_with_policy(&t, uniform_repair::ViolationPolicy::AutoRepair)
            .unwrap();
        let repair = outcome.repair.expect("repair applied");
        // {-p(b)} would also be minimal, but undoing the writer's own
        // update is never preferred: the justification q(b) is added.
        assert_eq!(repair.to_string(), "{+q(b)}");
        assert!(outcome.report.satisfied);
        assert!(db.with_database(|d| d.is_consistent()));
        assert!(db.snapshot().holds(&Fact::parse_like("p", &["b"])));
        assert!(db.snapshot().holds(&Fact::parse_like("q", &["b"])));

        // A transaction whose cheapest repair *adds* a fact: deleting
        // q(a) violates c for the pre-existing p(a)…
        let db = ConcurrentDatabase::parse(
            "p(a). q(a). extra(x). constraint c: forall X: p(X) -> q(X).",
        )
        .unwrap();
        let mut t = db.begin();
        t.stage(upd(false, "q", &["a"]));
        let outcome = db
            .commit_with_policy(&t, uniform_repair::ViolationPolicy::AutoRepair)
            .unwrap();
        let repair = outcome.repair.expect("repair applied");
        assert_eq!(repair.to_string(), "{-p(a)}", "delete the dangling p(a)");
        assert_eq!(outcome.model_path, uniform_datalog::ModelPath::Maintained);
        assert!(db.with_database(|d| d.is_consistent()));
        assert!(!db.snapshot().holds(&Fact::parse_like("p", &["a"])));
    }

    #[test]
    fn auto_repaired_commits_flow_through_model_maintenance() {
        // The repair delta must flip the maintained model exactly like
        // hand-written updates: model ≡ recomputation afterwards.
        let db = ConcurrentDatabase::parse(
            "
            member(X, Y) :- leads(X, Y).
            constraint led: forall X: department(X) -> (exists Y: employee(Y) & leads(Y, X)).
            employee(ann).
            department(sales).
            leads(ann, sales).
        ",
        )
        .unwrap();
        let mut t = db.begin();
        t.stage(upd(true, "department", &["hr"]));
        let outcome = db
            .commit_with_policy(&t, uniform_repair::ViolationPolicy::AutoRepair)
            .unwrap();
        // {-department(hr)} is the overall smallest, but it would undo
        // the write; the preferred same-size repair promotes the
        // existing employee ann to lead the new department.
        assert_eq!(
            outcome.repair.expect("repair applied").to_string(),
            "{+leads(ann,hr)}"
        );
        let snap = db.snapshot();
        let fresh = uniform_datalog::Model::compute(snap.facts(), snap.rules());
        let mut got: Vec<String> = snap.model().iter().map(|f| f.to_string()).collect();
        let mut want: Vec<String> = fresh.iter().map(|f| f.to_string()).collect();
        got.sort();
        want.sort();
        assert_eq!(got, want, "maintained model != rematerialization");
    }

    #[test]
    fn auto_repair_read_set_fences_concurrent_constraint_writes() {
        let db = ConcurrentDatabase::parse("q(a). constraint c: forall X: p(X) -> q(X).").unwrap();
        // t pins a snapshot; its eventual repair choice reads q.
        let mut t = db.begin();
        t.stage(upd(true, "p", &["b"]));
        // A concurrent writer lands in q first.
        db.commit_updates_with_retry(&[upd(true, "q", &["zz"]), upd(true, "p", &["zz"])], 1)
            .unwrap();
        // The stale auto-repair must conflict retriably, not admit a
        // repair chosen against outdated contents of q.
        let err = db
            .commit_with_policy(&t, uniform_repair::ViolationPolicy::AutoRepair)
            .unwrap_err();
        assert!(err.is_retriable(), "{err}");
    }

    #[test]
    fn consistent_answers_over_an_inconsistent_committed_state() {
        let db = ConcurrentDatabase::parse("q(b). constraint c: forall X: p(X) -> q(X).").unwrap();
        // Drive the shared state inconsistent through the raw schema
        // path (bypassing the guard, as an external loader would).
        db.update_schema(|d| {
            d.insert_fact(&Fact::parse_like("p", &["a"]));
            d.insert_fact(&Fact::parse_like("p", &["b"]));
        });
        assert!(!db.with_database(|d| d.is_consistent()));
        let repairs = db.minimal_repairs().unwrap();
        assert_eq!(repairs.len(), 2, "{repairs:?}");
        // p(b) holds in every repair; p(a) only in one.
        let answers = db.consistent_answer("p(X)").unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0][0].1.as_str(), "b");
        // The engine never mutated the shared state.
        assert!(!db.with_database(|d| d.is_consistent()));
    }

    #[test]
    fn concurrent_rule_additions_with_optimistic_sat_install_correctly() {
        let db = ConcurrentDatabase::parse(ORG).unwrap();
        std::thread::scope(|scope| {
            for w in 0..4 {
                let db = db.clone();
                scope.spawn(move || {
                    let rule = format!("derived{w}(X) :- employee(X).");
                    assert!(db.try_add_rule(&rule).unwrap());
                });
            }
        });
        // All four landed, each reset the maintenance state.
        let snap = db.snapshot();
        for w in 0..4 {
            assert!(snap.holds(&Fact::parse_like(&format!("derived{w}"), &["ann"])));
        }
        assert_eq!(db.maintenance().schema_resets, 4);
        // Unsatisfiable additions are still refused by the (optimistic)
        // search, and re-adding is still a no-op.
        assert!(!db.try_add_rule("derived0(X) :- employee(X).").unwrap());
        db.update_schema(|d| {
            d.add_constraint(uniform_logic::Constraint::new(
                "no_ghost",
                uniform_logic::normalize(
                    &uniform_logic::parse_formula("forall X: ghost(X) -> false").unwrap(),
                )
                .unwrap(),
            ));
            d.insert_fact(&Fact::parse_like("spirit", &["s"]));
        });
        let err = db.try_add_rule("ghost(X) :- spirit(X).").unwrap_err();
        assert!(matches!(err, UniformError::UpdateRejected(_)), "{err}");
    }

    #[test]
    fn guarded_constraint_addition_mirrors_the_facade() {
        let db = ConcurrentDatabase::parse(ORG).unwrap();
        // Satisfiable and satisfied: accepted.
        assert!(db
            .try_add_constraint("some_dept", "exists X: department(X)")
            .unwrap());
        // Identical duplicate: a no-op.
        assert!(!db
            .try_add_constraint("some_dept", "exists X: department(X)")
            .unwrap());
        // Unsatisfiable with what is already registered: refused with
        // the typed analyzer error before any fact is consulted.
        let err = db
            .try_add_constraint("nobody_leads", "forall X, Y: leads(X, Y) -> false")
            .unwrap_err();
        match err {
            UniformError::Analyze(e) => assert!(
                e.diagnostics
                    .iter()
                    .any(|d| d.code == uniform_analyze::Code::UnsatisfiableSet),
                "{e}"
            ),
            other => panic!("unexpected: {other}"),
        }
        // Satisfiable, but violated by the current state: refused with
        // the repairable error — the distinction UA0301 is about.
        let err = db
            .try_add_constraint("managed", "forall X: employee(X) -> manager(X)")
            .unwrap_err();
        assert!(
            matches!(err, UniformError::CurrentlyViolated { .. }),
            "{err}"
        );
        // Refusals left the schema at the accepted two constraints.
        assert_eq!(db.with_database(|d| d.constraints().len()), 2);
    }

    #[test]
    fn analysis_is_cached_per_schema_revision() {
        let db = ConcurrentDatabase::parse(ORG).unwrap();
        let a1 = db.analyze();
        let a2 = db.analyze();
        assert!(Arc::ptr_eq(&a1, &a2), "same schema, one analysis");
        assert!(!a1.closure_union().is_empty());
        // A schema change moves the key: the next call rebuilds.
        assert!(db.try_add_rule("boss(X) :- leads(X, Y).").unwrap());
        let a3 = db.analyze();
        assert!(!Arc::ptr_eq(&a1, &a3), "schema moved, analysis rebuilt");
        let report = db.obs_report();
        let get = |name: &str| {
            report
                .counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        assert_eq!(get("analyze.cache.misses"), 2);
        assert!(get("analyze.cache.hits") >= 1);
    }

    #[test]
    fn plan_cache_shares_prepared_queries_across_callers() {
        let db = ConcurrentDatabase::parse(ORG).unwrap();
        let q1 = db.prepare("member(X, Y)").unwrap();
        let q2 = db.prepare("member(X, Y)").unwrap();
        let stats = db.plan_cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        // Both handles share one plan: the second execute hits it.
        let s = db.session();
        s.execute(&q1, &Params::new(), Consistency::Latest).unwrap();
        s.execute(&q2, &Params::new(), Consistency::Latest).unwrap();
        assert_eq!(q1.plan_counters(), (1, 1));
        // Formula and conjunctive entries never collide on one source.
        db.prepare_formula("exists X: employee(X)").unwrap();
        db.prepare("employee(X)").unwrap();
        assert_eq!(db.plan_cache_stats().entries, 3);
        // Concurrent preparers all resolve to the shared entry.
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let db = db.clone();
                scope.spawn(move || {
                    let q = db.prepare("member(X, Y)").unwrap();
                    let rows = db
                        .session()
                        .execute(&q, &Params::new(), Consistency::Latest)
                        .unwrap();
                    assert_eq!(rows.len(), 1);
                });
            }
        });
        let stats = db.plan_cache_stats();
        assert_eq!(stats.entries, 3);
        assert_eq!(stats.hits + stats.misses, 8);
    }

    #[test]
    fn cached_plans_are_invalidated_by_rule_updates() {
        let db = ConcurrentDatabase::parse(ORG).unwrap();
        let q = db.prepare("member(X, Y)").unwrap();
        let before = db
            .session()
            .execute(&q, &Params::new(), Consistency::Latest)
            .unwrap();
        assert_eq!(before.len(), 1);
        assert!(db.try_add_rule("member(X, club) :- employee(X).").unwrap());
        // Same cached PreparedQuery, new rule revision: re-planned, and
        // the answers reflect the new rule — never the stale plan.
        let q2 = db.prepare("member(X, Y)").unwrap();
        let after = db
            .session()
            .execute(&q2, &Params::new(), Consistency::Latest)
            .unwrap();
        assert_eq!(after.len(), 2, "{after}");
        let (_, misses) = q.plan_counters();
        assert_eq!(misses, 2, "one plan per rule revision");
    }

    #[test]
    fn fenced_sessions_refuse_after_schema_changes() {
        let db = ConcurrentDatabase::parse(ORG).unwrap();
        let q = db.prepare("employee(X)").unwrap();
        let fenced = db.session_fenced();
        let plain = db.session();
        fenced
            .execute(&q, &Params::new(), Consistency::Latest)
            .unwrap();
        // Fact commits do not fence…
        db.commit_updates_with_retry(&[upd(true, "veteran", &["ann"])], 4)
            .unwrap();
        fenced
            .execute(&q, &Params::new(), Consistency::Latest)
            .unwrap();
        // …schema changes do.
        db.try_add_rule("boss(X) :- leads(X, Y).").unwrap();
        let err = fenced
            .execute(&q, &Params::new(), Consistency::Latest)
            .unwrap_err();
        assert!(
            matches!(err, crate::QueryError::SnapshotTooOld { .. }),
            "{err}"
        );
        // An unfenced session keeps serving its pinned state.
        assert_eq!(
            plain
                .execute(&q, &Params::new(), Consistency::Latest)
                .unwrap()
                .len(),
            1
        );
        // Racing schema changes publish their revision mirrors under
        // the queue lock, in revision order: once they settle, a fresh
        // fenced session pins the latest revisions and must execute
        // cleanly — a stale mirror would refuse it spuriously (or let
        // an old session through).
        std::thread::scope(|scope| {
            for w in 0..4 {
                let db = db.clone();
                scope.spawn(move || {
                    db.try_add_rule(&format!("fence_d{w}(X) :- employee(X)."))
                        .unwrap();
                });
            }
        });
        db.session_fenced()
            .execute(&q, &Params::new(), Consistency::Latest)
            .unwrap();
    }

    #[test]
    fn read_shims_flow_through_the_prepared_path() {
        let db = ConcurrentDatabase::parse(ORG).unwrap();
        assert!(db.query("member(ann, sales)").unwrap());
        assert!(!db.query("member(ann, hr)").unwrap());
        let sols = db.solutions("member(X, sales)").unwrap();
        assert_eq!(sols.len(), 1);
        assert_eq!(sols[0][0].1, Sym::new("ann"));
        // Each shim call hit the shared cache after its first parse.
        assert!(db.query("member(ann, sales)").unwrap());
        let stats = db.plan_cache_stats();
        assert_eq!(stats.misses, 3, "two formula + one conjunctive entry");
        assert_eq!(stats.hits, 1, "the repeated formula was served cached");
    }

    #[test]
    fn multi_writer_threads_preserve_integrity() {
        let db = ConcurrentDatabase::parse(ORG).unwrap();
        std::thread::scope(|scope| {
            for w in 0..4 {
                let db = db.clone();
                scope.spawn(move || {
                    for i in 0..8 {
                        let name = format!("d{w}_{i}");
                        let mgr = format!("m{w}_{i}");
                        let updates = [
                            upd(true, "department", &[&name]),
                            upd(true, "employee", &[&mgr]),
                            upd(true, "leads", &[&mgr, &name]),
                        ];
                        db.commit_updates_with_retry(&updates, 16).unwrap();
                    }
                });
            }
        });
        assert!(db.with_database(|d| d.is_consistent()));
        // 3 seed facts + 3 per committed department.
        assert_eq!(db.with_database(|d| d.facts().len()), 3 + 4 * 8 * 3);
    }

    /// The canonical certain-cache fixture: `p(a)`/`p(b)` with `q(b)`
    /// only, so `p(a)` violates `c` and the two minimal repairs are
    /// {delete p(a)} and {insert q(a)} — `p(b)` is the single certain
    /// answer of `p(X)`.
    fn inconsistent_pq() -> ConcurrentDatabase {
        let db = ConcurrentDatabase::parse("q(b). constraint c: forall X: p(X) -> q(X).").unwrap();
        db.update_schema(|d| {
            d.insert_fact(&Fact::parse_like("p", &["a"]));
            d.insert_fact(&Fact::parse_like("p", &["b"]));
        });
        assert!(!db.with_database(|d| d.is_consistent()));
        db
    }

    #[test]
    fn certain_cache_shares_one_enumeration_across_sessions() {
        let db = inconsistent_pq();
        let q = db.prepare("p(X)").unwrap();
        let first = db
            .session()
            .execute(&q, &Params::new(), Consistency::Certain)
            .unwrap();
        assert_eq!(first.len(), 1, "{first}");
        // A *different* session pinned to the same state: the row set
        // comes straight from the shared cache — no repair enumeration,
        // not even a repair-cache lookup.
        let second = db
            .session()
            .execute(&q, &Params::new(), Consistency::Certain)
            .unwrap();
        assert_eq!(first, second);
        let stats = db.certain_cache_stats();
        assert_eq!(stats.repair_misses, 1, "one enumeration total: {stats:?}");
        assert_eq!((stats.hits, stats.misses), (1, 1), "{stats:?}");
        assert_eq!(stats.entries, 1);
        // A third session asking a different Certain query reuses the
        // cached *repairs* even though its row set is new.
        let f = db.prepare_formula("p(b)").unwrap();
        assert!(db
            .session()
            .execute(&f, &Params::new(), Consistency::Certain)
            .unwrap()
            .is_true());
        let stats = db.certain_cache_stats();
        assert_eq!(stats.repair_misses, 1, "{stats:?}");
        assert_eq!(stats.repair_hits, 1, "{stats:?}");
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn commits_outside_the_closure_carry_the_certain_cache_forward() {
        let db = inconsistent_pq();
        let q = db.prepare("p(X)").unwrap();
        let warm = db
            .session()
            .execute(&q, &Params::new(), Consistency::Certain)
            .unwrap();
        // `noise` is outside the constraint closure and outside the
        // query's own closure: the admitted commit carries every cached
        // entry forward to the new revisions instead of dropping them.
        db.commit_updates_with_retry(&[upd(true, "noise", &["n1"])], 4)
            .unwrap();
        let after = db
            .session()
            .execute(&q, &Params::new(), Consistency::Certain)
            .unwrap();
        assert_eq!(warm, after);
        let stats = db.certain_cache_stats();
        assert_eq!(stats.carried_forward, 1, "{stats:?}");
        assert_eq!(stats.invalidated, 0, "{stats:?}");
        assert_eq!(stats.repair_misses, 1, "the enumeration survived");
        assert_eq!(stats.hits, 1, "the post-commit read was a row hit");
    }

    #[test]
    fn fact_only_commits_inside_the_closure_invalidate_the_certain_cache() {
        // Satellite of the PR 6 fence gap: sessions only compare
        // rule/constraint revisions, so a *fact*-level staleness hole in
        // the cache would serve answers of a dead state. The cache key
        // carries `fact_rev`, and the advance hook drops entries whose
        // closure the commit wrote into — both asserted here.
        let db = inconsistent_pq();
        let q = db.prepare("p(X)").unwrap();
        let stale = db
            .session()
            .execute(&q, &Params::new(), Consistency::Certain)
            .unwrap();
        assert_eq!(stale.len(), 1, "only p(b) is certain before the fix");
        // A fact-only commit (rule_rev/constraint_rev unchanged) that
        // repairs the violation: with q(a) in place the state is
        // consistent and p(a) is certain too.
        db.commit_updates_with_retry(&[upd(true, "q", &["a"])], 4)
            .unwrap();
        let fresh = db
            .session()
            .execute(&q, &Params::new(), Consistency::Certain)
            .unwrap();
        assert_eq!(fresh.len(), 2, "{fresh}");
        let stats = db.certain_cache_stats();
        assert_eq!(stats.invalidated, 1, "{stats:?}");
        assert_eq!(stats.carried_forward, 0, "{stats:?}");
        assert_eq!(stats.repair_misses, 2, "the commit forced a re-enumeration");
    }

    #[test]
    fn constraint_only_schema_updates_never_serve_a_stale_repair_report() {
        // The other satellite hole: a schema update that moves *only*
        // the constraint revision (facts and rules untouched) must not
        // serve the old revision's RepairReport to new sessions.
        let db = inconsistent_pq();
        let q = db.prepare("p(X)").unwrap();
        let narrow = db
            .session()
            .execute(&q, &Params::new(), Consistency::Certain)
            .unwrap();
        assert_eq!(narrow.len(), 1);
        let (fact_rev_before, rule_rev_before) = db.with_database(|d| (d.fact_rev(), d.rule_rev()));
        // Drop the constraint: a constraint-only change.
        db.update_schema(|d| d.set_constraints(Vec::new()));
        assert_eq!(
            db.with_database(|d| (d.fact_rev(), d.rule_rev())),
            (fact_rev_before, rule_rev_before),
            "the update must move only constraint_rev for this test to bite"
        );
        // Without `c` the state is consistent: both p-facts are certain.
        let wide = db
            .session()
            .execute(&q, &Params::new(), Consistency::Certain)
            .unwrap();
        assert_eq!(wide.len(), 2, "{wide}");
        let stats = db.certain_cache_stats();
        assert_eq!(stats.invalidated, 1, "{stats:?}");
        assert_eq!(stats.repair_misses, 2, "{stats:?}");
    }

    #[test]
    fn auto_repaired_commits_invalidate_the_certain_cache_wholesale() {
        let db = inconsistent_pq();
        let q = db.prepare("p(X)").unwrap();
        db.session()
            .execute(&q, &Params::new(), Consistency::Certain)
            .unwrap();
        // An auto-repaired commit folds a repair delta in: its effect
        // is the widened constraint closure, so the cache drops
        // everything rather than reasoning about the delta.
        let mut t = db.begin();
        t.stage(upd(true, "p", &["z"]));
        let outcome = db
            .commit_with_policy(&t, ViolationPolicy::AutoRepair)
            .unwrap();
        assert!(outcome.repair.is_some());
        let stats = db.certain_cache_stats();
        assert_eq!(stats.invalidated, 1, "{stats:?}");
        assert_eq!(stats.entries, 0);
        // And fresh sessions compute fresh, correct answers.
        let fresh = db
            .session()
            .execute(&q, &Params::new(), Consistency::Certain)
            .unwrap();
        assert!(!fresh.is_empty(), "{fresh}");
        assert_eq!(db.certain_cache_stats().repair_misses, 2);
    }

    #[test]
    fn pinned_old_sessions_do_not_thrash_the_certain_cache() {
        // Churn survival: one session stays pinned to the pre-commit
        // state while fresh sessions read the head. With a single-state
        // cache the two sides evict each other every pass (the PR 7
        // follow-up thrash); with the generation ring each state keeps
        // its own entries, so after the first compute per state every
        // execute is a row hit.
        let db = inconsistent_pq();
        let q = db.prepare("p(X)").unwrap();
        let old = db.session();
        old.execute(&q, &Params::new(), Consistency::Certain)
            .unwrap();
        // A fact commit inside the closure: invalidates the cache and
        // moves the head while `old` stays pinned behind it.
        db.commit_updates_with_retry(&[upd(true, "q", &["a"])], 4)
            .unwrap();
        for _ in 0..4 {
            old.execute(&q, &Params::new(), Consistency::Certain)
                .unwrap();
            db.session()
                .execute(&q, &Params::new(), Consistency::Certain)
                .unwrap();
        }
        let stats = db.certain_cache_stats();
        // One row-set compute per state post-commit (plus the
        // pre-commit warm-up); the remaining six alternating executes
        // all hit. Before the ring, the pinned session missed every
        // pass and its installs were refused.
        assert_eq!((stats.hits, stats.misses), (6, 3), "{stats:?}");
        assert_eq!(stats.entries, 2, "one row set per cached state");
        assert_eq!(
            stats.repair_misses, 2,
            "one enumeration per state, churn notwithstanding: {stats:?}"
        );
    }

    #[test]
    fn plan_cache_shards_are_bounded_with_lru_eviction() {
        let db = ConcurrentDatabase::parse(ORG).unwrap();
        let hot = "member(X, Y)";
        db.prepare(hot).unwrap();
        // Churn far more distinct keys than the cache may hold,
        // re-touching the hot entry throughout so its stamps stay fresh.
        let churn = 16 * 64 * 2;
        for i in 0..churn {
            db.prepare(&format!("extra{i}(X)")).unwrap();
            if i % 16 == 0 {
                db.prepare(hot).unwrap();
            }
        }
        let stats = db.plan_cache_stats();
        assert!(
            stats.entries <= 16 * 64,
            "shards must stay bounded, got {} entries",
            stats.entries
        );
        // The hot key survived the churn: one more lookup is a hit.
        let misses_before = db.plan_cache_stats().misses;
        db.prepare(hot).unwrap();
        let after = db.plan_cache_stats();
        assert_eq!(after.misses, misses_before, "hot entry was evicted");
    }
}
